//! End-to-end tests for the decision-trace observability layer and the
//! hot-path bugfixes that shipped with it:
//!
//! * a malformed (short) telemetry sample no longer panics the daemon —
//!   it degrades to holding the previous action and reports a typed
//!   error / trace event instead;
//! * `resume_from` snaps off-grid operating points onto the P-state
//!   grid under every policy;
//! * observability is strictly off-path: with no observer attached the
//!   commanded `ControlAction` stream is untouched, and attaching one
//!   changes nothing but the presence of records (bit-identity checked
//!   per policy, RAPL baseline included);
//! * the resilience ladder and the cluster arbiter emit records too,
//!   and serial vs parallel cluster execution produces identical ones.

use std::sync::Arc;

use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::metrics::ControlMetrics;
use pap_telemetry::sampler::{Sample, Sampler};
use pap_workloads::engine::RunningApp;
use pap_workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::{ControlAction, Daemon, DaemonError};
use powerd::obs::{DecisionEvent, DecisionTrace};
use powerd::resilience::{
    CoreObservation, DegradationLevel, Observation, ResilienceConfig, ResilientDaemon,
};
use powerd::runner::standalone_freq;

/// Every policy kind, with the platform it runs on natively.
fn policy_platforms() -> Vec<(PolicyKind, PlatformSpec)> {
    vec![
        (PolicyKind::RaplNative, PlatformSpec::skylake()),
        (PolicyKind::Priority, PlatformSpec::skylake()),
        (PolicyKind::FrequencyShares, PlatformSpec::skylake()),
        (PolicyKind::PerformanceShares, PlatformSpec::skylake()),
        (PolicyKind::PowerShares, PlatformSpec::ryzen()),
    ]
}

fn four_apps(platform: &PlatformSpec) -> Vec<AppSpec> {
    let mix = [
        ("cactusBSSN", spec::CACTUS_BSSN, 70u32),
        ("lbm", spec::LBM, 50),
        ("gcc", spec::GCC, 50),
        ("leela", spec::LEELA, 30),
    ];
    mix.iter()
        .enumerate()
        .map(|(core, (name, profile, shares))| {
            AppSpec::new(name.to_string(), core)
                .with_priority(Priority::High)
                .with_shares(*shares)
                .with_baseline_ips(profile.ips(standalone_freq(platform, profile)))
        })
        .collect()
}

/// Drive a daemon against a chip for `seconds`, returning every
/// commanded action.
fn drive(daemon: &mut Daemon, platform: &PlatformSpec, seconds: f64) -> Vec<ControlAction> {
    let mut chip = Chip::new(platform.clone());
    if daemon.config().policy == PolicyKind::RaplNative {
        chip.set_rapl_limit(Some(daemon.config().power_limit))
            .expect("RAPL range");
    }
    let mut apps: Vec<(usize, RunningApp)> = daemon
        .config()
        .apps
        .iter()
        .map(|a| {
            (
                a.core,
                RunningApp::looping(spec::by_name(&a.name).unwrap_or(spec::GCC)),
            )
        })
        .collect();

    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).expect("valid freqs");
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).unwrap();
    }
    let mut parked = action.parked.clone();
    let mut sampler = Sampler::new(&chip);

    let dt = Seconds(0.002);
    let mut actions = Vec::new();
    let mut next_control = 1.0;
    let mut t = 0.0;
    while t < seconds {
        for (core, app) in apps.iter_mut() {
            if parked[*core] {
                continue;
            }
            let f = chip.effective_freq(*core);
            let out = app.advance(dt, f);
            chip.set_load(*core, out.load).unwrap();
            chip.add_instructions(*core, out.instructions).unwrap();
        }
        chip.tick(dt);
        t += dt.value();
        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).expect("valid freqs");
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).unwrap();
                }
                parked = action.parked.clone();
                actions.push(action);
            }
        }
    }
    actions
}

/// Truncate a sample's per-core slices (a torn/partial telemetry read).
fn truncate(sample: &Sample, cores: usize) -> Sample {
    let mut s = sample.clone();
    s.cores.truncate(cores);
    s
}

#[test]
fn short_sample_degrades_instead_of_panicking() {
    for (policy, platform) in policy_platforms() {
        let config = DaemonConfig::new(policy, Watts(40.0), four_apps(&platform));
        let mut daemon = Daemon::new(config, &platform).expect("valid config");
        daemon.attach_observer(DecisionTrace::new());
        let good = drive(&mut daemon, &platform, 5.0);
        let last = good.last().expect("ran at least one interval").clone();

        // Build a plausible sample, then tear off cores 2..: the app
        // pinned to core 3 can no longer be observed.
        let full = Sample {
            time: Seconds(6.0),
            interval: Seconds(1.0),
            package_power: Watts(35.0),
            cores_power: Watts(25.0),
            cores: (0..platform.num_cores)
                .map(|_| pap_telemetry::sampler::CoreSample {
                    rates: CoreRates {
                        active_freq: KiloHertz::from_mhz(2000),
                        c0_residency: 1.0,
                        ips: 1e9,
                    },
                    power: Some(Watts(3.0)),
                    requested_freq: KiloHertz::from_mhz(2000),
                })
                .collect(),
        };
        let short = truncate(&full, 2);

        // The typed path reports the shortfall precisely (the first app
        // whose pinned core the sample does not cover sits on core 2).
        let err = daemon.try_step(&short).expect_err("short sample must err");
        assert!(
            matches!(
                err,
                DaemonError::ShortSample {
                    expected: 3,
                    got: 2
                }
            ),
            "{policy:?}: unexpected error {err}"
        );

        // The infallible path holds the previous decision, sized for the
        // whole chip as always.
        let held = daemon.step(&short);
        assert_eq!(held.freqs.len(), platform.num_cores, "{policy:?}");
        assert_eq!(
            held, last,
            "{policy:?}: a malformed sample must hold the previous action"
        );

        // And the trace says why.
        let trace = daemon.take_observer().expect("observer attached");
        let record = trace.records().last().expect("degraded step recorded");
        let kinds: Vec<&str> = record.events.iter().map(|e| e.kind()).collect();
        assert!(
            kinds.contains(&"short_sample") && kinds.contains(&"held"),
            "{policy:?}: events {kinds:?}"
        );
    }
}

#[test]
fn resume_from_snaps_off_grid_points_to_the_grid() {
    for (policy, platform) in policy_platforms() {
        let config = DaemonConfig::new(policy, Watts(40.0), four_apps(&platform));
        let mut daemon = Daemon::new(config, &platform).expect("valid config");
        daemon.initial();

        // A firmware-throttled chip reports operating points nowhere
        // near the grid: off-step, below the floor, above the ceiling.
        let observed: Vec<KiloHertz> = (0..platform.num_cores)
            .map(|c| match c % 3 {
                0 => KiloHertz(1_234_567),
                1 => KiloHertz(123),
                _ => KiloHertz(9_999_999),
            })
            .collect();
        daemon.resume_from(&observed);

        for (i, &f) in daemon.current_targets().iter().enumerate() {
            assert!(
                platform.grid.contains(f),
                "{policy:?}: app {i} resumed to off-grid {f:?}"
            );
        }

        // The daemon must keep stepping normally from the resumed state.
        let actions = drive_resumed(&mut daemon, &platform, 3.0);
        assert!(!actions.is_empty());
    }
}

/// Like [`drive`] but without re-running `initial()` (the daemon already
/// resumed); just advances a fresh chip under the daemon's control.
fn drive_resumed(daemon: &mut Daemon, platform: &PlatformSpec, seconds: f64) -> Vec<ControlAction> {
    let mut chip = Chip::new(platform.clone());
    let mut sampler = Sampler::new(&chip);
    let dt = Seconds(0.002);
    let mut actions = Vec::new();
    let mut next_control = 1.0;
    let mut t = 0.0;
    while t < seconds {
        for core in 0..platform.num_cores.min(4) {
            chip.set_load(core, pap_simcpu::power::LoadDescriptor::nominal())
                .unwrap();
        }
        chip.tick(dt);
        t += dt.value();
        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).expect("valid freqs");
                actions.push(action);
            }
        }
    }
    actions
}

#[test]
fn observer_is_strictly_off_path_for_every_policy() {
    for (policy, platform) in policy_platforms() {
        let config = DaemonConfig::new(policy, Watts(40.0), four_apps(&platform));

        let mut plain = Daemon::new(config.clone(), &platform).expect("valid config");
        let baseline = drive(&mut plain, &platform, 30.0);

        let mut observed = Daemon::new(config, &platform).expect("valid config");
        observed.attach_observer(DecisionTrace::with_metrics(Arc::new(ControlMetrics::new())));
        let traced = drive(&mut observed, &platform, 30.0);

        assert_eq!(
            baseline, traced,
            "{policy:?}: attaching an observer changed the commanded actions"
        );
        let trace = observed.take_observer().expect("observer attached");
        assert_eq!(
            trace.len(),
            traced.len(),
            "{policy:?}: one record per control interval"
        );
        let metrics = trace.metrics().expect("metrics attached");
        assert_eq!(metrics.decisions.get(), traced.len() as u64);
    }
}

#[test]
fn resilience_ladder_transitions_are_recorded() {
    let mut platform = PlatformSpec::ryzen();
    platform.shared_pstate_slots = None;
    let apps = vec![
        AppSpec::new("a", 0).with_shares(70).with_baseline_ips(2e9),
        AppSpec::new("b", 1).with_shares(30).with_baseline_ips(2e9),
    ];
    let config = DaemonConfig::new(PolicyKind::PowerShares, Watts(30.0), apps);
    let rcfg = ResilienceConfig::default();
    let mut daemon = ResilientDaemon::new(config, &platform, rcfg).expect("valid config");
    daemon.attach_observer(DecisionTrace::new());

    let obs = |t: f64, core0_power: Option<f64>| Observation {
        time: Seconds(t),
        interval: Seconds(1.0),
        package_power: Some(Watts(25.0)),
        cores: (0..platform.num_cores)
            .map(|c| CoreObservation {
                rates: Some(CoreRates {
                    active_freq: KiloHertz::from_mhz(2000),
                    c0_residency: 1.0,
                    ips: 1e9,
                }),
                power: if c == 0 {
                    core0_power.map(Watts)
                } else {
                    Some(Watts(3.0))
                },
                requested: None,
            })
            .collect(),
        retries: Vec::new(),
    };

    let mut t = 0.0;
    for _ in 0..3 {
        t += 1.0;
        daemon.step(&obs(t, Some(3.0)));
    }
    assert_eq!(daemon.level(), DegradationLevel::Nominal);
    // Core 0's power sensor goes dark: demote_after = 3 consecutive
    // failures demote power shares to frequency shares.
    for _ in 0..rcfg.demote_after {
        t += 1.0;
        daemon.step(&obs(t, None));
    }
    assert_eq!(daemon.level(), DegradationLevel::FrequencyOnly);

    let trace = daemon.take_observer().expect("observer attached");
    let transition = trace
        .records()
        .iter()
        .flat_map(|r| &r.events)
        .find_map(|e| match e {
            DecisionEvent::LadderTransition { from, to, .. } => Some((*from, *to)),
            _ => None,
        })
        .expect("demotion must be traced");
    assert_eq!(transition, ("nominal", "freq-only"));

    // Records carry the layer and ladder level.
    let last = trace.records().last().unwrap();
    assert_eq!(last.source, "resilience");
    assert_eq!(last.level, Some("freq-only"));
    assert_eq!(last.policy, "freq-shares", "fallback policy is reported");
}

#[test]
fn cluster_records_identical_serial_and_parallel() {
    use clusterd::admission::{AppRequest, DemandClass};
    use clusterd::cluster::{Cluster, ClusterConfig};
    use clusterd::engine::run_parallel;

    let build = || {
        let mut cfg = ClusterConfig::new(3, PolicyKind::FrequencyShares, Watts(150.0));
        cfg.rebalance_every = 2;
        let mut c = Cluster::new(cfg).unwrap();
        for i in 0..9 {
            let demand = [
                DemandClass::Heavy,
                DemandClass::Moderate,
                DemandClass::Light,
            ][i % 3];
            c.admit(&AppRequest::new(
                format!("app{i}"),
                20 + 10 * (i as u32 % 4),
                demand,
            ))
            .unwrap();
        }
        c.attach_observer(DecisionTrace::with_metrics(Arc::new(ControlMetrics::new())));
        c
    };

    let mut serial = build();
    let mut parallel = build();
    serial.run(8);
    run_parallel(&mut parallel, 8);

    let s = serial.take_observer().expect("observer attached");
    let p = parallel.take_observer().expect("observer attached");
    assert_eq!(s.len(), 4, "one record per rebalance round");
    assert_eq!(s.len(), p.len());
    for (sr, pr) in s.records().iter().zip(p.records()) {
        // Latency is wall-clock and legitimately differs; every decision
        // field must not.
        assert_eq!(sr.time, pr.time);
        assert_eq!(sr.source, "cluster");
        assert_eq!(sr.budget, pr.budget);
        assert_eq!(sr.measured, pr.measured);
        assert_eq!(sr.model_confident, pr.model_confident);
        assert_eq!(sr.events, pr.events);
    }
    // The metrics registry aggregates the same rounds.
    let metrics = s.metrics().expect("metrics attached");
    assert_eq!(metrics.rebalances.get(), 4);
}

#[test]
fn jsonl_sink_emits_one_parseable_line_per_record() {
    let platform = PlatformSpec::skylake();
    let config = DaemonConfig::new(
        PolicyKind::FrequencyShares,
        Watts(40.0),
        four_apps(&platform),
    );
    let mut daemon = Daemon::new(config, &platform).expect("valid config");
    daemon.attach_observer(DecisionTrace::new());
    drive(&mut daemon, &platform, 10.0);

    let trace = daemon.take_observer().expect("observer attached");
    let jsonl = trace.to_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), trace.len());
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"source\":\"daemon\""));
        assert!(line.contains("\"policy\":\"freq-shares\""));
        assert!(line.contains("\"apps\":["));
    }
}
