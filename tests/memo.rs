//! Bit-identity proof for decision memoization (DESIGN.md §16).
//!
//! `DecisionMemo` at ε = 0 must be invisible: every control action a
//! memoizing daemon emits must equal — to the bit — what a daemon with
//! memoization disabled emits, for all six policy scenarios under both
//! translation models. Two complementary proofs:
//!
//! 1. replaying the memoizing daemon against the **same golden fixtures**
//!    `hotpath.rs` records for the non-memoized controller;
//! 2. twin-daemon lockstep over a telemetry stream that *converges*, so
//!    the memo actually fires (the golden stream changes every interval,
//!    which exercises the all-miss path only).
//!
//! The ε > 0 drift bound lives in `proptests.rs`.

mod common;

use common::*;
use pap_model::TranslationKind;
use pap_simcpu::units::Watts;
use pap_telemetry::sampler::Sample;
use powerd::config::{DaemonConfig, MemoMode, PolicyKind};
use powerd::daemon::Daemon;

fn daemon_with(
    policy: PolicyKind,
    platform: &pap_simcpu::platform::PlatformSpec,
    apps: &[powerd::config::AppSpec],
    translation: TranslationKind,
    memo: MemoMode,
) -> Daemon {
    let mut config = DaemonConfig::new(policy, Watts(45.0), apps.to_vec());
    config.translation = translation;
    config.memo = memo;
    Daemon::new(config, platform).expect("valid memo test config")
}

/// A stream that varies for `vary` intervals, then repeats one settled
/// sample whose package power sits exactly on the limit (inside the
/// deadband, so every controller holds): the converged-fleet shape the
/// memo is built for. Freezing at an arbitrary off-limit power instead
/// can leave bang-bang controllers in a period-2 limit cycle, which a
/// depth-1 memo correctly never replays (no state fixpoint).
fn converging_stream(
    platform: &pap_simcpu::platform::PlatformSpec,
    apps: &[powerd::config::AppSpec],
    vary: usize,
    tail: usize,
) -> Vec<Sample> {
    let limit = Watts(45.0);
    (0..vary + tail)
        .map(|i| {
            let mut s = synth_sample(i.min(vary), platform, apps, limit);
            if i >= vary {
                s.package_power = limit;
            }
            s
        })
        .collect()
}

#[test]
fn memo_exact_replays_the_golden_stream() {
    for translation in [TranslationKind::Naive, TranslationKind::Online] {
        for (name, policy, platform, apps) in policy_scenarios() {
            let mut d = daemon_with(policy, &platform, &apps, translation, MemoMode::exact());
            let mut out = String::new();
            fmt_action(0, &d.initial(), &mut out);
            for i in 0..STEPS {
                let s = synth_sample(i, &platform, &apps, Watts(45.0));
                fmt_action(i + 1, &d.step(&s), &mut out);
            }
            let suffix = match translation {
                TranslationKind::Naive => "naive",
                TranslationKind::Online => "online",
            };
            check_golden(&format!("{name}_{suffix}"), &out);
        }
    }
}

#[test]
fn memo_exact_is_bit_identical_in_lockstep() {
    for translation in [TranslationKind::Naive, TranslationKind::Online] {
        for (name, policy, platform, apps) in policy_scenarios() {
            let mut plain = daemon_with(policy, &platform, &apps, translation, MemoMode::Off);
            let mut memod = daemon_with(policy, &platform, &apps, translation, MemoMode::exact());
            assert_eq!(plain.initial(), memod.initial());
            for (i, s) in converging_stream(&platform, &apps, 60, 140)
                .iter()
                .enumerate()
            {
                let a = plain.step(s);
                let b = memod.step(s);
                assert_eq!(
                    a, b,
                    "{name}/{translation:?}: action diverged at interval {i}"
                );
            }
            assert!(
                plain.memo_stats().is_none(),
                "MemoMode::Off must not build a memo"
            );
        }
    }
}

#[test]
fn memo_hits_once_telemetry_converges() {
    // Under naive translation nothing outside the fingerprint moves, so
    // a converged stream must produce a long run of hits; the varying
    // prefix must produce only misses (exact mode sees every bit).
    for (name, policy, platform, apps) in policy_scenarios() {
        let mut d = daemon_with(
            policy,
            &platform,
            &apps,
            TranslationKind::Naive,
            MemoMode::exact(),
        );
        d.initial();
        for s in converging_stream(&platform, &apps, 60, 140) {
            d.step(&s);
        }
        let stats = d.memo_stats().expect("memo is on");
        assert_eq!(stats.hits + stats.misses, 200, "{name}: every step counted");
        // Settling time differs per policy (PowerShares redistributes
        // for tens of intervals before its targets stop moving); what
        // matters is a long terminal hit run once it has.
        assert!(
            stats.hits >= 50,
            "{name}: converged tail should hit at length, got {stats:?}"
        );
        assert!(
            stats.misses >= 60,
            "{name}: the varying prefix must miss every interval, got {stats:?}"
        );
    }
}

#[test]
fn memo_under_online_learning_never_replays_stale_fits() {
    // While the online model is learning, its generation counter bumps
    // every observed interval, so the memo must miss every time — a hit
    // would replay a decision made under an older fit.
    for (name, policy, platform, apps) in policy_scenarios() {
        let mut d = daemon_with(
            policy,
            &platform,
            &apps,
            TranslationKind::Online,
            MemoMode::exact(),
        );
        d.initial();
        for s in converging_stream(&platform, &apps, 30, 70) {
            d.step(&s);
        }
        let stats = d.memo_stats().expect("memo is on");
        assert_eq!(
            stats.hits, 0,
            "{name}: learning moves the model every interval; hits would be stale"
        );
    }
}

#[test]
fn set_memo_toggles_and_resets() {
    let (_, policy, platform, apps) = policy_scenarios().remove(1);
    let mut d = daemon_with(
        policy,
        &platform,
        &apps,
        TranslationKind::Naive,
        MemoMode::Off,
    );
    assert!(d.memo_stats().is_none());
    d.set_memo(MemoMode::exact());
    d.initial();
    for s in converging_stream(&platform, &apps, 5, 20) {
        d.step(&s);
    }
    assert!(d.memo_stats().expect("enabled").hits > 0);
    d.set_memo(MemoMode::Off);
    assert!(d.memo_stats().is_none(), "disabling drops the memo");
}
