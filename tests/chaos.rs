//! Chaos regression for the `ChipLike` seam: the same fault schedule,
//! workload mix and controller stack must produce **identical verdicts**
//! whether the ground truth under the fault layer is the scalar
//! per-core `Chip` or the batch-stepped `WideChip` (the default every
//! harness now runs on). Anything less would mean the fleet fast path
//! changed what the chaos suite certifies.

use pap_faults::chaos_platform;
use pap_faults::plan::{ChaosProfile, FaultPlan};
use pap_faults::runner::{ChaosExperiment, ChaosResult};
use pap_simcpu::chip::Chip;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_workloads::spec;
use powerd::config::PolicyKind;

fn experiment(seed: u64, resilience: bool) -> ChaosExperiment {
    let platform = chaos_platform();
    let plan = FaultPlan::chaos(
        seed,
        &ChaosProfile::default(),
        Seconds(40.0),
        platform.num_cores,
    );
    ChaosExperiment::new(platform, PolicyKind::PowerShares, Watts(30.0))
        .app("cactus", spec::CACTUS_BSSN, 70)
        .app("gcc", spec::GCC, 50)
        .app("leela", spec::LEELA, 30)
        .duration(Seconds(40.0))
        .plan(plan)
        .seed(seed)
        .resilience(resilience)
}

fn assert_same_verdict(a: &ChaosResult, b: &ChaosResult) {
    assert_eq!(a.intervals, b.intervals);
    assert_eq!(a.violations, b.violations, "violation counts diverged");
    assert_eq!(a.sustained_violations, b.sustained_violations);
    assert_eq!(a.longest_violation_run, b.longest_violation_run);
    assert_eq!(
        a.worst_over_watts.to_bits(),
        b.worst_over_watts.to_bits(),
        "worst overshoot diverged"
    );
    assert_eq!(
        a.mean_power.value().to_bits(),
        b.mean_power.value().to_bits(),
        "ground-truth mean power diverged"
    );
    assert_eq!(a.jain.to_bits(), b.jain.to_bits(), "fairness diverged");
    assert_eq!(a.starved, b.starved);
    assert_eq!(
        format!("{:?}", a.transitions),
        format!("{:?}", b.transitions),
        "ladder transitions diverged"
    );
    assert_eq!(a.injected, b.injected, "injection accounting diverged");
    assert_eq!(a.apps.len(), b.apps.len());
    for (x, y) in a.apps.iter().zip(&b.apps) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.retired, y.retired, "retired instructions diverged");
        assert_eq!(x.normalized.to_bits(), y.normalized.to_bits());
    }
    assert_eq!(a.interval_powers.len(), b.interval_powers.len());
    for (i, (x, y)) in a.interval_powers.iter().zip(&b.interval_powers).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "interval {i} ground-truth power diverged"
        );
    }
}

#[test]
fn resilient_verdicts_identical_on_chip_and_widechip() {
    for seed in [7, 1009] {
        let scalar = experiment(seed, true).run_on::<Chip>().unwrap();
        let wide = experiment(seed, true).run_on::<WideChip>().unwrap();
        assert!(
            scalar.injected != Default::default(),
            "plan injected faults"
        );
        assert_same_verdict(&scalar, &wide);
    }
}

#[test]
fn baseline_verdicts_identical_on_chip_and_widechip() {
    let scalar = experiment(42, false).run_on::<Chip>().unwrap();
    let wide = experiment(42, false).run_on::<WideChip>().unwrap();
    assert_same_verdict(&scalar, &wide);
}

#[test]
fn default_run_uses_the_widechip_fast_path() {
    // `run()` must stay observationally equal to the explicit WideChip
    // path — it is the same code, but the delegation is part of the API
    // contract and a regression here would silently fork the suites.
    let default = experiment(7, true).run().unwrap();
    let wide = experiment(7, true).run_on::<WideChip>().unwrap();
    assert_same_verdict(&default, &wide);
}
