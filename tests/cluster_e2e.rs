//! End-to-end tests for `clusterd`: dynamic admission with spill and
//! typed overload rejection, hierarchical budget arbitration beating a
//! static RAPL-per-node split on share fairness, and bit-identical
//! serial/parallel execution.

use clusterd::admission::{AppRequest, DemandClass};
use clusterd::cluster::{Cluster, ClusterConfig, ClusterError};
use clusterd::engine::run_parallel;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::stats::jain;
use powerd::config::PolicyKind;

/// The mixed tenant population every test replays: heterogeneous
/// shares so share-blind arbitration is visibly unfair.
fn tenants(n: usize) -> Vec<AppRequest> {
    (0..n)
        .map(|i| {
            let shares = [20, 60, 180][i % 3];
            let demand = if i % 2 == 0 {
                DemandClass::Moderate
            } else {
                DemandClass::Light
            };
            AppRequest::new(format!("tenant{i}"), shares, demand)
        })
        .collect()
}

fn build(policy: PolicyKind, rebalance_every: u64, apps: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(4, policy, Watts(170.0));
    cfg.rebalance_every = rebalance_every;
    let mut c = Cluster::new(cfg).unwrap();
    for req in tenants(apps) {
        c.admit(&req).unwrap();
    }
    c
}

/// Per-app performance normalized by baseline and shares: equal values
/// mean everyone got power exactly proportional to what they paid for.
fn share_normalized_perf(c: &Cluster) -> Vec<f64> {
    let elapsed = c.elapsed();
    c.reports()
        .iter()
        .map(|r| r.normalized_perf(elapsed) / r.shares as f64)
        .collect()
}

#[test]
fn hierarchical_beats_static_rapl_on_share_fairness() {
    let mut hier = build(PolicyKind::FrequencyShares, 4, 12);
    hier.run(10);
    let jain_hier = jain(&share_normalized_perf(&hier));

    let mut rapl = build(PolicyKind::RaplNative, 0, 12);
    rapl.run(10);
    let jain_rapl = jain(&share_normalized_perf(&rapl));

    assert!(
        jain_hier > jain_rapl + 0.05,
        "hierarchical shares must be fairer than RAPL-per-node: {jain_hier:.3} vs {jain_rapl:.3}"
    );
    // shares proportion *frequency*, and perf is sublinear in frequency,
    // so perfect equality is out of reach — but fairness should be high
    assert!(
        jain_hier > 0.75,
        "shares roughly equalize paid-for perf, got {jain_hier:.3}"
    );
}

#[test]
fn parallel_engine_is_bit_identical_to_serial() {
    let mut serial = build(PolicyKind::FrequencyShares, 2, 10);
    let mut parallel = build(PolicyKind::FrequencyShares, 2, 10);
    serial.run(9);
    run_parallel(&mut parallel, 9);

    assert_eq!(
        serial.reports(),
        parallel.reports(),
        "per-app state diverged"
    );
    assert_eq!(
        serial.node_caps(),
        parallel.node_caps(),
        "cap schedule diverged"
    );
    let (s, p) = (
        serial.last_rollup().unwrap(),
        parallel.last_rollup().unwrap(),
    );
    assert_eq!(s.total_power(), p.total_power());
    assert_eq!(s.total_ips(), p.total_ips());
    assert_eq!(s.power_balance(), p.power_balance());
}

#[test]
fn admission_spills_and_overload_is_typed() {
    let mut c = build(PolicyKind::FrequencyShares, 4, 0);
    // fill all 4 nodes x 10 cores
    let mut nodes_used = [false; 4];
    for req in tenants(40) {
        let p = c.admit(&req).unwrap();
        nodes_used[p.node] = true;
    }
    assert!(
        nodes_used.iter().all(|&u| u),
        "placement spreads over every node"
    );
    assert_eq!(c.free_cores(), 0);

    let err = c
        .admit(&AppRequest::new("late", 50, DemandClass::Light))
        .unwrap_err();
    match err {
        ClusterError::ClusterFull { app, cores } => {
            assert_eq!(app, "late");
            assert_eq!(cores, 40);
        }
        other => panic!("expected ClusterFull, got {other}"),
    }

    // a departure frees capacity and its budget claim
    c.depart("tenant7").unwrap();
    assert_eq!(c.free_cores(), 1);
    c.admit(&AppRequest::new("late", 50, DemandClass::Light))
        .unwrap();
    c.run(4);
    let total: f64 = c.node_caps().iter().map(|w| w.value()).sum();
    assert!(
        total <= 170.0 + 1e-6,
        "caps conserve the global budget, got {total}"
    );
}

#[test]
fn departures_return_budget_to_busy_nodes() {
    let mut cfg = ClusterConfig::new(2, PolicyKind::FrequencyShares, Watts(100.0));
    cfg.rebalance_every = 2;
    cfg.control_interval = Seconds(0.5);
    let mut c = Cluster::new(cfg).unwrap();
    // node 0 saturated with scalable high-demand work, node 1 lightly loaded
    for req in tenants(10) {
        c.admit(&req).unwrap();
    }
    c.run(8);
    let while_shared = c.node_caps();
    // empty node 1 entirely: its claim should collapse toward the floor
    for i in (0..10).filter(|i| i % 2 == 1) {
        let name = format!("tenant{i}");
        if c.reports().iter().any(|r| r.name == name && r.node == 1) {
            c.depart(&name).unwrap();
        }
    }
    c.run(8);
    let after = c.node_caps();
    assert!(
        after[1].value() <= while_shared[1].value() + 1e-6,
        "emptied node's claim collapses: {while_shared:?} -> {after:?}"
    );
    assert!(
        after[0].value() > after[1].value(),
        "the busy node holds the budget: {after:?}"
    );
}
