//! End-to-end: the full degradation ladder under a scripted fault plan.
//!
//! A power-shares daemon on the per-core-DVFS server platform is taken
//! through both ladder legs by two scripted telemetry outages:
//!
//! * per-core power dark on one core during [10 s, 25 s) — the daemon
//!   must demote to frequency shares (after `demote_after` consecutive
//!   failures) and promote back (after `promote_after` healthy
//!   intervals), not flap;
//! * package power dark during [40 s, 55 s) — the daemon must fall to
//!   the blind uniform cap and recover to nominal afterwards.
//!
//! The run is scored on the inner chip's ground-truth power: the
//! package budget must hold (no sustained violation) through every
//! transition, including the blind window.

use pap_faults::chaos_platform;
use pap_faults::plan::{FaultKind, FaultPlan};
use pap_faults::runner::ChaosExperiment;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::PolicyKind;
use powerd::resilience::DegradationLevel;

#[test]
fn scripted_outages_walk_the_full_ladder_with_hysteresis() {
    let plan = FaultPlan::new()
        .with(
            FaultKind::CoreEnergyReadError { core: 0 },
            Seconds(10.0),
            Some(Seconds(15.0)),
        )
        .with(
            FaultKind::PkgEnergyReadError,
            Seconds(40.0),
            Some(Seconds(15.0)),
        );
    let r = ChaosExperiment::new(chaos_platform(), PolicyKind::PowerShares, Watts(30.0))
        .app("cactus", spec::CACTUS_BSSN, 70)
        .app("lbm", spec::LBM, 50)
        .app("gcc", spec::GCC, 50)
        .app("leela", spec::LEELA, 30)
        .duration(Seconds(75.0))
        .plan(plan)
        .seed(7)
        .run()
        .unwrap();

    // Exactly four moves: down and back up each leg, no flapping. With
    // demote_after = 3 the demotions land 3 intervals into each outage;
    // with promote_after = 5 the promotions land 5 intervals after it
    // ends (the first post-outage read derives power over the dark span,
    // so it already counts as healthy).
    let seq: Vec<(DegradationLevel, DegradationLevel)> =
        r.transitions.iter().map(|e| (e.from, e.to)).collect();
    assert_eq!(
        seq,
        vec![
            (DegradationLevel::Nominal, DegradationLevel::FrequencyOnly),
            (DegradationLevel::FrequencyOnly, DegradationLevel::Nominal),
            (DegradationLevel::Nominal, DegradationLevel::UniformCap),
            (DegradationLevel::UniformCap, DegradationLevel::Nominal),
        ],
        "full ladder, one clean round trip per leg: {:?}",
        r.transitions
    );
    let times: Vec<f64> = r.transitions.iter().map(|e| e.time.value()).collect();
    assert!(
        (12.0..=14.0).contains(&times[0]),
        "demotion ~3 intervals into the core outage, got {times:?}"
    );
    assert!(
        (29.0..=32.0).contains(&times[1]),
        "promotion ~5 healthy intervals after it ends, got {times:?}"
    );
    assert!(
        (42.0..=44.0).contains(&times[2]),
        "uniform cap ~3 intervals into the package outage, got {times:?}"
    );
    assert!(
        (59.0..=62.0).contains(&times[3]),
        "recovery ~5 healthy intervals after it ends, got {times:?}"
    );

    // The budget holds through every leg, including the blind window.
    assert_eq!(
        r.sustained_violations, 0,
        "cap must hold through the whole ladder: {r:?}"
    );
    // Fairness survives degradation (the policy substitutions keep
    // proportionality; nobody is starved).
    assert_eq!(r.starved, 0);
    assert!(
        r.jain > 0.6,
        "graceful fairness degradation, jain {}",
        r.jain
    );
}

#[test]
fn flapping_sensor_does_not_flap_the_ladder() {
    // A sensor that fails 2-in-every-5 intervals never reaches 3
    // consecutive failures, so hysteresis keeps the daemon nominal.
    let mut plan = FaultPlan::new();
    let mut t = 10.0;
    while t < 50.0 {
        plan.push(
            FaultKind::CoreEnergyReadError { core: 0 },
            Seconds(t),
            Some(Seconds(2.0)),
        );
        t += 5.0;
    }
    let r = ChaosExperiment::new(chaos_platform(), PolicyKind::PowerShares, Watts(30.0))
        .app("cactus", spec::CACTUS_BSSN, 70)
        .app("leela", spec::LEELA, 30)
        .duration(Seconds(60.0))
        .plan(plan)
        .seed(7)
        .run()
        .unwrap();
    assert!(
        r.transitions.is_empty(),
        "sub-threshold flapping must not move the ladder: {:?}",
        r.transitions
    );
    assert_eq!(r.sustained_violations, 0);
}

#[test]
fn online_model_holds_the_cap_under_chaos() {
    // The online learned translation must not make chaos worse: with a
    // counter outage (which poisons backfilled samples) and a package
    // outage (which blinds the controller), the health gate freezes
    // learning through both windows and the budget holds exactly as it
    // does under the naive translation.
    use powerd::config::TranslationKind;
    let plan = FaultPlan::new()
        .with(
            FaultKind::CounterReadError { core: 0 },
            Seconds(15.0),
            Some(Seconds(10.0)),
        )
        .with(
            FaultKind::PkgEnergyReadError,
            Seconds(40.0),
            Some(Seconds(10.0)),
        );
    let r = ChaosExperiment::new(chaos_platform(), PolicyKind::FrequencyShares, Watts(30.0))
        .app("cactus", spec::CACTUS_BSSN, 70)
        .app("lbm", spec::LBM, 50)
        .app("leela", spec::LEELA, 30)
        .duration(Seconds(70.0))
        .plan(plan)
        .translation(TranslationKind::Online)
        .seed(11)
        .run()
        .unwrap();
    assert_eq!(r.sustained_violations, 0, "{r:?}");
    assert_eq!(r.starved, 0);
    assert!(r.jain > 0.6, "jain {}", r.jain);
}
