//! End-to-end over the root `linux-hw` feature: the daemon drives a
//! [`pap_hw::LinuxBackend`] against a mock AMD sysfs tree while an
//! attached [`EnergyLedger`] prices the consumed energy. This is the
//! root-workspace proof that the feature forwarding
//! (`linux-hw = ["dep:pap-hw", "pap-tenants/linux-hw"]`) wires the real
//! hardware stack into the same control loop the simulator uses.
#![cfg(feature = "linux-hw")]

use pap_hw::cpufreq::WriteMode;
use pap_hw::mock::MockSysfs;
use pap_hw::{BackendClock, BackendOptions, LinuxBackend};
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::energy::{EnergyLedger, Tariff};
use powerd::config::{AppSpec, DaemonConfig, PolicyKind};
use powerd::daemon::Daemon;
use powerd::hw::{run_daemon, PowerBackend};

#[test]
fn daemon_prices_energy_on_an_amd_mock_host() {
    let mock = MockSysfs::amd(2);
    let mut backend = LinuxBackend::probe(
        mock.root(),
        BackendOptions {
            dry_run: false,
            write_mode: WriteMode::Auto,
            clock: BackendClock::manual(),
            no_offline: false,
        },
    )
    .expect("probe amd fixture");

    let apps = vec![
        AppSpec::new("web", 0)
            .with_shares(70)
            .with_baseline_ips(3e9),
        AppSpec::new("bg", 1).with_shares(30).with_baseline_ips(3e9),
    ];
    let mut daemon = Daemon::new(
        DaemonConfig::new(PolicyKind::FrequencyShares, Watts(20.0), apps),
        backend.platform(),
    )
    .expect("valid daemon");
    daemon.attach_energy(EnergyLedger::with_tariff(Tariff::new(0.25)));

    // The "host" burns a flat 10 W package (socket energy counter) and
    // 4 W per core, charged each tick.
    let tick = Seconds(0.1);
    run_daemon(&mut backend, &mut daemon, Seconds(20.0), tick, |_, _| {
        mock.add_socket_energy_uj((10.0 * tick.value() * 1e6) as u64);
        for c in 0..2 {
            mock.add_core_energy_uj(c, (4.0 * tick.value() * 1e6) as u64);
        }
    })
    .expect("loop completes");

    let ledger = daemon.take_energy().expect("ledger attached");
    // ~10 W for ~19 s of sampled intervals ≈ 0.05 Wh at the package.
    let pkg_wh = ledger.package_wh();
    assert!(
        (0.03..=0.06).contains(&pkg_wh),
        "package energy {pkg_wh} Wh out of range"
    );
    // Every app core carries a measured 4 W meter, so attribution is
    // measured (4 W each), not an activity share of the 10 W package.
    for name in ["web", "bg"] {
        let wh = ledger.wh(name).expect("account exists");
        let watts = wh * 3600.0 / ledger.elapsed_s();
        assert!(
            (watts - 4.0).abs() < 0.5,
            "{name}: measured attribution expected ~4 W, got {watts:.2}"
        );
    }
    let cost = ledger.package_cost_usd().expect("tariff set");
    assert!((cost - pkg_wh / 1000.0 * 0.25).abs() < 1e-12);

    // The daemon's writes landed in the mock tree (schedutil host: the
    // backend clamps scaling_max_freq rather than using setspeed).
    for c in 0..2 {
        let f = mock
            .root()
            .read_u64(&format!(
                "sys/devices/system/cpu/cpu{c}/cpufreq/scaling_max_freq"
            ))
            .expect("clamp written");
        assert!((800_000..=3_000_000).contains(&f), "on-grid clamp {f}");
    }
}
