#![allow(clippy::drop_non_drop)] // drop() ends MsrBus's &mut Chip borrows

//! Hardware-interface surface tests: the same experiments driven through
//! the emulated MSR bus and sysfs tree, proving control software written
//! against those interfaces behaves identically to direct chip access.

use per_app_power::prelude::*;
use per_app_power::simcpu::msr::{addr, MsrBus};
use per_app_power::simcpu::sysfs::SysfsTree;
use per_app_power::workloads::spec;

/// A miniature userspace-governor control loop written purely against
/// sysfs paths, like the paper's tooling (§2.2 "userspace governor").
#[test]
fn sysfs_driven_throttling_loop() {
    let mut chip = Chip::new(PlatformSpec::skylake());
    let mut app = RunningApp::looping(spec::CACTUS_BSSN);
    // Set the governor and a frequency exactly as a shell script would.
    {
        let mut fs = SysfsTree::new(&mut chip);
        fs.write(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor",
            "userspace",
        )
        .unwrap();
        fs.write(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed",
            "2200000",
        )
        .unwrap();
    }
    // Run and then read energy through powercap to compute power.
    let read_uj = |chip: &mut Chip| -> u64 {
        let fs = SysfsTree::new(chip);
        fs.read("/sys/class/powercap/intel-rapl:0/energy_uj")
            .unwrap()
            .parse()
            .unwrap()
    };
    let e0 = read_uj(&mut chip);
    for _ in 0..1000 {
        let f = chip.effective_freq(0);
        let out = app.advance(Seconds(0.001), f);
        chip.set_load(0, out.load).unwrap();
        chip.tick(Seconds(0.001));
    }
    let e1 = read_uj(&mut chip);
    let watts = (e1 - e0) as f64 / 1e6 / 1.0;
    assert!(
        (14.0..28.0).contains(&watts),
        "sysfs-derived power {watts:.1} W for one busy core"
    );
    // Lower the speed through sysfs; power must drop.
    {
        let mut fs = SysfsTree::new(&mut chip);
        fs.write(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed",
            "800000",
        )
        .unwrap();
    }
    let e2 = read_uj(&mut chip);
    for _ in 0..1000 {
        let f = chip.effective_freq(0);
        let out = app.advance(Seconds(0.001), f);
        chip.set_load(0, out.load).unwrap();
        chip.tick(Seconds(0.001));
    }
    let e3 = read_uj(&mut chip);
    let watts_low = (e3 - e2) as f64 / 1e6;
    // The package floor (uncore) does not scale with core frequency, so
    // compare against the idle floor rather than a ratio.
    assert!(
        watts_low < watts - 4.0,
        "{watts_low:.1} W vs {watts:.1} W: 2.2 GHz -> 0.8 GHz must shed core power"
    );
}

/// A RAPL limit programmed through the MSR encoding behaves like one set
/// through the chip API, and the APERF/MPERF MSRs report the throttled
/// frequency.
#[test]
fn msr_driven_rapl_limit() {
    let mut chip = Chip::new(PlatformSpec::skylake());
    for c in 0..10 {
        chip.set_requested_freq(c, KiloHertz::from_mhz(2400))
            .unwrap();
    }
    {
        let mut bus = MsrBus::new(&mut chip);
        // 40 W in 1/8 W units with the enable bit.
        bus.write(0, addr::PKG_POWER_LIMIT, (40 * 8) | (1 << 15))
            .unwrap();
    }
    let mut apps: Vec<RunningApp> = (0..10).map(|_| RunningApp::looping(spec::CAM4)).collect();
    let (mut aperf0, mut mperf0) = (0u64, 0u64);
    for tick in 0..6000 {
        for (c, app) in apps.iter_mut().enumerate() {
            let f = chip.effective_freq(c);
            let out = app.advance(Seconds(0.001), f);
            chip.set_load(c, out.load).unwrap();
        }
        chip.tick(Seconds(0.001));
        if tick == 4999 {
            let bus = MsrBus::new(&mut chip);
            aperf0 = bus.read(0, addr::APERF).unwrap();
            mperf0 = bus.read(0, addr::MPERF).unwrap();
        }
    }
    assert!((chip.package_power().value() - 40.0).abs() < 3.0);
    let bus = MsrBus::new(&mut chip);
    let da = bus.read(0, addr::APERF).unwrap() - aperf0;
    let dm = bus.read(0, addr::MPERF).unwrap() - mperf0;
    let active_mhz = da as f64 / dm as f64 * 2200.0;
    assert!(
        active_mhz < 1900.0,
        "MSR-visible active frequency {active_mhz:.0} MHz should show throttling"
    );
    drop(bus);
    // Energy flows through the Intel energy-status MSR too.
    let bus = MsrBus::new(&mut chip);
    assert!(bus.read(0, addr::PKG_ENERGY_STATUS).unwrap() > 0);
}

/// AMD-specific MSRs expose per-core energy on Ryzen.
#[test]
fn amd_core_energy_msrs() {
    let mut chip = Chip::new(PlatformSpec::ryzen());
    chip.set_load(0, per_app_power::simcpu::power::LoadDescriptor::nominal())
        .unwrap();
    chip.run_ticks(2000, Seconds(0.001));
    let bus = MsrBus::new(&mut chip);
    let busy = bus.read(0, addr::AMD_CORE_ENERGY).unwrap();
    let idle = bus.read(5, addr::AMD_CORE_ENERGY).unwrap();
    assert!(busy > idle * 10, "busy {busy} vs idle {idle}");
    // frequency request through the AMD P-state MSR in 25 MHz units
    drop(bus);
    let mut bus = MsrBus::new(&mut chip);
    bus.write(0, addr::AMD_PSTATE_CTL, 2125 / 25).unwrap();
    drop(bus);
    assert_eq!(chip.requested_freq(0), KiloHertz::from_mhz(2125));
}
