//! Daemon-level end-to-end tests: control actions stay valid for entire
//! runs, convergence holds across limits and platforms, and capability
//! mismatches are rejected up front.

use per_app_power::prelude::*;
use per_app_power::telemetry::sampler::Sampler;
use per_app_power::workloads::spec;
use powerd::config::{AppSpec, DaemonConfig};

/// Drive a daemon against a chip for `seconds`, checking every control
/// action against the platform's constraints. Returns the final package
/// power.
fn drive_checked(platform: PlatformSpec, config: DaemonConfig, seconds: f64) -> f64 {
    let mut chip = Chip::new(platform.clone());
    let mut daemon = Daemon::new(config.clone(), &platform).expect("valid daemon");
    let mut apps: Vec<(usize, RunningApp)> = config
        .apps
        .iter()
        .map(|a| {
            (
                a.core,
                RunningApp::looping(spec::by_name(&a.name).unwrap_or(spec::GCC)),
            )
        })
        .collect();

    let check_apply = |chip: &mut Chip, action: &ControlAction| {
        // Every frequency must be on the platform grid; Ryzen actions must
        // fit the shared slots (set_all_requested enforces both).
        chip.set_all_requested(&action.freqs)
            .expect("daemon action rejected by hardware");
        for (core, &p) in action.parked.iter().enumerate() {
            chip.set_forced_idle(core, p).unwrap();
        }
    };

    let action = daemon.initial();
    check_apply(&mut chip, &action);
    let mut parked = action.parked.clone();
    let mut sampler = Sampler::new(&chip);

    let dt = Seconds(0.002);
    let ticks = (seconds / dt.value()) as usize;
    let mut next_control = 1.0;
    let mut t = 0.0;
    for _ in 0..ticks {
        for (core, app) in apps.iter_mut() {
            if parked[*core] {
                continue;
            }
            let f = chip.effective_freq(*core);
            let out = app.advance(dt, f);
            chip.set_load(*core, out.load).unwrap();
            chip.add_instructions(*core, out.instructions).unwrap();
        }
        chip.tick(dt);
        t += dt.value();
        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                check_apply(&mut chip, &action);
                parked = action.parked.clone();
            }
        }
    }
    chip.package_power().value()
}

fn apps_for(platform: &PlatformSpec) -> Vec<AppSpec> {
    let names = ["cactusBSSN", "leela", "gcc", "omnetpp"];
    (0..platform.num_cores)
        .map(|i| {
            let profile = spec::by_name(names[i % names.len()]).unwrap();
            let standalone = platform.turbo.cap_for(1, profile.avx);
            AppSpec::new(profile.name, i)
                .with_priority(if i % 3 == 0 {
                    Priority::Low
                } else {
                    Priority::High
                })
                .with_shares(10 + 13 * i as u32)
                .with_baseline_ips(profile.ips(standalone))
        })
        .collect()
}

#[test]
fn skylake_all_policies_converge_with_valid_actions() {
    for policy in [
        PolicyKind::Priority,
        PolicyKind::FrequencyShares,
        PolicyKind::PerformanceShares,
        PolicyKind::RaplNative,
    ] {
        let platform = PlatformSpec::skylake();
        let mut cfg = DaemonConfig::new(policy, Watts(48.0), apps_for(&platform));
        cfg.floor_low_priority = false;
        // RaplNative relies on the hardware limiter, which drive_checked
        // does not program; it is covered by the runner tests instead.
        if policy == PolicyKind::RaplNative {
            continue;
        }
        let p = drive_checked(platform, cfg, 25.0);
        assert!(
            (p - 48.0).abs() < 6.0,
            "{}: final package power {p:.1} vs 48 W",
            policy.name()
        );
    }
}

#[test]
fn ryzen_all_policies_converge_with_valid_actions() {
    for policy in [
        PolicyKind::Priority,
        PolicyKind::FrequencyShares,
        PolicyKind::PerformanceShares,
        PolicyKind::PowerShares,
    ] {
        let platform = PlatformSpec::ryzen();
        let cfg = DaemonConfig::new(policy, Watts(45.0), apps_for(&platform));
        let p = drive_checked(platform, cfg, 25.0);
        assert!(
            (p - 45.0).abs() < 6.0,
            "{}: final package power {p:.1} vs 45 W",
            policy.name()
        );
    }
}

#[test]
fn extreme_share_ratios_do_not_break() {
    let platform = PlatformSpec::skylake();
    let apps = vec![
        AppSpec::new("cactusBSSN", 0)
            .with_shares(1)
            .with_baseline_ips(3e9),
        AppSpec::new("leela", 1)
            .with_shares(10_000)
            .with_baseline_ips(3e9),
    ];
    let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(30.0), apps);
    let p = drive_checked(platform, cfg, 15.0);
    assert!(p < 36.0, "package {p:.1} W under a 30 W limit");
}

#[test]
fn single_app_runs_at_speed_under_generous_limit() {
    let platform = PlatformSpec::skylake();
    let apps = vec![AppSpec::new("leela", 0)
        .with_shares(100)
        .with_baseline_ips(3e9)];
    let cfg = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(80.0), apps);
    let mut chip = Chip::new(platform.clone());
    let mut daemon = Daemon::new(cfg, &platform).unwrap();
    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).unwrap();
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).unwrap();
    }
    let mut app = RunningApp::looping(spec::LEELA);
    for _ in 0..2000 {
        let f = chip.effective_freq(0);
        let out = app.advance(Seconds(0.001), f);
        chip.set_load(0, out.load).unwrap();
        chip.tick(Seconds(0.001));
    }
    // one active core -> full single-core turbo
    assert_eq!(chip.effective_freq(0), KiloHertz::from_mhz(3000));
}

#[test]
fn capability_mismatches_rejected() {
    let sky = PlatformSpec::skylake();
    let ryz = PlatformSpec::ryzen();
    let apps = |n: usize| -> Vec<AppSpec> {
        (0..n)
            .map(|i| AppSpec::new(format!("a{i}"), i).with_baseline_ips(1e9))
            .collect()
    };
    assert!(Daemon::new(
        DaemonConfig::new(PolicyKind::PowerShares, Watts(40.0), apps(2)),
        &sky
    )
    .is_err());
    assert!(Daemon::new(
        DaemonConfig::new(PolicyKind::RaplNative, Watts(40.0), apps(2)),
        &ryz
    )
    .is_err());
    // over-subscribed core
    let mut bad = apps(2);
    bad[1].core = 0;
    assert!(Daemon::new(
        DaemonConfig::new(PolicyKind::FrequencyShares, Watts(40.0), bad),
        &sky
    )
    .is_err());
}
