//! End-to-end properties of the learned translation model: swapping
//! naive↔online mid-run — in either direction, at any interval, under
//! any policy — never produces a per-core frequency the chip cannot
//! program, and the chip itself accepts every action.

use per_app_power::prelude::*;
use per_app_power::telemetry::sampler::Sampler;
use per_app_power::workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority, TranslationKind};
use proptest::prelude::*;

/// Drive a daemon for `intervals` control intervals, swapping the
/// translation at the given interval indices, and assert every
/// commanded frequency stays inside the chip's P-state range.
fn drive_with_swaps(
    platform: PlatformSpec,
    policy: PolicyKind,
    limit: Watts,
    n_apps: usize,
    intervals: usize,
    swaps: &[usize],
) {
    let profiles = [spec::CACTUS_BSSN, spec::GCC, spec::LEELA, spec::LBM];
    let apps: Vec<AppSpec> = (0..n_apps)
        .map(|core| {
            let profile = profiles[core % profiles.len()];
            AppSpec::new(format!("{}{core}", profile.name), core)
                .with_priority(if core % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                })
                .with_shares(20 + 30 * core as u32)
                .with_baseline_ips(profile.ips(platform.grid.max()))
        })
        .collect();
    let config = DaemonConfig::new(policy, limit, apps);

    let mut chip = Chip::new(platform.clone());
    let mut daemon = Daemon::new(config, &platform).expect("valid daemon");
    let mut engines: Vec<RunningApp> = (0..n_apps)
        .map(|core| RunningApp::looping(profiles[core % profiles.len()]))
        .collect();

    let (f_min, f_max) = (platform.grid.min(), platform.grid.max());
    let check_apply = |chip: &mut Chip, action: &ControlAction| {
        for (core, &f) in action.freqs.iter().enumerate() {
            assert!(
                f >= f_min && f <= f_max,
                "core {core} commanded {f:?} outside the P-state range [{f_min:?}, {f_max:?}]"
            );
        }
        chip.set_all_requested(&action.freqs)
            .expect("chip rejected a daemon action");
        for (core, &p) in action.parked.iter().enumerate() {
            chip.set_forced_idle(core, p).unwrap();
        }
    };

    let action = daemon.initial();
    check_apply(&mut chip, &action);
    let mut parked = action.parked.clone();
    let mut sampler = Sampler::new(&chip);

    let dt = Seconds(0.002);
    let ticks_per_interval = (1.0 / dt.value()) as usize;
    for interval in 0..intervals {
        if swaps.contains(&interval) {
            let next = match daemon.translation() {
                TranslationKind::Naive => TranslationKind::Online,
                TranslationKind::Online => TranslationKind::Naive,
            };
            daemon.set_translation(next);
        }
        for _ in 0..ticks_per_interval {
            for (core, app) in engines.iter_mut().enumerate() {
                if parked[core] {
                    continue;
                }
                let f = chip.effective_freq(core);
                let out = app.advance(dt, f);
                chip.set_load(core, out.load).unwrap();
                chip.add_instructions(core, out.instructions).unwrap();
            }
            chip.tick(dt);
        }
        let sample = sampler.sample(&chip).expect("one interval elapsed");
        let action = daemon.step(&sample);
        check_apply(&mut chip, &action);
        parked = action.parked.clone();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Swapping the translation mid-run under any package-power policy
    /// on Skylake keeps every commanded frequency on the chip's grid.
    #[test]
    fn midrun_swap_keeps_frequencies_in_range_skylake(
        policy_ix in 0usize..3,
        limit in 26.0f64..45.0,
        n_apps in 2usize..5,
        swap_a in 1usize..20,
        swap_b in 1usize..20,
    ) {
        let policy = [
            PolicyKind::Priority,
            PolicyKind::FrequencyShares,
            PolicyKind::PerformanceShares,
        ][policy_ix];
        drive_with_swaps(
            PlatformSpec::skylake(),
            policy,
            Watts(limit),
            n_apps,
            22,
            &[swap_a, swap_b],
        );
    }

    /// Same property for power shares on Ryzen, where per-core power
    /// telemetry exists and actions must also fit the shared P-state
    /// slots (`set_all_requested` enforces both).
    #[test]
    fn midrun_swap_keeps_frequencies_in_range_ryzen(
        limit in 30.0f64..60.0,
        n_apps in 2usize..5,
        swap_a in 1usize..20,
    ) {
        drive_with_swaps(
            PlatformSpec::ryzen(),
            PolicyKind::PowerShares,
            Watts(limit),
            n_apps,
            22,
            &[swap_a],
        );
    }
}
