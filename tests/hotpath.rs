//! Golden-replay and memory-discipline guarantees for the control hot
//! path (DESIGN.md §11).
//!
//! The scratch-arena refactor must not change a single control decision:
//! these tests replay deterministic synthetic telemetry streams through
//! every policy (plus the RAPL baseline and the resilience ladder) and
//! compare the serialized `ControlAction` stream against fixtures
//! generated from the pre-refactor controller. Regenerate with
//! `GOLDEN_REGEN=1 cargo test --test hotpath` — but only intentionally:
//! a diff here means the controller's behaviour changed.
//!
//! The synthetic-telemetry harness and scenario matrix are shared with
//! the decision-memo suite in `memo.rs` (see `common/mod.rs`).

mod common;

use common::*;
use pap_alloccount::{AllocCounter, CountingAlloc};
use pap_model::TranslationKind;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::Watts;
use pap_telemetry::sampler::Sample;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind};
use powerd::daemon::Daemon;
use powerd::resilience::{CoreObservation, Observation, ResilienceConfig, ResilientDaemon};

use std::fmt::Write as _;

/// Count every heap allocation in this test binary, per thread, so the
/// zero-alloc steady-state assertion below is a real measurement.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Replay `STEPS` synthetic intervals through a daemon and serialize
/// every action.
fn replay_daemon(
    policy: PolicyKind,
    platform: &PlatformSpec,
    apps: Vec<AppSpec>,
    translation: TranslationKind,
) -> String {
    let limit = Watts(45.0);
    let mut config = DaemonConfig::new(policy, limit, apps.clone());
    config.translation = translation;
    let mut d = Daemon::new(config, platform).expect("valid golden config");
    let mut out = String::new();
    fmt_action(0, &d.initial(), &mut out);
    for i in 0..STEPS {
        let s = synth_sample(i, platform, &apps, limit);
        fmt_action(i + 1, &d.step(&s), &mut out);
    }
    out
}

/// Replay the resilience ladder: healthy → per-core power lost
/// (FrequencyOnly) → package power lost (UniformCap) → recovery.
fn replay_ladder() -> String {
    let platform = PlatformSpec::ryzen();
    let apps = ryzen_apps();
    let limit = Watts(45.0);
    let config = DaemonConfig::new(PolicyKind::PowerShares, limit, apps.clone());
    let mut d = ResilientDaemon::new(config, &platform, ResilienceConfig::default())
        .expect("valid ladder config");
    let mut out = String::new();
    fmt_action(0, &d.initial(), &mut out);
    for i in 0..STEPS {
        let s = synth_sample(i, &platform, &apps, limit);
        let core_power_lost = (50..130).contains(&i);
        let pkg_lost = (90..130).contains(&i);
        let obs = Observation {
            time: s.time,
            interval: s.interval,
            package_power: if pkg_lost {
                None
            } else {
                Some(s.package_power)
            },
            cores: s
                .cores
                .iter()
                .map(|cs| CoreObservation {
                    rates: Some(cs.rates),
                    power: if core_power_lost { None } else { cs.power },
                    requested: Some(cs.requested_freq),
                })
                .collect(),
            retries: Vec::new(),
        };
        let a = d.step(&obs);
        let _ = write!(out, "L{} ", d.level());
        fmt_action(i + 1, &a, &mut out);
    }
    out
}

#[test]
fn golden_replay_all_policies_naive() {
    for (name, policy, platform, apps) in policy_scenarios() {
        let actual = replay_daemon(policy, &platform, apps, TranslationKind::Naive);
        check_golden(&format!("{name}_naive"), &actual);
    }
}

#[test]
fn golden_replay_all_policies_online() {
    for (name, policy, platform, apps) in policy_scenarios() {
        let actual = replay_daemon(policy, &platform, apps, TranslationKind::Online);
        check_golden(&format!("{name}_online"), &actual);
    }
}

#[test]
fn golden_replay_resilience_ladder() {
    check_golden("resilience_ladder", &replay_ladder());
}

/// The tentpole guarantee: once warmed up, `Daemon::step_view` performs
/// **zero heap allocations per step** for every policy under both
/// translation models (observer detached). Samples are synthesized
/// outside the measured window; only the control step is counted.
#[test]
fn zero_alloc_steady_state() {
    const WARMUP: usize = 50;
    const MEASURED: usize = 100;
    for translation in [TranslationKind::Naive, TranslationKind::Online] {
        for (name, policy, platform, apps) in policy_scenarios() {
            let limit = Watts(45.0);
            let mut config = DaemonConfig::new(policy, limit, apps.clone());
            config.translation = translation;
            let mut d = Daemon::new(config, &platform).expect("valid config");
            d.initial();
            let samples: Vec<Sample> = (0..WARMUP + MEASURED)
                .map(|i| synth_sample(i, &platform, &apps, limit))
                .collect();
            for s in &samples[..WARMUP] {
                d.step_view(s);
            }
            for (i, s) in samples[WARMUP..].iter().enumerate() {
                let before = AllocCounter::snapshot();
                d.step_view(s);
                let after = AllocCounter::snapshot();
                assert_eq!(
                    after.events_since(&before),
                    0,
                    "{name}/{translation:?}: step {} allocated on the hot path \
                     ({} allocs, {} reallocs, {} bytes)",
                    WARMUP + i,
                    after.allocs - before.allocs,
                    after.reallocs - before.reallocs,
                    after.bytes_since(&before),
                );
            }
        }
    }
}
