//! Golden-replay and memory-discipline guarantees for the control hot
//! path (DESIGN.md §11).
//!
//! The scratch-arena refactor must not change a single control decision:
//! these tests replay deterministic synthetic telemetry streams through
//! every policy (plus the RAPL baseline and the resilience ladder) and
//! compare the serialized `ControlAction` stream against fixtures
//! generated from the pre-refactor controller. Regenerate with
//! `GOLDEN_REGEN=1 cargo test --test hotpath` — but only intentionally:
//! a diff here means the controller's behaviour changed.

use pap_alloccount::{AllocCounter, CountingAlloc};
use pap_model::TranslationKind;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::sampler::{CoreSample, Sample};
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::{ControlAction, Daemon};
use powerd::resilience::{CoreObservation, Observation, ResilienceConfig, ResilientDaemon};

use std::fmt::Write as _;
use std::path::PathBuf;

/// Count every heap allocation in this test binary, per thread, so the
/// zero-alloc steady-state assertion below is a real measurement.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const STEPS: usize = 200;

fn skylake_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::new("a0", 0)
            .with_shares(70)
            .with_priority(Priority::High)
            .with_baseline_ips(2.4e9),
        AppSpec::new("a1", 1)
            .with_shares(30)
            .with_priority(Priority::Low)
            .with_baseline_ips(1.8e9),
        AppSpec::new("a2", 2)
            .with_shares(50)
            .with_priority(Priority::High)
            .with_baseline_ips(2.0e9),
        AppSpec::new("a3", 3)
            .with_shares(10)
            .with_priority(Priority::Low)
            .with_baseline_ips(1.5e9),
    ]
}

fn ryzen_apps() -> Vec<AppSpec> {
    (0..6)
        .map(|i| {
            AppSpec::new(format!("r{i}"), i)
                .with_shares(10 + 15 * i as u32)
                .with_baseline_ips(2.0e9)
        })
        .collect()
}

fn baseline_for(apps: &[AppSpec], core: usize) -> Option<f64> {
    apps.iter().find(|a| a.core == core).map(|a| a.baseline_ips)
}

/// Deterministic synthetic active frequency for (step, core): a pure
/// function of its inputs so pre- and post-refactor replays see the
/// exact same telemetry.
fn synth_freq(i: usize, c: usize, platform: &PlatformSpec) -> KiloHertz {
    let lo = platform.grid.min().khz();
    let hi = platform.grid.max().khz();
    let span_steps = (hi - lo) / 100_000;
    let k = (i as u64 * 13 + c as u64 * 7) % span_steps.max(1);
    KiloHertz(lo + k * 100_000)
}

/// Deterministic synthetic sample for one control interval. Package
/// power follows a quadratic curve in total active GHz (so the online
/// model's package fit can become confident) plus a small wobble, and
/// crosses the limit in both directions so redistribution runs both
/// ways; per-core power appears only on per-core-power platforms.
fn synth_sample(i: usize, platform: &PlatformSpec, apps: &[AppSpec], limit: Watts) -> Sample {
    let total_ghz: f64 = (0..platform.num_cores)
        .filter(|&c| baseline_for(apps, c).is_some())
        .map(|c| synth_freq(i, c, platform).ghz())
        .sum();
    // Center the quadratic at the managed cores' mid-grid operating
    // point so the package power crosses the limit in both directions.
    let t0 = apps.len() as f64 * (platform.grid.min().ghz() + platform.grid.max().ghz()) / 2.0;
    let wobble = (((i * 37) % 17) as f64 - 8.0) * 0.25;
    let pkg =
        limit.value() + 1.2 * (total_ghz - t0) + 0.18 * (total_ghz * total_ghz - t0 * t0) + wobble;
    let cores = (0..platform.num_cores)
        .map(|c| {
            let managed = baseline_for(apps, c);
            let freq = if managed.is_some() {
                synth_freq(i, c, platform)
            } else {
                KiloHertz::ZERO
            };
            let ips = managed.map_or(0.0, |b| b * (0.1 + 0.3 * freq.ghz()));
            let power = if platform.per_core_power {
                Some(Watts(1.5 + 2.2 * freq.ghz() + ((i + c) % 5) as f64 * 0.3))
            } else {
                None
            };
            CoreSample {
                rates: CoreRates {
                    active_freq: freq,
                    c0_residency: 1.0,
                    ips,
                },
                power,
                requested_freq: freq,
            }
        })
        .collect();
    Sample {
        time: Seconds((i + 1) as f64),
        interval: Seconds(1.0),
        package_power: Watts(pkg),
        cores_power: Watts((pkg - 10.0).max(0.0)),
        cores,
    }
}

fn fmt_action(i: usize, a: &ControlAction, out: &mut String) {
    let _ = write!(out, "{i}:");
    for f in &a.freqs {
        let _ = write!(out, " {}", f.khz());
    }
    out.push_str(" |");
    for &p in &a.parked {
        out.push(if p { 'P' } else { '.' });
    }
    out.push('\n');
}

/// Replay `STEPS` synthetic intervals through a daemon and serialize
/// every action.
fn replay_daemon(
    policy: PolicyKind,
    platform: &PlatformSpec,
    apps: Vec<AppSpec>,
    translation: TranslationKind,
) -> String {
    let limit = Watts(45.0);
    let mut config = DaemonConfig::new(policy, limit, apps.clone());
    config.translation = translation;
    let mut d = Daemon::new(config, platform).expect("valid golden config");
    let mut out = String::new();
    fmt_action(0, &d.initial(), &mut out);
    for i in 0..STEPS {
        let s = synth_sample(i, platform, &apps, limit);
        fmt_action(i + 1, &d.step(&s), &mut out);
    }
    out
}

/// Replay the resilience ladder: healthy → per-core power lost
/// (FrequencyOnly) → package power lost (UniformCap) → recovery.
fn replay_ladder() -> String {
    let platform = PlatformSpec::ryzen();
    let apps = ryzen_apps();
    let limit = Watts(45.0);
    let config = DaemonConfig::new(PolicyKind::PowerShares, limit, apps.clone());
    let mut d = ResilientDaemon::new(config, &platform, ResilienceConfig::default())
        .expect("valid ladder config");
    let mut out = String::new();
    fmt_action(0, &d.initial(), &mut out);
    for i in 0..STEPS {
        let s = synth_sample(i, &platform, &apps, limit);
        let core_power_lost = (50..130).contains(&i);
        let pkg_lost = (90..130).contains(&i);
        let obs = Observation {
            time: s.time,
            interval: s.interval,
            package_power: if pkg_lost {
                None
            } else {
                Some(s.package_power)
            },
            cores: s
                .cores
                .iter()
                .map(|cs| CoreObservation {
                    rates: Some(cs.rates),
                    power: if core_power_lost { None } else { cs.power },
                    requested: Some(cs.requested_freq),
                })
                .collect(),
            retries: Vec::new(),
        };
        let a = d.step(&obs);
        let _ = write!(out, "L{} ", d.level());
        fmt_action(i + 1, &a, &mut out);
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/hotpath")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "control stream for '{name}' diverged from the pre-refactor golden fixture"
    );
}

fn policy_scenarios() -> Vec<(&'static str, PolicyKind, PlatformSpec, Vec<AppSpec>)> {
    vec![
        (
            "skylake_priority",
            PolicyKind::Priority,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_freq",
            PolicyKind::FrequencyShares,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_perf",
            PolicyKind::PerformanceShares,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_rapl",
            PolicyKind::RaplNative,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "ryzen_power",
            PolicyKind::PowerShares,
            PlatformSpec::ryzen(),
            ryzen_apps(),
        ),
        (
            "ryzen_freq",
            PolicyKind::FrequencyShares,
            PlatformSpec::ryzen(),
            ryzen_apps(),
        ),
    ]
}

#[test]
fn golden_replay_all_policies_naive() {
    for (name, policy, platform, apps) in policy_scenarios() {
        let actual = replay_daemon(policy, &platform, apps, TranslationKind::Naive);
        check_golden(&format!("{name}_naive"), &actual);
    }
}

#[test]
fn golden_replay_all_policies_online() {
    for (name, policy, platform, apps) in policy_scenarios() {
        let actual = replay_daemon(policy, &platform, apps, TranslationKind::Online);
        check_golden(&format!("{name}_online"), &actual);
    }
}

#[test]
fn golden_replay_resilience_ladder() {
    check_golden("resilience_ladder", &replay_ladder());
}

/// The tentpole guarantee: once warmed up, `Daemon::step_view` performs
/// **zero heap allocations per step** for every policy under both
/// translation models (observer detached). Samples are synthesized
/// outside the measured window; only the control step is counted.
#[test]
fn zero_alloc_steady_state() {
    const WARMUP: usize = 50;
    const MEASURED: usize = 100;
    for translation in [TranslationKind::Naive, TranslationKind::Online] {
        for (name, policy, platform, apps) in policy_scenarios() {
            let limit = Watts(45.0);
            let mut config = DaemonConfig::new(policy, limit, apps.clone());
            config.translation = translation;
            let mut d = Daemon::new(config, &platform).expect("valid config");
            d.initial();
            let samples: Vec<Sample> = (0..WARMUP + MEASURED)
                .map(|i| synth_sample(i, &platform, &apps, limit))
                .collect();
            for s in &samples[..WARMUP] {
                d.step_view(s);
            }
            for (i, s) in samples[WARMUP..].iter().enumerate() {
                let before = AllocCounter::snapshot();
                d.step_view(s);
                let after = AllocCounter::snapshot();
                assert_eq!(
                    after.events_since(&before),
                    0,
                    "{name}/{translation:?}: step {} allocated on the hot path \
                     ({} allocs, {} reallocs, {} bytes)",
                    WARMUP + i,
                    after.allocs - before.allocs,
                    after.reallocs - before.reallocs,
                    after.bytes_since(&before),
                );
            }
        }
    }
}
