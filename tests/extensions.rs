//! Cross-crate tests for the extension modules: cpufreq governors,
//! thermald-style management, the HWP probe and the §4.3 single-core
//! planner, each exercised against the live simulator.

use per_app_power::prelude::*;
use per_app_power::simcpu::thermal::{ThermalGovernor, ThermalZone};
use per_app_power::workloads::spec;
use powerd::config::Priority as Prio;
use powerd::governor::Governor;
use powerd::hwp::UsefulFreqProbe;
use powerd::policy::single_core::{plan_shared_core, SharedApp};

/// ondemand on a bursty service saves power vs performance while staying
/// within a sane latency envelope; powersave collapses.
#[test]
fn governors_trade_power_for_latency() {
    let run = |gov: Governor| -> (f64, f64) {
        let mut chip = Chip::new(PlatformSpec::skylake());
        let cfg = ServiceConfig {
            users: 40,
            mean_think: Seconds(0.4),
            mean_service_cycles: 18.0e6,
            demand: per_app_power::workloads::latency::DemandShape::Exponential,
            capacitance: 0.8,
            seed: 7,
        };
        let mut svc = ClosedLoopService::new(cfg, 1);
        let grid = chip.spec().grid;
        let mut freq = grid.max();
        chip.set_requested_freq(0, freq).unwrap();
        let mut sampler = per_app_power::telemetry::sampler::Sampler::new(&chip);
        let mut power = 0.0;
        let mut n = 0.0;
        let mut t = 0.0;
        let mut next = 0.1;
        while t < 40.0 {
            let f = chip.effective_freq(0);
            let loads = svc.advance(Seconds(0.001), &[f]);
            chip.set_load(0, loads[0]).unwrap();
            chip.tick(Seconds(0.001));
            t += 0.001;
            if t + 1e-9 >= next {
                next += 0.1;
                if let Some(s) = sampler.sample(&chip) {
                    freq = gov.next_freq(&grid, freq, s.cores[0].rates.c0_residency);
                    chip.set_requested_freq(0, freq).unwrap();
                    power += s.package_power.value();
                    n += 1.0;
                }
            }
        }
        (svc.p90_ms(), power / n)
    };
    let (p90_perf, w_perf) = run(Governor::Performance);
    let (p90_ond, w_ond) = run(Governor::ondemand());
    let (p90_save, w_save) = run(Governor::Powersave);
    assert!(
        w_ond <= w_perf + 0.2,
        "ondemand must not out-draw performance"
    );
    assert!(w_save < w_perf - 1.0, "powersave must save power");
    assert!(
        p90_save > p90_perf * 3.0,
        "powersave must wreck the tail: {p90_perf:.1} vs {p90_save:.1} ms"
    );
    assert!(p90_ond < p90_save, "ondemand beats powersave on latency");
}

/// The thermal loop over the real chip regulates junction temperature at
/// a bounded performance cost.
#[test]
fn thermal_loop_regulates_chip() {
    let run = |managed: bool| -> (f64, u64) {
        let platform = PlatformSpec::skylake();
        let grid = platform.grid;
        let mut chip = Chip::new(platform);
        let mut zone = ThermalZone::new(35.0, 0.9, 60.0);
        let mut gov = ThermalGovernor::new(grid, 80.0, 92.0);
        let mut apps: Vec<RunningApp> = (0..10).map(|_| RunningApp::looping(spec::CAM4)).collect();
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(3000))
                .unwrap();
        }
        let dt = Seconds(0.005);
        let mut t = 0.0;
        let mut next = 1.0;
        let mut instr = 0u64;
        let mut peak = 0.0f64;
        while t < 300.0 {
            for (c, app) in apps.iter_mut().enumerate() {
                let f = chip.effective_freq(c);
                let out = app.advance(dt, f);
                chip.set_load(c, out.load).unwrap();
                instr += out.instructions;
            }
            chip.tick(dt);
            zone.advance(chip.package_power(), dt);
            peak = peak.max(zone.temperature());
            t += dt.value();
            if managed && t + 1e-9 >= next {
                next += 1.0;
                let a = gov.evaluate(zone.temperature());
                for c in 0..10 {
                    chip.set_requested_freq(c, a.freq_cap).unwrap();
                }
                chip.set_rapl_limit(a.power_limit).unwrap();
            }
        }
        (peak, instr)
    };
    let (peak_un, instr_un) = run(false);
    let (peak_m, instr_m) = run(true);
    assert!(peak_un > 84.0, "unmanaged must overheat: {peak_un:.1}");
    assert!(peak_m < peak_un - 3.0, "management must cut the peak");
    let retained = instr_m as f64 / instr_un as f64;
    assert!(
        retained > 0.75,
        "thermal management should cost bounded throughput ({retained:.2})"
    );
}

/// The HWP probe discovers the AVX license cap against the live chip
/// (not just the analytic model).
#[test]
fn hwp_probe_finds_avx_cap_on_chip() {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform);
    let mut probe = UsefulFreqProbe::new(chip.spec().grid);
    // run 10 copies so the all-core AVX cap (1.7 GHz) binds on core 0
    let mut apps: Vec<RunningApp> = (0..10).map(|_| RunningApp::looping(spec::CAM4)).collect();
    for c in 0..10 {
        chip.set_requested_freq(c, KiloHertz::from_mhz(3000))
            .unwrap();
    }
    chip.set_requested_freq(0, probe.target()).unwrap();
    let dt = Seconds(0.002);
    let mut t = 0.0;
    let mut next = 0.5;
    let mut instr = 0u64;
    while t < 40.0 && !probe.settled() {
        for (c, app) in apps.iter_mut().enumerate() {
            let f = chip.effective_freq(c);
            let out = app.advance(dt, f);
            chip.set_load(c, out.load).unwrap();
            if c == 0 {
                instr += out.instructions;
            }
        }
        chip.tick(dt);
        t += dt.value();
        if t + 1e-9 >= next {
            next += 0.5;
            let ips = instr as f64 / 0.5;
            instr = 0;
            let req = probe.observe(chip.effective_freq(0), ips);
            chip.set_requested_freq(0, req).unwrap();
        }
    }
    assert!(probe.settled(), "probe must settle inside 40 s");
    assert!(
        probe.target() <= KiloHertz::from_mhz(1800),
        "knee {} should be at the 1.7 GHz all-core AVX cap",
        probe.target()
    );
}

/// §4.3 planner's decisions are consistent with the chip's time-sharing
/// power accounting.
#[test]
fn single_core_plan_matches_timeshare_power() {
    use per_app_power::simcpu::timeshare::{ShareTask, TimeSharedCore};
    let platform = PlatformSpec::ryzen();
    let apps = vec![
        SharedApp {
            profile: spec::CACTUS_BSSN,
            shares: 60,
            priority: Prio::High,
        },
        SharedApp {
            profile: spec::GCC,
            shares: 40,
            priority: Prio::Low,
        },
    ];
    let budget = Watts(6.0);
    let d = plan_shared_core(&platform.power, &platform.grid, budget, &apps);
    // Reconstruct the plan on the timeshare substrate and check the power.
    let tasks: Vec<ShareTask> = apps
        .iter()
        .zip(&d.fractions)
        .filter(|(_, &f)| f > 0.0)
        .map(|(a, &f)| ShareTask {
            name: a.profile.name.into(),
            fraction: f,
            load: a.profile.load_at(d.freq),
        })
        .collect();
    let core = TimeSharedCore::new(tasks, Seconds(0.1));
    let p = core
        .simulate(&platform.power, d.freq, Seconds(30.0))
        .average_power;
    assert!(
        p <= budget + Watts(0.2),
        "planned configuration draws {p} over the {budget} budget"
    );
}
