//! Property-based tests over the core data structures and invariants.

mod common;

use proptest::prelude::*;

use pap_faults::chaos_platform;
use pap_faults::plan::{ChaosProfile, FaultPlan};
use pap_faults::runner::ChaosExperiment;
use per_app_power::prelude::*;
use per_app_power::simcpu::rapl::EnergyCounter;
use per_app_power::simcpu::units::Joules;
use per_app_power::simcpu::volt::VoltageCurve;
use per_app_power::workloads::spec;
use powerd::policy::minfund::{distribute, proportional_fill, Claim};
use powerd::quantize::{
    cluster_to_slots, distinct_levels, greedy_cluster, sse_mhz, ClusterStrategy,
};

fn grid() -> FreqGrid {
    FreqGrid::new(
        KiloHertz::from_mhz(400),
        KiloHertz::from_mhz(3800),
        KiloHertz::from_mhz(25),
    )
}

fn arb_claims(n: usize) -> impl Strategy<Value = Vec<Claim>> {
    proptest::collection::vec(
        (
            1.0f64..100.0,
            0.0f64..4000.0,
            0.0f64..1000.0,
            1000.0f64..4000.0,
        ),
        1..=n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(share, cur, min, max)| Claim::new(share, cur, min, max))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Min-funding distribution conserves the resource: what the claims
    /// absorb plus the unplaced residue equals the input delta.
    #[test]
    fn minfund_conserves(claims in arb_claims(8), delta in -5000.0f64..5000.0) {
        let d = distribute(delta, &claims);
        let before: f64 = claims.iter().map(|c| c.current).sum();
        let after: f64 = d.allocations.iter().sum();
        prop_assert!((after - before - (delta - d.unplaced)).abs() < 1e-6);
    }

    /// Min-funding never violates a claim's bounds.
    #[test]
    fn minfund_respects_bounds(claims in arb_claims(8), delta in -5000.0f64..5000.0) {
        let d = distribute(delta, &claims);
        for (a, c) in d.allocations.iter().zip(&claims) {
            prop_assert!(*a >= c.min - 1e-6 && *a <= c.max + 1e-6);
        }
    }

    /// Water-fill hits the requested total exactly whenever it is
    /// feasible, and allocations between bounds are share-proportional.
    #[test]
    fn fill_total_and_proportionality(claims in arb_claims(8), t in 0.0f64..40_000.0) {
        let d = proportional_fill(t, &claims);
        let sum_min: f64 = claims.iter().map(|c| c.min).sum();
        let sum_max: f64 = claims.iter().map(|c| c.max).sum();
        let total: f64 = d.allocations.iter().sum();
        if t >= sum_min && t <= sum_max {
            prop_assert!((total - t).abs() < 1e-3, "total {total} vs target {t}");
        }
        // interior allocations share one λ = alloc/share
        let lambdas: Vec<f64> = d
            .allocations
            .iter()
            .zip(&claims)
            .filter(|(a, c)| **a > c.min + 1e-6 && **a < c.max - 1e-6)
            .map(|(a, c)| a / c.share)
            .collect();
        for w in lambdas.windows(2) {
            prop_assert!((w[0] - w[1]).abs() / w[0].max(1e-9) < 1e-3);
        }
    }

    /// The 3-slot selector always returns at most k distinct, on-grid
    /// levels and never beats the exhaustive-free greedy on SSE.
    #[test]
    fn cluster_invariants(
        mhz in proptest::collection::vec(400u64..3800, 1..16),
        k in 1usize..5,
    ) {
        let g = grid();
        let targets: Vec<KiloHertz> =
            mhz.iter().map(|&m| g.round(KiloHertz::from_mhz(m))).collect();
        let out = cluster_to_slots(&targets, k, &g, ClusterStrategy::Mean);
        prop_assert_eq!(out.len(), targets.len());
        prop_assert!(distinct_levels(&out) <= k);
        for f in &out {
            prop_assert!(g.contains(*f), "{} off grid", f);
        }
        let greedy = greedy_cluster(&targets, k, &g);
        prop_assert!(sse_mhz(&targets, &out) <= sse_mhz(&targets, &greedy) + 1e-6);
    }

    /// Floor-strategy clusters never exceed any member's target.
    #[test]
    fn cluster_floor_never_exceeds(
        mhz in proptest::collection::vec(400u64..3800, 1..16),
    ) {
        let g = grid();
        let targets: Vec<KiloHertz> =
            mhz.iter().map(|&m| g.round(KiloHertz::from_mhz(m))).collect();
        let out = cluster_to_slots(&targets, 3, &g, ClusterStrategy::Floor);
        for (t, a) in targets.iter().zip(&out) {
            prop_assert!(a <= t);
        }
    }

    /// Frequency-grid quantization: round/floor/ceil always land on the
    /// grid, floor ≤ round ≤ ceil, and grid points are fixed points.
    #[test]
    fn grid_quantization_invariants(khz in 0u64..6_000_000) {
        let g = grid();
        let f = KiloHertz(khz);
        let (fl, rd, ce) = (g.floor(f), g.round(f), g.ceil(f));
        prop_assert!(g.contains(fl) && g.contains(rd) && g.contains(ce));
        prop_assert!(fl <= rd && rd <= ce);
        prop_assert_eq!(g.round(rd), rd);
    }

    /// Core power is monotone in frequency for any active load.
    #[test]
    fn power_monotone_in_frequency(
        cap in 0.1f64..3.0,
        util in 0.05f64..1.0,
        lo_mhz in 400u64..3700,
    ) {
        let p = PlatformSpec::ryzen().power;
        let load = LoadDescriptor { capacitance: cap, utilization: util, avx: false };
        let lo = KiloHertz::from_mhz(lo_mhz);
        let hi = KiloHertz::from_mhz(lo_mhz + 100);
        prop_assert!(p.core_power(lo, &load) <= p.core_power(hi, &load));
    }

    /// Voltage curves are monotone non-decreasing everywhere.
    #[test]
    fn voltage_monotone(mhz in 100u64..5000) {
        let c = VoltageCurve::linear(
            KiloHertz::from_mhz(400),
            per_app_power::simcpu::units::Volts(0.7),
            KiloHertz::from_mhz(3800),
            per_app_power::simcpu::units::Volts(1.42),
        );
        let a = c.voltage(KiloHertz::from_mhz(mhz));
        let b = c.voltage(KiloHertz::from_mhz(mhz + 50));
        prop_assert!(a <= b);
    }

    /// Energy-counter deltas survive arbitrary wraparound.
    #[test]
    fn energy_counter_wraps(start in 0.0f64..500_000.0, add in 0.0f64..1000.0) {
        let mut c = EnergyCounter::default();
        c.add(Joules(start));
        let before = c.read_raw();
        c.add(Joules(add));
        let after = c.read_raw();
        let d = EnergyCounter::delta_joules(before, after);
        prop_assert!((d.value() - add).abs() < 1e-3, "delta {} vs {add}", d.value());
    }

    /// The workload engine retires monotonically more instructions per
    /// tick at higher frequency, for every benchmark.
    #[test]
    fn engine_monotone_in_frequency(idx in 0usize..11, mhz in 800u64..2900) {
        let profile = spec::spec2017()[idx];
        let mut slow = RunningApp::once(profile);
        let mut fast = RunningApp::once(profile);
        let a = slow.advance(Seconds(0.01), KiloHertz::from_mhz(mhz));
        let b = fast.advance(Seconds(0.01), KiloHertz::from_mhz(mhz + 100));
        prop_assert!(b.instructions >= a.instructions);
    }

    /// Normalized performance is 1 at the reference and decreases with
    /// lower frequency.
    #[test]
    fn normalized_perf_properties(idx in 0usize..11, mhz in 800u64..2200) {
        let w = spec::spec2017()[idx];
        let reference = KiloHertz::from_mhz(2200);
        prop_assert!((w.normalized_performance(reference, reference) - 1.0).abs() < 1e-12);
        let p = w.normalized_performance(KiloHertz::from_mhz(mhz), reference);
        prop_assert!(p <= 1.0 + 1e-12);
        prop_assert!(p > 0.0);
    }
}

/// A bounded chaos profile: every knob at or below the default profile's
/// hostility, so the schedule is survivable by construction (a plan that
/// sticks the actuator on every core forever has no graceful answer).
fn arb_chaos_profile() -> impl Strategy<Value = ChaosProfile> {
    (
        (
            0usize..7,     // transient read faults
            any::<bool>(), // flaky reads
            any::<bool>(), // core power outage
            any::<bool>(), // package outage
            0usize..3,     // stuck writes
            0usize..2,     // write errors
        ),
        (
            0usize..3,     // noise cores
            0usize..3,     // glitches
            any::<bool>(), // rollover
            0usize..2,     // thermal events
        ),
    )
        .prop_map(
            |(
                (transient, flaky, core_out, pkg_out, stuck, werr),
                (noise, glitch, roll, thermal),
            )| {
                ChaosProfile {
                    transient_read_faults: transient,
                    flaky_reads: flaky,
                    core_power_outage: core_out,
                    package_outage: pkg_out,
                    stuck_writes: stuck,
                    write_errors: werr,
                    noise_cores: noise,
                    glitches: glitch,
                    rollover: roll,
                    thermal_events: thermal,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The resilient daemon holds the package cap — zero *sustained*
    /// ground-truth violations — under arbitrary bounded fault schedules,
    /// and nobody is starved on the way down the degradation ladder.
    #[test]
    fn cap_holds_under_arbitrary_fault_schedules(
        seed in 0u64..1_000_000,
        profile in arb_chaos_profile(),
    ) {
        let platform = chaos_platform();
        let plan = FaultPlan::chaos(seed, &profile, Seconds(60.0), platform.num_cores);
        let r = ChaosExperiment::new(platform, PolicyKind::PowerShares, Watts(30.0))
            .app("cactus", spec::CACTUS_BSSN, 70)
            .app("gcc", spec::GCC, 50)
            .app("leela", spec::LEELA, 30)
            .duration(Seconds(60.0))
            .plan(plan)
            .seed(seed)
            .run()
            .expect("chaos run failed outright");
        prop_assert_eq!(
            r.sustained_violations, 0,
            "seed {} profile {:?}: {:?}", seed, profile, r
        );
        prop_assert_eq!(r.starved, 0, "seed {}: {:?}", seed, r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Approximate decision memoization (`MemoMode::Replay` with
    /// ε > 0) bounds its action drift: against a twin daemon that
    /// recomputes every interval, the per-interval frequency deviation
    /// stays within a few quantization bands of the telemetry scale —
    /// replayed decisions come from inputs within ε of the live ones,
    /// and the controllers' incremental steps cannot amplify that into
    /// runaway divergence. At ε = 0 the twins must agree to the bit
    /// (the exactness contract, here under noisy inputs rather than the
    /// golden stream).
    #[test]
    fn memo_epsilon_drift_is_bounded(
        eps in 1e-4f64..0.05,
        noise in proptest::collection::vec(-0.49f64..0.49, 60),
    ) {
        use powerd::config::MemoMode;
        let platform = per_app_power::simcpu::platform::PlatformSpec::skylake();
        let apps = common::skylake_apps();
        let limit = Watts(45.0);
        for (policy, epsilon) in [
            (PolicyKind::FrequencyShares, eps),
            (PolicyKind::PerformanceShares, eps),
            (PolicyKind::FrequencyShares, 0.0),
        ] {
            let mut exact_cfg = DaemonConfig::new(policy, limit, apps.clone());
            exact_cfg.memo = MemoMode::Off;
            let mut memo_cfg = DaemonConfig::new(policy, limit, apps.clone());
            memo_cfg.memo = MemoMode::Replay { epsilon };
            let mut exact = Daemon::new(exact_cfg, &platform).unwrap();
            let mut memod = Daemon::new(memo_cfg, &platform).unwrap();
            exact.initial();
            memod.initial();

            let base = common::synth_sample(7, &platform, &apps, limit);
            // One grid step of slack (outputs snap to the P-state grid)
            // plus a scale term proportional to ε: a replayed action may
            // lag the recomputed one by the controller's response to an
            // ε-relative input shift, empirically well under this.
            let grid_khz = 100_000.0;
            let bound = grid_khz + 40.0 * epsilon * platform.grid.max().khz() as f64;
            for (i, &n) in noise.iter().enumerate() {
                let mut s = base.clone();
                let jitter = 1.0 + epsilon * n;
                s.package_power = Watts(base.package_power.value() * jitter);
                for c in s.cores.iter_mut() {
                    c.rates.ips *= jitter;
                }
                s.time = Seconds((i + 1) as f64);
                let a = exact.step(&s);
                let b = memod.step(&s);
                if epsilon == 0.0 {
                    prop_assert_eq!(&a, &b, "ε = 0 must stay bit-identical");
                    continue;
                }
                prop_assert_eq!(
                    &a.parked, &b.parked,
                    "parking flipped under ε-replay at interval {}", i
                );
                for (core, (fa, fb)) in a.freqs.iter().zip(&b.freqs).enumerate() {
                    let diff = (fa.khz() as f64 - fb.khz() as f64).abs();
                    prop_assert!(
                        diff <= bound,
                        "{:?} ε={} interval {} core {}: drift {} kHz exceeds bound {} kHz",
                        policy, epsilon, i, core, diff, bound
                    );
                }
            }
        }
    }
}
