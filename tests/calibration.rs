//! Cross-crate calibration tests: the paper's anchor measurements
//! (DESIGN.md §5) must hold through the full stack — chip + workload
//! engine + telemetry — not just in the isolated power model.

use per_app_power::prelude::*;
use per_app_power::workloads::{burn::CPUBURN, spec};

const MS: Seconds = Seconds(0.001);

fn drive(chip: &mut Chip, apps: &mut [(usize, RunningApp)], seconds: f64) {
    let ticks = (seconds / MS.value()) as usize;
    for _ in 0..ticks {
        for (core, app) in apps.iter_mut() {
            let f = chip.effective_freq(*core);
            let out = app.advance(MS, f);
            chip.set_load(*core, out.load).unwrap();
            chip.add_instructions(*core, out.instructions).unwrap();
        }
        chip.tick(MS);
    }
}

/// cpuburn alone on one Skylake core at 3 GHz draws ≈ 32 W package (§3.2).
#[test]
fn cpuburn_package_power_anchor() {
    let mut chip = Chip::new(PlatformSpec::skylake());
    chip.set_requested_freq(0, KiloHertz::from_ghz(3.0))
        .unwrap();
    let mut apps = vec![(0usize, RunningApp::looping(CPUBURN))];
    drive(&mut chip, &mut apps, 2.0);
    let p = chip.package_power().value();
    assert!(
        (p - 32.0).abs() < 4.0,
        "cpuburn package power {p}, paper ~32 W"
    );
}

/// websearch with 9 busy cores at 3 GHz draws ≈ 44 W package (§3.2).
#[test]
fn websearch_package_power_anchor() {
    let mut chip = Chip::new(PlatformSpec::skylake());
    let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 9);
    for c in 0..9 {
        chip.set_requested_freq(c, KiloHertz::from_ghz(3.0))
            .unwrap();
    }
    let mut acc = 0.0;
    let mut n = 0;
    for tick in 0..20_000 {
        let freqs: Vec<KiloHertz> = (0..9).map(|c| chip.effective_freq(c)).collect();
        let loads = svc.advance(MS, &freqs);
        for (c, load) in loads.into_iter().enumerate() {
            chip.set_load(c, load).unwrap();
        }
        chip.tick(MS);
        if tick > 5_000 {
            acc += chip.package_power().value();
            n += 1;
        }
    }
    let p = acc / n as f64;
    assert!(
        (p - 44.0).abs() < 7.0,
        "websearch package power {p}, paper ~44 W"
    );
}

/// Figure 1 shape: under RAPL, the low-demand scalar app loses more
/// relative frequency than the AVX-capped high-demand app at 50 W, and
/// both converge to the same low frequency at 40 W.
#[test]
fn fig1_shape_through_full_stack() {
    let run = |limit: f64| -> (f64, f64) {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.set_rapl_limit(Some(Watts(limit))).unwrap();
        let mut apps: Vec<(usize, RunningApp)> = (0..10)
            .map(|c| {
                (
                    c,
                    RunningApp::looping(if c < 5 { spec::GCC } else { spec::CAM4 }),
                )
            })
            .collect();
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_ghz(3.0))
                .unwrap();
        }
        drive(&mut chip, &mut apps, 5.0);
        (chip.effective_freq(0).ghz(), chip.effective_freq(9).ghz())
    };
    let (gcc50, cam50) = run(50.0);
    let loss_gcc = 1.0 - gcc50 / 2.4;
    let loss_cam = 1.0 - cam50 / 1.7;
    assert!(
        loss_gcc > loss_cam + 0.05,
        "gcc must lose more at 50 W: gcc {gcc50:.2} GHz, cam4 {cam50:.2} GHz"
    );
    let (gcc40, cam40) = run(40.0);
    assert!(
        (gcc40 - cam40).abs() < 0.11,
        "both converge at 40 W: gcc {gcc40:.2} vs cam4 {cam40:.2}"
    );
}

/// §5.2 dynamic ranges measured end to end: frequency ×3–4 and
/// performance ×~4 across the usable range.
#[test]
fn dynamic_range_anchors() {
    let spec_p = PlatformSpec::skylake();
    let ratio = spec_p.grid.max().ghz() / spec_p.grid.min().ghz();
    assert!((3.0..4.2).contains(&ratio), "frequency range {ratio}");

    let perf_hi = spec::EXCHANGE2.ips(spec_p.grid.max());
    let perf_lo = spec::EXCHANGE2.ips(spec_p.grid.min());
    let r = perf_hi / perf_lo;
    assert!((3.2..4.2).contains(&r), "performance range {r}");
}

/// The TurboBoost package-power jump (~5 W) is visible through the chip,
/// not just the raw model (Figure 2).
#[test]
fn turbo_power_jump_anchor() {
    let run_at = |mhz: u64| -> f64 {
        let mut chip = Chip::new(PlatformSpec::skylake());
        chip.set_requested_freq(0, KiloHertz::from_mhz(mhz))
            .unwrap();
        let mut apps = vec![(0usize, RunningApp::looping(spec::GCC))];
        drive(&mut chip, &mut apps, 1.0);
        chip.package_power().value()
    };
    let below = run_at(2200);
    let above = run_at(2500);
    let jump = above - below;
    assert!(
        (3.5..8.0).contains(&jump),
        "turbo jump {jump:.1} W, paper reports ~5 W"
    );
}

/// Ryzen per-core power telemetry reads through the whole stack and the
/// XFR jump appears above 3.4 GHz (Figure 3).
#[test]
fn ryzen_xfr_anchor() {
    let run_at = |mhz: u64| -> f64 {
        let mut chip = Chip::new(PlatformSpec::ryzen());
        chip.set_requested_freq(0, KiloHertz::from_mhz(mhz))
            .unwrap();
        let mut apps = vec![(0usize, RunningApp::looping(spec::LEELA))];
        drive(&mut chip, &mut apps, 1.0);
        chip.core_power(0)
            .expect("Ryzen exposes per-core power")
            .value()
    };
    let base = run_at(3400);
    let xfr = run_at(3800);
    assert!(xfr - base > 3.0, "XFR core-power jump {:.1} W", xfr - base);
}
