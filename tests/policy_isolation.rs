//! End-to-end policy behavior: the paper's headline claims, asserted as
//! tests over complete experiment runs.

use per_app_power::prelude::*;
use per_app_power::workloads::{burn::CPUBURN, spec};

fn shares_experiment(
    platform: PlatformSpec,
    policy: PolicyKind,
    limit: f64,
    ld_share: u32,
    hd_share: u32,
) -> ExperimentResult {
    let half = platform.num_cores / 2;
    let mut e = Experiment::new(platform, policy, Watts(limit))
        .duration(Seconds(40.0))
        .warmup(10);
    for i in 0..half {
        e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, ld_share);
    }
    for i in 0..half {
        e = e.app(
            format!("cactus-{i}"),
            spec::CACTUS_BSSN,
            Priority::High,
            hd_share,
        );
    }
    e.run().expect("experiment runs")
}

/// All policies keep mean package power near the programmed limit.
#[test]
fn every_policy_tracks_the_limit() {
    for policy in [
        PolicyKind::RaplNative,
        PolicyKind::FrequencyShares,
        PolicyKind::PerformanceShares,
    ] {
        let r = shares_experiment(PlatformSpec::skylake(), policy, 45.0, 50, 50);
        let p = r.mean_package_power.value();
        assert!(
            (p - 45.0).abs() < 4.0,
            "{}: package {p:.1} W vs 45 W limit",
            policy.name()
        );
    }
    let r = shares_experiment(PlatformSpec::ryzen(), PolicyKind::PowerShares, 45.0, 50, 50);
    let p = r.mean_package_power.value();
    assert!((p - 45.0).abs() < 4.0, "power-shares: {p:.1} W vs 45 W");
}

/// Frequency shares: measured frequency ratio follows the share ratio in
/// the controllable range (§6.2).
#[test]
fn frequency_shares_are_proportional() {
    let r = shares_experiment(
        PlatformSpec::skylake(),
        PolicyKind::FrequencyShares,
        40.0,
        30,
        70,
    );
    let half = 5;
    let ld: f64 = r.apps[..half].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / half as f64;
    let hd: f64 = r.apps[half..].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / half as f64;
    let frac = ld / (ld + hd);
    assert!(
        (0.25..0.40).contains(&frac),
        "LD frequency fraction {frac:.2}, configured 0.30"
    );
}

/// Power shares give the configured *power* split but poor performance
/// isolation: at equal shares the low-demand app runs much faster (§6.2).
#[test]
fn power_shares_isolate_power_not_performance() {
    let r = shares_experiment(PlatformSpec::ryzen(), PolicyKind::PowerShares, 45.0, 50, 50);
    let half = 4;
    let ld_w: f64 = r.apps[..half]
        .iter()
        .map(|a| a.mean_power.unwrap().value())
        .sum();
    let hd_w: f64 = r.apps[half..]
        .iter()
        .map(|a| a.mean_power.unwrap().value())
        .sum();
    let power_frac = ld_w / (ld_w + hd_w);
    assert!(
        (0.42..0.58).contains(&power_frac),
        "power split should track 50/50 shares, got {power_frac:.2}"
    );
    let ld_f: f64 = r.apps[..half].iter().map(|a| a.mean_freq_mhz).sum();
    let hd_f: f64 = r.apps[half..].iter().map(|a| a.mean_freq_mhz).sum();
    assert!(
        ld_f > hd_f * 1.1,
        "equal power must buy the low-demand app more frequency: {ld_f:.0} vs {hd_f:.0}"
    );
}

/// The priority policy protects HP performance where RAPL cannot (§6.1).
#[test]
fn priority_beats_rapl_for_hp() {
    let build = |policy: PolicyKind| {
        let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(40.0))
            .duration(Seconds(40.0))
            .warmup(10);
        for i in 0..3 {
            e = e.app(format!("hp-{i}"), spec::CACTUS_BSSN, Priority::High, 100);
        }
        for i in 0..7 {
            e = e.app(format!("lp-{i}"), spec::LEELA, Priority::Low, 100);
        }
        e.run().expect("runs")
    };
    let prio = build(PolicyKind::Priority);
    let rapl = build(PolicyKind::RaplNative);
    let hp = |r: &ExperimentResult| r.apps[..3].iter().map(|a| a.norm_perf).sum::<f64>() / 3.0;
    assert!(
        hp(&prio) > hp(&rapl) * 1.25,
        "priority HP {:.3} vs RAPL HP {:.3}",
        hp(&prio),
        hp(&rapl)
    );
}

/// The flooring priority variant keeps LP running (slowly) where the
/// starving variant parks them (§4.1 alternative).
#[test]
fn flooring_variant_avoids_starvation() {
    let build = |floor: bool| {
        let mut e = Experiment::new(PlatformSpec::skylake(), PolicyKind::Priority, Watts(40.0))
            .duration(Seconds(40.0))
            .warmup(10)
            .floor_low_priority(floor);
        for i in 0..5 {
            e = e.app(format!("hp-{i}"), spec::CACTUS_BSSN, Priority::High, 100);
        }
        for i in 0..5 {
            e = e.app(format!("lp-{i}"), spec::LEELA, Priority::Low, 100);
        }
        e.run().expect("runs")
    };
    let starving = build(false);
    let flooring = build(true);
    let lp_perf = |r: &ExperimentResult| r.apps[5..].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
    assert!(lp_perf(&starving) < 0.05, "starving variant parks LP");
    assert!(
        lp_perf(&flooring) > 0.15,
        "flooring variant keeps LP crawling: {:.3}",
        lp_perf(&flooring)
    );
    // and the price is paid by HP
    let hp_perf = |r: &ExperimentResult| r.apps[..5].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
    assert!(hp_perf(&flooring) < hp_perf(&starving));
}

/// The unfair-throttling scenario (Figures 5 and 12): frequency shares
/// protect the latency-sensitive service from the power virus; native
/// RAPL does not.
#[test]
fn websearch_protected_by_shares() {
    let run = |policy: PolicyKind, colocated: bool| {
        let mut e = LatencyExperiment::new(PlatformSpec::skylake(), policy, Watts(40.0))
            .shares(90, 10)
            .duration(Seconds(45.0))
            .warmup(Seconds(10.0));
        if colocated {
            e = e.colocate(CPUBURN);
        }
        e.run().expect("runs")
    };
    let alone = run(PolicyKind::RaplNative, false).p90_ms;
    let rapl = run(PolicyKind::RaplNative, true).p90_ms;
    let shares = run(PolicyKind::FrequencyShares, true).p90_ms;
    assert!(
        rapl > alone * 1.15,
        "RAPL colocation must hurt: alone {alone:.1} ms vs colocated {rapl:.1} ms"
    );
    assert!(
        shares < rapl * 0.9,
        "shares must recover most of the penalty: {shares:.1} vs {rapl:.1} ms"
    );
}

/// Ryzen runs obey the 3-concurrent-P-state constraint for the entire
/// experiment — the chip would reject any violating control action.
#[test]
fn ryzen_experiment_respects_shared_slots() {
    // Eight distinct share levels force the selector to do real work.
    let mut e = Experiment::new(
        PlatformSpec::ryzen(),
        PolicyKind::FrequencyShares,
        Watts(42.0),
    )
    .duration(Seconds(30.0))
    .warmup(5);
    for i in 0..8 {
        e = e.app(
            format!("app-{i}"),
            if i % 2 == 0 {
                spec::LEELA
            } else {
                spec::CACTUS_BSSN
            },
            Priority::High,
            (10 + 12 * i) as u32,
        );
    }
    let r = e.run().expect("slot-constrained run succeeds");
    // Higher shares still win within the 3-level quantization.
    assert!(r.apps[7].mean_freq_mhz >= r.apps[1].mean_freq_mhz);
}
