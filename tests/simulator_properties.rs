//! Property-based tests over the *assembled* simulator (chip + RAPL +
//! workloads + telemetry), complementing the per-module properties in
//! `tests/proptests.rs`.

use proptest::prelude::*;

use per_app_power::prelude::*;
use per_app_power::simcpu::timeshare::{ShareTask, TimeSharedCore};
use per_app_power::workloads::spec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Energy conservation: the package energy counter's delta equals the
    /// integral of reported package power over the same window.
    #[test]
    fn chip_energy_matches_power_integral(
        cap in 0.3f64..2.5,
        mhz in 800u64..3000,
        n_busy in 1usize..10,
    ) {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..n_busy {
            chip.set_requested_freq(c, KiloHertz::from_mhz(mhz)).unwrap();
            chip.set_load(c, LoadDescriptor { capacitance: cap, utilization: 1.0, avx: false })
                .unwrap();
        }
        let e0 = chip.package_energy_raw();
        let dt = Seconds(0.001);
        let mut integral = 0.0;
        for _ in 0..500 {
            chip.tick(dt);
            integral += chip.package_power().value() * dt.value();
        }
        let e1 = chip.package_energy_raw();
        let measured =
            per_app_power::simcpu::rapl::EnergyCounter::delta_joules(e0, e1).value();
        prop_assert!(
            (measured - integral).abs() / integral < 0.01,
            "counter {measured:.3} J vs integral {integral:.3} J"
        );
    }

    /// RAPL always regulates: for any feasible limit and any load, the
    /// settled package power is at or below limit + tolerance.
    #[test]
    fn rapl_regulates_any_load(
        limit in 25.0f64..80.0,
        cap in 0.5f64..3.0,
        avx in any::<bool>(),
    ) {
        let mut chip = Chip::new(PlatformSpec::skylake());
        for c in 0..10 {
            chip.set_requested_freq(c, KiloHertz::from_mhz(3000)).unwrap();
            chip.set_load(c, LoadDescriptor { capacitance: cap, utilization: 1.0, avx })
                .unwrap();
        }
        chip.set_rapl_limit(Some(Watts(limit))).unwrap();
        chip.run_ticks(3000, Seconds(0.001));
        // The cap is quantized to 100 MHz steps, so the controller may
        // oscillate between adjacent steps; judge the *average* power, as
        // RAPL's running-average semantics do.
        let mut avg = 0.0;
        for _ in 0..1000 {
            chip.tick(Seconds(0.001));
            avg += chip.package_power().value();
        }
        avg /= 1000.0;
        // DVFS bottoms out at the grid minimum; below that floor RAPL has
        // no actuator left (our model has no clock gating), so the bound
        // is max(limit, floor power).
        let spec_p = PlatformSpec::skylake();
        let load = LoadDescriptor { capacitance: cap, utilization: 1.0, avx };
        let floor = spec_p.power.core_power(spec_p.grid.min(), &load).value() * 10.0
            + spec_p
                .power
                .uncore_power(KiloHertz(spec_p.grid.min().khz() * 10))
                .value();
        prop_assert!(
            avg <= limit.max(floor) + 3.0,
            "avg {avg:.1} W over limit {limit} (floor {floor:.1})"
        );
    }

    /// Parked cores never consume more than the idle floor, whatever the
    /// requested frequency and load say.
    #[test]
    fn parked_core_power_is_idle(mhz in 800u64..3000, cap in 0.5f64..3.0) {
        let mut chip = Chip::new(PlatformSpec::ryzen());
        chip.set_requested_freq(0, KiloHertz::from_mhz(mhz / 25 * 25)).unwrap();
        chip.set_load(0, LoadDescriptor { capacitance: cap, utilization: 1.0, avx: false })
            .unwrap();
        chip.set_forced_idle(0, true).unwrap();
        chip.run_ticks(50, Seconds(0.001));
        let p = chip.core_power(0).unwrap();
        prop_assert!(p.value() <= 0.06, "parked core draws {p}");
    }

    /// Closed-loop service conserves its user population under arbitrary
    /// per-core frequency sequences.
    #[test]
    fn service_conserves_users(seq in proptest::collection::vec(400u64..3800, 8..40)) {
        let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 4);
        for mhz in seq {
            let freqs = vec![KiloHertz::from_mhz(mhz); 4];
            for _ in 0..25 {
                svc.advance(Seconds(0.001), &freqs);
            }
            prop_assert!(svc.user_conservation());
        }
    }

    /// Time-shared core: simulation equals the analytic time-weighted sum
    /// for arbitrary share splits.
    #[test]
    fn timeshare_matches_analytic(hd in 0.05f64..0.6, ld in 0.05f64..0.4) {
        let model = PlatformSpec::ryzen().power;
        let f = KiloHertz::from_mhz(3400);
        let core = TimeSharedCore::new(
            vec![
                ShareTask {
                    name: "hd".into(),
                    fraction: hd,
                    load: spec::CACTUS_BSSN.load_at(f),
                },
                ShareTask {
                    name: "ld".into(),
                    fraction: ld,
                    load: spec::GCC.load_at(f),
                },
            ],
            Seconds(0.1),
        );
        let analytic = core.time_weighted_power(&model, f).value();
        let sim = core.simulate(&model, f, Seconds(20.0)).average_power.value();
        prop_assert!((analytic - sim).abs() < 1e-6);
    }

    /// The engine's long-horizon throughput matches the analytic IPS for
    /// any benchmark and frequency (looping runs, whole-run average).
    #[test]
    fn engine_long_run_matches_model(idx in 0usize..11, mhz in 800u64..3000) {
        let profile = spec::spec2017()[idx];
        let f = KiloHertz::from_mhz(mhz);
        let mut app = RunningApp::looping(profile);
        let mut total = 0u64;
        let dt = Seconds(0.05);
        let steps = 2000; // 100 s
        for _ in 0..steps {
            total += app.advance(dt, f).instructions;
        }
        let measured_ips = total as f64 / (steps as f64 * dt.value());
        let model_ips = profile.ips(f);
        prop_assert!(
            (measured_ips / model_ips - 1.0).abs() < 0.01,
            "{}: measured {measured_ips:.3e} vs model {model_ips:.3e}",
            profile.name
        );
    }

    /// Turbo resolution is monotone: adding active cores never raises any
    /// core's effective frequency.
    #[test]
    fn effective_freq_monotone_in_active_cores(extra in 1usize..9) {
        let run = |n_active: usize| -> KiloHertz {
            let mut chip = Chip::new(PlatformSpec::skylake());
            for c in 0..n_active {
                chip.set_requested_freq(c, KiloHertz::from_mhz(3000)).unwrap();
                chip.set_load(c, LoadDescriptor::nominal()).unwrap();
            }
            chip.run_ticks(3, Seconds(0.001));
            chip.effective_freq(0)
        };
        let few = run(1);
        let many = run(1 + extra);
        prop_assert!(many <= few, "core 0: {few} with 1 active, {many} with {}", 1 + extra);
    }
}
