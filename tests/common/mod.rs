//! Shared golden-replay harness for the hot-path suites (`hotpath.rs`,
//! `memo.rs`): deterministic synthetic telemetry, the policy scenario
//! matrix, and fixture plumbing. Pure functions only — pre- and
//! post-refactor replays must see bit-identical inputs.

#![allow(dead_code)]

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::sampler::{CoreSample, Sample};
use powerd::config::{AppSpec, PolicyKind, Priority};
use powerd::daemon::ControlAction;

use std::fmt::Write as _;
use std::path::PathBuf;

pub const STEPS: usize = 200;

pub fn skylake_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::new("a0", 0)
            .with_shares(70)
            .with_priority(Priority::High)
            .with_baseline_ips(2.4e9),
        AppSpec::new("a1", 1)
            .with_shares(30)
            .with_priority(Priority::Low)
            .with_baseline_ips(1.8e9),
        AppSpec::new("a2", 2)
            .with_shares(50)
            .with_priority(Priority::High)
            .with_baseline_ips(2.0e9),
        AppSpec::new("a3", 3)
            .with_shares(10)
            .with_priority(Priority::Low)
            .with_baseline_ips(1.5e9),
    ]
}

pub fn ryzen_apps() -> Vec<AppSpec> {
    (0..6)
        .map(|i| {
            AppSpec::new(format!("r{i}"), i)
                .with_shares(10 + 15 * i as u32)
                .with_baseline_ips(2.0e9)
        })
        .collect()
}

pub fn baseline_for(apps: &[AppSpec], core: usize) -> Option<f64> {
    apps.iter().find(|a| a.core == core).map(|a| a.baseline_ips)
}

/// Deterministic synthetic active frequency for (step, core): a pure
/// function of its inputs so pre- and post-refactor replays see the
/// exact same telemetry.
pub fn synth_freq(i: usize, c: usize, platform: &PlatformSpec) -> KiloHertz {
    let lo = platform.grid.min().khz();
    let hi = platform.grid.max().khz();
    let span_steps = (hi - lo) / 100_000;
    let k = (i as u64 * 13 + c as u64 * 7) % span_steps.max(1);
    KiloHertz(lo + k * 100_000)
}

/// Deterministic synthetic sample for one control interval. Package
/// power follows a quadratic curve in total active GHz (so the online
/// model's package fit can become confident) plus a small wobble, and
/// crosses the limit in both directions so redistribution runs both
/// ways; per-core power appears only on per-core-power platforms.
pub fn synth_sample(i: usize, platform: &PlatformSpec, apps: &[AppSpec], limit: Watts) -> Sample {
    let total_ghz: f64 = (0..platform.num_cores)
        .filter(|&c| baseline_for(apps, c).is_some())
        .map(|c| synth_freq(i, c, platform).ghz())
        .sum();
    // Center the quadratic at the managed cores' mid-grid operating
    // point so the package power crosses the limit in both directions.
    let t0 = apps.len() as f64 * (platform.grid.min().ghz() + platform.grid.max().ghz()) / 2.0;
    let wobble = (((i * 37) % 17) as f64 - 8.0) * 0.25;
    let pkg =
        limit.value() + 1.2 * (total_ghz - t0) + 0.18 * (total_ghz * total_ghz - t0 * t0) + wobble;
    let cores = (0..platform.num_cores)
        .map(|c| {
            let managed = baseline_for(apps, c);
            let freq = if managed.is_some() {
                synth_freq(i, c, platform)
            } else {
                KiloHertz::ZERO
            };
            let ips = managed.map_or(0.0, |b| b * (0.1 + 0.3 * freq.ghz()));
            let power = if platform.per_core_power {
                Some(Watts(1.5 + 2.2 * freq.ghz() + ((i + c) % 5) as f64 * 0.3))
            } else {
                None
            };
            CoreSample {
                rates: CoreRates {
                    active_freq: freq,
                    c0_residency: 1.0,
                    ips,
                },
                power,
                requested_freq: freq,
            }
        })
        .collect();
    Sample {
        time: Seconds((i + 1) as f64),
        interval: Seconds(1.0),
        package_power: Watts(pkg),
        cores_power: Watts((pkg - 10.0).max(0.0)),
        cores,
    }
}

pub fn fmt_action(i: usize, a: &ControlAction, out: &mut String) {
    let _ = write!(out, "{i}:");
    for f in &a.freqs {
        let _ = write!(out, " {}", f.khz());
    }
    out.push_str(" |");
    for &p in &a.parked {
        out.push(if p { 'P' } else { '.' });
    }
    out.push('\n');
}

pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/hotpath")
        .join(format!("{name}.txt"))
}

pub fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        expected, actual,
        "control stream for '{name}' diverged from the pre-refactor golden fixture"
    );
}

pub fn policy_scenarios() -> Vec<(&'static str, PolicyKind, PlatformSpec, Vec<AppSpec>)> {
    vec![
        (
            "skylake_priority",
            PolicyKind::Priority,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_freq",
            PolicyKind::FrequencyShares,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_perf",
            PolicyKind::PerformanceShares,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_rapl",
            PolicyKind::RaplNative,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "ryzen_power",
            PolicyKind::PowerShares,
            PlatformSpec::ryzen(),
            ryzen_apps(),
        ),
        (
            "ryzen_freq",
            PolicyKind::FrequencyShares,
            PlatformSpec::ryzen(),
            ryzen_apps(),
        ),
    ]
}
