//! The energy/cost accounting layer must be strictly off-path, the same
//! guarantee the decision trace ships under: attaching an
//! [`EnergyLedger`] to a daemon changes *nothing* about the commanded
//! `ControlAction` stream — bit-identical actions per policy — while the
//! ledger itself ends the run with physically consistent contents
//! (per-app energy sums to package energy under activity attribution,
//! cost derives from the tariff).

use pap_simcpu::chip::Chip;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::energy::{EnergyLedger, Tariff};
use pap_telemetry::sampler::Sampler;
use pap_workloads::engine::RunningApp;
use pap_workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::{ControlAction, Daemon};
use powerd::runner::standalone_freq;

fn policy_platforms() -> Vec<(PolicyKind, PlatformSpec)> {
    vec![
        (PolicyKind::RaplNative, PlatformSpec::skylake()),
        (PolicyKind::Priority, PlatformSpec::skylake()),
        (PolicyKind::FrequencyShares, PlatformSpec::skylake()),
        (PolicyKind::PerformanceShares, PlatformSpec::skylake()),
        (PolicyKind::PowerShares, PlatformSpec::ryzen()),
    ]
}

fn four_apps(platform: &PlatformSpec) -> Vec<AppSpec> {
    let mix = [
        ("cactusBSSN", spec::CACTUS_BSSN, 70u32),
        ("lbm", spec::LBM, 50),
        ("gcc", spec::GCC, 50),
        ("leela", spec::LEELA, 30),
    ];
    mix.iter()
        .enumerate()
        .map(|(core, (name, profile, shares))| {
            AppSpec::new(name.to_string(), core)
                .with_priority(Priority::High)
                .with_shares(*shares)
                .with_baseline_ips(profile.ips(standalone_freq(platform, profile)))
        })
        .collect()
}

/// Drive a daemon against a chip for `seconds`, returning every
/// commanded action (the observability suite's driver, unchanged).
fn drive(daemon: &mut Daemon, platform: &PlatformSpec, seconds: f64) -> Vec<ControlAction> {
    let mut chip = Chip::new(platform.clone());
    if daemon.config().policy == PolicyKind::RaplNative {
        chip.set_rapl_limit(Some(daemon.config().power_limit))
            .expect("RAPL range");
    }
    let mut apps: Vec<(usize, RunningApp)> = daemon
        .config()
        .apps
        .iter()
        .map(|a| {
            (
                a.core,
                RunningApp::looping(spec::by_name(&a.name).unwrap_or(spec::GCC)),
            )
        })
        .collect();

    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).expect("valid freqs");
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).unwrap();
    }
    let mut parked = action.parked.clone();
    let mut sampler = Sampler::new(&chip);

    let dt = Seconds(0.002);
    let mut actions = Vec::new();
    let mut next_control = 1.0;
    let mut t = 0.0;
    while t < seconds {
        for (core, app) in apps.iter_mut() {
            if parked[*core] {
                continue;
            }
            let f = chip.effective_freq(*core);
            let out = app.advance(dt, f);
            chip.set_load(*core, out.load).unwrap();
            chip.add_instructions(*core, out.instructions).unwrap();
        }
        chip.tick(dt);
        t += dt.value();
        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).expect("valid freqs");
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).unwrap();
                }
                parked = action.parked.clone();
                actions.push(action);
            }
        }
    }
    actions
}

#[test]
fn ledger_attachment_is_bit_identical_per_policy() {
    for (policy, platform) in policy_platforms() {
        let mk = || {
            Daemon::new(
                DaemonConfig::new(policy, Watts(40.0), four_apps(&platform)),
                &platform,
            )
            .expect("valid config")
        };
        let mut bare = mk();
        let plain = drive(&mut bare, &platform, 10.0);

        let mut accounted = mk();
        accounted.attach_energy(EnergyLedger::with_tariff(Tariff::new(0.25)));
        let traced = drive(&mut accounted, &platform, 10.0);

        assert_eq!(
            plain, traced,
            "{policy:?}: attaching an energy ledger changed the action stream"
        );

        let ledger = accounted.take_energy().expect("ledger attached");
        assert_eq!(ledger.len(), 4, "{policy:?}: one account per app");
        assert!(
            ledger.package_wh() > 0.0,
            "{policy:?}: package energy accumulated"
        );
        let apps_wh: f64 = ledger.accounts().iter().map(|a| a.wh).sum();
        assert!(
            apps_wh > 0.0 && apps_wh <= ledger.package_wh() * 1.0001,
            "{policy:?}: app energy {apps_wh} exceeds package {}",
            ledger.package_wh()
        );
        // Cost is tariff-linear.
        let cost = ledger.package_cost_usd().expect("tariff set");
        assert!(
            (cost - ledger.package_wh() / 1000.0 * 0.25).abs() < 1e-12,
            "{policy:?}: cost {cost} vs Wh {}",
            ledger.package_wh()
        );
    }
}

#[test]
fn per_core_power_platform_uses_measured_attribution() {
    // On Ryzen every app core reports measured power; attributed app
    // energy equals the integral of those watts rather than an activity
    // share of the package (which also carries uncore).
    let platform = PlatformSpec::ryzen();
    let mut daemon = Daemon::new(
        DaemonConfig::new(PolicyKind::PowerShares, Watts(40.0), four_apps(&platform)),
        &platform,
    )
    .unwrap();
    daemon.attach_energy(EnergyLedger::new());
    drive(&mut daemon, &platform, 10.0);
    let ledger = daemon.take_energy().unwrap();
    let apps_wh: f64 = ledger.accounts().iter().map(|a| a.wh).sum();
    assert!(apps_wh > 0.0);
    assert!(
        apps_wh < ledger.package_wh(),
        "measured core energy {apps_wh} must exclude uncore, package {}",
        ledger.package_wh()
    );
    // No tariff: no cost fields anywhere in the export.
    assert!(!ledger.to_jsonl().contains("cost"), "tariff-free JSONL");
}

#[test]
fn membership_change_rebuilds_accounts_without_losing_energy() {
    let platform = PlatformSpec::skylake();
    let mut daemon = Daemon::new(
        DaemonConfig::new(
            PolicyKind::FrequencyShares,
            Watts(40.0),
            four_apps(&platform),
        ),
        &platform,
    )
    .unwrap();
    daemon.attach_energy(EnergyLedger::new());
    drive(&mut daemon, &platform, 5.0);
    let wh_before = daemon.energy().unwrap().wh("gcc").expect("tracked");
    assert!(wh_before > 0.0);

    daemon.remove_app("gcc").expect("departing app");
    drive(&mut daemon, &platform, 5.0);
    let ledger = daemon.take_energy().unwrap();
    assert_eq!(
        ledger.wh("gcc").unwrap(),
        wh_before,
        "departed app's account is frozen, not dropped"
    );
    assert!(ledger.wh("leela").unwrap() > 0.0, "survivors keep accruing");
}
