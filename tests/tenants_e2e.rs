//! End-to-end tests for the multi-tenant scenario layer: a library
//! scenario driven through the real daemon under all three control
//! modes, with the scorecard sinks, the decision trace and the
//! telemetry counters checked against each other.

use std::sync::Arc;

use pap_tenants::prelude::*;
use per_app_power::simcpu::units::Seconds;
use per_app_power::telemetry::metrics::ControlMetrics;

fn short(mut s: Scenario) -> Scenario {
    s.warmup = Seconds(5.0);
    s.duration = Seconds(20.0);
    s
}

/// One full scenario run per control mode: budgets respected,
/// attainment sane, both sinks well-formed and mutually consistent.
#[test]
fn scenario_runs_under_every_mode_with_consistent_sinks() {
    let scenario = short(pap_tenants::scenario::tail_heavy());
    for mode in ControlMode::ALL {
        let card = scenario.run(mode);
        assert_eq!(card.mode, mode.name());
        assert!(
            card.mean_package_w > 5.0 && card.mean_package_w < card.budget_w * 1.1,
            "{}: package power {:.1} W vs budget {} W",
            mode.name(),
            card.mean_package_w,
            card.budget_w
        );
        assert!((0.0..=1.0).contains(&card.attainment()));
        assert!((0.0..=1.0).contains(&card.jain()));
        assert!(card.batch_gips() > 0.0, "batch must make progress");

        let jsonl = card.to_jsonl();
        assert_eq!(
            jsonl.lines().count(),
            card.tenants.len() + 1,
            "one line per tenant plus the summary"
        );
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        let prom = card.prometheus();
        for tenant in &card.tenants {
            assert!(
                prom.contains(&format!("tenant=\"{}\"", tenant.name)),
                "{} missing from exposition",
                tenant.name
            );
        }
        assert!(prom.contains("pap_scenario_attainment_per_watt"));
    }
}

/// The headline claim, end to end: under the same budget and seed the
/// SLO-aware controller beats static shares on attainment, funded by
/// batch shares (its batch goodput is lower).
#[test]
fn slo_aware_beats_static_shares_on_attainment() {
    let scenario = short(pap_tenants::scenario::tail_heavy());
    let aware = scenario.run(ControlMode::SloAware);
    let stat = scenario.run(ControlMode::StaticShares);
    assert!(
        aware.attainment() > stat.attainment(),
        "slo-aware {:.3} must beat static {:.3}",
        aware.attainment(),
        stat.attainment()
    );
    assert!(
        aware.batch_gips() < stat.batch_gips(),
        "the boost is funded from batch: {:.2} vs {:.2} GIPS",
        aware.batch_gips(),
        stat.batch_gips()
    );
}

/// Share retargets surface through the whole observability stack: the
/// decision trace carries `share_retarget` events and the shared
/// metrics registry counts them.
#[test]
fn share_retargets_are_observable() {
    let scenario = short(pap_tenants::scenario::tail_heavy());
    let metrics = Arc::new(ControlMetrics::new());
    let (card, trace) = scenario.run_observed(ControlMode::SloAware, Some(metrics.clone()));
    let trace = trace.expect("observer attached");
    let jsonl = trace.to_jsonl();
    assert!(
        jsonl.contains("\"share_retarget\""),
        "trace must record retargets"
    );
    assert!(
        metrics.share_retargets.get() > 0,
        "counter must track the trace"
    );
    assert!(
        metrics.expose().contains("pap_share_retargets_total"),
        "counter must be exposed"
    );
    let svc = card.tenants.iter().find(|t| !t.batch).unwrap();
    assert!(
        svc.mean_shares > 55.0,
        "pressured service holds more than its configured 55 shares, got {:.1}",
        svc.mean_shares
    );

    // Static mode never retargets.
    let fresh = Arc::new(ControlMetrics::new());
    let (_, static_trace) = scenario.run_observed(ControlMode::StaticShares, Some(fresh.clone()));
    assert!(!static_trace
        .expect("observer")
        .to_jsonl()
        .contains("share_retarget"));
    assert_eq!(fresh.share_retargets.get(), 0);
}

/// Churn end to end: the burst tenant's requests only complete inside
/// its window, and the daemon survives the arrival/departure cycle
/// under every mode.
#[test]
fn churn_is_handled_under_every_mode() {
    let mut scenario = pap_tenants::scenario::churn();
    scenario.warmup = Seconds(4.0);
    scenario.duration = Seconds(26.0);
    scenario.tenants[1] = scenario.tenants[1]
        .clone()
        .with_window(Seconds(8.0), Some(Seconds(24.0)));
    for mode in ControlMode::ALL {
        let card = scenario.run(mode);
        let burst = card.tenants.iter().find(|t| t.name == "burst").unwrap();
        assert!(
            burst.completed > 0,
            "{}: burst tenant served requests while present",
            mode.name()
        );
        let web = card.tenants.iter().find(|t| t.name == "web").unwrap();
        assert!(web.completed > 0, "{}: web kept serving", mode.name());
    }
}
