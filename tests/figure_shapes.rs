//! Figure-shape regression tests: scaled-down versions of figure
//! experiments whose *shape* must not drift as the models evolve.
//! (The `repro_check` binary covers the headline claims; these cover the
//! secondary shapes.)

use per_app_power::prelude::*;
use per_app_power::workloads::spec;

const MS: Seconds = Seconds(0.002);

fn run_fixed_freq(
    platform: &PlatformSpec,
    core_assignments: &[(usize, per_app_power::workloads::profile::WorkloadProfile)],
    requests_mhz: &[(usize, u64)],
    rapl: Option<f64>,
    seconds: f64,
) -> Chip {
    let mut chip = Chip::new(platform.clone());
    for &(c, mhz) in requests_mhz {
        chip.set_requested_freq(c, KiloHertz::from_mhz(mhz))
            .unwrap();
    }
    if let Some(w) = rapl {
        chip.set_rapl_limit(Some(Watts(w))).unwrap();
    }
    let mut apps: Vec<(usize, RunningApp)> = core_assignments
        .iter()
        .map(|&(c, p)| (c, RunningApp::looping(p)))
        .collect();
    let ticks = (seconds / MS.value()) as usize;
    for _ in 0..ticks {
        for (c, app) in apps.iter_mut() {
            let f = chip.effective_freq(*c);
            let out = app.advance(MS, f);
            chip.set_load(*c, out.load).unwrap();
            chip.add_instructions(*c, out.instructions).unwrap();
        }
        chip.tick(MS);
    }
    chip
}

/// Figure 4 shape: at a fixed RAPL limit, lowering half the cores'
/// programmed frequency raises the unconstrained half's frequency.
#[test]
fn fig4_throttled_half_funds_free_half() {
    let platform = PlatformSpec::skylake();
    let assignments: Vec<(usize, _)> = (0..10).map(|c| (c, spec::GCC)).collect();
    let free_at = |throttle_mhz: u64| -> u64 {
        let mut reqs: Vec<(usize, u64)> = (0..5).map(|c| (c, 2500)).collect();
        reqs.extend((5..10).map(|c| (c, throttle_mhz)));
        let chip = run_fixed_freq(&platform, &assignments, &reqs, Some(50.0), 8.0);
        chip.effective_freq(0).mhz()
    };
    let tight = free_at(2500);
    let loose = free_at(800);
    assert!(
        loose > tight + 200,
        "throttling the other half must speed up the free half: {tight} -> {loose} MHz"
    );
}

/// Figure 4 shape: the manually throttled cores always run at their
/// programmed frequency — RAPL only reduces the unconstrained cores.
#[test]
fn fig4_rapl_never_touches_already_throttled_cores() {
    let platform = PlatformSpec::skylake();
    let assignments: Vec<(usize, _)> = (0..10).map(|c| (c, spec::GCC)).collect();
    let mut reqs: Vec<(usize, u64)> = (0..5).map(|c| (c, 2500)).collect();
    reqs.extend((5..10).map(|c| (c, 1200)));
    let chip = run_fixed_freq(&platform, &assignments, &reqs, Some(50.0), 8.0);
    assert_eq!(
        chip.effective_freq(9).mhz(),
        1200,
        "programmed core untouched"
    );
    assert!(
        chip.effective_freq(0).mhz() < 2500,
        "free core carries the cut"
    );
}

/// Figure 2 shape: the TurboBoost entry produces a discrete package-power
/// jump between 2.2 and 2.5 GHz on Skylake.
#[test]
fn fig2_turbo_power_jump() {
    let platform = PlatformSpec::skylake();
    let p_at = |mhz: u64| -> f64 {
        let chip = run_fixed_freq(&platform, &[(0, spec::GCC)], &[(0, mhz)], None, 2.0);
        chip.package_power().value()
    };
    let below = p_at(2200);
    let above = p_at(2500);
    // two plain 100 MHz steps for comparison
    let slope = (p_at(2200) - p_at(1900)) / 3.0;
    let jump = above - below - 3.0 * slope;
    assert!(jump > 2.0, "turbo surcharge {jump:.1} W too small");
}

/// Figure 3 shape: Ryzen XFR power jump above 3.4 GHz.
#[test]
fn fig3_xfr_power_jump() {
    let platform = PlatformSpec::ryzen();
    let p_at = |mhz: u64| -> f64 {
        let chip = run_fixed_freq(&platform, &[(0, spec::LEELA)], &[(0, mhz)], None, 2.0);
        chip.package_power().value()
    };
    assert!(p_at(3800) - p_at(3400) > 4.0);
}

/// Figure 11 shape: under frequency shares, measured frequency rises
/// monotonically with shares for the all-scalar set A.
#[test]
fn fig11_share_ordering_set_a() {
    let shares = [20u32, 40, 60, 80, 100];
    let set = per_app_power::workloads::generator::skylake_set_a();
    let mut e = Experiment::new(
        PlatformSpec::skylake(),
        PolicyKind::FrequencyShares,
        Watts(45.0),
    )
    .duration(Seconds(40.0))
    .warmup(10);
    for (i, profile) in set.iter().enumerate() {
        for copy in 0..2 {
            e = e.app(
                format!("{}-{copy}", profile.name),
                *profile,
                Priority::High,
                shares[i],
            );
        }
    }
    let r = e.run().unwrap();
    let mean = |i: usize| (r.apps[2 * i].mean_freq_mhz + r.apps[2 * i + 1].mean_freq_mhz) / 2.0;
    for i in 0..4 {
        assert!(
            mean(i) <= mean(i + 1) + 30.0,
            "share ordering violated: app{i} {:.0} vs app{} {:.0} MHz",
            mean(i),
            i + 1,
            mean(i + 1)
        );
    }
}

/// Figure 11 shape: in set B the AVX apps (cam4, lbm) cannot reach full
/// frequency even with top shares at 85 W.
#[test]
fn fig11_set_b_avx_caps() {
    let shares = [20u32, 40, 60, 80, 100];
    let set = per_app_power::workloads::generator::skylake_set_b();
    let mut e = Experiment::new(
        PlatformSpec::skylake(),
        PolicyKind::FrequencyShares,
        Watts(85.0),
    )
    .duration(Seconds(30.0))
    .warmup(8);
    for (i, profile) in set.iter().enumerate() {
        for copy in 0..2 {
            e = e.app(
                format!("{}-{copy}", profile.name),
                *profile,
                Priority::High,
                shares[i],
            );
        }
    }
    let r = e.run().unwrap();
    // B3 = cam4 (80 shares), B4 = lbm (100 shares): both AVX-capped ≤1.7 GHz
    assert!(
        r.apps[6].mean_freq_mhz <= 1750.0,
        "cam4 {:.0}",
        r.apps[6].mean_freq_mhz
    );
    assert!(
        r.apps[8].mean_freq_mhz <= 1750.0,
        "lbm {:.0}",
        r.apps[8].mean_freq_mhz
    );
    // while a scalar app with fewer shares exceeds them
    assert!(
        r.apps[4].mean_freq_mhz > 1800.0,
        "perlbench should pass the AVX caps"
    );
}

/// Figure 9 shape: frequency and performance shares produce similar
/// frequency splits at moderate ratios (the paper's argument that the
/// simpler policy suffices).
#[test]
fn fig9_freq_and_perf_shares_agree() {
    let run = |policy: PolicyKind| -> f64 {
        let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(45.0))
            .duration(Seconds(40.0))
            .warmup(10);
        for i in 0..5 {
            e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, 30);
        }
        for i in 0..5 {
            e = e.app(format!("cactus-{i}"), spec::CACTUS_BSSN, Priority::High, 70);
        }
        let r = e.run().unwrap();
        let ld: f64 = r.apps[..5].iter().map(|a| a.mean_freq_mhz).sum();
        let hd: f64 = r.apps[5..].iter().map(|a| a.mean_freq_mhz).sum();
        ld / (ld + hd)
    };
    let f = run(PolicyKind::FrequencyShares);
    let p = run(PolicyKind::PerformanceShares);
    assert!(
        (f - p).abs() < 0.08,
        "policies should roughly agree: freq {f:.2} vs perf {p:.2}"
    );
}

/// Figure 8 shape: on Ryzen at 40 W with a 2-HP mix, starving LP lets the
/// HP pair reach the XFR bin.
#[test]
fn fig8_xfr_after_starvation() {
    let mut e = Experiment::new(PlatformSpec::ryzen(), PolicyKind::Priority, Watts(40.0))
        .duration(Seconds(40.0))
        .warmup(10);
    e = e.app("hp-hd", spec::CACTUS_BSSN, Priority::High, 100);
    e = e.app("hp-ld", spec::LEELA, Priority::High, 100);
    for i in 0..6 {
        e = e.app(format!("lp-{i}"), spec::LEELA, Priority::Low, 100);
    }
    let r = e.run().unwrap();
    assert!(
        r.apps[0].mean_freq_mhz > 3400.0,
        "2 HP apps should boost past the all-core limit: {:.0} MHz",
        r.apps[0].mean_freq_mhz
    );
    assert!(r.apps[2].starved_fraction > 0.9, "LP starved");
}
