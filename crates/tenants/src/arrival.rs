//! Arrival traces: diurnal base load plus flash crowds.
//!
//! A tenant's offered load is a base [`LoadTrace`] (diurnal, bursty,
//! flat, piecewise) with zero or more [`FlashCrowd`] boosts layered on
//! top — the trapezoid-shaped surges (a news event, a sale) that make
//! production serving traffic spiky in a way a smooth diurnal curve
//! never is. The composed [`ArrivalTrace`] stays in `[0, 1]` and is
//! total on every input, matching the hardened `LoadTrace::intensity`
//! contract.

use pap_simcpu::units::Seconds;
use pap_workloads::traces::LoadTrace;

/// A trapezoid-shaped load surge: ramp up over `ramp`, hold for `hold`,
/// decay back over `decay`, adding up to `boost` intensity at the top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// When the surge starts.
    pub start: Seconds,
    /// Linear ramp-up duration.
    pub ramp: Seconds,
    /// Time spent at full boost.
    pub hold: Seconds,
    /// Linear decay duration.
    pub decay: Seconds,
    /// Added intensity at the plateau (may push the composed trace into
    /// clamping — a crowd on top of peak load saturates, as it should).
    pub boost: f64,
}

impl FlashCrowd {
    /// The crowd's added intensity at time `t` (0 outside the surge;
    /// degenerate durations are treated as instantaneous edges).
    pub fn boost_at(&self, t: Seconds) -> f64 {
        let t = t.value();
        if !(t.is_finite() && self.boost.is_finite()) {
            return 0.0;
        }
        let ramp = self.ramp.value().max(0.0);
        let hold = self.hold.value().max(0.0);
        let decay = self.decay.value().max(0.0);
        let rel = t - self.start.value();
        if rel < 0.0 || rel > ramp + hold + decay {
            0.0
        } else if rel < ramp {
            self.boost * rel / ramp
        } else if rel <= ramp + hold {
            self.boost
        } else if decay > 0.0 {
            self.boost * (1.0 - (rel - ramp - hold) / decay)
        } else {
            0.0
        }
    }
}

/// A base load trace plus layered flash crowds; the composed intensity
/// is clamped into `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// The base curve.
    pub base: LoadTrace,
    /// Surges added on top.
    pub crowds: Vec<FlashCrowd>,
}

impl ArrivalTrace {
    /// Constant base intensity, no crowds.
    pub fn flat(v: f64) -> ArrivalTrace {
        ArrivalTrace {
            base: LoadTrace::Flat(v),
            crowds: Vec::new(),
        }
    }

    /// Sinusoidal diurnal base, no crowds.
    pub fn diurnal(mean: f64, swing: f64, period: Seconds) -> ArrivalTrace {
        ArrivalTrace {
            base: LoadTrace::Diurnal {
                mean,
                swing,
                period,
            },
            crowds: Vec::new(),
        }
    }

    /// Layer a flash crowd on top.
    pub fn with_crowd(mut self, crowd: FlashCrowd) -> ArrivalTrace {
        self.crowds.push(crowd);
        self
    }

    /// Composed intensity at `t`, clamped into `[0, 1]`.
    pub fn intensity(&self, t: Seconds) -> f64 {
        let mut v = self.base.intensity(t);
        for c in &self.crowds {
            v += c.boost_at(t);
        }
        if v.is_finite() {
            v.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_shape() {
        let c = FlashCrowd {
            start: Seconds(10.0),
            ramp: Seconds(2.0),
            hold: Seconds(4.0),
            decay: Seconds(4.0),
            boost: 0.6,
        };
        assert_eq!(c.boost_at(Seconds(9.9)), 0.0);
        assert!((c.boost_at(Seconds(11.0)) - 0.3).abs() < 1e-12);
        assert_eq!(c.boost_at(Seconds(13.0)), 0.6);
        assert!((c.boost_at(Seconds(18.0)) - 0.3).abs() < 1e-12);
        assert_eq!(c.boost_at(Seconds(20.1)), 0.0);
    }

    #[test]
    fn crowd_layers_on_base_and_clamps() {
        let tr = ArrivalTrace::flat(0.7).with_crowd(FlashCrowd {
            start: Seconds(5.0),
            ramp: Seconds(1.0),
            hold: Seconds(2.0),
            decay: Seconds(1.0),
            boost: 0.6,
        });
        assert!((tr.intensity(Seconds(0.0)) - 0.7).abs() < 1e-12);
        assert_eq!(tr.intensity(Seconds(6.5)), 1.0, "clamped at saturation");
        assert!((tr.intensity(Seconds(20.0)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_total() {
        let c = FlashCrowd {
            start: Seconds(0.0),
            ramp: Seconds(0.0),
            hold: Seconds(0.0),
            decay: Seconds(0.0),
            boost: f64::NAN,
        };
        assert_eq!(c.boost_at(Seconds(0.0)), 0.0);
        let tr = ArrivalTrace::flat(0.5).with_crowd(c);
        for t in [f64::NAN, f64::INFINITY, -1.0e9, 0.0] {
            let v = tr.intensity(Seconds(t));
            assert!(v.is_finite() && (0.0..=1.0).contains(&v));
        }
        // Zero-duration crowd contributes nothing but never panics.
        let spike = FlashCrowd {
            start: Seconds(3.0),
            ramp: Seconds(0.0),
            hold: Seconds(0.0),
            decay: Seconds(0.0),
            boost: 0.5,
        };
        assert_eq!(spike.boost_at(Seconds(3.0)), 0.5, "instantaneous hold");
        assert_eq!(spike.boost_at(Seconds(3.0001)), 0.0);
    }
}
