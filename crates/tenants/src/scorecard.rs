//! Per-tenant SLO scorecards and their export sinks.
//!
//! A [`SloScorecard`] is what a scenario run produces: one
//! [`TenantScore`] per tenant (attainment, tail vs target, goodput,
//! attributed power) plus run-level aggregates — mean attainment across
//! service tenants, attainment-per-watt (the ROADMAP's headline metric
//! for scoring policies), the Jain fairness index over per-tenant
//! attainment, and batch goodput. Export goes through the same two
//! sink idioms as the PR 4 decision trace: hand-rolled JSONL (one
//! object per tenant plus a summary line) and Prometheus-style text
//! exposition. Tenant names are ASCII identifiers by construction
//! ([`crate::tenant::TenantSpec`] takes `&'static str`), so no JSON
//! escaping is needed and the repo stays free of a serde dependency.

use std::fmt::Write as _;

use pap_telemetry::slo::jain_index;

/// One tenant's measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantScore {
    /// Tenant name.
    pub name: &'static str,
    /// Whether this is the batch class.
    pub batch: bool,
    /// Fraction of measurement windows that met the SLO (1.0 for batch
    /// — no objective, no violations).
    pub attainment: f64,
    /// Measured tail latency at the SLO percentile over the whole
    /// measured period, in ms (0 for batch).
    pub tail_ms: f64,
    /// The SLO bound in ms (0 for batch).
    pub target_ms: f64,
    /// The SLO percentile (0 for batch).
    pub percentile: f64,
    /// Completed requests (services) over the measured period.
    pub completed: u64,
    /// Requests dropped at the full queue (services).
    pub dropped: u64,
    /// Goodput: completed requests/s for services, giga-instructions/s
    /// for batch.
    pub goodput: f64,
    /// Package power attributed to the tenant by activity weighting,
    /// in watts.
    pub mean_power_w: f64,
    /// Package energy attributed to the tenant over the measured
    /// period, in watt-hours.
    pub energy_wh: f64,
    /// Mean per-core shares held over the run (the controller moves
    /// these; static runs report the configured value).
    pub mean_shares: f64,
}

/// A complete scenario outcome under one control mode.
#[derive(Debug, Clone, PartialEq)]
pub struct SloScorecard {
    /// Scenario name.
    pub scenario: &'static str,
    /// Control mode short name (`slo-aware`, `static-shares`, `rapl`).
    pub mode: &'static str,
    /// Measured duration in simulated seconds (after warm-up).
    pub duration_s: f64,
    /// Mean package power over the measured period.
    pub mean_package_w: f64,
    /// The enforced package budget.
    pub budget_w: f64,
    /// Electricity tariff in USD per kWh, when cost accounting was
    /// requested. `None` leaves every cost field out of the exports, so
    /// accounting-off output is byte-identical to the pre-cost format.
    pub tariff_usd_per_kwh: Option<f64>,
    /// Per-tenant outcomes, in scenario order.
    pub tenants: Vec<TenantScore>,
}

impl SloScorecard {
    /// Mean SLO attainment across service tenants (1.0 when the
    /// scenario has no services).
    pub fn attainment(&self) -> f64 {
        let svc: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| !t.batch)
            .map(|t| t.attainment)
            .collect();
        if svc.is_empty() {
            1.0
        } else {
            svc.iter().sum::<f64>() / svc.len() as f64
        }
    }

    /// Attainment per watt of measured package power, scaled to a
    /// 100 W socket (attainment × 100 / watts) so the number stays
    /// O(1) and readable.
    pub fn attainment_per_watt(&self) -> f64 {
        if self.mean_package_w > 0.0 {
            self.attainment() * 100.0 / self.mean_package_w
        } else {
            0.0
        }
    }

    /// Jain fairness index over service tenants' attainment.
    ///
    /// Degenerate runs follow the [`pap_telemetry::stats::jain`]
    /// convention: no service tenants, or every attainment zero (all
    /// SLOs missed equally), report 1.0 — equal, if dismal, treatment.
    pub fn jain(&self) -> f64 {
        let svc: Vec<f64> = self
            .tenants
            .iter()
            .filter(|t| !t.batch)
            .map(|t| t.attainment)
            .collect();
        jain_index(&svc)
    }

    /// Package energy over the measured period in watt-hours.
    pub fn package_wh(&self) -> f64 {
        self.mean_package_w * self.duration_s / 3600.0
    }

    /// Electricity cost of the run in USD, when a tariff is set.
    pub fn cost_usd(&self) -> Option<f64> {
        self.tariff_usd_per_kwh
            .map(|t| self.package_wh() / 1000.0 * t)
    }

    /// Attainment per dollar-per-hour of electricity spend:
    /// `attainment / (kW × $/kWh)`. The denominator is the run's burn
    /// rate, so the number is duration-independent (like
    /// [`SloScorecard::attainment_per_watt`]) and stays O(10) at
    /// realistic tariffs.
    pub fn attainment_per_dollar(&self) -> Option<f64> {
        let tariff = self.tariff_usd_per_kwh?;
        let usd_per_hour = self.mean_package_w / 1000.0 * tariff;
        if usd_per_hour > 0.0 {
            Some(self.attainment() / usd_per_hour)
        } else {
            None
        }
    }

    /// Total batch goodput in giga-instructions per second.
    pub fn batch_gips(&self) -> f64 {
        self.tenants
            .iter()
            .filter(|t| t.batch)
            .map(|t| t.goodput)
            .sum()
    }

    /// The run-level summary as one JSON object. Cost fields appear
    /// only when a tariff is set.
    pub fn summary_json(&self) -> String {
        let mut out = format!(
            "{{\"scenario\":\"{}\",\"mode\":\"{}\",\"duration_s\":{},\"budget_w\":{},\
             \"mean_package_w\":{:.3},\"attainment\":{:.4},\"attainment_per_watt\":{:.5},\
             \"jain\":{:.4},\"batch_gips\":{:.3}",
            self.scenario,
            self.mode,
            self.duration_s,
            self.budget_w,
            self.mean_package_w,
            self.attainment(),
            self.attainment_per_watt(),
            self.jain(),
            self.batch_gips(),
        );
        if let Some(tariff) = self.tariff_usd_per_kwh {
            let _ = write!(
                out,
                ",\"tariff_usd_per_kwh\":{tariff},\"package_wh\":{:.4},\
                 \"cost_usd\":{:.6},\"attainment_per_dollar\":{:.4}",
                self.package_wh(),
                self.cost_usd().unwrap_or(0.0),
                self.attainment_per_dollar().unwrap_or(0.0),
            );
        }
        out.push('}');
        out
    }

    /// JSONL export: one object per tenant, then the summary object.
    /// Per-tenant cost appears only when a tariff is set.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            let _ = write!(
                out,
                "{{\"scenario\":\"{}\",\"mode\":\"{}\",\"tenant\":\"{}\",\"class\":\"{}\",\
                 \"attainment\":{:.4},\"tail_ms\":{:.3},\"target_ms\":{},\"percentile\":{},\
                 \"completed\":{},\"dropped\":{},\"goodput\":{:.3},\"mean_power_w\":{:.3},\
                 \"energy_wh\":{:.4},\"mean_shares\":{:.2}",
                self.scenario,
                self.mode,
                t.name,
                if t.batch { "batch" } else { "service" },
                t.attainment,
                t.tail_ms,
                t.target_ms,
                t.percentile,
                t.completed,
                t.dropped,
                t.goodput,
                t.mean_power_w,
                t.energy_wh,
                t.mean_shares,
            );
            if let Some(tariff) = self.tariff_usd_per_kwh {
                let _ = write!(out, ",\"cost_usd\":{:.6}", t.energy_wh / 1000.0 * tariff);
            }
            out.push_str("}\n");
        }
        out.push_str(&self.summary_json());
        out.push('\n');
        out
    }

    /// Prometheus-style text exposition: per-tenant gauges labelled by
    /// scenario/mode/tenant, plus the run-level aggregates.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let gauges: [(&str, &str); 5] = [
            (
                "pap_tenant_slo_attainment",
                "Fraction of windows meeting the tenant SLO.",
            ),
            (
                "pap_tenant_tail_ms",
                "Measured tail latency at the SLO percentile.",
            ),
            (
                "pap_tenant_goodput",
                "Completed rps (services) or GIPS (batch).",
            ),
            (
                "pap_tenant_power_watts",
                "Package power attributed to the tenant.",
            ),
            (
                "pap_tenant_energy_wh_total",
                "Package energy attributed to the tenant over the run.",
            ),
        ];
        for (name, help) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for t in &self.tenants {
                let v = match name {
                    "pap_tenant_slo_attainment" => t.attainment,
                    "pap_tenant_tail_ms" => t.tail_ms,
                    "pap_tenant_goodput" => t.goodput,
                    "pap_tenant_energy_wh_total" => t.energy_wh,
                    _ => t.mean_power_w,
                };
                let _ = writeln!(
                    out,
                    "{name}{{scenario=\"{}\",mode=\"{}\",tenant=\"{}\"}} {v:.6}",
                    self.scenario, self.mode, t.name
                );
            }
        }
        let aggregates: [(&str, &str, f64); 4] = [
            (
                "pap_scenario_attainment",
                "Mean SLO attainment across service tenants.",
                self.attainment(),
            ),
            (
                "pap_scenario_attainment_per_watt",
                "Attainment per watt (x100) of measured package power.",
                self.attainment_per_watt(),
            ),
            (
                "pap_scenario_jain",
                "Jain fairness index over service-tenant attainment.",
                self.jain(),
            ),
            (
                "pap_scenario_batch_gips",
                "Total batch goodput in giga-instructions per second.",
                self.batch_gips(),
            ),
        ];
        for (name, help, v) in aggregates {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(
                out,
                "{name}{{scenario=\"{}\",mode=\"{}\"}} {v:.6}",
                self.scenario, self.mode
            );
        }
        if self.tariff_usd_per_kwh.is_some() {
            let cost: [(&str, &str, f64); 2] = [
                (
                    "pap_scenario_cost_usd_total",
                    "Electricity cost of the run at the configured tariff.",
                    self.cost_usd().unwrap_or(0.0),
                ),
                (
                    "pap_scenario_attainment_per_dollar",
                    "Attainment per dollar-per-hour of electricity spend.",
                    self.attainment_per_dollar().unwrap_or(0.0),
                ),
            ];
            for (name, help, v) in cost {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(
                    out,
                    "{name}{{scenario=\"{}\",mode=\"{}\"}} {v:.6}",
                    self.scenario, self.mode
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn card() -> SloScorecard {
        SloScorecard {
            scenario: "test",
            mode: "slo-aware",
            duration_s: 120.0,
            mean_package_w: 45.0,
            budget_w: 45.0,
            tariff_usd_per_kwh: None,
            tenants: vec![
                TenantScore {
                    name: "web",
                    batch: false,
                    attainment: 0.9,
                    tail_ms: 18.0,
                    target_ms: 20.0,
                    percentile: 99.0,
                    completed: 10_000,
                    dropped: 3,
                    goodput: 400.0,
                    mean_power_w: 25.0,
                    energy_wh: 25.0 * 120.0 / 3600.0,
                    mean_shares: 80.0,
                },
                TenantScore {
                    name: "bg",
                    batch: true,
                    attainment: 1.0,
                    tail_ms: 0.0,
                    target_ms: 0.0,
                    percentile: 0.0,
                    completed: 0,
                    dropped: 0,
                    goodput: 6.5,
                    mean_power_w: 15.0,
                    energy_wh: 15.0 * 120.0 / 3600.0,
                    mean_shares: 20.0,
                },
            ],
        }
    }

    #[test]
    fn aggregates() {
        let c = card();
        assert!((c.attainment() - 0.9).abs() < 1e-12, "service-only mean");
        assert!((c.attainment_per_watt() - 0.9 * 100.0 / 45.0).abs() < 1e-12);
        assert_eq!(c.jain(), 1.0, "single service tenant is trivially fair");
        assert!((c.batch_gips() - 6.5).abs() < 1e-12);
    }

    #[test]
    fn jsonl_shape() {
        let text = card().to_jsonl();
        assert_eq!(text.lines().count(), 3, "two tenants + summary");
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(text.contains("\"tenant\":\"web\""));
        assert!(text.contains("\"class\":\"batch\""));
        assert!(text.contains("\"attainment_per_watt\":2.0"));
    }

    #[test]
    fn cost_fields_are_tariff_gated() {
        let plain = card();
        let mut priced = card();
        priced.tariff_usd_per_kwh = Some(0.25);

        // Without a tariff no cost vocabulary leaks into any export.
        for text in [plain.to_jsonl(), plain.prometheus()] {
            assert!(!text.contains("cost"), "tariff-free export: {text}");
            assert!(!text.contains("tariff"), "tariff-free export: {text}");
            assert!(!text.contains("dollar"), "tariff-free export: {text}");
        }
        assert_eq!(plain.cost_usd(), None);
        assert_eq!(plain.attainment_per_dollar(), None);

        // With one, the derived numbers are tariff-linear.
        let wh = priced.package_wh();
        assert!((wh - 45.0 * 120.0 / 3600.0).abs() < 1e-12);
        let cost = priced.cost_usd().unwrap();
        assert!((cost - wh / 1000.0 * 0.25).abs() < 1e-12);
        let apd = priced.attainment_per_dollar().unwrap();
        assert!((apd - 0.9 / (45.0 / 1000.0 * 0.25)).abs() < 1e-9);
        let text = priced.to_jsonl();
        assert!(text.contains("\"tariff_usd_per_kwh\":0.25"));
        assert!(text.contains("\"cost_usd\":"));
        assert!(priced.prometheus().contains("pap_scenario_cost_usd_total"));
    }

    #[test]
    fn prometheus_shape() {
        let text = card().prometheus();
        assert!(text.contains("# TYPE pap_tenant_slo_attainment gauge"));
        assert!(text.contains(
            "pap_tenant_slo_attainment{scenario=\"test\",mode=\"slo-aware\",tenant=\"web\"} 0.9"
        ));
        assert!(text.contains(
            "pap_scenario_attainment_per_watt{scenario=\"test\",mode=\"slo-aware\"} 2.0"
        ));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "malformed line: {line}");
        }
    }
}
