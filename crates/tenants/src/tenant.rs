//! Tenant specifications: what runs, where, with which SLO.
//!
//! A [`TenantSpec`] is the static description a [`Scenario`]
//! (`crate::scenario`) instantiates: a contiguous block of cores, a
//! share weight and priority for the daemon, a load — either an
//! open-loop latency-sensitive service with an SLO or a batch soaker —
//! an arrival trace, and an optional arrive/depart window for churn.

use pap_simcpu::units::Seconds;
use pap_telemetry::slo::SloTarget;
use pap_workloads::latency::DemandShape;
use pap_workloads::profile::WorkloadProfile;
use powerd::config::Priority;

use crate::arrival::ArrivalTrace;

/// What a tenant runs.
#[derive(Debug, Clone)]
pub enum TenantLoad {
    /// An open-loop latency-sensitive service with a tail-latency SLO.
    Service {
        /// Arrival rate at intensity 1.0, in requests per second,
        /// spread over the tenant's cores.
        peak_rps: f64,
        /// Mean per-request demand in cycles.
        mean_service_cycles: f64,
        /// Demand distribution shape (production services are
        /// heavy-tailed).
        demand: DemandShape,
        /// The tenant's tail-latency objective.
        slo: SloTarget,
    },
    /// Batch work soaking residual power (always-on, no SLO).
    Batch {
        /// Profile run in a loop on each of the tenant's cores.
        profile: WorkloadProfile,
    },
}

impl TenantLoad {
    /// Whether this is the batch class.
    pub fn is_batch(&self) -> bool {
        matches!(self, TenantLoad::Batch { .. })
    }
}

/// One tenant in a scenario.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (ASCII identifier; used in daemon app names and
    /// scorecard labels).
    pub name: &'static str,
    /// Number of cores in the tenant's (contiguous) block.
    pub cores: usize,
    /// Initial per-core shares handed to the daemon.
    pub shares: u32,
    /// Daemon priority class.
    pub priority: Priority,
    /// The load the tenant runs.
    pub load: TenantLoad,
    /// Offered-load trace (services scale arrivals by it; batch
    /// tenants ignore it — they always soak).
    pub trace: ArrivalTrace,
    /// When the tenant arrives (0 = present from the start).
    pub arrive: Seconds,
    /// When the tenant departs (`None` = stays to the end).
    pub depart: Option<Seconds>,
}

impl TenantSpec {
    /// A latency-sensitive service tenant, present for the whole run.
    pub fn service(
        name: &'static str,
        cores: usize,
        shares: u32,
        peak_rps: f64,
        demand: DemandShape,
        slo: SloTarget,
        trace: ArrivalTrace,
    ) -> TenantSpec {
        TenantSpec {
            name,
            cores,
            shares,
            priority: Priority::High,
            load: TenantLoad::Service {
                peak_rps,
                mean_service_cycles: 12.0e6,
                demand,
                slo,
            },
            trace,
            arrive: Seconds(0.0),
            depart: None,
        }
    }

    /// A batch tenant soaking residual power on `cores` cores.
    pub fn batch(
        name: &'static str,
        cores: usize,
        shares: u32,
        profile: WorkloadProfile,
    ) -> TenantSpec {
        TenantSpec {
            name,
            cores,
            shares,
            priority: Priority::Low,
            load: TenantLoad::Batch { profile },
            trace: ArrivalTrace::flat(1.0),
            arrive: Seconds(0.0),
            depart: None,
        }
    }

    /// Set the churn window: arrive at `arrive`, depart at `depart`.
    pub fn with_window(mut self, arrive: Seconds, depart: Option<Seconds>) -> TenantSpec {
        self.arrive = arrive;
        self.depart = depart;
        self
    }

    /// Whether the tenant is active at time `t`.
    pub fn active_at(&self, t: Seconds) -> bool {
        t >= self.arrive && self.depart.is_none_or(|d| t < d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_workloads::spec;

    #[test]
    fn churn_window() {
        let t = TenantSpec::batch("b", 2, 20, spec::CACTUS_BSSN)
            .with_window(Seconds(10.0), Some(Seconds(50.0)));
        assert!(!t.active_at(Seconds(9.9)));
        assert!(t.active_at(Seconds(10.0)));
        assert!(t.active_at(Seconds(49.9)));
        assert!(!t.active_at(Seconds(50.0)));
        let forever = TenantSpec::batch("c", 1, 10, spec::GCC);
        assert!(forever.active_at(Seconds(1e9)));
        assert!(forever.load.is_batch());
    }
}
