//! `powerd-sim` — run the per-application power-delivery daemon against a
//! simulated socket from the command line.
//!
//! Two modes. The classic ad-hoc experiment:
//!
//! ```sh
//! powerd-sim --policy freq-shares --limit 45 \
//!     --app web=leela:90:hp --app bg=cpuburn:10:lp --duration 60
//! ```
//!
//! and named multi-tenant scenarios from the `pap-tenants` library,
//! compared across all three control modes:
//!
//! ```sh
//! powerd-sim --scenario diurnal-flash [--limit 45] [--seed 7] [--metrics]
//! ```
//!
//! With the `linux-hw` feature the same daemon drives a real host
//! through cpufreq + RAPL/hwmon (`--backend linux`, start with
//! `--dry-run`), and `powerd-sim govcmp` sweeps the host's cpufreq
//! governors as the paper's baseline comparison. Without the feature
//! both report a typed "rebuild with --features linux-hw" error.

use std::process::ExitCode;
use std::sync::Arc;

use pap_simcpu::units::Watts;
use pap_telemetry::metrics::ControlMetrics;
use pap_tenants::prelude::*;
use pap_workloads::burn::CPUBURN;
use pap_workloads::spec;
use powerd::cli::{self, CliOptions};
use powerd::report::{f1, f3, Table};
use powerd::runner::Experiment;

fn run_experiment(opts: &CliOptions) -> Result<(), String> {
    let platform = opts.platform_spec()?;
    let policy = opts.policy.expect("cli validated policy");
    let limit = opts.limit.expect("cli validated limit");
    let mut e = Experiment::new(platform, policy, limit)
        .duration(opts.duration)
        .translation(opts.model)
        .observe(opts.trace_out.is_some() || opts.metrics);
    if let Some(seed) = opts.seed {
        e = e.seed(seed);
    }
    for app in &opts.apps {
        let profile = if app.profile == "cpuburn" {
            CPUBURN
        } else {
            spec::by_name(&app.profile)
                .ok_or_else(|| format!("unknown profile '{}'", app.profile))?
        };
        e = e.app(app.name.clone(), profile, app.priority, app.shares);
    }
    let result = e.run()?;

    let mut t = Table::new(
        format!(
            "powerd-sim: {} at {} on {}",
            policy.name(),
            limit,
            opts.platform
        ),
        &[
            "app",
            "core",
            "mean_mhz",
            "norm_perf",
            "core_w",
            "starved_%",
        ],
    );
    for a in &result.apps {
        t.row(vec![
            a.name.clone(),
            a.core.to_string(),
            f1(a.mean_freq_mhz),
            f3(a.norm_perf),
            a.mean_power
                .map(|w| f3(w.value()))
                .unwrap_or_else(|| "-".into()),
            f1(a.starved_fraction * 100.0),
        ]);
    }
    println!("{t}");
    println!("mean package power: {:.2}", result.mean_package_power);
    let rms = result
        .model
        .prediction_rms_watts
        .map(|w| format!("{w:.2} W"))
        .unwrap_or_else(|| "n/a (fit not yet confident)".into());
    println!(
        "model[{}]: per-interval prediction rms {}, {} translation queries ({:.0}% naive fallback)",
        opts.model.name(),
        rms,
        result.model.queries,
        result.model.fallback_fraction() * 100.0,
    );
    println!("{}", powerd::report::model_table(&result.model));
    if opts.csv {
        print!("{}", result.trace.to_csv());
    }
    if let Some(decisions) = &result.decisions {
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, decisions.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("decision trace: {} records -> {path}", decisions.len());
        }
        if opts.metrics {
            if let Some(metrics) = decisions.metrics() {
                print!("{}", metrics.expose());
            }
        }
    }
    Ok(())
}

fn run_scenario(opts: &CliOptions, name: &str) -> Result<(), String> {
    let mut scenario = by_name(name).ok_or_else(|| {
        format!(
            "unknown scenario '{name}' (available: {})",
            names().join(", ")
        )
    })?;
    if let Some(limit) = opts.limit {
        scenario.limit = limit;
    }
    if let Some(seed) = opts.seed {
        scenario.seed = seed;
    }
    if let Some(tariff) = opts.tariff {
        scenario = scenario.with_tariff(tariff);
    }
    scenario.duration = opts.duration;

    println!(
        "scenario '{}': {} ({} tenants, {} cores, {} budget, seed {:#x})",
        scenario.name,
        scenario.description,
        scenario.tenants.len(),
        scenario.total_cores(),
        Watts(scenario.limit.value()),
        scenario.seed,
    );

    let mut jsonl = String::new();
    let mut prom = String::new();
    let mut summary = Table::new(
        format!("scenario '{}' across control modes", scenario.name),
        &[
            "mode",
            "attainment",
            "att_per_w",
            "jain",
            "batch_gips",
            "mean_w",
        ],
    );
    for mode in ControlMode::ALL {
        let metrics = opts.metrics.then(|| Arc::new(ControlMetrics::new()));
        let (card, trace) = if opts.metrics || opts.trace_out.is_some() {
            scenario.run_observed(mode, metrics.clone())
        } else {
            (scenario.run(mode), None)
        };

        let mut t = Table::new(
            format!("{} / {}", scenario.name, mode.name()),
            &[
                "tenant",
                "class",
                "attainment",
                "tail_ms",
                "target_ms",
                "goodput",
                "mean_w",
                "shares",
            ],
        );
        for ten in &card.tenants {
            t.row(vec![
                ten.name.to_string(),
                if ten.batch { "batch" } else { "service" }.to_string(),
                f3(ten.attainment),
                f1(ten.tail_ms),
                f1(ten.target_ms),
                f1(ten.goodput),
                f3(ten.mean_power_w),
                f1(ten.mean_shares),
            ]);
        }
        println!("{t}");
        summary.row(vec![
            mode.name().to_string(),
            f3(card.attainment()),
            f3(card.attainment_per_watt()),
            f3(card.jain()),
            f3(card.batch_gips()),
            f3(card.mean_package_w),
        ]);
        if let Some(cost) = card.cost_usd() {
            println!(
                "{}: {:.3} Wh package energy, ${cost:.6} at the tariff, \
                 attainment/$ {:.2}",
                mode.name(),
                card.package_wh(),
                card.attainment_per_dollar().unwrap_or(0.0),
            );
        }
        jsonl.push_str(&card.to_jsonl());
        if opts.metrics {
            prom.push_str(&card.prometheus());
        }
        if let (true, Some(trace)) = (mode == ControlMode::SloAware, &trace) {
            eprintln!("slo-aware decision trace: {} records", trace.len());
            if let Some(m) = metrics.as_deref() {
                if opts.metrics {
                    prom.push_str(&m.expose());
                }
            }
            let _ = trace;
        }
    }
    println!("{summary}");
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, &jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("scorecards: -> {path}");
    }
    if opts.metrics {
        print!("{prom}");
    }
    Ok(())
}

/// `govcmp --backend sim`: replay the paper's §2.2 governor comparison
/// on the simulated socket — a bursty single-core service under each
/// emulated cpufreq governor, reported in the same power/frequency/Wh
/// shape as the real-host sweep.
fn run_govcmp_sim(opts: &CliOptions) -> Result<(), String> {
    use pap_simcpu::chip::Chip;
    use pap_simcpu::units::Seconds;
    use pap_telemetry::sampler::Sampler;
    use pap_workloads::latency::{ClosedLoopService, DemandShape, ServiceConfig};
    use powerd::governor::Governor;

    let governors = [
        ("performance", Governor::Performance),
        ("ondemand", Governor::ondemand()),
        ("conservative", Governor::conservative()),
        ("powersave", Governor::Powersave),
    ];
    let platform = opts.platform_spec()?;
    let warmup = 10.0;
    let measured = opts.duration.value().max(1.0);

    let mut t = Table::new(
        format!("govcmp (sim): cpufreq governors on {}", opts.platform),
        &["governor", "p90_ms", "mean_w", "mean_mhz", "wh", "cost_usd"],
    );
    for (name, gov) in governors {
        let mut chip = Chip::new(platform.clone());
        let cfg = ServiceConfig {
            users: 40,
            mean_think: Seconds(0.4),
            mean_service_cycles: 18.0e6,
            demand: DemandShape::Exponential,
            capacitance: 0.8,
            seed: opts.seed.unwrap_or(42),
        };
        let mut svc = ClosedLoopService::new(cfg, 1);
        let grid = chip.spec().grid;
        let mut freq = match gov {
            Governor::Powersave => grid.min(),
            _ => grid.max(),
        };
        chip.set_requested_freq(0, freq)
            .map_err(|e| e.to_string())?;

        let mut sampler = Sampler::new(&chip);
        let dt = Seconds(0.001);
        let (mut power_acc, mut khz_acc, mut samples) = (0.0, 0.0, 0.0);
        let mut time = 0.0;
        let mut next_eval = 0.1;
        let mut stats_reset = false;
        while time < warmup + measured {
            let f = chip.effective_freq(0);
            let loads = svc.advance(dt, &[f]);
            chip.set_load(0, loads[0]).map_err(|e| e.to_string())?;
            chip.tick(dt);
            time += dt.value();
            if !stats_reset && time >= warmup {
                svc.reset_stats();
                stats_reset = true;
            }
            if time + 1e-9 >= next_eval {
                next_eval += 0.1;
                if let Some(s) = sampler.sample(&chip) {
                    let util = s.cores[0].rates.c0_residency;
                    freq = gov.next_freq(&grid, freq, util);
                    chip.set_requested_freq(0, freq)
                        .map_err(|e| e.to_string())?;
                    if stats_reset {
                        power_acc += s.package_power.value();
                        khz_acc += s.cores[0].rates.active_freq.khz() as f64;
                        samples += 1.0;
                    }
                }
            }
        }
        let mean_w = power_acc / samples;
        let wh = mean_w * measured / 3600.0;
        let cost = opts
            .tariff
            .map(|tr| format!("{:.6}", wh / 1000.0 * tr))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            name.to_string(),
            f1(svc.p90_ms()),
            f3(mean_w),
            f1(khz_acc / samples / 1000.0),
            f3(wh),
            cost,
        ]);
    }
    println!("{t}");
    println!(
        "Per-core utilization governors cannot express cross-application \
         shares — the gap the paper's policies fill. Run with --backend \
         linux (build feature linux-hw) for the same sweep on a real host."
    );
    Ok(())
}

/// Real-hardware entry points (`--backend linux`, `govcmp`).
#[cfg(feature = "linux-hw")]
mod hwcli {
    use std::time::Duration;

    use pap_hw::cpufreq::WriteMode;
    use pap_hw::{govcmp, BackendClock, BackendOptions, LinuxBackend, SysfsRoot};
    use pap_telemetry::energy::{EnergyLedger, Tariff};
    use pap_workloads::burn::CPUBURN;
    use pap_workloads::spec;
    use powerd::cli::CliOptions;
    use powerd::config::{AppSpec, DaemonConfig};
    use powerd::daemon::Daemon;
    use powerd::hw::{run_daemon, PowerBackend};
    use powerd::report::{f1, f3, Table};
    use powerd::runner::standalone_freq;

    fn sysfs_root(opts: &CliOptions) -> SysfsRoot {
        match &opts.sysfs_root {
            Some(p) => SysfsRoot::new(p.clone()),
            None => SysfsRoot::system(),
        }
    }

    fn sleep_for(dt: pap_simcpu::units::Seconds) {
        std::thread::sleep(Duration::from_secs_f64(dt.value()));
    }

    /// Run the daemon against the live host for `--duration` wall
    /// seconds, then report per-app energy from the attached ledger.
    pub fn run_linux(opts: &CliOptions) -> Result<(), String> {
        let mut backend = LinuxBackend::probe(
            sysfs_root(opts),
            BackendOptions {
                dry_run: opts.dry_run,
                write_mode: WriteMode::Auto,
                clock: BackendClock::wall(),
                no_offline: opts.no_offline,
            },
        )
        .map_err(|e| format!("probing the host: {e}"))?;
        eprintln!("{}", backend.describe());
        if opts.dry_run {
            eprintln!("dry run: observing only, no sysfs writes");
        }

        let policy = opts.policy.expect("cli validated policy");
        let limit = opts.limit.expect("cli validated limit");
        let platform = backend.platform().clone();
        if opts.apps.len() > platform.num_cores {
            return Err(format!(
                "{} apps but the host exposes {} cpufreq policies",
                opts.apps.len(),
                platform.num_cores
            ));
        }
        let mut apps = Vec::new();
        for (core, app) in opts.apps.iter().enumerate() {
            let profile = if app.profile == "cpuburn" {
                CPUBURN
            } else {
                spec::by_name(&app.profile)
                    .ok_or_else(|| format!("unknown profile '{}'", app.profile))?
            };
            apps.push(
                AppSpec::new(app.name.clone(), core)
                    .with_priority(app.priority)
                    .with_shares(app.shares)
                    .with_baseline_ips(profile.ips(standalone_freq(&platform, &profile))),
            );
        }
        let mut config = DaemonConfig::new(policy, limit, apps);
        config.control_interval = opts.interval;
        let mut daemon = Daemon::new(config, &platform)?;
        daemon.attach_energy(match opts.tariff {
            Some(t) => EnergyLedger::with_tariff(Tariff::new(t)),
            None => EnergyLedger::new(),
        });

        // Wall clock: the drive closure just lets real time pass.
        run_daemon(
            &mut backend,
            &mut daemon,
            opts.duration,
            opts.interval,
            |_, _| sleep_for(opts.interval),
        )?;

        let ledger = daemon.take_energy().expect("ledger attached above");
        let mut t = Table::new(
            format!("powerd-sim on {}: per-app energy", platform.name),
            &["app", "wh", "share_%"],
        );
        let pkg_wh = ledger.package_wh();
        for a in ledger.accounts() {
            let share = if pkg_wh > 0.0 {
                a.wh / pkg_wh * 100.0
            } else {
                0.0
            };
            t.row(vec![a.name.clone(), f3(a.wh), f1(share)]);
        }
        println!("{t}");
        println!("package energy: {:.3} Wh", pkg_wh);
        if let Some(cost) = ledger.package_cost_usd() {
            println!("package cost: ${cost:.6} at the tariff");
        }
        print!("{}", ledger.to_jsonl());
        if opts.metrics {
            print!("{}", ledger.prometheus());
        }
        for (id, h) in backend.health().sensors() {
            if h.total_failures > 0 {
                eprintln!("sensor {id}: {:?}, {} failures", h.state, h.total_failures);
            }
        }
        Ok(())
    }

    /// `govcmp`: the paper's governor-comparison baseline on the live
    /// host — sweep the stock cpufreq governors and report each one's
    /// power, frequency and energy.
    pub fn run_govcmp(opts: &CliOptions) -> Result<(), String> {
        let root = sysfs_root(opts);
        let cfg = govcmp::GovCmpConfig {
            duration: opts.duration,
            interval: opts.interval,
            dry_run: opts.dry_run,
        };
        if cfg.dry_run {
            eprintln!("dry run: measuring the active governor only");
        }
        let rows =
            govcmp::run(&root, &cfg, sleep_for).map_err(|e| format!("governor sweep: {e}"))?;

        let mut t = Table::new(
            "govcmp: stock cpufreq governors".to_string(),
            &[
                "governor", "mean_w", "mean_mhz", "wh", "cost_usd", "samples",
            ],
        );
        for r in &rows {
            let cost = opts
                .tariff
                .map(|t| format!("{:.6}", r.wh / 1000.0 * t))
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                r.governor.clone(),
                f3(r.mean_pkg_w),
                f1(r.mean_khz / 1000.0),
                f3(r.wh),
                cost,
                r.samples.to_string(),
            ]);
        }
        println!("{t}");
        Ok(())
    }
}

/// Typed unavailability errors when built without `linux-hw`.
#[cfg(not(feature = "linux-hw"))]
mod hwcli {
    use powerd::cli::CliOptions;

    const HINT: &str = "this build has no real-hardware backend; rebuild with \
                        `cargo build --features linux-hw` (adds only the \
                        in-workspace pap-hw crate)";

    pub fn run_linux(_opts: &CliOptions) -> Result<(), String> {
        Err(format!("--backend linux is unavailable: {HINT}"))
    }

    pub fn run_govcmp(_opts: &CliOptions) -> Result<(), String> {
        Err(format!("govcmp is unavailable: {HINT}"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = if opts.govcmp {
        match opts.backend {
            cli::BackendKind::Sim => run_govcmp_sim(&opts),
            cli::BackendKind::Linux => hwcli::run_govcmp(&opts),
        }
    } else if opts.backend == cli::BackendKind::Linux {
        hwcli::run_linux(&opts)
    } else {
        match &opts.scenario {
            Some(name) => run_scenario(&opts, &name.clone()),
            None => run_experiment(&opts),
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
