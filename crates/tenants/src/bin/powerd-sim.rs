//! `powerd-sim` — run the per-application power-delivery daemon against a
//! simulated socket from the command line.
//!
//! Two modes. The classic ad-hoc experiment:
//!
//! ```sh
//! powerd-sim --policy freq-shares --limit 45 \
//!     --app web=leela:90:hp --app bg=cpuburn:10:lp --duration 60
//! ```
//!
//! and named multi-tenant scenarios from the `pap-tenants` library,
//! compared across all three control modes:
//!
//! ```sh
//! powerd-sim --scenario diurnal-flash [--limit 45] [--seed 7] [--metrics]
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use pap_simcpu::units::Watts;
use pap_telemetry::metrics::ControlMetrics;
use pap_tenants::prelude::*;
use pap_workloads::burn::CPUBURN;
use pap_workloads::spec;
use powerd::cli::{self, CliOptions};
use powerd::report::{f1, f3, Table};
use powerd::runner::Experiment;

fn run_experiment(opts: &CliOptions) -> Result<(), String> {
    let platform = opts.platform_spec()?;
    let policy = opts.policy.expect("cli validated policy");
    let limit = opts.limit.expect("cli validated limit");
    let mut e = Experiment::new(platform, policy, limit)
        .duration(opts.duration)
        .translation(opts.model)
        .observe(opts.trace_out.is_some() || opts.metrics);
    if let Some(seed) = opts.seed {
        e = e.seed(seed);
    }
    for app in &opts.apps {
        let profile = if app.profile == "cpuburn" {
            CPUBURN
        } else {
            spec::by_name(&app.profile)
                .ok_or_else(|| format!("unknown profile '{}'", app.profile))?
        };
        e = e.app(app.name.clone(), profile, app.priority, app.shares);
    }
    let result = e.run()?;

    let mut t = Table::new(
        format!(
            "powerd-sim: {} at {} on {}",
            policy.name(),
            limit,
            opts.platform
        ),
        &[
            "app",
            "core",
            "mean_mhz",
            "norm_perf",
            "core_w",
            "starved_%",
        ],
    );
    for a in &result.apps {
        t.row(vec![
            a.name.clone(),
            a.core.to_string(),
            f1(a.mean_freq_mhz),
            f3(a.norm_perf),
            a.mean_power
                .map(|w| f3(w.value()))
                .unwrap_or_else(|| "-".into()),
            f1(a.starved_fraction * 100.0),
        ]);
    }
    println!("{t}");
    println!("mean package power: {:.2}", result.mean_package_power);
    let rms = result
        .model
        .prediction_rms_watts
        .map(|w| format!("{w:.2} W"))
        .unwrap_or_else(|| "n/a (fit not yet confident)".into());
    println!(
        "model[{}]: per-interval prediction rms {}, {} translation queries ({:.0}% naive fallback)",
        opts.model.name(),
        rms,
        result.model.queries,
        result.model.fallback_fraction() * 100.0,
    );
    println!("{}", powerd::report::model_table(&result.model));
    if opts.csv {
        print!("{}", result.trace.to_csv());
    }
    if let Some(decisions) = &result.decisions {
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, decisions.to_jsonl())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("decision trace: {} records -> {path}", decisions.len());
        }
        if opts.metrics {
            if let Some(metrics) = decisions.metrics() {
                print!("{}", metrics.expose());
            }
        }
    }
    Ok(())
}

fn run_scenario(opts: &CliOptions, name: &str) -> Result<(), String> {
    let mut scenario = by_name(name).ok_or_else(|| {
        format!(
            "unknown scenario '{name}' (available: {})",
            names().join(", ")
        )
    })?;
    if let Some(limit) = opts.limit {
        scenario.limit = limit;
    }
    if let Some(seed) = opts.seed {
        scenario.seed = seed;
    }
    scenario.duration = opts.duration;

    println!(
        "scenario '{}': {} ({} tenants, {} cores, {} budget, seed {:#x})",
        scenario.name,
        scenario.description,
        scenario.tenants.len(),
        scenario.total_cores(),
        Watts(scenario.limit.value()),
        scenario.seed,
    );

    let mut jsonl = String::new();
    let mut prom = String::new();
    let mut summary = Table::new(
        format!("scenario '{}' across control modes", scenario.name),
        &[
            "mode",
            "attainment",
            "att_per_w",
            "jain",
            "batch_gips",
            "mean_w",
        ],
    );
    for mode in ControlMode::ALL {
        let metrics = opts.metrics.then(|| Arc::new(ControlMetrics::new()));
        let (card, trace) = if opts.metrics || opts.trace_out.is_some() {
            scenario.run_observed(mode, metrics.clone())
        } else {
            (scenario.run(mode), None)
        };

        let mut t = Table::new(
            format!("{} / {}", scenario.name, mode.name()),
            &[
                "tenant",
                "class",
                "attainment",
                "tail_ms",
                "target_ms",
                "goodput",
                "mean_w",
                "shares",
            ],
        );
        for ten in &card.tenants {
            t.row(vec![
                ten.name.to_string(),
                if ten.batch { "batch" } else { "service" }.to_string(),
                f3(ten.attainment),
                f1(ten.tail_ms),
                f1(ten.target_ms),
                f1(ten.goodput),
                f3(ten.mean_power_w),
                f1(ten.mean_shares),
            ]);
        }
        println!("{t}");
        summary.row(vec![
            mode.name().to_string(),
            f3(card.attainment()),
            f3(card.attainment_per_watt()),
            f3(card.jain()),
            f3(card.batch_gips()),
            f3(card.mean_package_w),
        ]);
        jsonl.push_str(&card.to_jsonl());
        if opts.metrics {
            prom.push_str(&card.prometheus());
        }
        if let (true, Some(trace)) = (mode == ControlMode::SloAware, &trace) {
            eprintln!("slo-aware decision trace: {} records", trace.len());
            if let Some(m) = metrics.as_deref() {
                if opts.metrics {
                    prom.push_str(&m.expose());
                }
            }
            let _ = trace;
        }
    }
    println!("{summary}");
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, &jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("scorecards: -> {path}");
    }
    if opts.metrics {
        print!("{prom}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &opts.scenario {
        Some(name) => run_scenario(&opts, &name.clone()),
        None => run_experiment(&opts),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
