//! # pap-tenants: multi-tenant trace-driven serving scenarios
//!
//! The scenario layer above `powerd`: deterministic, seeded
//! compositions of many tenants — latency-sensitive services with
//! heavy-tailed demand, batch tenants soaking residual power, diurnal
//! and flash-crowd arrival traces, tenant churn — running against the
//! simulated socket under a package power budget.
//!
//! Three pieces:
//!
//! - [`scenario`]: the [`Scenario`](scenario::Scenario) library and run
//!   loop (1 ms workload ticks, 1 s control intervals, warm-up excluded
//!   from scoring), runnable under three [`ControlMode`]s
//!   (`slo-aware`, `static-shares`, `rapl`).
//! - [`slo`]: the [`SloController`](slo::SloController) share market —
//!   integer 1:1 share transfers from batch (then relaxed services) to
//!   tenants whose measured tails approach their SLO targets; total
//!   shares are conserved exactly.
//! - [`scorecard`]: the per-tenant [`SloScorecard`](scorecard::SloScorecard)
//!   (attainment, attainment-per-watt, Jain fairness, batch goodput)
//!   with JSONL and Prometheus sinks.
//!
//! Everything is deterministic for a fixed scenario seed: per-tenant
//! RNG streams derive from it, so a scenario run is byte-reproducible
//! regardless of how a sweep schedules it across threads (the
//! `ext_tenants` bench asserts exactly that).

pub mod arrival;
pub mod scenario;
pub mod scorecard;
pub mod slo;
pub mod tenant;

pub use scenario::ControlMode;

/// Convenience re-exports for scenario drivers.
pub mod prelude {
    pub use crate::arrival::{ArrivalTrace, FlashCrowd};
    pub use crate::scenario::{by_name, names, ControlMode, Scenario};
    pub use crate::scorecard::{SloScorecard, TenantScore};
    pub use crate::slo::{ShareChange, ShareView, SloController, SloControllerConfig};
    pub use crate::tenant::{TenantLoad, TenantSpec};
}
