//! Scenario composition and the multi-tenant run loop.
//!
//! A [`Scenario`] composes [`TenantSpec`]s — latency-sensitive services
//! with heavy-tailed demand, batch soakers, diurnal + flash-crowd
//! arrival traces, churn windows — onto one simulated socket driven by
//! `powerd::Daemon`, and runs it under one of three [`ControlMode`]s:
//! the SLO-aware share controller, static shares, or native RAPL. The
//! run is fully deterministic for a fixed scenario seed (per-tenant RNG
//! streams are derived from it), which is what lets the `ext_tenants`
//! bench demand byte-identical output across sweep thread counts.
//!
//! The loop mirrors the calibrated `ext_diurnal` setup: 1 ms workload
//! ticks, a 1 s control interval, warm-up excluded from scoring. Churn
//! and share retargets happen at control boundaries, exactly where a
//! production daemon would apply them.

use std::sync::Arc;

use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_telemetry::metrics::ControlMetrics;
use pap_telemetry::sampler::Sampler;
use pap_telemetry::slo::{SloTarget, SloTracker};
use pap_telemetry::stats;
use pap_workloads::engine::RunningApp;
use pap_workloads::latency::DemandShape;
use pap_workloads::openloop::{OpenLoopConfig, OpenLoopService};
use pap_workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind};
use powerd::daemon::Daemon;
use powerd::obs::DecisionTrace;

use crate::arrival::{ArrivalTrace, FlashCrowd};
use crate::scorecard::{SloScorecard, TenantScore};
use crate::slo::{ShareView, SloController, SloControllerConfig};
use crate::tenant::{TenantLoad, TenantSpec};

/// How shares are governed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// Frequency shares with the SLO-aware controller retargeting them.
    SloAware,
    /// Frequency shares frozen at the configured weights.
    StaticShares,
    /// Native RAPL: no per-app policy, the package limit throttles
    /// every core uniformly.
    RaplNative,
}

impl ControlMode {
    /// All modes, in report order.
    pub const ALL: [ControlMode; 3] = [
        ControlMode::SloAware,
        ControlMode::StaticShares,
        ControlMode::RaplNative,
    ];

    /// Short name for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ControlMode::SloAware => "slo-aware",
            ControlMode::StaticShares => "static-shares",
            ControlMode::RaplNative => "rapl",
        }
    }
}

/// A complete multi-tenant scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (the `--scenario` CLI key).
    pub name: &'static str,
    /// One-line description for listings.
    pub description: &'static str,
    /// Package power budget.
    pub limit: Watts,
    /// Measured duration (after warm-up).
    pub duration: Seconds,
    /// Warm-up excluded from scoring.
    pub warmup: Seconds,
    /// The tenants; core blocks are assigned contiguously in order.
    pub tenants: Vec<TenantSpec>,
    /// Master seed; every tenant RNG stream derives from it.
    pub seed: u64,
    /// SLO-controller thresholds used in [`ControlMode::SloAware`].
    pub controller: SloControllerConfig,
    /// Electricity tariff in USD per kWh. Cost accounting is pure
    /// derivation from energy the run already tracks, so setting this
    /// never perturbs control; it only adds cost fields to the
    /// scorecard exports.
    pub tariff: Option<f64>,
}

impl Scenario {
    /// Price the run's energy at `usd_per_kwh`.
    pub fn with_tariff(mut self, usd_per_kwh: f64) -> Self {
        self.tariff = Some(usd_per_kwh);
        self
    }
}

/// The library of named scenarios.
pub fn names() -> &'static [&'static str] {
    &["diurnal-flash", "churn", "tail-heavy"]
}

/// Look up a library scenario by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    match name {
        "diurnal-flash" => Some(diurnal_flash()),
        "churn" => Some(churn()),
        "tail-heavy" => Some(tail_heavy()),
        _ => None,
    }
}

/// Two latency-sensitive tenants — a diurnal web frontend and a
/// flat-load API that takes a flash crowd — colocated with a batch
/// soaker under one binding budget.
pub fn diurnal_flash() -> Scenario {
    Scenario {
        name: "diurnal-flash",
        description: "diurnal web + flash-crowd API + batch soaker under 45 W",
        limit: Watts(45.0),
        duration: Seconds(60.0),
        warmup: Seconds(10.0),
        seed: 0x7E4A_1701,
        controller: SloControllerConfig::default(),
        tariff: None,
        tenants: vec![
            TenantSpec::service(
                "web",
                4,
                60,
                800.0,
                DemandShape::LogNormal { sigma: 1.1 },
                SloTarget::p99(60.0),
                ArrivalTrace::diurnal(0.65, 0.35, Seconds(40.0)),
            ),
            TenantSpec::service(
                "api",
                2,
                60,
                380.0,
                DemandShape::Pareto { alpha: 1.6 },
                SloTarget::p90(25.0),
                ArrivalTrace::flat(0.55).with_crowd(FlashCrowd {
                    start: Seconds(30.0),
                    ramp: Seconds(3.0),
                    hold: Seconds(12.0),
                    decay: Seconds(8.0),
                    boost: 0.45,
                }),
            ),
            TenantSpec::batch("bg", 4, 40, spec::CACTUS_BSSN),
        ],
    }
}

/// Tenant churn: a burst tenant arrives mid-run on a reserved core
/// block and departs before the end, while a diurnal service and batch
/// work run throughout.
pub fn churn() -> Scenario {
    Scenario {
        name: "churn",
        description: "mid-run tenant arrival/departure next to a diurnal service",
        limit: Watts(42.0),
        duration: Seconds(60.0),
        warmup: Seconds(10.0),
        seed: 0xC0DE_CAFE,
        controller: SloControllerConfig::default(),
        tariff: None,
        tenants: vec![
            TenantSpec::service(
                "web",
                3,
                60,
                600.0,
                DemandShape::LogNormal { sigma: 1.0 },
                SloTarget::p99(60.0),
                ArrivalTrace::diurnal(0.6, 0.3, Seconds(35.0)),
            ),
            TenantSpec::service(
                "burst",
                2,
                60,
                360.0,
                DemandShape::Pareto { alpha: 1.8 },
                SloTarget::p90(25.0),
                ArrivalTrace::flat(0.8),
            )
            .with_window(Seconds(25.0), Some(Seconds(55.0))),
            TenantSpec::batch("bg", 5, 40, spec::CACTUS_BSSN),
        ],
    }
}

/// One very heavy-tailed service against a large batch class — the
/// stress case for tail-aware share control.
pub fn tail_heavy() -> Scenario {
    Scenario {
        name: "tail-heavy",
        description: "Pareto-tailed service vs large batch class under 40 W",
        limit: Watts(40.0),
        duration: Seconds(60.0),
        warmup: Seconds(10.0),
        seed: 0x7A11_0001,
        controller: SloControllerConfig::default(),
        tariff: None,
        tenants: vec![
            TenantSpec::service(
                "svc",
                5,
                55,
                900.0,
                DemandShape::Pareto { alpha: 1.4 },
                SloTarget::p90(40.0),
                ArrivalTrace::flat(0.7),
            ),
            TenantSpec::batch("bg", 5, 45, spec::CACTUS_BSSN),
        ],
    }
}

const TICK: Seconds = Seconds(0.001);
const CONTROL: f64 = 1.0;
/// Nominal instruction rate handed to the daemon for every tenant app;
/// the online model refines it from samples.
const BASELINE_IPS: f64 = 3.0e9;

enum EngineKind {
    Service(OpenLoopService),
    Batch(Vec<RunningApp>),
}

struct Runtime {
    spec: TenantSpec,
    first_core: usize,
    app_names: Vec<String>,
    shares: Vec<u32>,
    engine: EngineKind,
    tracker: Option<SloTracker>,
    active: bool,
    // post-warm-up accumulators
    energy_j: f64,
    completed: u64,
    dropped: u64,
    instructions: u64,
    tail_marks: Vec<f64>,
    share_acc: f64,
    share_windows: u64,
}

impl Runtime {
    fn build_engine(spec: &TenantSpec, seed: u64) -> EngineKind {
        match &spec.load {
            TenantLoad::Service {
                peak_rps,
                mean_service_cycles,
                demand,
                ..
            } => EngineKind::Service(OpenLoopService::new(
                OpenLoopConfig {
                    peak_rps: *peak_rps,
                    mean_service_cycles: *mean_service_cycles,
                    demand: *demand,
                    capacitance: 0.6,
                    queue_cap: 2_000,
                    seed,
                },
                spec.cores,
            )),
            TenantLoad::Batch { profile } => EngineKind::Batch(
                (0..spec.cores)
                    .map(|_| RunningApp::looping(*profile))
                    .collect(),
            ),
        }
    }

    fn slo(&self) -> Option<SloTarget> {
        match &self.spec.load {
            TenantLoad::Service { slo, .. } => Some(*slo),
            TenantLoad::Batch { .. } => None,
        }
    }
}

impl Scenario {
    /// Total cores the scenario needs (every tenant's block is reserved
    /// for the whole run so churn can reuse it).
    pub fn total_cores(&self) -> usize {
        self.tenants.iter().map(|t| t.cores).sum()
    }

    /// Derived per-tenant RNG seed: deterministic, well-spread.
    fn tenant_seed(&self, index: usize) -> u64 {
        self.seed
            .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Run under `mode` with no observability attached (the fast path
    /// for sweeps; nothing is recorded off the control loop).
    pub fn run(&self, mode: ControlMode) -> SloScorecard {
        self.run_inner::<WideChip>(mode, false, None).0
    }

    /// Run under `mode`, optionally bumping a shared metrics registry;
    /// returns the scorecard and the daemon's decision trace (always
    /// attached on this path, so share retargets and churn show up in
    /// the JSONL sink).
    pub fn run_observed(
        &self,
        mode: ControlMode,
        metrics: Option<Arc<ControlMetrics>>,
    ) -> (SloScorecard, Option<DecisionTrace>) {
        self.run_inner::<WideChip>(mode, true, metrics)
    }

    /// Generic over the chip backend so the scalar-`Chip` reference and
    /// the `WideChip` fast path (the default both public entry points
    /// select) run the very same scenario loop.
    fn run_inner<C: ChipLike>(
        &self,
        mode: ControlMode,
        observe: bool,
        metrics: Option<Arc<ControlMetrics>>,
    ) -> (SloScorecard, Option<DecisionTrace>) {
        let platform = PlatformSpec::skylake();
        assert!(
            self.total_cores() <= platform.num_cores,
            "scenario '{}' needs {} cores, platform has {}",
            self.name,
            self.total_cores(),
            platform.num_cores
        );
        let mut chip = C::shared(Arc::new(platform.clone()));
        if mode == ControlMode::RaplNative {
            chip.set_rapl_limit(Some(self.limit)).unwrap();
        }

        // Assign contiguous core blocks and build runtimes.
        let mut runtimes: Vec<Runtime> = Vec::with_capacity(self.tenants.len());
        let mut next_core = 0usize;
        for (i, spec) in self.tenants.iter().enumerate() {
            let first_core = next_core;
            next_core += spec.cores;
            let app_names = (first_core..next_core)
                .map(|c| format!("{}/{c}", spec.name))
                .collect();
            runtimes.push(Runtime {
                first_core,
                app_names,
                shares: vec![spec.shares; spec.cores],
                engine: Runtime::build_engine(spec, self.tenant_seed(i)),
                tracker: spec_slo(spec).map(SloTracker::new),
                active: false,
                energy_j: 0.0,
                completed: 0,
                dropped: 0,
                instructions: 0,
                tail_marks: Vec::new(),
                share_acc: 0.0,
                share_windows: 0,
                spec: spec.clone(),
            });
        }

        // Daemon over the initially active tenants.
        let policy = match mode {
            ControlMode::RaplNative => PolicyKind::RaplNative,
            _ => PolicyKind::FrequencyShares,
        };
        let mut initial_apps = Vec::new();
        for rt in &mut runtimes {
            if rt.spec.active_at(Seconds(0.0)) {
                rt.active = true;
                for (i, name) in rt.app_names.iter().enumerate() {
                    initial_apps.push(
                        AppSpec::new(name.clone(), rt.first_core + i)
                            .with_priority(rt.spec.priority)
                            .with_shares(rt.shares[i])
                            .with_baseline_ips(BASELINE_IPS),
                    );
                }
            }
        }
        let config = DaemonConfig::new(policy, self.limit, initial_apps);
        let mut daemon = Daemon::new(config, &platform).expect("scenario daemon config");
        if observe {
            daemon.attach_observer(match metrics {
                Some(m) => DecisionTrace::with_metrics(m),
                None => DecisionTrace::new(),
            });
        }
        let controller = SloController::new(self.controller);

        let action = daemon.initial();
        chip.set_all_requested(&action.freqs).unwrap();
        let mut parked = action.parked.clone();
        for (core, &p) in parked.iter().enumerate() {
            chip.set_forced_idle(core, p).unwrap();
        }

        let mut sampler = Sampler::new(&chip);
        let total = self.warmup.value() + self.duration.value();
        let mut t = 0.0;
        let mut next_control = CONTROL;
        let mut warmed = false;
        let mut pkg_energy = 0.0;
        let mut measured_ticks = 0u64;
        let mut load_buf: Vec<LoadDescriptor> = Vec::new();
        let mut freq_buf: Vec<KiloHertz> = Vec::new();
        let mut activity: Vec<f64> = vec![0.0; runtimes.len()];

        while t < total {
            // --- workload ticks ---
            for a in activity.iter_mut() {
                *a = 0.0;
            }
            for (ti, rt) in runtimes.iter_mut().enumerate() {
                if !rt.active {
                    continue;
                }
                let block = rt.first_core..rt.first_core + rt.spec.cores;
                match &mut rt.engine {
                    EngineKind::Service(svc) => {
                        svc.set_rate_scale(rt.spec.trace.intensity(Seconds(t)));
                        freq_buf.clear();
                        freq_buf.extend(block.clone().map(|c| {
                            if parked[c] {
                                KiloHertz(1)
                            } else {
                                chip.effective_freq(c)
                            }
                        }));
                        svc.advance_into(TICK, &freq_buf, &mut load_buf);
                        for (i, c) in block.enumerate() {
                            if parked[c] {
                                continue;
                            }
                            let load = load_buf[i];
                            let hz = freq_buf[i].hz();
                            let instr = (load.utilization * hz * TICK.value()) as u64;
                            chip.set_load(c, load).unwrap();
                            chip.add_instructions(c, instr).unwrap();
                            activity[ti] += load.utilization * hz;
                        }
                    }
                    EngineKind::Batch(apps) => {
                        for (i, c) in block.enumerate() {
                            if parked[c] {
                                continue;
                            }
                            let f = chip.effective_freq(c);
                            let out = apps[i].advance(TICK, f);
                            chip.set_load(c, out.load).unwrap();
                            chip.add_instructions(c, out.instructions).unwrap();
                            activity[ti] += out.load.utilization * f.hz();
                            if warmed {
                                rt.instructions += out.instructions;
                            }
                        }
                    }
                }
            }
            chip.tick(TICK);
            if warmed {
                let pkg_w = chip.package_power().value();
                pkg_energy += pkg_w * TICK.value();
                measured_ticks += 1;
                let total_activity: f64 = activity.iter().sum();
                if total_activity > 0.0 {
                    for (rt, &a) in runtimes.iter_mut().zip(&activity) {
                        rt.energy_j += pkg_w * TICK.value() * a / total_activity;
                    }
                }
            }
            t += TICK.value();

            // --- control boundary ---
            if t + 1e-9 < next_control {
                continue;
            }
            next_control += CONTROL;

            // Churn first: arrivals and departures apply at boundaries.
            for rt in runtimes.iter_mut() {
                let should = rt.spec.active_at(Seconds(t));
                if should && !rt.active {
                    for (i, name) in rt.app_names.iter().enumerate() {
                        daemon
                            .add_app(
                                AppSpec::new(name.clone(), rt.first_core + i)
                                    .with_priority(rt.spec.priority)
                                    .with_shares(rt.shares[i])
                                    .with_baseline_ips(BASELINE_IPS),
                            )
                            .expect("tenant admission");
                    }
                    rt.active = true;
                } else if !should && rt.active {
                    for name in &rt.app_names {
                        daemon.remove_app(name).expect("tenant departure");
                    }
                    for c in rt.first_core..rt.first_core + rt.spec.cores {
                        chip.set_load(c, LoadDescriptor::IDLE).unwrap();
                    }
                    rt.active = false;
                }
            }

            // Per-tenant window stats feed the trackers.
            for rt in runtimes.iter_mut() {
                if !rt.active {
                    continue;
                }
                if let EngineKind::Service(svc) = &mut rt.engine {
                    let slo = rt.tracker.as_ref().expect("service has tracker").target();
                    let tail = if svc.completed() > 0 {
                        svc.percentile_ms(slo.percentile)
                    } else {
                        0.0
                    };
                    if let Some(tr) = &mut rt.tracker {
                        tr.observe(tail);
                    }
                    if warmed {
                        rt.tail_marks.push(tail);
                        rt.completed += svc.completed();
                        rt.dropped += svc.dropped();
                    }
                    svc.reset_stats();
                }
                if warmed {
                    let mean: f64 =
                        rt.shares.iter().map(|&s| s as f64).sum::<f64>() / rt.shares.len() as f64;
                    rt.share_acc += mean;
                    rt.share_windows += 1;
                }
            }

            // Crossing the warm-up boundary: restart every measurement
            // window (after the trackers saw the warm-up windows — the
            // controller needs pressure history, scoring does not).
            if !warmed && t + 1e-9 >= self.warmup.value() {
                warmed = true;
                for rt in runtimes.iter_mut() {
                    if let EngineKind::Service(svc) = &mut rt.engine {
                        svc.reset_stats();
                    }
                    if let Some(tr) = &mut rt.tracker {
                        tr.reset();
                    }
                }
            }

            // SLO-aware share market.
            if mode == ControlMode::SloAware {
                let mut views = Vec::new();
                let mut index = Vec::new();
                for (ti, rt) in runtimes.iter().enumerate() {
                    if !rt.active {
                        continue;
                    }
                    let batch = rt.spec.load.is_batch();
                    let pressure = rt.tracker.as_ref().map_or(0.0, |tr| tr.last_pressure());
                    for (i, &shares) in rt.shares.iter().enumerate() {
                        views.push(ShareView {
                            id: index.len(),
                            shares,
                            pressure,
                            batch,
                        });
                        index.push((ti, i));
                    }
                }
                for change in controller.plan(&views) {
                    let (ti, i) = index[change.id];
                    let rt = &mut runtimes[ti];
                    daemon
                        .retarget_shares(&rt.app_names[i], change.to)
                        .expect("retarget planned app");
                    rt.shares[i] = change.to;
                }
            }

            // Daemon control interval.
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).unwrap();
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).unwrap();
                }
                parked = action.parked.clone();
            }
        }

        let duration = measured_ticks as f64 * TICK.value();
        let tenants = runtimes
            .iter()
            .map(|rt| {
                let (attainment, tail_ms, target_ms, percentile) = match (&rt.tracker, rt.slo()) {
                    (Some(tr), Some(slo)) => (
                        tr.attainment(),
                        stats::percentile(&rt.tail_marks, 50.0),
                        slo.latency_ms,
                        slo.percentile,
                    ),
                    _ => (1.0, 0.0, 0.0, 0.0),
                };
                let batch = rt.spec.load.is_batch();
                let goodput = if duration <= 0.0 {
                    0.0
                } else if batch {
                    rt.instructions as f64 / duration / 1e9
                } else {
                    rt.completed as f64 / duration
                };
                TenantScore {
                    name: rt.spec.name,
                    batch,
                    attainment,
                    tail_ms,
                    target_ms,
                    percentile,
                    completed: rt.completed,
                    dropped: rt.dropped,
                    goodput,
                    mean_power_w: if duration > 0.0 {
                        rt.energy_j / duration
                    } else {
                        0.0
                    },
                    energy_wh: rt.energy_j / 3600.0,
                    mean_shares: if rt.share_windows > 0 {
                        rt.share_acc / rt.share_windows as f64
                    } else {
                        rt.spec.shares as f64
                    },
                }
            })
            .collect();

        let card = SloScorecard {
            scenario: self.name,
            mode: mode.name(),
            duration_s: duration,
            mean_package_w: if duration > 0.0 {
                pkg_energy / duration
            } else {
                0.0
            },
            budget_w: self.limit.value(),
            tariff_usd_per_kwh: self.tariff,
            tenants,
        };
        (card, daemon.take_observer())
    }
}

fn spec_slo(spec: &TenantSpec) -> Option<SloTarget> {
    match &spec.load {
        TenantLoad::Service { slo, .. } => Some(*slo),
        TenantLoad::Batch { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_lookup() {
        for name in names() {
            let s = by_name(name).expect("library scenario");
            assert_eq!(s.name, *name);
            assert!(s.total_cores() <= 10, "{name} oversubscribes the socket");
            assert!(!s.tenants.is_empty());
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let mut s = tail_heavy();
        // Shrink to keep the test fast; determinism is what matters.
        s.duration = Seconds(8.0);
        s.warmup = Seconds(3.0);
        let a = s.run(ControlMode::SloAware);
        let b = s.run(ControlMode::SloAware);
        assert_eq!(a.to_jsonl(), b.to_jsonl(), "same seed, same bytes");
        assert_eq!(a.prometheus(), b.prometheus());
    }

    #[test]
    fn churn_scenario_admits_and_departs() {
        let mut s = churn();
        s.duration = Seconds(40.0);
        s.warmup = Seconds(5.0);
        // Shift the window inside the shortened run.
        s.tenants[1] = s.tenants[1]
            .clone()
            .with_window(Seconds(10.0), Some(Seconds(30.0)));
        let (card, trace) = s.run_observed(ControlMode::StaticShares, None);
        let burst = card.tenants.iter().find(|t| t.name == "burst").unwrap();
        assert!(
            burst.completed > 0,
            "burst tenant must serve while present: {card:?}"
        );
        let trace = trace.expect("observer attached");
        assert!(!trace.is_empty(), "decision records recorded");
    }

    #[test]
    fn slo_aware_moves_shares_toward_pressured_service() {
        let mut s = tail_heavy();
        s.duration = Seconds(20.0);
        s.warmup = Seconds(5.0);
        let card = s.run(ControlMode::SloAware);
        let svc = card.tenants.iter().find(|t| !t.batch).unwrap();
        let bg = card.tenants.iter().find(|t| t.batch).unwrap();
        assert!(
            svc.mean_shares > 55.0 && bg.mean_shares < 45.0,
            "controller must shift weight to the pressured service: \
             svc {:.1}, bg {:.1}",
            svc.mean_shares,
            bg.mean_shares
        );
    }
}
