//! SLO-aware share control: boost pressured tenants, shed from batch.
//!
//! The daemon's share policies divide the package budget proportionally
//! to static weights; this controller closes the loop between measured
//! tail latency and those weights. Each control interval it sees one
//! [`ShareView`] per daemon app (one per tenant core) carrying the
//! owning tenant's SLO *pressure* (measured tail over target, from
//! [`pap_telemetry::slo::SloTracker`]) and plans integer share
//! transfers: apps whose pressure exceeds the high watermark are funded
//! one share point at a time from batch apps first, then from service
//! apps comfortably under their targets. Transfers are strictly 1:1
//! between apps, so the total share pool is conserved exactly — the
//! controller reweights the division of the budget, it never inflates
//! the currency. The planner is a pure function of its inputs, which is
//! what makes the conservation property proptestable.

/// One daemon app's view going into the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareView {
    /// Caller-side identifier (index into the app list); echoed back in
    /// [`ShareChange`].
    pub id: usize,
    /// Current shares.
    pub shares: u32,
    /// Owning tenant's SLO pressure (tail/target). Batch apps carry 0.
    pub pressure: f64,
    /// Whether the app belongs to the batch class.
    pub batch: bool,
}

/// A planned share retarget for one app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShareChange {
    /// The app's `id` from its [`ShareView`].
    pub id: usize,
    /// Shares before.
    pub from: u32,
    /// Shares after.
    pub to: u32,
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloControllerConfig {
    /// Pressure at or above which an app is boosted (e.g. 0.9: act
    /// *before* the SLO is violated).
    pub high: f64,
    /// Pressure at or below which a service app may donate shares.
    pub low: f64,
    /// Maximum points granted to one app per planning round.
    pub step: u32,
    /// Floor no app is shed below (the daemon rejects zero shares, and
    /// a starved batch class could never recover).
    pub min_shares: u32,
    /// Ceiling no app is boosted above.
    pub max_shares: u32,
}

impl Default for SloControllerConfig {
    fn default() -> SloControllerConfig {
        SloControllerConfig {
            high: 0.9,
            low: 0.6,
            step: 10,
            min_shares: 5,
            max_shares: 200,
        }
    }
}

/// The share-market planner. Stateless between rounds: all history
/// lives in the measured pressures.
#[derive(Debug, Clone, Default)]
pub struct SloController {
    cfg: SloControllerConfig,
}

impl SloController {
    /// A controller with the given thresholds.
    pub fn new(cfg: SloControllerConfig) -> SloController {
        SloController { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> SloControllerConfig {
        self.cfg
    }

    /// Plan one round of share transfers. Returns only apps whose
    /// shares actually change; the sum of shares over the returned
    /// changes (and a fortiori over all apps) is conserved exactly.
    /// Deterministic: ties break on `id`.
    pub fn plan(&self, views: &[ShareView]) -> Vec<ShareChange> {
        let cfg = self.cfg;
        let mut shares: Vec<u32> = views.iter().map(|v| v.shares).collect();

        // Receivers: pressured service apps with headroom, most
        // pressured first.
        let mut receivers: Vec<usize> = (0..views.len())
            .filter(|&i| {
                !views[i].batch
                    && views[i].pressure.is_finite()
                    && views[i].pressure >= cfg.high
                    && views[i].shares < cfg.max_shares
            })
            .collect();
        receivers.sort_by(|&a, &b| {
            views[b]
                .pressure
                .partial_cmp(&views[a].pressure)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(views[a].id.cmp(&views[b].id))
        });

        // Donors: batch apps above the floor first (largest holdings
        // first, so shedding spreads), then comfortable service apps
        // (least pressured first).
        let mut batch_donors: Vec<usize> = (0..views.len())
            .filter(|&i| views[i].batch && views[i].shares > cfg.min_shares)
            .collect();
        batch_donors.sort_by(|&a, &b| {
            views[b]
                .shares
                .cmp(&views[a].shares)
                .then(views[a].id.cmp(&views[b].id))
        });
        let mut relaxed_donors: Vec<usize> = (0..views.len())
            .filter(|&i| {
                !views[i].batch
                    && views[i].pressure.is_finite()
                    && views[i].pressure <= cfg.low
                    && views[i].shares > cfg.min_shares
            })
            .collect();
        relaxed_donors.sort_by(|&a, &b| {
            views[a]
                .pressure
                .partial_cmp(&views[b].pressure)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(views[a].id.cmp(&views[b].id))
        });
        // Transfer one point at a time, round-robin *within* a tier so
        // no single donor is drained while peers sit untouched — but
        // batch donors are exhausted to the floor before any relaxed
        // service gives up a point.
        let tiers = [batch_donors, relaxed_donors];
        let mut cursors = [0usize; 2];
        for &r in &receivers {
            let want = cfg.step.min(cfg.max_shares - shares[r]);
            let mut granted = 0;
            for (ti, tier) in tiers.iter().enumerate() {
                let mut exhausted = 0;
                while granted < want && exhausted < tier.len() {
                    let d = tier[cursors[ti] % tier.len()];
                    cursors[ti] += 1;
                    if d != r && shares[d] > cfg.min_shares {
                        shares[d] -= 1;
                        shares[r] += 1;
                        granted += 1;
                        exhausted = 0;
                    } else {
                        exhausted += 1;
                    }
                }
                if granted >= want {
                    break;
                }
            }
        }

        views
            .iter()
            .zip(&shares)
            .filter(|(v, &s)| v.shares != s)
            .map(|(v, &s)| ShareChange {
                id: v.id,
                from: v.shares,
                to: s,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(views: &[ShareView], changes: &[ShareChange]) -> (u64, u64) {
        let before: u64 = views.iter().map(|v| v.shares as u64).sum();
        let mut after = before;
        for c in changes {
            after = after - c.from as u64 + c.to as u64;
        }
        (before, after)
    }

    #[test]
    fn boosts_pressured_from_batch_first() {
        let ctl = SloController::default();
        let views = [
            ShareView {
                id: 0,
                shares: 60,
                pressure: 1.2,
                batch: false,
            },
            ShareView {
                id: 1,
                shares: 60,
                pressure: 0.3,
                batch: false,
            },
            ShareView {
                id: 2,
                shares: 40,
                pressure: 0.0,
                batch: true,
            },
        ];
        let changes = ctl.plan(&views);
        let boosted = changes.iter().find(|c| c.id == 0).expect("boost");
        assert_eq!(boosted.to, 70, "full step granted");
        let batch = changes.iter().find(|c| c.id == 2).expect("shed");
        assert_eq!(batch.to, 30, "batch funds the whole boost");
        assert!(
            !changes.iter().any(|c| c.id == 1),
            "relaxed service untouched while batch has points"
        );
        let (before, after) = total(&views, &changes);
        assert_eq!(before, after);
    }

    #[test]
    fn sheds_from_relaxed_service_when_batch_dry() {
        let ctl = SloController::new(SloControllerConfig {
            step: 6,
            ..SloControllerConfig::default()
        });
        let views = [
            ShareView {
                id: 0,
                shares: 50,
                pressure: 1.5,
                batch: false,
            },
            ShareView {
                id: 1,
                shares: 50,
                pressure: 0.2,
                batch: false,
            },
            ShareView {
                id: 2,
                shares: 5,
                pressure: 0.0,
                batch: true,
            }, // at the floor
        ];
        let changes = ctl.plan(&views);
        assert!(
            changes.iter().any(|c| c.id == 1 && c.to == 44),
            "relaxed service donates: {changes:?}"
        );
        assert!(!changes.iter().any(|c| c.id == 2), "floored batch spared");
        let (before, after) = total(&views, &changes);
        assert_eq!(before, after);
    }

    #[test]
    fn no_donors_means_no_changes() {
        let ctl = SloController::default();
        // Everyone pressured, nobody below low, batch at floor.
        let views = [
            ShareView {
                id: 0,
                shares: 80,
                pressure: 1.1,
                batch: false,
            },
            ShareView {
                id: 1,
                shares: 5,
                pressure: 0.0,
                batch: true,
            },
        ];
        assert!(ctl.plan(&views).is_empty());
        assert!(ctl.plan(&[]).is_empty());
    }

    #[test]
    fn respects_bounds_and_non_finite_pressure() {
        let ctl = SloController::new(SloControllerConfig {
            max_shares: 65,
            ..SloControllerConfig::default()
        });
        let views = [
            ShareView {
                id: 0,
                shares: 60,
                pressure: f64::MAX,
                batch: false,
            },
            ShareView {
                id: 1,
                shares: 60,
                pressure: f64::NAN,
                batch: false,
            },
            ShareView {
                id: 2,
                shares: 40,
                pressure: 0.0,
                batch: true,
            },
        ];
        let changes = ctl.plan(&views);
        let boosted = changes.iter().find(|c| c.id == 0).expect("boost");
        assert_eq!(boosted.to, 65, "clamped at max_shares");
        assert!(
            !changes.iter().any(|c| c.id == 1),
            "NaN pressure neither boosts nor donates"
        );
        let (before, after) = total(&views, &changes);
        assert_eq!(before, after);
    }
}
