//! Property tests for the tenant layer: the share planner conserves
//! the share pool and respects its bounds on arbitrary inputs, seeded
//! samplers are deterministic, and composed arrival traces are total
//! and bounded no matter what they are fed.

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::Seconds;
use pap_tenants::prelude::*;
use pap_workloads::latency::DemandShape;
use pap_workloads::openloop::{OpenLoopConfig, OpenLoopService};
use proptest::prelude::*;

fn shape() -> impl Strategy<Value = DemandShape> {
    (0u32..3, 0.2f64..1.5, 1.1f64..3.0).prop_map(|(k, sigma, alpha)| match k {
        0 => DemandShape::Exponential,
        1 => DemandShape::LogNormal { sigma },
        _ => DemandShape::Pareto { alpha },
    })
}

/// Mostly plausible pressures, with a NaN/∞ tail to exercise the
/// planner's non-finite handling.
fn pressure() -> impl Strategy<Value = f64> {
    (0u32..10, 0.0f64..3.0).prop_map(|(k, p)| match k {
        8 => f64::NAN,
        9 => f64::INFINITY,
        _ => p,
    })
}

fn views() -> impl Strategy<Value = Vec<ShareView>> {
    proptest::collection::vec((1u32..300, pressure(), any::<bool>()), 0..24).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(id, (shares, pressure, batch))| ShareView {
                id,
                shares,
                pressure,
                batch,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However the pool looks, the planner's transfers sum to zero:
    /// total shares after applying the plan equal total shares before.
    /// Every change is real (from != to), anchored to the app's actual
    /// holdings, and inside the configured floor/ceiling.
    #[test]
    fn planner_conserves_the_share_pool(
        views in views(),
        high in 0.5f64..1.5,
        step in 1u32..30,
    ) {
        let cfg = SloControllerConfig {
            high,
            low: high * 0.6,
            step,
            min_shares: 5,
            max_shares: 200,
        };
        let ctl = SloController::new(cfg);
        let changes = ctl.plan(&views);

        let before: u64 = views.iter().map(|v| v.shares as u64).sum();
        let mut after = before;
        for c in &changes {
            let v = &views[c.id];
            prop_assert_eq!(v.id, c.id, "ids echo the caller's indices");
            prop_assert_eq!(v.shares, c.from, "change anchored to real holdings");
            prop_assert!(c.from != c.to, "only real changes are returned: {c:?}");
            if c.to > c.from {
                prop_assert!(c.to <= cfg.max_shares, "boost past ceiling: {c:?}");
            } else {
                prop_assert!(c.to >= cfg.min_shares, "shed below floor: {c:?}");
            }
            after = after - u64::from(c.from) + u64::from(c.to);
        }
        prop_assert_eq!(before, after, "share pool must be conserved: {:?}", changes);
    }

    /// Planning is a pure function: the same views yield the same plan.
    #[test]
    fn planner_is_deterministic(views in views()) {
        let ctl = SloController::default();
        prop_assert_eq!(ctl.plan(&views), ctl.plan(&views));
    }

    /// Two open-loop services built from the same seed stay in
    /// lock-step through an identical drive sequence — the property the
    /// sweep engine relies on to stay byte-reproducible across
    /// `PAP_SWEEP_THREADS` settings.
    #[test]
    fn open_loop_service_is_deterministic_per_seed(
        seed in 0u64..u64::MAX,
        demand in shape(),
        scale in 0.05f64..1.0,
    ) {
        let cfg = OpenLoopConfig {
            peak_rps: 600.0,
            mean_service_cycles: 8.0e6,
            demand,
            capacitance: 0.6,
            queue_cap: 500,
            seed,
        };
        let mut a = OpenLoopService::new(cfg.clone(), 2);
        let mut b = OpenLoopService::new(cfg, 2);
        a.set_rate_scale(scale);
        b.set_rate_scale(scale);
        let freqs = [KiloHertz(2_200_000), KiloHertz(1_400_000)];
        for _ in 0..200 {
            let la = a.advance(Seconds(0.001), &freqs);
            let lb = b.advance(Seconds(0.001), &freqs);
            prop_assert_eq!(la, lb);
        }
        prop_assert_eq!(a.completed(), b.completed());
        prop_assert_eq!(a.dropped(), b.dropped());
        prop_assert_eq!(a.percentile_ms(99.0), b.percentile_ms(99.0));
    }

    /// A composed arrival trace is total and inside [0, 1] for any
    /// parameters and any query time, finite or not.
    #[test]
    fn arrival_trace_is_total_and_bounded(
        mean in -1.0f64..2.0,
        swing in -1.0f64..2.0,
        period in -10.0f64..100.0,
        start in 0.0f64..50.0,
        ramp in -1.0f64..10.0,
        hold in -1.0f64..10.0,
        decay in -1.0f64..10.0,
        boost in -2.0f64..2.0,
        t in (0u32..9, -100.0f64..1000.0).prop_map(|(k, t)| match k {
            6 => f64::NAN,
            7 => f64::INFINITY,
            8 => f64::NEG_INFINITY,
            _ => t,
        }),
    ) {
        let tr = ArrivalTrace::diurnal(mean, swing, Seconds(period)).with_crowd(FlashCrowd {
            start: Seconds(start),
            ramp: Seconds(ramp),
            hold: Seconds(hold),
            decay: Seconds(decay),
            boost,
        });
        let v = tr.intensity(Seconds(t));
        prop_assert!(v.is_finite() && (0.0..=1.0).contains(&v), "intensity {v} at t={t}");
    }
}
