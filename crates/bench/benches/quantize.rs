//! Cost and quality of the Ryzen 3-P-state selection (§5 "Ryzen
//! details"): the exact DP clustering vs the naive evenly-spaced
//! snapping, across core counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pap_simcpu::freq::{FreqGrid, KiloHertz};
use powerd::quantize::{cluster_to_slots, greedy_cluster, ClusterStrategy};

fn grid() -> FreqGrid {
    FreqGrid::new(
        KiloHertz::from_mhz(400),
        KiloHertz::from_mhz(3800),
        KiloHertz::from_mhz(25),
    )
}

fn targets(n: usize) -> Vec<KiloHertz> {
    // deterministic spread resembling a share allocation
    (0..n)
        .map(|i| KiloHertz::from_mhz(800 + ((i * 2657) % 2600) as u64))
        .collect()
}

fn bench_cluster(c: &mut Criterion) {
    let g = grid();
    let mut group = c.benchmark_group("three_pstate_selection");
    for n in [8usize, 16, 32, 64] {
        let t = targets(n);
        group.bench_with_input(BenchmarkId::new("dp_optimal", n), &t, |b, t| {
            b.iter(|| cluster_to_slots(t, 3, &g, ClusterStrategy::Mean))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &t, |b, t| {
            b.iter(|| greedy_cluster(t, 3, &g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
