//! Throughput of the websearch closed-loop queueing model, which
//! dominates the latency experiments' wall-clock cost.

use criterion::{criterion_group, criterion_main, Criterion};

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::Seconds;
use pap_workloads::latency::{ClosedLoopService, ServiceConfig};

fn bench_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("websearch_advance");
    for (name, mhz) in [("unsaturated_3ghz", 3000u64), ("saturated_800mhz", 800u64)] {
        let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 9);
        let freqs = vec![KiloHertz::from_mhz(mhz); 9];
        // warm into steady state
        for _ in 0..5_000 {
            svc.advance(Seconds(0.001), &freqs);
        }
        g.bench_function(name, |b| b.iter(|| svc.advance(Seconds(0.001), &freqs)));
    }
    g.finish();
}

criterion_group!(benches, bench_advance);
criterion_main!(benches);
