//! Simulator throughput: chip ticks per second with all cores loaded.
//!
//! Experiment wall-clock cost is dominated by `Chip::tick`; this bench
//! keeps the sweep binaries honest about how much simulated time a run
//! can afford.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::engine::RunningApp;
use pap_workloads::spec;

fn loaded_chip(platform: PlatformSpec, rapl: bool) -> Chip {
    let mut chip = Chip::new(platform);
    for c in 0..chip.num_cores() {
        let f = chip.spec().base_freq;
        chip.set_requested_freq(c, f).unwrap();
        chip.set_load(
            c,
            LoadDescriptor {
                capacitance: 1.4,
                utilization: 1.0,
                avx: c % 2 == 0,
            },
        )
        .unwrap();
    }
    if rapl {
        chip.set_rapl_limit(Some(Watts(50.0))).unwrap();
    }
    chip
}

fn bench_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("chip_tick");
    g.throughput(Throughput::Elements(1));
    for (name, rapl) in [("skylake_free", false), ("skylake_rapl", true)] {
        let mut chip = loaded_chip(PlatformSpec::skylake(), rapl);
        g.bench_function(name, |b| b.iter(|| chip.tick(Seconds(0.001))));
    }
    let mut chip = loaded_chip(PlatformSpec::ryzen(), false);
    g.bench_function("ryzen_free", |b| b.iter(|| chip.tick(Seconds(0.001))));
    g.finish();
}

fn bench_workload_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_advance");
    let mut app = RunningApp::looping(spec::GCC);
    let f = KiloHertz::from_mhz(2200);
    g.bench_function("gcc_1ms", |b| b.iter(|| app.advance(Seconds(0.001), f)));
    g.finish();
}

criterion_group!(benches, bench_tick, bench_workload_step);
criterion_main!(benches);
