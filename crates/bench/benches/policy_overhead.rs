//! Control-loop overhead: one daemon `step()` for each policy.
//!
//! The paper argues the policy should ultimately live in hardware for
//! low sampling overhead (§5); this bench quantifies the userspace cost —
//! a policy step must be negligible against the 1 s control interval.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::sampler::{CoreSample, Sample};
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;

fn sample(ncores: usize, pkg: f64) -> Sample {
    Sample {
        time: Seconds(10.0),
        interval: Seconds(1.0),
        package_power: Watts(pkg),
        cores_power: Watts(pkg - 12.0),
        cores: (0..ncores)
            .map(|i| CoreSample {
                rates: CoreRates {
                    active_freq: KiloHertz::from_mhz(1500 + 100 * (i as u64 % 10)),
                    c0_residency: 1.0,
                    ips: 1.5e9,
                },
                power: Some(Watts(3.0)),
                requested_freq: KiloHertz::from_mhz(2000),
            })
            .collect(),
    }
}

fn daemon(policy: PolicyKind, platform: &PlatformSpec) -> Daemon {
    let apps: Vec<AppSpec> = (0..platform.num_cores)
        .map(|i| {
            AppSpec::new(format!("app{i}"), i)
                .with_priority(if i % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                })
                .with_shares(10 + 10 * i as u32)
                .with_baseline_ips(3e9)
        })
        .collect();
    let mut d =
        Daemon::new(DaemonConfig::new(policy, Watts(45.0), apps), platform).expect("valid daemon");
    d.initial();
    d
}

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("daemon_step");
    let sky = PlatformSpec::skylake();
    let ryz = PlatformSpec::ryzen();
    for (name, policy, platform) in [
        ("priority/skylake", PolicyKind::Priority, &sky),
        ("freq_shares/skylake", PolicyKind::FrequencyShares, &sky),
        ("perf_shares/skylake", PolicyKind::PerformanceShares, &sky),
        ("power_shares/ryzen", PolicyKind::PowerShares, &ryz),
        ("freq_shares/ryzen_3slot", PolicyKind::FrequencyShares, &ryz),
    ] {
        let s = sample(platform.num_cores, 52.0);
        g.bench_function(name, |b| {
            b.iter_batched(
                || daemon(policy, platform),
                |mut d| d.step(&s),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
