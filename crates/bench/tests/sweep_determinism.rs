//! Serial-vs-parallel byte-identity for sweep-engine binaries.
//!
//! The sweep engine promises deterministic input-ordered collection, so
//! forcing a binary serial (`PAP_SWEEP_THREADS=serial`) must produce
//! *byte-identical* stdout to a multi-threaded run. This drives real
//! ported binaries end to end — any nondeterminism in cell scheduling,
//! result collection, or table rendering shows up as a diff.

use std::process::Command;

fn stdout_with_threads(bin: &str, threads: &str) -> Vec<u8> {
    let out = Command::new(bin)
        .env("PAP_SWEEP_THREADS", threads)
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
    assert!(
        out.status.success(),
        "{bin} exited with {:?} under PAP_SWEEP_THREADS={threads}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn assert_serial_parallel_identical(bin: &str) {
    let serial = stdout_with_threads(bin, "serial");
    let parallel = stdout_with_threads(bin, "4");
    assert_eq!(
        serial, parallel,
        "{bin}: parallel sweep output differs from serial"
    );
}

#[test]
fn ext_governors_serial_parallel_identical() {
    assert_serial_parallel_identical(env!("CARGO_BIN_EXE_ext_governors"));
}

#[test]
fn fig06_timeshare_serial_parallel_identical() {
    assert_serial_parallel_identical(env!("CARGO_BIN_EXE_fig06_timeshare"));
}

#[test]
fn ext_idle_states_serial_parallel_identical() {
    assert_serial_parallel_identical(env!("CARGO_BIN_EXE_ext_idle_states"));
}
