//! Shared experiment-harness utilities for the figure/table binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §4 for the index). The helpers here cover what
//! the binaries share: fixed-frequency chip runs (for the mechanism
//! studies of §3 that bypass the daemon), parallel parameter sweeps, and
//! the common sweep constants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

// The sweep engine moved to `pap-scale` (the sharded cluster control
// plane grew out of it); this re-export keeps the historical
// `pap_bench::sweep` paths working for every binary and external user.
pub use pap_scale::sweep;

use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::sampler::Sampler;
use pap_telemetry::trace::Trace;
use pap_workloads::engine::RunningApp;
use pap_workloads::profile::WorkloadProfile;

pub use powerd::report::{f1, f3, Table};

/// The power limits the paper sweeps on Skylake (W).
pub const SKYLAKE_LIMITS: [f64; 4] = [85.0, 65.0, 50.0, 40.0];

/// The limits used in the policy evaluations (§6).
pub const POLICY_LIMITS: [f64; 3] = [85.0, 50.0, 40.0];

/// Outcome of a fixed-frequency (daemon-less) run.
#[derive(Debug, Clone)]
pub struct FixedRunResult {
    /// Mean package power over the measurement window.
    pub mean_package_power: Watts,
    /// Mean active frequency per core (MHz; 0 for idle cores).
    pub mean_freq_mhz: Vec<f64>,
    /// Mean IPS per core.
    pub mean_ips: Vec<f64>,
    /// The telemetry trace.
    pub trace: Trace,
}

/// Run workloads at fixed requested frequencies, optionally under a native
/// RAPL limit — the §3 mechanism-study shape (no control daemon).
///
/// `assignments[i]` places a looping workload on core `i` (or leaves it
/// idle); `requests[i]` is the programmed frequency for core `i`.
pub fn run_fixed(
    platform: PlatformSpec,
    requests: &[KiloHertz],
    assignments: &[Option<WorkloadProfile>],
    rapl_limit: Option<Watts>,
    duration: Seconds,
) -> FixedRunResult {
    assert_eq!(requests.len(), platform.num_cores);
    assert_eq!(assignments.len(), platform.num_cores);
    let mut chip = Chip::new(platform);
    chip.set_all_requested(requests).expect("valid requests");
    if let Some(w) = rapl_limit {
        chip.set_rapl_limit(Some(w)).expect("platform has RAPL");
    }
    let mut apps: Vec<Option<RunningApp>> = assignments
        .iter()
        .map(|a| a.map(RunningApp::looping))
        .collect();

    let tick = Seconds(0.002);
    let warmup = Seconds(3.0);
    let mut sampler = Sampler::new(&chip);
    let mut trace = Trace::new();
    let total = warmup.value() + duration.value();
    let mut t = 0.0;
    let mut next_sample = 1.0;
    while t < total {
        for (core, slot) in apps.iter_mut().enumerate() {
            if let Some(app) = slot {
                let f = chip.effective_freq(core);
                let out = app.advance(tick, f);
                chip.set_load(core, out.load).unwrap();
                chip.add_instructions(core, out.instructions).unwrap();
            }
        }
        chip.tick(tick);
        t += tick.value();
        if t + 1e-9 >= next_sample {
            next_sample += 1.0;
            if let Some(s) = sampler.sample(&chip) {
                trace.push(s);
            }
        }
    }
    trace.trim_warmup(warmup.value() as usize);

    let n = trace.samples().first().map_or(0, |s| s.cores.len());
    FixedRunResult {
        mean_package_power: trace.mean_package_power(),
        mean_freq_mhz: (0..n).map(|c| trace.mean_active_freq_mhz(c)).collect(),
        mean_ips: (0..n).map(|c| trace.mean_ips(c)).collect(),
        trace,
    }
}

/// Map `f` over `items` on worker threads (sweeps are embarrassingly
/// parallel); results come back in input order.
///
/// Thin wrapper over the [`sweep`] engine with the thread mode taken
/// from `PAP_SWEEP_THREADS` (see [`sweep::Threads::from_env`]), so every
/// binary's sweep can be forced serial for byte-identity checks.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    sweep::run(sweep::Threads::from_env(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_workloads::spec;

    #[test]
    fn fixed_run_measures_single_core() {
        let p = PlatformSpec::skylake();
        let mut req = vec![KiloHertz::from_mhz(2200); 10];
        req[0] = KiloHertz::from_mhz(1500);
        let mut asg: Vec<Option<WorkloadProfile>> = vec![None; 10];
        asg[0] = Some(spec::GCC);
        let r = run_fixed(p, &req, &asg, None, Seconds(10.0));
        assert!((r.mean_freq_mhz[0] - 1500.0).abs() < 1.0);
        assert!(r.mean_ips[0] > 1e8);
        assert_eq!(r.mean_freq_mhz[1], 0.0, "idle core");
        assert!(r.mean_package_power.value() > 10.0);
    }

    #[test]
    fn fixed_run_under_rapl_limit() {
        let p = PlatformSpec::skylake();
        let req = vec![KiloHertz::from_mhz(2400); 10];
        let asg: Vec<Option<WorkloadProfile>> = vec![Some(spec::CAM4); 10];
        let r = run_fixed(p, &req, &asg, Some(Watts(40.0)), Seconds(15.0));
        assert!(
            r.mean_package_power.value() < 44.0,
            "RAPL must hold 40 W, got {}",
            r.mean_package_power
        );
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..64).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out.len(), 64);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i as i32);
        }
        // empty and single-item cases
        assert!(par_map(Vec::<i32>::new(), |x| x).is_empty());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }
}

/// DVFS-sweep machinery shared by the Figure 2 (Skylake) and Figure 3
/// (Ryzen) binaries.
pub mod dvfs {
    use super::*;
    use pap_telemetry::stats::BoxStats;
    use pap_workloads::spec;

    /// The frequency sweep and reference point for one platform's figure.
    pub struct SweepSpec {
        /// Platform to sweep.
        pub platform: PlatformSpec,
        /// Frequencies to visit (MHz).
        pub freqs_mhz: Vec<u64>,
        /// Runtime-normalization reference (MHz).
        pub reference_mhz: u64,
        /// Table title.
        pub title: &'static str,
    }

    /// Run the sweep and print the box-plot table plus a per-benchmark
    /// detail table at the top frequency.
    pub fn run_sweep(sweep: SweepSpec) {
        let benches = spec::spec2017();
        let mut jobs = Vec::new();
        for &mhz in &sweep.freqs_mhz {
            for b in &benches {
                jobs.push((mhz, *b));
            }
        }
        let results = par_map(jobs, |(mhz, bench): (u64, WorkloadProfile)| {
            let n = sweep.platform.num_cores;
            let req = vec![KiloHertz::from_mhz(mhz); n];
            let mut asg: Vec<Option<WorkloadProfile>> = vec![None; n];
            asg[0] = Some(bench);
            let r = run_fixed(sweep.platform.clone(), &req, &asg, None, Seconds(20.0));
            (mhz, bench.name, r.mean_ips[0], r.mean_package_power.value())
        });

        let ips_at = |mhz: u64, name: &str| -> f64 {
            results
                .iter()
                .find(|(m, n, _, _)| *m == mhz && *n == name)
                .map(|(_, _, ips, _)| *ips)
                .expect("swept")
        };

        let mut t = Table::new(
            sweep.title,
            &[
                "freq_mhz",
                "runtime_med",
                "runtime_q1",
                "runtime_q3",
                "pkg_w_med",
                "pkg_w_q1",
                "pkg_w_q3",
                "pkg_w_p99",
            ],
        );
        for &mhz in &sweep.freqs_mhz {
            let runtimes: Vec<f64> = benches
                .iter()
                .map(|b| ips_at(sweep.reference_mhz, b.name) / ips_at(mhz, b.name))
                .collect();
            let powers: Vec<f64> = results
                .iter()
                .filter(|(m, _, _, _)| *m == mhz)
                .map(|(_, _, _, p)| *p)
                .collect();
            let rt = BoxStats::from(&runtimes).expect("non-empty");
            let pw = BoxStats::from(&powers).expect("non-empty");
            t.row(vec![
                format!("{mhz}"),
                f3(rt.median),
                f3(rt.q1),
                f3(rt.q3),
                f1(pw.median),
                f1(pw.q1),
                f1(pw.q3),
                f1(pw.p99),
            ]);
        }
        println!("{t}");

        let top = *sweep.freqs_mhz.last().expect("non-empty sweep");
        let mut d = Table::new(
            format!("Per-benchmark detail at {top} MHz (AVX outliers visible)"),
            &["bench", "avx", "norm_runtime", "pkg_w"],
        );
        for b in &benches {
            let rt = ips_at(sweep.reference_mhz, b.name) / ips_at(top, b.name);
            let pw = results
                .iter()
                .find(|(m, n, _, _)| *m == top && *n == b.name)
                .map(|(_, _, _, p)| *p)
                .expect("swept");
            d.row(vec![
                b.name.to_string(),
                if b.avx { "yes" } else { "no" }.into(),
                f3(rt),
                f1(pw),
            ]);
        }
        println!("{d}");
    }
}

/// The workload mixes of the priority experiments (§6.1, Table 2).
pub mod mixes {
    use pap_workloads::profile::WorkloadProfile;
    use pap_workloads::spec;
    use powerd::config::Priority;

    /// One entry of a mix: a benchmark at a priority level.
    pub type MixEntry = (WorkloadProfile, Priority);

    /// A named priority mix.
    pub struct Mix {
        /// Display label, e.g. "7H 3L".
        pub label: &'static str,
        /// The applications, one per core.
        pub entries: Vec<MixEntry>,
    }

    fn entry(p: WorkloadProfile, pri: Priority, n: usize) -> Vec<MixEntry> {
        vec![(p, pri); n]
    }

    /// Table 2: the Skylake priority mixes (10 cores, HD = cactusBSSN,
    /// LD = leela).
    pub fn skylake_priority() -> Vec<Mix> {
        use Priority::{High as H, Low as L};
        let hd = spec::CACTUS_BSSN;
        let ld = spec::LEELA;
        vec![
            Mix {
                label: "10H 0L",
                entries: [entry(hd, H, 5), entry(ld, H, 5)].concat(),
            },
            Mix {
                label: "7H 3L",
                entries: [
                    entry(hd, H, 4),
                    entry(ld, H, 3),
                    entry(hd, L, 1),
                    entry(ld, L, 2),
                ]
                .concat(),
            },
            Mix {
                label: "5H 5L",
                entries: [entry(hd, H, 5), entry(ld, L, 5)].concat(),
            },
            Mix {
                label: "3H 7L",
                entries: [
                    entry(hd, H, 2),
                    entry(ld, H, 1),
                    entry(hd, L, 3),
                    entry(ld, L, 4),
                ]
                .concat(),
            },
            Mix {
                label: "1H 9L",
                entries: [entry(hd, H, 1), entry(hd, L, 4), entry(ld, L, 5)].concat(),
            },
        ]
    }

    /// The Ryzen priority mixes (8 cores): 8H, 6H2L (mixed demand), 4H4L
    /// (all-HD high class), 2H6L (mixed).
    pub fn ryzen_priority() -> Vec<Mix> {
        use Priority::{High as H, Low as L};
        let hd = spec::CACTUS_BSSN;
        let ld = spec::LEELA;
        vec![
            Mix {
                label: "8H 0L",
                entries: [entry(hd, H, 4), entry(ld, H, 4)].concat(),
            },
            Mix {
                label: "6H 2L",
                entries: [
                    entry(hd, H, 3),
                    entry(ld, H, 3),
                    entry(hd, L, 1),
                    entry(ld, L, 1),
                ]
                .concat(),
            },
            Mix {
                label: "4H 4L",
                entries: [entry(hd, H, 4), entry(ld, L, 4)].concat(),
            },
            Mix {
                label: "2H 6L",
                entries: [
                    entry(hd, H, 1),
                    entry(ld, H, 1),
                    entry(hd, L, 3),
                    entry(ld, L, 3),
                ]
                .concat(),
            },
        ]
    }
}
