//! Extension: thermald-style thermal management (§2.2) closed over the
//! simulated chip.
//!
//! Ten cam4 instances run unconstrained on Skylake; package power heats a
//! first-order thermal zone. Without management the junction sails past
//! the passive trip point. The thermal governor then engages its
//! mechanisms — first frequency capping, then a RAPL limit — regulating
//! temperature at a measured performance cost, and releases them with
//! hysteresis once cool.

use pap_bench::{f1, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::thermal::{ThermalGovernor, ThermalZone};
use pap_simcpu::units::Seconds;
use pap_workloads::engine::RunningApp;
use pap_workloads::spec;

struct Outcome {
    peak_temp: f64,
    end_temp: f64,
    mean_ips: f64,
    mean_power: f64,
}

fn run(managed: bool) -> Outcome {
    let platform = PlatformSpec::skylake();
    let grid = platform.grid;
    let mut chip = Chip::new(platform);
    let mut zone = ThermalZone::new(35.0, 0.9, 90.0); // poorly cooled box
    let mut gov = ThermalGovernor::new(grid, 85.0, 95.0);
    let mut apps: Vec<RunningApp> = (0..10).map(|_| RunningApp::looping(spec::CAM4)).collect();
    for c in 0..10 {
        chip.set_requested_freq(c, KiloHertz::from_mhz(3000))
            .unwrap();
    }

    let dt = Seconds(0.002);
    let mut t = 0.0;
    let mut next_eval = 1.0;
    let mut peak: f64 = 0.0;
    let mut ips_acc = 0.0;
    let mut power_acc = 0.0;
    let mut n = 0.0;
    while t < 600.0 {
        for (c, app) in apps.iter_mut().enumerate() {
            let f = chip.effective_freq(c);
            let out = app.advance(dt, f);
            chip.set_load(c, out.load).unwrap();
            ips_acc += out.instructions as f64;
        }
        chip.tick(dt);
        zone.advance(chip.package_power(), dt);
        peak = peak.max(zone.temperature());
        power_acc += chip.package_power().value() * dt.value();
        n += dt.value();
        t += dt.value();

        if managed && t + 1e-9 >= next_eval {
            next_eval += 1.0;
            let action = gov.evaluate(zone.temperature());
            for c in 0..10 {
                chip.set_requested_freq(c, action.freq_cap).unwrap();
            }
            chip.set_rapl_limit(action.power_limit).unwrap();
        }
    }
    Outcome {
        peak_temp: peak,
        end_temp: zone.temperature(),
        mean_ips: ips_acc / n,
        mean_power: power_acc / n,
    }
}

fn main() {
    let unmanaged = run(false);
    let managed = run(true);
    let mut t = Table::new(
        "Extension: thermald-style management (10x cam4 on Skylake, hot chassis, 85/95 degC trips)",
        &["config", "peak_degC", "end_degC", "pkg_w", "rel_perf"],
    );
    t.row(vec![
        "unmanaged".into(),
        f1(unmanaged.peak_temp),
        f1(unmanaged.end_temp),
        f1(unmanaged.mean_power),
        "1.000".into(),
    ]);
    t.row(vec![
        "thermald".into(),
        f1(managed.peak_temp),
        f1(managed.end_temp),
        f1(managed.mean_power),
        format!("{:.3}", managed.mean_ips / unmanaged.mean_ips),
    ]);
    println!("{t}");
    println!(
        "Expected: unmanaged, the junction exceeds the 85 degC passive trip and \
         keeps climbing; with the governor, temperature regulates near the \
         trip at a modest throughput cost. The same frequency-cap mechanism \
         the power policies use doubles as the thermal actuator — which is \
         why the paper lists thermald among the building blocks (section 2.2)."
    );
}
