//! Extension: generalization sweep over many random mixes (§6.3 taken
//! further).
//!
//! The paper reports two hand-drawn random sets; here we draw 20 seeded
//! 5-app mixes, run each under frequency and performance shares at
//! 40/50 W, and measure how faithfully shares translate into delivered
//! frequency: Spearman rank correlation between configured shares and
//! measured frequency, and the mean absolute deviation from the
//! share-proportional frequency fraction.

use pap_bench::{f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::stats;
use pap_workloads::generator::random_set;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::Experiment;

const SHARES: [u32; 5] = [20, 40, 60, 80, 100];

/// Spearman rank correlation for distinct-rank inputs.
fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    let rank = |v: &[f64]| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..v.len()).collect();
        idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite"));
        let mut r = vec![0.0; v.len()];
        for (pos, &i) in idx.iter().enumerate() {
            r[i] = pos as f64;
        }
        r
    };
    let rx = rank(xs);
    let ry = rank(ys);
    let n = xs.len() as f64;
    let d2: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - b) * (a - b)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

fn main() {
    let seeds: Vec<u64> = (1..=20).collect();
    let mut jobs = Vec::new();
    for policy in [PolicyKind::FrequencyShares, PolicyKind::PerformanceShares] {
        for limit in [40.0, 50.0] {
            for &seed in &seeds {
                jobs.push((policy, limit, seed));
            }
        }
    }
    let results = par_map(jobs, |(policy, limit, seed)| {
        let set = random_set(seed, 5);
        let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(limit))
            .duration(Seconds(45.0))
            .warmup(12);
        for (i, profile) in set.iter().enumerate() {
            for copy in 0..2 {
                e = e.app(
                    format!("{}-{copy}", profile.name),
                    *profile,
                    Priority::High,
                    SHARES[i],
                );
            }
        }
        let r = e.run().expect("experiment runs");
        // Per share level: mean frequency of its two copies.
        let freqs: Vec<f64> = (0..5)
            .map(|i| (r.apps[2 * i].mean_freq_mhz + r.apps[2 * i + 1].mean_freq_mhz) / 2.0)
            .collect();
        let shares: Vec<f64> = SHARES.iter().map(|&s| s as f64).collect();
        let rho = spearman(&shares, &freqs);
        let total_f: f64 = freqs.iter().sum();
        let total_s: f64 = shares.iter().sum();
        let mad: f64 = freqs
            .iter()
            .zip(&shares)
            .map(|(f, s)| (f / total_f - s / total_s).abs() * 100.0)
            .sum::<f64>()
            / 5.0;
        (policy, limit, rho, mad)
    });

    let mut t = Table::new(
        "Extension: 20 random 5-app mixes, share fidelity (Skylake, 2 copies each)",
        &[
            "policy",
            "limit_w",
            "spearman_mean",
            "spearman_min",
            "mad_freq_frac_%",
        ],
    );
    for policy in [PolicyKind::FrequencyShares, PolicyKind::PerformanceShares] {
        for limit in [40.0, 50.0] {
            let rows: Vec<&(PolicyKind, f64, f64, f64)> = results
                .iter()
                .filter(|(p, l, _, _)| *p == policy && *l == limit)
                .collect();
            let rhos: Vec<f64> = rows.iter().map(|r| r.2).collect();
            let mads: Vec<f64> = rows.iter().map(|r| r.3).collect();
            t.row(vec![
                policy.name().into(),
                format!("{limit:.0}"),
                f3(stats::mean(&rhos)),
                f3(rhos.iter().copied().fold(f64::INFINITY, f64::min)),
                f3(stats::mean(&mads)),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected: share ordering is respected in essentially every random mix \
         (Spearman near 1.0 — occasional inversions come from AVX caps pinning \
         a high-share app), with a few percent mean deviation from perfect \
         share-proportional frequency fractions, mostly from grid quantization \
         and the 800 MHz floor — generalizing the Figure 11 finding beyond the \
         paper's two hand-drawn sets."
    );
}
