//! Extension: the single-core sharing policy decision table (§4.3).
//!
//! For each of the paper's three app combinations on one time-shared
//! Ryzen core, print the planner's decision (frequency, CPU fractions,
//! exclusions) across per-core power budgets, plus the case-2 runtime
//! compensation.

use pap_bench::{f1, f3, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::Watts;
use pap_workloads::spec;
use powerd::config::Priority;
use powerd::policy::single_core::{compensate_fractions, plan_shared_core, SharedApp};

fn app(profile: pap_workloads::profile::WorkloadProfile, shares: u32, p: Priority) -> SharedApp {
    SharedApp {
        profile,
        shares,
        priority: p,
    }
}

fn main() {
    let platform = PlatformSpec::ryzen();
    let (model, grid) = (platform.power, platform.grid);

    let cases: Vec<(&str, Vec<SharedApp>)> = vec![
        (
            "case 1: equal demands, mixed shares/priorities (leela 75 HP / leela 25 LP)",
            vec![
                app(spec::LEELA, 75, Priority::High),
                app(spec::LEELA, 25, Priority::Low),
            ],
        ),
        (
            "case 2: mixed demands, equal shares (cactusBSSN HD / exchange2 LD)",
            vec![
                app(spec::CACTUS_BSSN, 50, Priority::High),
                app(spec::EXCHANGE2, 50, Priority::High),
            ],
        ),
        (
            "case 3a: LDHP + HDLP (leela HP / lbm LP)",
            vec![
                app(spec::LEELA, 50, Priority::High),
                app(spec::LBM, 50, Priority::Low),
            ],
        ),
        (
            "case 3b: HDHP + LDLP (cactusBSSN HP / leela LP)",
            vec![
                app(spec::CACTUS_BSSN, 50, Priority::High),
                app(spec::LEELA, 50, Priority::Low),
            ],
        ),
    ];

    for (label, apps) in &cases {
        let mut t = Table::new(
            format!("§4.3 {label}"),
            &[
                "budget_w", "freq_mhz", "frac_0", "frac_1", "excluded", "comp_0", "comp_1",
            ],
        );
        for budget in [3.0, 4.5, 6.0, 9.0] {
            let d = plan_shared_core(&model, &grid, Watts(budget), apps);
            let comp = compensate_fractions(apps, &d.fractions, d.freq, grid.max());
            let excluded: Vec<String> = d
                .excluded
                .iter()
                .enumerate()
                .filter(|(_, &e)| e)
                .map(|(i, _)| apps[i].profile.name.to_string())
                .collect();
            t.row(vec![
                f1(budget),
                f1(d.freq.mhz() as f64),
                f3(d.fractions[0]),
                f3(d.fractions[1]),
                if excluded.is_empty() {
                    "-".into()
                } else {
                    excluded.join(",")
                },
                f3(comp[0]),
                f3(comp[1]),
            ]);
        }
        println!("{t}");
    }
    println!(
        "Reading: case 1 picks one frequency and leaves shares alone; case 2's \
         comp_* columns show the frequency-sensitive app gaining runtime as the \
         budget (and hence frequency) falls; case 3a excludes the high-demand \
         low-priority app outright at tight budgets so the high-priority app \
         keeps a high frequency; case 3b instead drags both apps down because \
         the high-priority app itself is the heavy one."
    );
}
