//! Figure 11 — Random-mix proportional share experiments on Skylake.
//!
//! The Table 3 application sets A and B run as two copies each of five
//! applications (10 cores), with share ratio app4:app3:app2:app1:app0 =
//! 100:80:60:40:20, under frequency and performance shares at 40/50/85 W.
//! Paper findings: for set A, power/frequency/performance rise with
//! shares; at 40 W the usable frequency range is narrow so
//! proportionality compresses; set B behaves differently because cam4
//! (B3) and lbm (B4) are AVX-capped and cannot reach full frequency even
//! at 85 W, yet share ordering is still respected.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::generator::{skylake_set_a, skylake_set_b};
use pap_workloads::profile::WorkloadProfile;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult};

/// §6.3: "the share levels for the Skylake platform are 20,40,60,80,100".
const SHARES: [u32; 5] = [20, 40, 60, 80, 100];
const LIMITS: [f64; 3] = [40.0, 50.0, 85.0];

fn run(set: &[WorkloadProfile], policy: PolicyKind, limit: f64) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .duration(Seconds(60.0))
        .warmup(15);
    // Two copies of each app, both copies at the same share (§6.3).
    for (i, profile) in set.iter().enumerate() {
        for copy in 0..2 {
            e = e.app(
                format!("{}-{copy}", profile.name),
                *profile,
                Priority::High,
                SHARES[i],
            );
        }
    }
    e.run().expect("experiment runs")
}

fn main() {
    let sets: [(&str, Vec<WorkloadProfile>); 2] = [("A", skylake_set_a()), ("B", skylake_set_b())];
    let policies = [PolicyKind::FrequencyShares, PolicyKind::PerformanceShares];

    let mut jobs = Vec::new();
    for (si, (_, set)) in sets.iter().enumerate() {
        for &policy in &policies {
            for &limit in &LIMITS {
                jobs.push((si, policy, limit, set.clone()));
            }
        }
    }
    let results = par_map(jobs, |(si, policy, limit, set)| {
        (si, policy, limit, run(&set, policy, limit))
    });

    for (si, (label, set)) in sets.iter().enumerate() {
        for &policy in &policies {
            let mut t = Table::new(
                format!("Figure 11 (set {label}, {}): per-app means", policy.name()),
                &[
                    "app",
                    "shares",
                    "avx",
                    "limit_w",
                    "mhz",
                    "norm_perf",
                    "freq_frac_%",
                ],
            );
            for &limit in &LIMITS {
                let r = &results
                    .iter()
                    .find(|(s, p, l, _)| *s == si && *p == policy && *l == limit)
                    .expect("swept")
                    .3;
                let total_mhz: f64 = r.apps.iter().map(|a| a.mean_freq_mhz).sum();
                for (i, profile) in set.iter().enumerate() {
                    // average the two copies
                    let mhz = (r.apps[2 * i].mean_freq_mhz + r.apps[2 * i + 1].mean_freq_mhz) / 2.0;
                    let perf = (r.apps[2 * i].norm_perf + r.apps[2 * i + 1].norm_perf) / 2.0;
                    t.row(vec![
                        format!("{label}{i}:{}", profile.name),
                        format!("{}", SHARES[i]),
                        if profile.avx { "yes" } else { "no" }.into(),
                        f1(limit),
                        f1(mhz),
                        f3(perf),
                        f3(2.0 * mhz / total_mhz * 100.0),
                    ]);
                }
            }
            println!("{t}");
        }
    }
    println!(
        "Expected shape: within each set and limit, frequency and performance \
         rise with shares; at 40 W the spread compresses (narrow usable \
         frequency range); in set B, cam4 (B3) and lbm (B4) saturate below \
         full frequency at 85 W because of their AVX caps, and lbm's \
         performance saturates with frequency (memory-bound)."
    );
}
