//! Ablation: control-loop cadence. The paper's daemon redistributes once
//! per second and argues the policy belongs in hardware for faster
//! response (§5). We sweep the control interval on the websearch +
//! cpuburn colocation — whose utilization (and hence power) genuinely
//! moves at sub-second timescales — and measure limit tracking and tail
//! latency.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::stats;
use pap_workloads::burn::CPUBURN;
use powerd::config::PolicyKind;
use powerd::runner::LatencyExperiment;

fn main() {
    let intervals = [0.25, 0.5, 1.0, 2.0, 4.0];
    let results = par_map(intervals.to_vec(), |interval| {
        let r = LatencyExperiment::new(
            PlatformSpec::skylake(),
            PolicyKind::FrequencyShares,
            Watts(40.0),
        )
        .shares(90, 10)
        .colocate(CPUBURN)
        .control_interval(Seconds(interval))
        .duration(Seconds(120.0))
        .warmup(Seconds(20.0))
        .run()
        .expect("experiment runs");
        (interval, r)
    });

    let mut t = Table::new(
        "Ablation: control interval (websearch + cpuburn, frequency shares, 40 W)",
        &[
            "interval_s",
            "mean_w",
            "std_w",
            "overshoot_frac_%",
            "p90_ms",
        ],
    );
    for (interval, r) in &results {
        let powers: Vec<f64> = r
            .trace
            .samples()
            .iter()
            .map(|s| s.package_power.value())
            .collect();
        let over = powers.iter().filter(|&&p| p > 42.0).count() as f64 / powers.len().max(1) as f64
            * 100.0;
        t.row(vec![
            f3(*interval),
            f1(stats::mean(&powers)),
            f3(stats::std_dev(&powers)),
            f3(over),
            f1(r.p90_ms),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: faster cadences track the moving service load more tightly \
         (lower power variance, less overshoot) and hold the latency tail \
         better; multi-second cadences let utilization swings carry the \
         package watts over the limit between corrections — supporting the \
         paper's call for a hardware implementation."
    );
}
