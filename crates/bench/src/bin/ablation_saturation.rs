//! Ablation: saturation-aware allocation (§4.4 / §5.2 "identifying
//! saturation").
//!
//! An AVX-capped application cannot use frequency above its license
//! limit. With the water-fill redistribution the *steady state* is the
//! same either way — the power feedback loop neutralizes phantom
//! allocations — but saturation awareness changes how fast the loop
//! converges and how the allocation is *accounted*: without it, the
//! capped app's programmed target rides far above what it can execute,
//! and under the paper's literal incremental scheme that phantom headroom
//! is what lets allocations drift (see `ablation_minfund`). We measure
//! settling time and the requested-vs-achieved gap.

use pap_bench::{f1, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::Experiment;

fn main() {
    let results = par_map(vec![true, false], |aware| {
        let mut e = Experiment::new(
            PlatformSpec::skylake(),
            PolicyKind::FrequencyShares,
            Watts(60.0),
        )
        .saturation_aware(aware)
        .duration(Seconds(60.0))
        .warmup(0); // keep the transient for settling analysis
        for i in 0..5 {
            e = e.app(format!("cam4-{i}"), spec::CAM4, Priority::High, 50);
            e = e.app(
                format!("exchange2-{i}"),
                spec::EXCHANGE2,
                Priority::High,
                50,
            );
        }
        (aware, e.run().expect("experiment runs"))
    });

    let mut t = Table::new(
        "Ablation: saturation-aware claims (5x cam4 AVX + 5x exchange2, equal shares, 60 W)",
        &[
            "saturation_aware",
            "settle_intervals",
            "cam4_req_mhz",
            "cam4_run_mhz",
            "phantom_mhz",
            "exchange2_mhz",
            "pkg_w",
        ],
    );
    for (aware, r) in &results {
        let powers: Vec<f64> = r
            .trace
            .samples()
            .iter()
            .map(|s| s.package_power.value())
            .collect();
        let mut settle = powers.len();
        for i in 0..powers.len() {
            if powers[i..].iter().all(|p| (p - 60.0).abs() < 2.0) {
                settle = i;
                break;
            }
        }
        // Requested vs achieved for the AVX-capped cores (mean over the
        // last 10 samples).
        let tail = &r.trace.samples()[r.trace.len().saturating_sub(10)..];
        let mean_req: f64 = tail
            .iter()
            .map(|s| {
                (0..5)
                    .map(|i| s.cores[2 * i].requested_freq.mhz() as f64)
                    .sum::<f64>()
                    / 5.0
            })
            .sum::<f64>()
            / tail.len() as f64;
        let cam_run: f64 = (0..5).map(|i| r.apps[2 * i].mean_freq_mhz).sum::<f64>() / 5.0;
        let exch: f64 = (0..5).map(|i| r.apps[2 * i + 1].mean_freq_mhz).sum::<f64>() / 5.0;
        t.row(vec![
            if *aware { "on" } else { "off" }.into(),
            format!("{settle}"),
            f1(mean_req),
            f1(cam_run),
            f1(mean_req - cam_run),
            f1(exch),
            f1(r.mean_package_power.value()),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: the steady state matches (water-fill + power feedback \
         neutralize phantom grants), but with awareness ON the programmed \
         target for cam4 tracks its ~1.7 GHz license cap (phantom ≈ one grid \
         step) instead of riding hundreds of MHz above it — the accounting \
         honesty that §4.4 asks for, and the property the incremental \
         redistribution scheme depends on (see ablation_minfund)."
    );
}
