//! Extension: game-ability of measurement-driven policies (§8).
//!
//! One of two equal-share applications games its measured telemetry:
//!
//! * **NOP padding** inflates IPS — under performance shares the
//!   controller believes the gamer is over-served and throttles it;
//! * **sandbagging** (artificial stalls) deflates IPS — the controller
//!   compensates with extra frequency, but the stalls burn the gain;
//! * **power padding** (gratuitous vector work) inflates power — under
//!   power shares the gamer's own budget now buys less frequency.
//!
//! For each policy we report the gamer's *useful* normalized performance
//! and the honest victim's performance, against an honest/honest
//! reference. The paper's soundness criterion holds when gaming never
//! increases the gamer's useful performance.

use pap_bench::{f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::gaming;
use pap_workloads::profile::WorkloadProfile;
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::Experiment;

#[derive(Clone, Copy)]
struct Scenario {
    label: &'static str,
    gamer: WorkloadProfile,
    /// Fraction of the gamer's measured IPS that is useful work.
    useful: f64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            label: "honest",
            gamer: spec::LEELA,
            useful: 1.0,
        },
        Scenario {
            label: "nop-padded(40%)",
            gamer: gaming::nop_padded(spec::LEELA, 0.4),
            useful: gaming::useful_fraction(0.4),
        },
        Scenario {
            label: "sandbagged(1.5x)",
            gamer: gaming::sandbagged(spec::LEELA, 1.5),
            useful: 1.0, // all instructions useful, just slowed
        },
        Scenario {
            label: "power-padded(+1.0C)",
            gamer: gaming::power_padded(spec::LEELA, 1.0),
            useful: 1.0,
        },
    ]
}

fn main() {
    // The gamer declares leela's honest offline baseline, whatever it
    // actually runs — that is the point of gaming the measurement.
    let honest_baseline =
        |platform: &PlatformSpec| spec::LEELA.ips(platform.turbo.cap_for(1, false));

    for policy in [
        PolicyKind::PerformanceShares,
        PolicyKind::FrequencyShares,
        PolicyKind::PowerShares,
    ] {
        let platform = if policy == PolicyKind::PowerShares {
            PlatformSpec::ryzen()
        } else {
            PlatformSpec::skylake()
        };
        let results = par_map(scenarios(), |sc| {
            let half = platform.num_cores / 2;
            let mut e = Experiment::new(platform.clone(), policy, Watts(40.0))
                .duration(Seconds(60.0))
                .warmup(15);
            for i in 0..half {
                e = e.app(format!("victim-{i}"), spec::DEEPSJENG, Priority::High, 50);
            }
            for i in 0..half {
                // gamed workload, honest declared baseline
                e = e.app(format!("gamer-{i}"), sc.gamer, Priority::High, 50);
            }
            let r = e.run().expect("experiment runs");
            let half = platform.num_cores / 2;
            let victim: f64 = r.apps[..half].iter().map(|a| a.norm_perf).sum::<f64>() / half as f64;
            // useful perf normalized against leela's honest baseline
            let gamer_ips: f64 =
                r.apps[half..].iter().map(|a| a.mean_ips).sum::<f64>() / half as f64;
            let gamer_useful = gamer_ips * sc.useful / honest_baseline(&platform);
            (sc.label, victim, gamer_useful)
        });

        let mut t = Table::new(
            format!(
                "Extension §8 ({}): gaming one of two equal-share apps",
                policy.name()
            ),
            &["scenario", "victim_perf", "gamer_useful_perf"],
        );
        let honest_gamer = results[0].2;
        for (label, victim, gamer) in &results {
            t.row(vec![label.to_string(), f3(*victim), f3(*gamer)]);
        }
        println!("{t}");
        let best_gamed = results[1..]
            .iter()
            .map(|(_, _, g)| *g)
            .fold(f64::MIN, f64::max);
        println!(
            "{}: best gamed useful perf {:.3} vs honest {:.3} -> gaming {}",
            policy.name(),
            best_gamed,
            honest_gamer,
            if best_gamed <= honest_gamer + 0.01 {
                "does not pay (sound per §8)"
            } else {
                "pays — policy is exploitable"
            }
        );
        println!();
    }
}
