//! Extension: hierarchical multi-node power arbitration — a compressed
//! diurnal tenant trace replayed across an 8-node cluster under one
//! global 280 W budget.
//!
//! Three runs of the same trace: a static RAPL-per-node split (each
//! node gets budget/8, hardware RAPL, shares ignored), the hierarchical
//! allocator (cluster cap → per-node caps from telemetry every 4
//! intervals → per-app frequency shares), and the hierarchical run
//! again on the parallel engine (one thread per node) to report
//! wall-clock simulation throughput and confirm bit-identical results.
//!
//! Reported per mode: Jain fairness over share-normalized per-app
//! performance (1.0 = every tenant got exactly the performance its
//! shares paid for), retired instructions, mean cluster draw, typed
//! peak-overload rejections, and simulated seconds per wall second.

use std::collections::HashMap;
use std::time::Instant;

use clusterd::admission::{AppRequest, DemandClass};
use clusterd::cluster::{AppReport, Cluster, ClusterConfig, ClusterError};
use clusterd::engine::run_parallel;
use pap_bench::{f1, f3, Table};
use pap_simcpu::units::Watts;
use pap_telemetry::stats::jain;
use powerd::config::PolicyKind;

const NODES: usize = 8;
const CLUSTER_CAP: f64 = 280.0;
const DAY: u64 = 48; // control intervals in the compressed day
const MORNING: u64 = 8;
const PEAK: u64 = 16;
const EVENING: u64 = 28;

const BASE_APPS: usize = 24;
const DAY_APPS: usize = 32;
const BURST_APPS: usize = 30;

struct Outcome {
    jain: f64,
    giga_instr: f64,
    mean_power: Watts,
    rejected: usize,
    wall_secs: f64,
    caps: Vec<Watts>,
    reports: Vec<AppReport>,
}

fn base_request(i: usize) -> AppRequest {
    let shares = [20, 60, 180][i % 3];
    let demand = [
        DemandClass::Moderate,
        DemandClass::Light,
        DemandClass::Heavy,
    ][i % 3];
    AppRequest::new(format!("base{i}"), shares, demand)
}

fn day_request(i: usize) -> AppRequest {
    let shares = [40, 120][i % 2];
    let demand = [DemandClass::Light, DemandClass::Moderate][i % 2];
    AppRequest::new(format!("day{i}"), shares, demand)
}

fn replay(policy: PolicyKind, rebalance_every: u64, parallel: bool) -> Outcome {
    let mut cfg = ClusterConfig::new(NODES, policy, Watts(CLUSTER_CAP));
    cfg.rebalance_every = rebalance_every;
    let mut cluster = Cluster::new(cfg).expect("budget funds the node floors");

    // name -> (arrived, departed) in intervals; finished app reports
    let mut residence: HashMap<String, (u64, Option<u64>)> = HashMap::new();
    let mut finished: Vec<AppReport> = Vec::new();
    let mut burst_admitted: Vec<String> = Vec::new();
    let mut rejected = 0usize;

    let start = Instant::now();
    // the trace has events at fixed interval marks; between marks the
    // engine runs uninterrupted (so the parallel engine's node threads
    // live for a whole chunk, not a single interval)
    for (t, until) in [
        (0, MORNING),
        (MORNING, PEAK),
        (PEAK, EVENING),
        (EVENING, DAY),
    ] {
        if t == 0 {
            for i in 0..BASE_APPS {
                let req = base_request(i);
                cluster.admit(&req).expect("base load fits");
                residence.insert(req.name, (t, None));
            }
        }
        if t == MORNING {
            for i in 0..DAY_APPS {
                let req = day_request(i);
                cluster.admit(&req).expect("day load fits");
                residence.insert(req.name, (t, None));
            }
        }
        if t == PEAK {
            for i in 0..BURST_APPS {
                let req = AppRequest::new(format!("burst{i}"), 40, DemandClass::Light);
                match cluster.admit(&req) {
                    Ok(_) => {
                        burst_admitted.push(req.name.clone());
                        residence.insert(req.name, (t, None));
                    }
                    Err(ClusterError::ClusterFull { .. }) => rejected += 1,
                    Err(e) => panic!("unexpected admission failure: {e}"),
                }
            }
        }
        if t == EVENING {
            let snapshot = cluster.reports();
            let leaving: Vec<String> = (0..DAY_APPS)
                .map(|i| format!("day{i}"))
                .chain(burst_admitted.drain(..))
                .collect();
            for name in leaving {
                let report = snapshot
                    .iter()
                    .find(|r| r.name == name)
                    .expect("leaving app has a report")
                    .clone();
                cluster.depart(&name).expect("leaving app is placed");
                residence.get_mut(&name).expect("tracked").1 = Some(t);
                finished.push(report);
            }
        }

        if parallel {
            run_parallel(&mut cluster, until - t);
        } else {
            cluster.run(until - t);
        }
    }
    let wall_secs = start.elapsed().as_secs_f64();

    let final_reports = cluster.reports();
    let interval_s = cluster.config().control_interval.value();
    let all: Vec<&AppReport> = finished.iter().chain(&final_reports).collect();
    let x: Vec<f64> = all
        .iter()
        .map(|r| {
            let (arrived, departed) = residence[&r.name];
            let secs = (departed.unwrap_or(DAY) - arrived) as f64 * interval_s;
            (r.total_instructions as f64 / secs) / r.baseline_ips / r.shares as f64
        })
        .collect();
    let giga_instr = all.iter().map(|r| r.total_instructions as f64).sum::<f64>() / 1e9;

    Outcome {
        jain: jain(&x),
        giga_instr,
        mean_power: cluster.mean_power(),
        rejected,
        wall_secs,
        caps: cluster.node_caps(),
        reports: final_reports,
    }
}

fn main() {
    let modes = [
        ("rapl-per-node", PolicyKind::RaplNative, 0u64, false),
        ("hierarchical", PolicyKind::FrequencyShares, 4, false),
        ("hierarchical-par", PolicyKind::FrequencyShares, 4, true),
    ];
    let outcomes: Vec<(&str, Outcome)> = modes
        .iter()
        .map(|&(name, policy, every, parallel)| (name, replay(policy, every, parallel)))
        .collect();

    let mut table = Table::new(
        format!("ext: diurnal trace on {NODES} nodes, one {CLUSTER_CAP} W budget"),
        &["mode", "jain(x)", "Ginstr", "mean W", "rejected", "sim s/s"],
    );
    for (name, o) in &outcomes {
        table.row(vec![
            name.to_string(),
            f3(o.jain),
            f1(o.giga_instr),
            f1(o.mean_power.value()),
            o.rejected.to_string(),
            f1(DAY as f64 / o.wall_secs),
        ]);
    }
    println!("{table}");

    let rapl = &outcomes[0].1;
    let hier = &outcomes[1].1;
    let par = &outcomes[2].1;
    println!(
        "hierarchical vs RAPL-per-node fairness: {} vs {} ({})",
        f3(hier.jain),
        f3(rapl.jain),
        if hier.jain > rapl.jain {
            "hierarchical wins"
        } else {
            "REGRESSION"
        }
    );
    let identical = hier.reports == par.reports && hier.caps == par.caps;
    println!(
        "parallel engine identical to serial reference: {} (speedup {:.2}x)",
        if identical {
            "yes"
        } else {
            "NO — DETERMINISM BROKEN"
        },
        hier.wall_secs / par.wall_secs
    );

    let mut caps = Table::new("final node caps (hierarchical)", &["node", "cap W", "apps"]);
    for (node, cap) in hier.caps.iter().enumerate() {
        let apps = hier.reports.iter().filter(|r| r.node == node).count();
        caps.row(vec![node.to_string(), f1(cap.value()), apps.to_string()]);
    }
    println!("{caps}");

    assert!(
        hier.jain > rapl.jain,
        "hierarchical must beat RAPL-per-node on fairness"
    );
    assert!(identical, "parallel engine must match the serial reference");
    assert!(
        rapl.rejected > 0 && hier.rejected > 0,
        "peak burst must overflow the cluster"
    );
}
