//! Ablation: Ryzen's banded-voltage reality vs idealized per-frequency
//! voltage (§3.1).
//!
//! The Ryzen part supports three concurrent P-states, each with *one*
//! voltage for its whole frequency band. A core parked in the middle of
//! a band burns the band-top voltage. We run the same frequency-shares
//! experiment on both platform models and compare the power cost and the
//! allocation the daemon ends up with.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::Experiment;

fn main() {
    let platforms = [
        ("ideal V(f)", PlatformSpec::ryzen()),
        ("banded V", PlatformSpec::ryzen_banded()),
    ];
    let results = par_map(platforms.to_vec(), |(label, platform)| {
        let mut e = Experiment::new(platform, PolicyKind::FrequencyShares, Watts(42.0))
            .duration(Seconds(60.0))
            .warmup(15);
        for i in 0..4 {
            e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, 30);
            e = e.app(format!("cactus-{i}"), spec::CACTUS_BSSN, Priority::High, 70);
        }
        (label, e.run().expect("experiment runs"))
    });

    let mut t = Table::new(
        "Ablation: Ryzen banded vs ideal voltage (frequency shares, 42 W, 30/70 shares)",
        &[
            "voltage_model",
            "ld_mhz",
            "hd_mhz",
            "ld_perf",
            "hd_perf",
            "pkg_w",
        ],
    );
    for (label, r) in &results {
        let ld_mhz = (0..4).map(|i| r.apps[2 * i].mean_freq_mhz).sum::<f64>() / 4.0;
        let hd_mhz = (0..4).map(|i| r.apps[2 * i + 1].mean_freq_mhz).sum::<f64>() / 4.0;
        let ld_perf = (0..4).map(|i| r.apps[2 * i].norm_perf).sum::<f64>() / 4.0;
        let hd_perf = (0..4).map(|i| r.apps[2 * i + 1].norm_perf).sum::<f64>() / 4.0;
        t.row(vec![
            label.to_string(),
            f1(ld_mhz),
            f1(hd_mhz),
            f3(ld_perf),
            f3(hd_perf),
            f1(r.mean_package_power.value()),
        ]);
    }
    println!("{t}");

    // Direct model comparison at a mid-band frequency.
    let ideal = PlatformSpec::ryzen();
    let banded = PlatformSpec::ryzen_banded();
    let f = pap_simcpu::freq::KiloHertz::from_mhz(2300); // bottom of P1
    let load = spec::CACTUS_BSSN.load_at(f);
    println!(
        "Model check at 2.3 GHz (bottom of the P1 band): ideal {:.2} W/core vs \
         banded {:.2} W/core — the band tax the daemon's allocations must \
         absorb.",
        ideal.power.core_power(f, &load).value(),
        banded.power.core_power(f, &load).value()
    );
    println!(
        "Expected: under banded voltage the same 42 W budget buys visibly less \
         frequency (the band-top voltage is paid at every frequency in the \
         band), with the loss concentrated just above each band boundary."
    );
}
