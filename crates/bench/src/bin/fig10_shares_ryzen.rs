//! Figure 10 — Proportional share policies on Ryzen, including power
//! shares.
//!
//! Four copies of leela (LD) and four of cactusBSSN (HD) under frequency,
//! performance and power shares at 40/50 W. The figure reports the
//! *percent of total resource* (frequency, performance, power) each
//! application class uses. Paper findings: the daemon tracks 30/70..70/30
//! accurately but cannot push a class below ~20 % (the high minimum
//! frequency); frequency shares give the most accurate performance
//! control; performance shares over/undershoot with program phases; power
//! shares provide poor performance isolation (equal power ≠ equal
//! performance when demands differ).

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult};

const RATIOS: [(u32, u32); 5] = [(90, 10), (70, 30), (50, 50), (30, 70), (10, 90)];
const LIMITS: [f64; 2] = [40.0, 50.0];

fn run(policy: PolicyKind, limit: f64, ld_share: u32, hd_share: u32) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::ryzen(), policy, Watts(limit))
        .duration(Seconds(60.0))
        .warmup(15);
    for i in 0..4 {
        e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, ld_share);
    }
    for i in 0..4 {
        e = e.app(
            format!("cactus-{i}"),
            spec::CACTUS_BSSN,
            Priority::High,
            hd_share,
        );
    }
    e.run().expect("experiment runs")
}

/// Fraction of a summed resource used by the LD class.
fn fractions(r: &ExperimentResult) -> (f64, f64, f64) {
    let sum = |vals: Vec<f64>| -> (f64, f64) { (vals[..4].iter().sum(), vals[4..].iter().sum()) };
    let (ld_f, hd_f) = sum(r.apps.iter().map(|a| a.mean_freq_mhz).collect());
    let (ld_p, hd_p) = sum(r.apps.iter().map(|a| a.norm_perf).collect());
    let (ld_w, hd_w) = sum(r
        .apps
        .iter()
        .map(|a| a.mean_power.map(|w| w.value()).unwrap_or(0.0))
        .collect());
    (
        ld_f / (ld_f + hd_f),
        ld_p / (ld_p + hd_p),
        ld_w / (ld_w + hd_w),
    )
}

fn main() {
    let policies = [
        PolicyKind::FrequencyShares,
        PolicyKind::PerformanceShares,
        PolicyKind::PowerShares,
    ];
    let mut jobs = Vec::new();
    for &policy in &policies {
        for &limit in &LIMITS {
            for &(ld, hd) in &RATIOS {
                jobs.push((policy, limit, ld, hd));
            }
        }
    }
    let results = par_map(jobs, |(policy, limit, ld, hd)| {
        (policy, limit, ld, hd, run(policy, limit, ld, hd))
    });

    for &policy in &policies {
        let mut t = Table::new(
            format!(
                "Figure 10 ({}): LD-class share of each resource, 4x leela vs 4x cactusBSSN on Ryzen",
                policy.name()
            ),
            &[
                "ld/hd_shares",
                "limit_w",
                "ld_freq_%",
                "ld_perf_%",
                "ld_power_%",
                "pkg_w",
            ],
        );
        for &(ld, hd) in &RATIOS {
            for &limit in &LIMITS {
                let r = &results
                    .iter()
                    .find(|(p, l, a, b, _)| *p == policy && *l == limit && *a == ld && *b == hd)
                    .expect("swept")
                    .4;
                let (ff, pf, wf) = fractions(r);
                t.row(vec![
                    format!("{ld}/{hd}"),
                    f1(limit),
                    f3(ff * 100.0),
                    f3(pf * 100.0),
                    f3(wf * 100.0),
                    f1(r.mean_package_power.value()),
                ]);
            }
        }
        println!("{t}");
    }
    println!(
        "Expected shape: under frequency shares the ld_freq_% column tracks \
         the configured ratio (clamped near the extremes by the frequency \
         floor); under power shares the ld_power_% column tracks the ratio \
         but ld_perf_% deviates strongly — equal power buys the low-demand \
         app far more performance (the paper's isolation failure)."
    );
}
