//! Figure 12 — Latency-sensitive colocation with per-application policies.
//!
//! The §3 unfair-throttling experiment repeated with the proportional
//! share policies: websearch (9 cores, 90 shares each, high priority)
//! co-located with cpuburn (1 core, 10 shares, low priority) under
//! progressively lower limits. Reported: p90 latency relative to
//! websearch running alone at the same limit. Paper findings: the share
//! policies recover nearly all of the colocation penalty, cutting the
//! loss by ~10 % at 40/35 W (bounded by the low dynamic range of
//! frequencies); performance shares behave like frequency shares.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::burn::CPUBURN;
use powerd::config::PolicyKind;
use powerd::runner::{LatencyExperiment, LatencyResult};

const LIMITS: [f64; 5] = [55.0, 50.0, 45.0, 40.0, 35.0];

fn run(policy: PolicyKind, limit: f64, colocated: bool) -> LatencyResult {
    let mut e = LatencyExperiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .shares(90, 10)
        .duration(Seconds(90.0))
        .warmup(Seconds(15.0));
    if colocated {
        e = e.colocate(CPUBURN);
    }
    e.run().expect("experiment runs")
}

fn main() {
    let mut jobs = Vec::new();
    for &limit in &LIMITS {
        jobs.push((PolicyKind::RaplNative, limit, false)); // alone baseline
        for policy in [
            PolicyKind::RaplNative,
            PolicyKind::FrequencyShares,
            PolicyKind::PerformanceShares,
            PolicyKind::Priority,
        ] {
            jobs.push((policy, limit, true));
        }
    }
    let results = par_map(jobs, |(policy, limit, colocated)| {
        (policy, limit, colocated, run(policy, limit, colocated))
    });
    let find = |policy: PolicyKind, limit: f64, colocated: bool| -> &LatencyResult {
        &results
            .iter()
            .find(|(p, l, c, _)| *p == policy && *l == limit && *c == colocated)
            .expect("swept")
            .3
    };

    let mut t = Table::new(
        "Figure 12: websearch p90 with cpuburn colocation, relative to running alone (90/10 shares)",
        &[
            "limit_w",
            "alone_p90_ms",
            "rapl_rel",
            "freq_shares_rel",
            "perf_shares_rel",
            "priority_rel",
        ],
    );
    for &limit in &LIMITS {
        let alone = find(PolicyKind::RaplNative, limit, false).p90_ms;
        let rel = |p: PolicyKind| find(p, limit, true).p90_ms / alone;
        t.row(vec![
            f1(limit),
            f1(alone),
            f3(rel(PolicyKind::RaplNative)),
            f3(rel(PolicyKind::FrequencyShares)),
            f3(rel(PolicyKind::PerformanceShares)),
            f3(rel(PolicyKind::Priority)),
        ]);
    }
    println!("{t}");
    println!(
        "Values are p90 latency inflation vs websearch alone at the same limit \
         (1.0 = no colocation penalty; lower is better). Expected shape: under \
         native RAPL the penalty explodes at low limits (the virus drags every \
         core down); the 90/10 share policies keep the service near 1.0, \
         recovering ~10% or more at 40/35 W; the priority policy (burn is LP) \
         recovers the most by starving the virus outright."
    );
}
