//! Figure 13 — Active frequencies during the latency-sensitive experiment
//! under the proportional frequency policy.
//!
//! Companion to Figure 12: the mean active frequency of the websearch
//! cores and of the cpuburn core, under frequency shares (90/10) and
//! native RAPL, across the limit sweep. Paper finding: the policy holds
//! the service cores near the top of the range and pushes the virus to
//! the bottom, but the achievable protection is bounded by the low
//! dynamic range of available frequencies.

use pap_bench::{f1, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::burn::CPUBURN;
use powerd::config::PolicyKind;
use powerd::runner::{LatencyExperiment, LatencyResult};

const LIMITS: [f64; 5] = [55.0, 50.0, 45.0, 40.0, 35.0];

fn run(policy: PolicyKind, limit: f64) -> LatencyResult {
    LatencyExperiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .shares(90, 10)
        .colocate(CPUBURN)
        .duration(Seconds(90.0))
        .warmup(Seconds(15.0))
        .run()
        .expect("experiment runs")
}

fn main() {
    let mut jobs = Vec::new();
    for &limit in &LIMITS {
        for policy in [PolicyKind::FrequencyShares, PolicyKind::RaplNative] {
            jobs.push((policy, limit));
        }
    }
    let results = par_map(jobs, |(policy, limit)| (policy, limit, run(policy, limit)));

    let mut t = Table::new(
        "Figure 13: active frequencies, websearch (9 cores) + cpuburn (1 core), 90/10 shares",
        &[
            "limit_w",
            "fs_websearch_mhz",
            "fs_cpuburn_mhz",
            "rapl_websearch_mhz",
            "rapl_cpuburn_mhz",
        ],
    );
    for &limit in &LIMITS {
        let fs = &results
            .iter()
            .find(|(p, l, _)| *p == PolicyKind::FrequencyShares && *l == limit)
            .expect("swept")
            .2;
        let rapl = &results
            .iter()
            .find(|(p, l, _)| *p == PolicyKind::RaplNative && *l == limit)
            .expect("swept")
            .2;
        t.row(vec![
            f1(limit),
            f1(fs.service_freq_mhz),
            f1(fs.colocated_freq_mhz.unwrap_or(0.0)),
            f1(rapl.service_freq_mhz),
            f1(rapl.colocated_freq_mhz.unwrap_or(0.0)),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: with frequency shares the websearch cores hold a much \
         higher frequency than the cpuburn core at every limit; under RAPL the \
         virus runs as fast as (or faster than) the service because RAPL \
         throttles without regard to shares."
    );
}
