//! Extension: OS frequency governors (§2.2) on a bursty service core.
//!
//! A single-core closed-loop service (think one shard of websearch) runs
//! under each cpufreq governor. Utilization-driven governors trade tail
//! latency against power exactly as the kernel documentation promises:
//! `performance` burns the most power for the best tail, `powersave`
//! saturates the queue, `ondemand` races to max under load, and
//! `conservative` lags bursts.

use pap_bench::sweep::{self, Threads};
use pap_bench::{f1, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::Seconds;
use pap_telemetry::sampler::Sampler;
use pap_workloads::latency::{ClosedLoopService, DemandShape, ServiceConfig};
use powerd::governor::Governor;

fn run(gov: Governor) -> (f64, f64, f64) {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform);
    let cfg = ServiceConfig {
        users: 40,
        mean_think: Seconds(0.4),
        mean_service_cycles: 18.0e6,
        demand: DemandShape::Exponential,
        capacitance: 0.8,
        seed: 42,
    };
    let mut svc = ClosedLoopService::new(cfg, 1);
    let grid = chip.spec().grid;
    let mut freq = match gov {
        Governor::Powersave => grid.min(),
        _ => grid.max(),
    };
    chip.set_requested_freq(0, freq).unwrap();

    let mut sampler = Sampler::new(&chip);
    let dt = Seconds(0.001);
    let mut power_acc = 0.0;
    let mut samples = 0.0;
    let mut t = 0.0;
    let mut next_eval = 0.1; // kernel governors evaluate every ~100 ms
    let warmup = 10.0;
    let mut stats_reset = false;

    while t < 70.0 {
        let f = chip.effective_freq(0);
        let loads = svc.advance(dt, &[f]);
        chip.set_load(0, loads[0]).unwrap();
        chip.tick(dt);
        t += dt.value();

        if !stats_reset && t >= warmup {
            svc.reset_stats();
            stats_reset = true;
        }
        if t + 1e-9 >= next_eval {
            next_eval += 0.1;
            if let Some(s) = sampler.sample(&chip) {
                let util = s.cores[0].rates.c0_residency;
                freq = gov.next_freq(&grid, freq, util);
                chip.set_requested_freq(0, freq).unwrap();
                if stats_reset {
                    power_acc += s.package_power.value();
                    samples += 1.0;
                }
            }
        }
    }
    (svc.p90_ms(), power_acc / samples, svc.throughput())
}

fn main() {
    let governors = [
        ("performance", Governor::Performance),
        ("ondemand", Governor::ondemand()),
        ("conservative", Governor::conservative()),
        ("powersave", Governor::Powersave),
    ];
    let mut t = Table::new(
        "Extension: cpufreq governors on a bursty single-core service (40 users)",
        &["governor", "p90_ms", "pkg_w", "throughput_rps"],
    );
    let results = sweep::run(Threads::from_env(), governors.to_vec(), |(name, gov)| {
        (name, run(gov))
    });
    for (name, (p90, pkg, x)) in results {
        t.row(vec![name.into(), f1(p90), f1(pkg), f1(x)]);
    }
    println!("{t}");
    println!(
        "Expected ordering: performance gives the best p90 at the highest \
         power; ondemand tracks it closely for less power; conservative lags \
         bursts (worse tail, similar power); powersave collapses the tail \
         once the 800 MHz core saturates. These governors act per-core on \
         local utilization — none can express cross-application shares, which \
         is the gap the paper's policies fill."
    );
}
