//! Extension: highest-useful-frequency probing (§4.4).
//!
//! For each SPEC benchmark, the HWP-style hill climber
//! ([`powerd::hwp::UsefulFreqProbe`]) finds the frequency beyond which
//! measured IPS stops improving, against the live simulator (one app per
//! run, AVX caps active). We report the knee, the performance retained at
//! the knee vs running flat-out, and the core power saved — the §4.4
//! argument that "highest useful" beats "highest possible".

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::Seconds;
use pap_workloads::engine::RunningApp;
use pap_workloads::profile::WorkloadProfile;
use pap_workloads::spec;
use powerd::hwp::UsefulFreqProbe;

/// Run one app under the probe until it settles; return (knee MHz,
/// settled IPS, package W).
fn probe_app(profile: WorkloadProfile) -> (f64, f64, f64) {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform);
    let mut probe = UsefulFreqProbe::new(chip.spec().grid);
    probe.min_gain = 0.5;
    let mut app = RunningApp::looping(profile);
    let mut request = probe.target();
    chip.set_requested_freq(0, request).unwrap();

    let dt = Seconds(0.002);
    let interval = 0.5;
    let mut t = 0.0;
    let mut next = interval;
    let mut instr_at_interval = 0u64;
    let mut last_total = 0u64;
    let mut settled_intervals = 0;
    let mut ips = 0.0;
    while settled_intervals < 8 && t < 120.0 {
        let f = chip.effective_freq(0);
        let out = app.advance(dt, f);
        chip.set_load(0, out.load).unwrap();
        chip.add_instructions(0, out.instructions).unwrap();
        instr_at_interval += out.instructions;
        chip.tick(dt);
        t += dt.value();
        if t + 1e-9 >= next {
            next += interval;
            ips = instr_at_interval as f64 / interval;
            last_total += instr_at_interval;
            let _ = last_total;
            instr_at_interval = 0;
            request = probe.observe(chip.effective_freq(0), ips);
            chip.set_requested_freq(0, request).unwrap();
            if probe.settled() {
                settled_intervals += 1;
            }
        }
    }
    (
        probe.target().mhz() as f64,
        ips,
        chip.package_power().value(),
    )
}

/// Run one app flat-out at max for reference.
fn flat_out(profile: WorkloadProfile) -> (f64, f64, f64) {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform);
    chip.set_requested_freq(0, KiloHertz::from_mhz(3000))
        .unwrap();
    let mut app = RunningApp::looping(profile);
    let dt = Seconds(0.002);
    let mut instr = 0u64;
    for _ in 0..10_000 {
        let f = chip.effective_freq(0);
        let out = app.advance(dt, f);
        chip.set_load(0, out.load).unwrap();
        instr += out.instructions;
        chip.tick(dt);
    }
    (
        chip.effective_freq(0).mhz() as f64,
        instr as f64 / 20.0,
        chip.package_power().value(),
    )
}

fn main() {
    let benches = spec::spec2017();
    let results = par_map(benches.clone(), |b| {
        let knee = probe_app(b);
        let max = flat_out(b);
        (b, knee, max)
    });

    let mut t = Table::new(
        "Extension §4.4: highest useful frequency per benchmark (HWP-style probe)",
        &[
            "bench",
            "avx",
            "knee_mhz",
            "max_mhz",
            "perf_retained",
            "pkg_w_saved",
        ],
    );
    for (b, (knee_mhz, knee_ips, knee_w), (max_mhz, max_ips, max_w)) in &results {
        t.row(vec![
            b.name.to_string(),
            if b.avx { "yes" } else { "no" }.into(),
            f1(*knee_mhz),
            f1(*max_mhz),
            f3(knee_ips / max_ips),
            f1(max_w - knee_w),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: AVX apps' knees sit at their ~1.9 GHz license cap (the \
         probe discovers the cap without being told); memory-bound apps \
         (omnetpp, lbm) settle well below max while retaining most of their \
         performance and saving watts; frequency-sensitive integer apps climb \
         to the top because every step keeps paying."
    );
}
