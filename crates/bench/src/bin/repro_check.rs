//! Reproduction self-check: runs scaled-down versions of the paper's
//! headline experiments and prints PASS/FAIL for each qualitative claim.
//!
//! This is the one binary to run after any model or policy change:
//! every row corresponds to a claim in the paper's abstract/evaluation,
//! checked against live simulation. Exits non-zero if any claim fails.

use std::process::ExitCode;

use pap_bench::{par_map, run_fixed, Table};
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::burn::CPUBURN;
use pap_workloads::profile::WorkloadProfile;
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult, LatencyExperiment};

struct Claim {
    name: &'static str,
    passed: bool,
    evidence: String,
}

fn shares_run(policy: PolicyKind, limit: f64, ld: u32, hd: u32) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .duration(Seconds(40.0))
        .warmup(10);
    for i in 0..5 {
        e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, ld);
    }
    for i in 0..5 {
        e = e.app(format!("cactus-{i}"), spec::CACTUS_BSSN, Priority::High, hd);
    }
    e.run().expect("runs")
}

fn check_rapl_unfairness() -> Claim {
    // Figure 1: RAPL throttles the low-demand scalar app harder.
    let requests = vec![KiloHertz::from_mhz(3000); 10];
    let assignments: Vec<Option<WorkloadProfile>> = (0..10)
        .map(|c| Some(if c < 5 { spec::GCC } else { spec::CAM4 }))
        .collect();
    let r = run_fixed(
        PlatformSpec::skylake(),
        &requests,
        &assignments,
        Some(Watts(50.0)),
        Seconds(30.0),
    );
    let gcc = r.mean_freq_mhz[..5].iter().sum::<f64>() / 5.0;
    let cam = r.mean_freq_mhz[5..].iter().sum::<f64>() / 5.0;
    let loss_gcc = 1.0 - gcc / 2400.0;
    let loss_cam = 1.0 - cam / 1700.0;
    Claim {
        name: "Fig 1: RAPL throttles the LD app relatively harder than the HD/AVX app",
        passed: loss_gcc > loss_cam + 0.05,
        evidence: format!(
            "gcc -{:.0}% vs cam4 -{:.0}%",
            loss_gcc * 100.0,
            loss_cam * 100.0
        ),
    }
}

fn check_avx_saturation() -> Claim {
    // Figure 2: AVX apps stop improving near 1.9 GHz.
    let p = PlatformSpec::skylake();
    let f19 = p.turbo.cap_for(1, true);
    Claim {
        name: "Fig 2: AVX apps frequency-cap near 1.9 GHz solo",
        passed: f19 == KiloHertz::from_mhz(1900),
        evidence: format!("single-core AVX cap {f19}"),
    }
}

fn check_priority_protects_hp() -> Claim {
    // Figure 7: priority keeps HP fast where RAPL cannot.
    let build = |policy: PolicyKind| {
        let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(40.0))
            .duration(Seconds(35.0))
            .warmup(10);
        for i in 0..3 {
            e = e.app(format!("hp{i}"), spec::CACTUS_BSSN, Priority::High, 100);
        }
        for i in 0..7 {
            e = e.app(format!("lp{i}"), spec::LEELA, Priority::Low, 100);
        }
        e.run().expect("runs")
    };
    let prio = build(PolicyKind::Priority);
    let rapl = build(PolicyKind::RaplNative);
    let hp = |r: &ExperimentResult| r.apps[..3].iter().map(|a| a.norm_perf).sum::<f64>() / 3.0;
    Claim {
        name: "Fig 7: priority policy protects HP where RAPL degrades it",
        passed: hp(&prio) > hp(&rapl) * 1.2,
        evidence: format!(
            "HP perf {:.2} (priority) vs {:.2} (RAPL)",
            hp(&prio),
            hp(&rapl)
        ),
    }
}

fn check_opportunistic_boost() -> Claim {
    // Figure 7/8: with few HP apps at a tight limit, starving LP buys
    // HP more than its 85 W performance.
    let run = |limit: f64| {
        let mut e = Experiment::new(PlatformSpec::skylake(), PolicyKind::Priority, Watts(limit))
            .duration(Seconds(35.0))
            .warmup(10);
        for i in 0..3 {
            e = e.app(format!("hp{i}"), spec::CACTUS_BSSN, Priority::High, 100);
        }
        for i in 0..7 {
            e = e.app(format!("lp{i}"), spec::LEELA, Priority::Low, 100);
        }
        let r = e.run().expect("runs");
        r.apps[..3].iter().map(|a| a.norm_perf).sum::<f64>() / 3.0
    };
    let at85 = run(85.0);
    let at40 = run(40.0);
    Claim {
        name: "Fig 7: 3 HP apps run faster at 40 W (LP starved) than at 85 W (all busy)",
        passed: at40 > at85,
        evidence: format!("HP perf {at40:.3} @40 W vs {at85:.3} @85 W"),
    }
}

fn check_share_proportionality() -> Claim {
    // Figures 9/10: frequency fractions track share ratios mid-range.
    let r = shares_run(PolicyKind::FrequencyShares, 40.0, 30, 70);
    let ld: f64 = r.apps[..5].iter().map(|a| a.mean_freq_mhz).sum();
    let hd: f64 = r.apps[5..].iter().map(|a| a.mean_freq_mhz).sum();
    let frac = ld / (ld + hd);
    Claim {
        name: "Fig 9/10: 30/70 shares deliver ~30% of frequency to the LD class",
        passed: (0.25..0.40).contains(&frac),
        evidence: format!("LD frequency fraction {:.1}%", frac * 100.0),
    }
}

fn check_low_dynamic_range() -> Claim {
    // §5.2/Fig 9: 90/10 cannot be delivered; the floor guarantees more.
    let r = shares_run(PolicyKind::FrequencyShares, 40.0, 10, 90);
    let ld: f64 = r.apps[..5].iter().map(|a| a.mean_freq_mhz).sum();
    let hd: f64 = r.apps[5..].iter().map(|a| a.mean_freq_mhz).sum();
    let frac = ld / (ld + hd);
    Claim {
        name: "Fig 9: at 10/90 the frequency floor keeps the low-share class above its share",
        passed: frac > 0.15,
        evidence: format!(
            "LD frequency fraction {:.1}% (configured 10%)",
            frac * 100.0
        ),
    }
}

fn check_power_shares_isolation_failure() -> Claim {
    // Figure 10: power shares isolate power, not performance.
    let mut e = Experiment::new(PlatformSpec::ryzen(), PolicyKind::PowerShares, Watts(45.0))
        .duration(Seconds(40.0))
        .warmup(10);
    for i in 0..4 {
        e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, 50);
    }
    for i in 0..4 {
        e = e.app(format!("cactus-{i}"), spec::CACTUS_BSSN, Priority::High, 50);
    }
    let r = e.run().expect("runs");
    let ld_f: f64 = r.apps[..4].iter().map(|a| a.mean_freq_mhz).sum();
    let hd_f: f64 = r.apps[4..].iter().map(|a| a.mean_freq_mhz).sum();
    Claim {
        name: "Fig 10: equal power shares give the low-demand app more frequency",
        passed: ld_f > hd_f * 1.05,
        evidence: format!(
            "LD {:.0} vs HD {:.0} MHz at equal power",
            ld_f / 4.0,
            hd_f / 4.0
        ),
    }
}

fn check_websearch_protection() -> Claim {
    // Figures 5/12/13: shares protect the service from the virus.
    let run = |policy: PolicyKind, colocated: bool| {
        let mut e = LatencyExperiment::new(PlatformSpec::skylake(), policy, Watts(40.0))
            .shares(90, 10)
            .duration(Seconds(40.0))
            .warmup(Seconds(10.0));
        if colocated {
            e = e.colocate(CPUBURN);
        }
        e.run().expect("runs").p90_ms
    };
    let alone = run(PolicyKind::RaplNative, false);
    let rapl = run(PolicyKind::RaplNative, true);
    let fs = run(PolicyKind::FrequencyShares, true);
    Claim {
        name: "Fig 12: frequency shares recover the colocation tail-latency penalty",
        passed: rapl > alone * 1.15 && fs < rapl * 0.9,
        evidence: format!("p90 alone {alone:.1} / RAPL {rapl:.1} / shares {fs:.1} ms"),
    }
}

fn check_ryzen_slots() -> Claim {
    // §5: Ryzen runs with 8 distinct share levels stay within 3 P-states
    // (the chip would reject violations, so completing is the proof).
    let mut e = Experiment::new(
        PlatformSpec::ryzen(),
        PolicyKind::FrequencyShares,
        Watts(42.0),
    )
    .duration(Seconds(25.0))
    .warmup(5);
    for i in 0..8 {
        e = e.app(
            format!("a{i}"),
            if i % 2 == 0 {
                spec::LEELA
            } else {
                spec::CACTUS_BSSN
            },
            Priority::High,
            10 + 12 * i as u32,
        );
    }
    let ok = e.run().is_ok();
    Claim {
        name: "§5: Ryzen 3-P-state constraint honored for a full run (8 share levels)",
        passed: ok,
        evidence: if ok {
            "run completed".into()
        } else {
            "chip rejected an action".into()
        },
    }
}

fn check_limits_tracked() -> Claim {
    // All policies hold the programmed limit.
    let r = shares_run(PolicyKind::FrequencyShares, 45.0, 50, 50);
    let p = r.mean_package_power.value();
    Claim {
        name: "§6: the daemon tracks the programmed package limit",
        passed: (p - 45.0).abs() < 3.0,
        evidence: format!("mean package {p:.1} W vs 45 W limit"),
    }
}

fn main() -> ExitCode {
    let claims: Vec<Claim> = par_map(vec![0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9], |i| match i {
        0 => check_rapl_unfairness(),
        1 => check_avx_saturation(),
        2 => check_priority_protects_hp(),
        3 => check_opportunistic_boost(),
        4 => check_share_proportionality(),
        5 => check_low_dynamic_range(),
        6 => check_power_shares_isolation_failure(),
        7 => check_websearch_protection(),
        8 => check_ryzen_slots(),
        _ => check_limits_tracked(),
    });

    let mut t = Table::new(
        "Reproduction self-check: the paper's headline claims vs live simulation",
        &["status", "claim", "evidence"],
    );
    let mut failures = 0;
    for c in &claims {
        if !c.passed {
            failures += 1;
        }
        t.row(vec![
            if c.passed { "PASS" } else { "FAIL" }.into(),
            c.name.into(),
            c.evidence.clone(),
        ]);
    }
    println!("{t}");
    if failures == 0 {
        println!("all {} claims reproduced", claims.len());
        ExitCode::SUCCESS
    } else {
        println!("{failures} of {} claims FAILED", claims.len());
        ExitCode::FAILURE
    }
}
