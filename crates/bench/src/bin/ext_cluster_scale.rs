//! Extension: cluster control-plane scaling — the sharded `pap-scale`
//! engine vs the serial `clusterd` reference at 8/64/512/1024 nodes
//! (DESIGN.md §14).
//!
//! Both engines replay the *same* compressed diurnal day: a seeded
//! [`ChurnLoad`] stream admits and departs hundreds of tenant apps per
//! control window while the cluster runs under one global budget with
//! periodic rebalancing. The serial reference pays today's costs — a
//! full candidate sort per admission and a full telemetry
//! re-aggregation (allocation, sort, six-way fold) every interval. The
//! sharded engine batches the window's churn through one placement heap
//! (`admit_batch`/`depart_batch`) and keeps the rollup incremental
//! (`DeltaRollup`), materializing it only at rebalance epochs.
//!
//! Exits non-zero if (a) the sharded engine diverges from the serial
//! reference *in any checked bit* at epsilon = 0 (energy to the bit,
//! caps, per-app reports, final rollup), (b) arbiter throughput at 1024
//! nodes is below 8x the serial reference, or (c) sharded throughput
//! scales worse than 0.5x ideal from 64 to 512 nodes. An epsilon > 0
//! run at the largest size reports the skip rate the tolerance buys.
//! Results land in `results/BENCH_cluster_scale.json` for CI.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use clusterd::cluster::AppReport;
use clusterd::{Cluster, ClusterConfig};
use pap_bench::{f1, Table};
use pap_scale::{run_sharded, ChurnLoad, ScaleConfig, ScaleStats};
use pap_simcpu::units::{Seconds, Watts};
use pap_tenants::arrival::ArrivalTrace;
use powerd::config::PolicyKind;

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

const SIZES: [usize; 4] = [8, 64, 512, 1024];
const SEED: u64 = 1009;
/// Mean/swing of the diurnal population trace (fraction of cluster
/// cores occupied by tenant apps).
const MEAN_LOAD: f64 = 0.25;
const SWING: f64 = 0.15;

#[derive(Clone, Copy)]
enum Engine {
    Serial,
    Sharded { epsilon: f64 },
}

/// End state + wall time of one replay. Everything the serial and
/// sharded runs must agree on bit-for-bit at epsilon = 0.
struct Outcome {
    wall_secs: f64,
    intervals: u64,
    energy_bits: u64,
    caps: Vec<Watts>,
    reports: Vec<AppReport>,
    free_cores: usize,
    /// Control-plane operations replayed: node-intervals plus churn ops.
    ops: u64,
    stats: Option<ScaleStats>,
}

impl Outcome {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_secs
    }
}

fn config(nodes: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        nodes,
        PolicyKind::FrequencyShares,
        Watts(60.0 * nodes as f64),
    );
    // One sim tick per control interval: the chip model advances the
    // same amount under both engines, so the measured difference is the
    // control plane — admission, aggregation, arbitration.
    cfg.tick = cfg.control_interval;
    cfg
}

/// Replay `windows` control windows of the seeded diurnal churn day on
/// a fresh cluster, through either engine. `turnover` is the background
/// churn per window ([`ChurnLoad`]); the scaling comparison uses
/// `nodes` (churn-heavy), the epsilon demonstration a quiet fleet.
fn replay(nodes: usize, windows: u64, engine: Engine, turnover: usize) -> Outcome {
    let cfg = config(nodes);
    let interval = cfg.control_interval;
    let mut cluster = Cluster::new(cfg).expect("budget funds the node floors");
    let capacity = nodes * cluster.config().platform.num_cores;
    let period = Seconds(windows as f64 * interval.value());
    let trace = ArrivalTrace::diurnal(MEAN_LOAD, SWING, period);
    let mut load = ChurnLoad::new(trace, SEED, capacity, turnover);
    let scale = match engine {
        Engine::Sharded { epsilon } => Some(ScaleConfig {
            shards: 0,
            chunk_nodes: 32,
            epsilon,
        }),
        Engine::Serial => None,
    };

    let mut ops = 0u64;
    let mut stats: Option<ScaleStats> = None;
    let started = Instant::now();
    for w in 0..windows {
        let batch = load.next_batch(Seconds(w as f64 * interval.value()));
        ops += batch.len() as u64 + nodes as u64;
        let admitted: Vec<bool> = match &scale {
            None => {
                for name in &batch.departures {
                    cluster.depart(name).expect("departing app is placed");
                }
                batch
                    .arrivals
                    .iter()
                    .map(|req| cluster.admit(req).is_ok())
                    .collect()
            }
            Some(_) => {
                for r in cluster.depart_batch(&batch.departures) {
                    r.expect("departing app is placed");
                }
                cluster
                    .admit_batch(&batch.arrivals)
                    .iter()
                    .map(Result::is_ok)
                    .collect()
            }
        };
        load.commit(&batch, &admitted);
        match &scale {
            None => cluster.run(1),
            Some(sc) => {
                let s = run_sharded(&mut cluster, 1, sc);
                stats = Some(match stats.take() {
                    None => s,
                    Some(prev) => ScaleStats {
                        intervals: prev.intervals + s.intervals,
                        delta_updates: prev.delta_updates + s.delta_updates,
                        delta_skips: prev.delta_skips + s.delta_skips,
                        ..s
                    },
                });
            }
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();

    Outcome {
        wall_secs,
        intervals: cluster.intervals_run(),
        energy_bits: cluster.energy_j().to_bits(),
        caps: cluster.node_caps(),
        reports: cluster.reports(),
        free_cores: cluster.free_cores(),
        ops,
        stats,
    }
}

struct SizeResult {
    nodes: usize,
    serial: Outcome,
    sharded: Outcome,
    identical: bool,
}

fn json_report(results: &[SizeResult], windows: u64, eps: f64, eps_run: &Outcome) -> String {
    let mut s = String::from("{\n  \"bench\": \"cluster_scale\",\n");
    let _ = writeln!(
        s,
        "  \"windows\": {windows},\n  \"seed\": {SEED},\n  \"sizes\": ["
    );
    for (i, r) in results.iter().enumerate() {
        let st = r.sharded.stats.as_ref().expect("sharded run has stats");
        let _ = writeln!(
            s,
            "    {{\"nodes\": {}, \"identical\": {}, \"serial_wall_s\": {:.4}, \
             \"sharded_wall_s\": {:.4}, \"speedup\": {:.2}, \
             \"serial_ops_per_s\": {:.0}, \"sharded_ops_per_s\": {:.0}, \
             \"shards\": {}, \"delta_updates\": {}, \"delta_skips\": {}}}{}",
            r.nodes,
            r.identical,
            r.serial.wall_secs,
            r.sharded.wall_secs,
            r.serial.wall_secs / r.sharded.wall_secs,
            r.serial.ops_per_sec(),
            r.sharded.ops_per_sec(),
            st.shards,
            st.delta_updates,
            st.delta_skips,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    let est = eps_run.stats.as_ref().expect("epsilon run has stats");
    let _ = writeln!(
        s,
        "  ],\n  \"epsilon_run\": {{\"nodes\": {}, \"epsilon\": {}, \
         \"skip_rate\": {:.4}, \"ops_per_s\": {:.0}}}\n}}",
        results.last().map_or(0, |r| r.nodes),
        eps,
        est.skip_rate(),
        eps_run.ops_per_sec(),
    );
    s
}

fn main() -> ExitCode {
    let mut windows = 16u64;
    let mut out_path = String::from("results/BENCH_cluster_scale.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--windows" => {
                windows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--windows takes a positive integer");
            }
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?} (supported: --windows N, --out PATH)"),
        }
    }

    let mut results = Vec::new();
    for nodes in SIZES {
        // Churn-heavy: every window also replaces `nodes` tenants even
        // when the diurnal target is flat.
        let serial = replay(nodes, windows, Engine::Serial, nodes);
        let sharded = replay(nodes, windows, Engine::Sharded { epsilon: 0.0 }, nodes);
        let identical = serial.intervals == sharded.intervals
            && serial.energy_bits == sharded.energy_bits
            && serial.caps == sharded.caps
            && serial.reports == sharded.reports
            && serial.free_cores == sharded.free_cores;
        results.push(SizeResult {
            nodes,
            serial,
            sharded,
            identical,
        });
    }
    // Tolerance run at the largest size, on a quiet fleet (light
    // background churn): what fraction of rows does epsilon skip when
    // most nodes are in steady state?
    let eps = 0.05;
    let largest = *SIZES.last().expect("sizes non-empty");
    let eps_run = replay(
        largest,
        windows,
        Engine::Sharded { epsilon: eps },
        largest / 64,
    );

    let mut t = Table::new(
        format!("Cluster control-plane scaling ({windows} churn-heavy windows per size)"),
        &[
            "nodes",
            "identical",
            "serial_s",
            "sharded_s",
            "speedup",
            "serial_kops/s",
            "sharded_kops/s",
        ],
    );
    for r in &results {
        t.row(vec![
            r.nodes.to_string(),
            if r.identical {
                "yes".into()
            } else {
                "NO".into()
            },
            f2(r.serial.wall_secs),
            f2(r.sharded.wall_secs),
            f2(r.serial.wall_secs / r.sharded.wall_secs),
            f1(r.serial.ops_per_sec() / 1e3),
            f1(r.sharded.ops_per_sec() / 1e3),
        ]);
    }
    println!("{t}");
    let est = eps_run.stats.as_ref().expect("epsilon run has stats");
    println!(
        "epsilon = {eps} at {largest} nodes: skip rate {:.1}% ({} skips / {} updates), \
         {:.0} kops/s (no parity claim; tolerance trades exactness for skips)",
        est.skip_rate() * 100.0,
        est.delta_skips,
        est.delta_updates,
        eps_run.ops_per_sec() / 1e3
    );

    let mut failures = Vec::new();
    for r in &results {
        if !r.identical {
            failures.push(format!(
                "{} nodes: sharded engine diverged from the serial reference at epsilon=0",
                r.nodes
            ));
        }
    }
    let at = |nodes: usize| {
        results
            .iter()
            .find(|r| r.nodes == nodes)
            .expect("size was run")
    };
    let speedup_1024 = at(1024).serial.wall_secs / at(1024).sharded.wall_secs;
    if speedup_1024 < 8.0 {
        failures.push(format!(
            "arbiter throughput at 1024 nodes is {speedup_1024:.2}x the serial \
             reference (gate: >= 8x)"
        ));
    }
    let scaling = at(512).sharded.ops_per_sec() / at(64).sharded.ops_per_sec();
    if scaling < 0.5 {
        failures.push(format!(
            "sharded throughput scales {scaling:.2}x from 64 to 512 nodes \
             (gate: >= 0.5x ideal)"
        ));
    }

    let json = json_report(&results, windows, eps, &eps_run);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("Report written to {out_path}");

    if failures.is_empty() {
        println!(
            "PASS: bit-identical to the serial reference at every size, \
             {speedup_1024:.1}x arbiter throughput at 1024 nodes, \
             {scaling:.2}x throughput retention from 64 to 512 nodes."
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
