//! Figure 6 — Time-shared power consumption on a single core (§4.3).
//!
//! cactusBSSN (HD) and gcc (LD) time-share one Ryzen core at 3.4 GHz under
//! docker-style CPU shares. One app is fixed at 50 % share while the
//! other's share sweeps 10–50 %; also shown are the solo 100 % runs. The
//! paper's observation: core power is the time-weighted sum of the
//! individual apps' draws, so power moves proportionally with resident
//! time.

use pap_bench::sweep::{Sweep, Threads};
use pap_bench::{f1, f3, Table};
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::timeshare::{ShareTask, TimeSharedCore};
use pap_simcpu::units::Seconds;
use pap_workloads::spec;

fn task(profile: &pap_workloads::profile::WorkloadProfile, fraction: f64) -> ShareTask {
    ShareTask {
        name: profile.name.to_string(),
        fraction,
        load: profile.load_at(KiloHertz::from_mhz(3400)),
    }
}

fn main() {
    let platform = PlatformSpec::ryzen();
    let f = KiloHertz::from_mhz(3400);
    let period = Seconds::from_millis(100.0);
    let hd = spec::CACTUS_BSSN;
    let ld = spec::GCC;

    let mut t = Table::new(
        "Figure 6: time-shared core power, cactusBSSN (HD) / gcc (LD) at 3.4 GHz on Ryzen",
        &[
            "hd_share_%",
            "ld_share_%",
            "core_w_simulated",
            "core_w_analytic",
        ],
    );

    // Each cell simulates one share mix and returns its finished row;
    // the sweep engine keeps the rows in insertion order.
    let row = |hd_share: String, ld_share: String, tasks: Vec<ShareTask>| {
        let platform = platform.clone();
        move || {
            let core = TimeSharedCore::new(tasks, period);
            let sim = core.simulate(&platform.power, f, Seconds(60.0));
            vec![
                hd_share,
                ld_share,
                f3(sim.average_power.value()),
                f3(core.time_weighted_power(&platform.power, f).value()),
            ]
        }
    };
    let mut sweep = Sweep::new();
    // Solo 100 % runs.
    sweep.add(row("100".into(), "0".into(), vec![task(&hd, 1.0)]));
    sweep.add(row("0".into(), "100".into(), vec![task(&ld, 1.0)]));
    // LD fixed at 50 %, HD swept.
    for hd_pct in [10, 20, 30, 40, 50] {
        sweep.add(row(
            format!("{hd_pct}"),
            "50".into(),
            vec![task(&hd, hd_pct as f64 / 100.0), task(&ld, 0.5)],
        ));
    }
    // HD fixed at 50 %, LD swept.
    for ld_pct in [10, 20, 30, 40] {
        sweep.add(row(
            "50".into(),
            format!("{ld_pct}"),
            vec![task(&hd, 0.5), task(&ld, ld_pct as f64 / 100.0)],
        ));
    }
    for r in sweep.run(Threads::from_env()) {
        t.row(r);
    }
    println!("{t}");

    // Verify the time-weighted-sum property explicitly.
    let p_hd = platform.power.core_power(f, &hd.load_at(f)).value();
    let p_ld = platform.power.core_power(f, &ld.load_at(f)).value();
    let mix = TimeSharedCore::new(vec![task(&hd, 0.3), task(&ld, 0.5)], period);
    let measured = mix
        .simulate(&platform.power, f, Seconds(60.0))
        .average_power
        .value();
    let idle = platform
        .power
        .core_power(f, &pap_simcpu::power::LoadDescriptor::IDLE)
        .value();
    let predicted = 0.3 * p_hd + 0.5 * p_ld + 0.2 * idle;
    println!(
        "Time-weighted-sum check (30% HD + 50% LD): measured {} W vs \
         0.3*{:.2} + 0.5*{:.2} + 0.2*idle = {:.3} W (err {:.2}%)",
        f1(measured),
        p_hd,
        p_ld,
        predicted,
        (measured - predicted).abs() / predicted * 100.0
    );
    println!(
        "Expected shape: power rises monotonically with either app's share, \
         HD shares move it faster than LD shares, and every simulated value \
         matches the analytic time-weighted sum."
    );
}
