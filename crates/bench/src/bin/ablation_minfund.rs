//! Ablation: water-fill redistribution vs the paper's literal
//! incremental-delta scheme.
//!
//! Both schemes distribute share-proportional *deltas*; the difference is
//! that the water-fill recomputes the full share-proportional allocation
//! each interval ("re-running the distribution algorithm"), while the
//! incremental scheme adjusts the previous allocation. Under a steady
//! load they coincide — the drift needs (a) a high-share app pinned at a
//! hardware cap, so every *raise* overflows to the low-share app, and
//! (b) recurring over-limit excursions, whose *withdrawals* tax the
//! high-share app by its share weight. A bursty latency service
//! co-located with a power virus provides exactly that: utilization
//! (and power) swings with load, driving the loop through raise/withdraw
//! cycles while the service cores sit at their turbo cap.

use pap_bench::{f1, f3, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::sampler::Sampler;
use pap_workloads::burn::cpuburn;
use pap_workloads::latency::ServiceConfig;
use pap_workloads::traces::{LoadTrace, TracedService};
use powerd::config::{AppSpec, ControllerTuning, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;

const SERVICE_CORES: usize = 9;
const BURN_CORE: usize = 9;

struct Outcome {
    service_mhz_early: f64,
    service_mhz_late: f64,
    burn_mhz_early: f64,
    burn_mhz_late: f64,
    p90_late_ms: f64,
}

fn run(incremental: bool, limit: f64) -> Outcome {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform.clone());
    let trace = LoadTrace::Bursty {
        high: 1.0,
        low: 0.25,
        period: Seconds(20.0),
        duty: 0.5,
    };
    let mut service = TracedService::new(ServiceConfig::websearch(), SERVICE_CORES, trace);
    let mut burn = cpuburn();

    let mut apps: Vec<AppSpec> = (0..SERVICE_CORES)
        .map(|c| {
            AppSpec::new(format!("web/{c}"), c)
                .with_priority(Priority::High)
                .with_shares(90)
                .with_baseline_ips(3.0e9)
        })
        .collect();
    apps.push(
        AppSpec::new("cpuburn", BURN_CORE)
            .with_priority(Priority::Low)
            .with_shares(10)
            .with_baseline_ips(3.0e9),
    );
    let mut config = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(limit), apps);
    config.tuning = ControllerTuning {
        incremental_redistribution: incremental,
        ..ControllerTuning::default()
    };
    let mut daemon = Daemon::new(config, &platform).unwrap();
    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).unwrap();
    let mut parked = action.parked.clone();

    let mut sampler = Sampler::new(&chip);
    let dt = Seconds(0.001);
    let total = 240.0;
    let mut t = 0.0;
    let mut next_control = 1.0;

    // per-interval requested-frequency records (post-settling)
    let mut service_req = Vec::new();
    let mut burn_req = Vec::new();
    let mut p90_reset = false;

    while t < total {
        let freqs: Vec<KiloHertz> = (0..SERVICE_CORES).map(|c| chip.effective_freq(c)).collect();
        let loads = service.advance(dt, &freqs);
        for (c, load) in loads.into_iter().enumerate() {
            let instr = (load.utilization * freqs[c].hz() * dt.value()) as u64;
            chip.set_load(c, load).unwrap();
            chip.add_instructions(c, instr).unwrap();
        }
        if !parked[BURN_CORE] {
            let f = chip.effective_freq(BURN_CORE);
            let out = burn.advance(dt, f);
            chip.set_load(BURN_CORE, out.load).unwrap();
            chip.add_instructions(BURN_CORE, out.instructions).unwrap();
        }
        chip.tick(dt);
        t += dt.value();

        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).unwrap();
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).unwrap();
                }
                parked = action.parked.clone();
                if t > 20.0 {
                    let s_req: f64 = (0..SERVICE_CORES)
                        .map(|c| chip.requested_freq(c).mhz() as f64)
                        .sum::<f64>()
                        / SERVICE_CORES as f64;
                    service_req.push(s_req);
                    burn_req.push(chip.requested_freq(BURN_CORE).mhz() as f64);
                }
            }
            if !p90_reset && t >= total - 60.0 {
                service.service_mut().reset_stats();
                p90_reset = true;
            }
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let n = service_req.len();
    Outcome {
        service_mhz_early: mean(&service_req[..20.min(n)]),
        service_mhz_late: mean(&service_req[n.saturating_sub(20)..]),
        burn_mhz_early: mean(&burn_req[..20.min(n)]),
        burn_mhz_late: mean(&burn_req[n.saturating_sub(20)..]),
        p90_late_ms: service.service().p90_ms(),
    }
}

fn main() {
    let mut t = Table::new(
        "Ablation: redistribution scheme under bursty load (websearch 90 / cpuburn 10 shares, 40 W)",
        &[
            "scheme",
            "svc_req_early",
            "svc_req_late",
            "burn_req_early",
            "burn_req_late",
            "late_p90_ms",
        ],
    );
    for incremental in [false, true] {
        let o = run(incremental, 40.0);
        t.row(vec![
            if incremental {
                "incremental"
            } else {
                "water-fill"
            }
            .into(),
            f1(o.service_mhz_early),
            f1(o.service_mhz_late),
            f1(o.burn_mhz_early),
            f1(o.burn_mhz_late),
            f3(o.p90_late_ms),
        ]);
    }
    println!("{t}");
    println!(
        "Columns are mean *requested* frequencies over the first/last 20 \
         control intervals after settling. Expected: under the water-fill the \
         allocation is the same at the end as at the start (re-derived from \
         shares each interval); under the incremental scheme the burst cycle \
         ratchets the virus's allocation upward — raises overflow to it while \
         the capped service cores absorb the withdrawals — degrading the \
         service's late-run tail."
    );
}
