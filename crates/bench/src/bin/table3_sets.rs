//! Table 3 — Applications for the random experiments, plus a fresh seeded
//! draw to show the generator.

use pap_bench::Table;
use pap_workloads::generator::{random_set, skylake_set_a, skylake_set_b};

fn main() {
    let mut t = Table::new(
        "Table 3: applications for random experiments",
        &["set", "app0", "app1", "app2", "app3", "app4"],
    );
    let a = skylake_set_a();
    let b = skylake_set_b();
    t.row(
        std::iter::once("Skylake A".to_string())
            .chain(a.iter().map(|w| w.name.to_string()))
            .collect(),
    );
    t.row(
        std::iter::once("Skylake B".to_string())
            .chain(b.iter().map(|w| w.name.to_string()))
            .collect(),
    );
    for seed in [1u64, 2, 3] {
        let s = random_set(seed, 5);
        t.row(
            std::iter::once(format!("seeded({seed})"))
                .chain(s.iter().map(|w| w.name.to_string()))
                .collect(),
        );
    }
    println!("{t}");
    println!(
        "Sets A and B are fixed to the paper's Table 3; the seeded rows \
         demonstrate the deterministic generator used for wider sweeps."
    );
}
