//! Ablation: the paper's naïve α translation model vs damping levels.
//!
//! The α model converts watts of error into frequency linearly against
//! `MaxPower`/`MaxFrequency` (§5.2); it overestimates corrections far from
//! the target. We sweep the damping factor applied to the correction and
//! measure settling time (control intervals until package power stays
//! within ±1.5 W of the limit) and steady-state behavior.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::stats;
use pap_workloads::spec;
use powerd::config::{ControllerTuning, PolicyKind, Priority};
use powerd::runner::Experiment;

fn main() {
    let dampings = [0.2, 0.4, 0.6, 0.8, 1.0];
    let results = par_map(dampings.to_vec(), |damping| {
        let tuning = ControllerTuning {
            damping,
            ..ControllerTuning::default()
        };
        let mut e = Experiment::new(
            PlatformSpec::skylake(),
            PolicyKind::FrequencyShares,
            Watts(45.0),
        )
        .tuning(tuning)
        .duration(Seconds(60.0))
        .warmup(0); // keep the transient in the trace
        for i in 0..5 {
            e = e.app(format!("cactus-{i}"), spec::CACTUS_BSSN, Priority::High, 70);
            e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, 30);
        }
        (damping, e.run().expect("experiment runs"))
    });

    let mut t = Table::new(
        "Ablation: α-model damping (frequency shares, 45 W, 10 apps on Skylake)",
        &[
            "damping",
            "settle_intervals",
            "steady_mean_w",
            "steady_std_w",
        ],
    );
    for (damping, r) in &results {
        let powers: Vec<f64> = r
            .trace
            .samples()
            .iter()
            .map(|s| s.package_power.value())
            .collect();
        // settled = first index after which all samples stay within ±1.5 W
        let mut settle = powers.len();
        for i in 0..powers.len() {
            if powers[i..].iter().all(|p| (p - 45.0).abs() < 1.5) {
                settle = i;
                break;
            }
        }
        let steady = &powers[powers.len().min(settle)..];
        let steady = if steady.is_empty() {
            &powers[powers.len() - 10..]
        } else {
            steady
        };
        t.row(vec![
            f3(*damping),
            format!("{settle}"),
            f1(stats::mean(steady)),
            f3(stats::std_dev(steady)),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: low damping settles slowly but smoothly; raw α (1.0) \
         converges fastest but with the largest steady-state jitter. The \
         default 0.6 trades a few intervals of settling for stability — \
         consistent with the paper's note that the model's error shrinks \
         near the target."
    );
}
