//! Figure 7 — Priority policy vs RAPL on Skylake.
//!
//! The Table 2 mixes run under the priority policy and under native RAPL
//! at 85/50/40 W. Per mix and limit we report the average normalized
//! performance (vs standalone at 85 W) and active frequency of each
//! priority class. Paper findings: the priority policy starves LP
//! applications at tight limits when there are many HP applications
//! (no power left after HP); with few HP applications at 40 W the HP apps
//! run *faster* than at 85 W (LP cores parked → opportunistic scaling);
//! RAPL makes no distinction and throttles both classes equally.

use pap_bench::mixes::{skylake_priority, Mix};
use pap_bench::{f1, f3, par_map, Table, POLICY_LIMITS};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult};

fn run_mix(mix: &Mix, policy: PolicyKind, limit: f64) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .duration(Seconds(60.0))
        .warmup(15);
    for (i, (profile, pri)) in mix.entries.iter().enumerate() {
        e = e.app(format!("{}-{}", profile.name, i), *profile, *pri, 100);
    }
    e.run().expect("experiment runs")
}

fn class_stats(mix: &Mix, r: &ExperimentResult, class: Priority) -> (f64, f64, usize) {
    let idx: Vec<usize> = mix
        .entries
        .iter()
        .enumerate()
        .filter(|(_, (_, p))| *p == class)
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return (0.0, 0.0, 0);
    }
    let perf = idx.iter().map(|&i| r.apps[i].norm_perf).sum::<f64>() / idx.len() as f64;
    let freq = idx.iter().map(|&i| r.apps[i].mean_freq_mhz).sum::<f64>() / idx.len() as f64;
    (perf, freq, idx.len())
}

fn main() {
    let mixes = skylake_priority();
    let mut jobs = Vec::new();
    for (m, mix) in mixes.iter().enumerate() {
        for &limit in &POLICY_LIMITS {
            for policy in [PolicyKind::Priority, PolicyKind::RaplNative] {
                jobs.push((m, limit, policy, mix));
            }
        }
    }
    let results = par_map(jobs, |(m, limit, policy, mix)| {
        (m, limit, policy, run_mix(mix, policy, limit))
    });

    for policy in [PolicyKind::Priority, PolicyKind::RaplNative] {
        let mut t = Table::new(
            format!(
                "Figure 7 ({}): Skylake priority mixes — class averages",
                policy.name()
            ),
            &[
                "mix", "limit_w", "hp_perf", "lp_perf", "hp_mhz", "lp_mhz", "pkg_w",
            ],
        );
        for (m, mix) in mixes.iter().enumerate() {
            for &limit in &POLICY_LIMITS {
                let r = &results
                    .iter()
                    .find(|(mm, l, p, _)| *mm == m && *l == limit && *p == policy)
                    .expect("swept")
                    .3;
                let (hp_perf, hp_mhz, _) = class_stats(mix, r, Priority::High);
                let (lp_perf, lp_mhz, n_lp) = class_stats(mix, r, Priority::Low);
                t.row(vec![
                    mix.label.into(),
                    f1(limit),
                    f3(hp_perf),
                    if n_lp == 0 { "-".into() } else { f3(lp_perf) },
                    f1(hp_mhz),
                    if n_lp == 0 { "-".into() } else { f1(lp_mhz) },
                    f1(r.mean_package_power.value()),
                ]);
            }
        }
        println!("{t}");
    }
    println!(
        "Expected shape: under the priority policy HP performance stays high \
         at every limit, LP performance collapses to ~0 (starvation) at 40-50 W \
         with many HP apps, and with few HP apps at 40 W the HP class exceeds \
         its 85 W performance (parked LP cores buy turbo headroom). Under RAPL \
         the two classes degrade together."
    );
}
