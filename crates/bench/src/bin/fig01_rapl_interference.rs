//! Figure 1 — Performance interference between applications with RAPL.
//!
//! Five copies of `gcc` (low demand) and five of `cam4` (high demand, AVX)
//! run concurrently on the Skylake platform under progressively lower RAPL
//! limits. Performance is normalized to the same mix at 85 W. Paper
//! anchors: at 50 W gcc ≈ −12 % frequency while cam4 ≈ −5 %; at 40 W both
//! throttle to the same ≈ 1240 MHz, a 48 % cut for gcc but only 25 % for
//! cam4 — RAPL has no notion of priority or fairness.

use pap_bench::{f1, f3, par_map, run_fixed, Table, SKYLAKE_LIMITS};
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::profile::WorkloadProfile;
use pap_workloads::spec;

fn main() {
    let platform = PlatformSpec::skylake();
    let requests = vec![KiloHertz::from_mhz(3000); 10];
    let assignments: Vec<Option<WorkloadProfile>> = (0..10)
        .map(|c| Some(if c < 5 { spec::GCC } else { spec::CAM4 }))
        .collect();

    let runs = par_map(SKYLAKE_LIMITS.to_vec(), |limit| {
        let r = run_fixed(
            platform.clone(),
            &requests,
            &assignments,
            Some(Watts(limit)),
            Seconds(45.0),
        );
        (limit, r)
    });

    // Normalize to the 85 W run (index 0).
    let base_gcc: f64 = runs[0].1.mean_ips[..5].iter().sum::<f64>() / 5.0;
    let base_cam: f64 = runs[0].1.mean_ips[5..].iter().sum::<f64>() / 5.0;

    let mut t = Table::new(
        "Figure 1: RAPL interference, 5x gcc (LD) + 5x cam4 (HD/AVX) on Skylake",
        &[
            "limit_w",
            "pkg_w",
            "gcc_mhz",
            "cam4_mhz",
            "gcc_perf",
            "cam4_perf",
        ],
    );
    for (limit, r) in &runs {
        let gcc_mhz = r.mean_freq_mhz[..5].iter().sum::<f64>() / 5.0;
        let cam_mhz = r.mean_freq_mhz[5..].iter().sum::<f64>() / 5.0;
        let gcc_perf = r.mean_ips[..5].iter().sum::<f64>() / 5.0 / base_gcc;
        let cam_perf = r.mean_ips[5..].iter().sum::<f64>() / 5.0 / base_cam;
        t.row(vec![
            f1(*limit),
            f1(r.mean_package_power.value()),
            f1(gcc_mhz),
            f1(cam_mhz),
            f3(gcc_perf),
            f3(cam_perf),
        ]);
    }
    println!("{t}");
    println!(
        "Paper anchors: 50 W -> gcc 1975 MHz (-12%), cam4 1570 MHz (-5%); \
         40 W -> both ~1240 MHz (gcc -48%, cam4 -25%)."
    );
    println!(
        "Expected shape: gcc loses more frequency (and performance) than cam4 \
         at every limit below 85 W, because RAPL's global cap hits the fastest \
         cores first; at 40 W both converge to the same low frequency."
    );
}
