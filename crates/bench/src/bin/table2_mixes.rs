//! Table 2 — Workload mixes for the Skylake priority experiments.

use pap_bench::mixes::skylake_priority;
use pap_bench::Table;
use powerd::config::Priority;

fn main() {
    let mut t = Table::new(
        "Table 2: Skylake priority workload mixes (HD = cactusBSSN, LD = leela)",
        &[
            "mix",
            "cactusBSSN-HP",
            "leela-HP",
            "cactusBSSN-LP",
            "leela-LP",
        ],
    );
    for mix in skylake_priority() {
        let count = |name: &str, pri: Priority| -> String {
            let n = mix
                .entries
                .iter()
                .filter(|(w, p)| w.name == name && *p == pri)
                .count();
            if n == 0 {
                "-".into()
            } else {
                n.to_string()
            }
        };
        t.row(vec![
            mix.label.into(),
            count("cactusBSSN", Priority::High),
            count("leela", Priority::High),
            count("cactusBSSN", Priority::Low),
            count("leela", Priority::Low),
        ]);
    }
    println!("{t}");
    println!(
        "Paper's Table 2 rows: 10H0L = 5/5/-/-, 7H3L = 4/3/1/2, 5H5L = 5/-/-/5, \
         3H7L = 2/1/3/4, 1H9L = 1/-/4/5."
    );
}
