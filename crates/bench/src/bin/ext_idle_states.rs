//! Extension: C-state selection on duty-cycled work (§2.1 "Core Idling").
//!
//! A core executes a periodic burst pattern (busy/idle duty cycle). We
//! compare resting in each fixed C-state against the menu-style idle
//! governor: deeper states save idle power but charge wake latency on
//! every burst; the governor picks per-pattern.

use pap_bench::sweep::{self, Threads};
use pap_bench::{f1, f3, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::cstate::CState;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::idle::IdleGovernor;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

/// Run the duty cycle with a fixed (or governed) idle state; return
/// (mean package W, wake latency per burst µs, chosen state label).
fn run(busy_us: f64, idle_us: f64, fixed: Option<CState>) -> (f64, f64, String) {
    let mut chip = Chip::new(PlatformSpec::skylake());
    chip.set_requested_freq(0, KiloHertz::from_mhz(2200))
        .unwrap();
    let mut governor = IdleGovernor::new();
    let mut state = fixed.unwrap_or(CState::C6);

    let tick = Seconds::from_micros(50.0);
    let period = busy_us + idle_us;
    let mut t_us = 0.0;
    let mut energy = 0.0;
    let mut time = 0.0;
    let mut bursts = 0u64;
    let mut last_state = state;
    while t_us < 2_000_000.0 {
        let phase = t_us % period;
        let busy = phase < busy_us;
        if busy {
            chip.set_load(0, LoadDescriptor::nominal()).unwrap();
        } else {
            chip.set_load(0, LoadDescriptor::IDLE).unwrap();
        }
        // burst boundary: train and apply the governor
        if phase < tick.value() * 1e6 {
            bursts += 1;
            if fixed.is_none() {
                governor.observe(Seconds::from_micros(idle_us));
                state = governor.select();
            }
            last_state = state;
            chip.set_idle_state(0, state).unwrap();
        }
        chip.tick(tick);
        energy += chip.package_power().value() * tick.value();
        time += tick.value();
        t_us += tick.value() * 1e6;
    }
    let wake_us = last_state.wake_latency().value() * 1e6;
    let label = match fixed {
        Some(CState::C1) => "C1".into(),
        Some(CState::C3) => "C3".into(),
        Some(CState::C6) => "C6".into(),
        Some(CState::C0) => "C0".into(),
        None => format!("menu->{last_state:?}"),
    };
    let _ = bursts;
    (energy / time, wake_us, label)
}

fn main() {
    let patterns = [
        ("interrupt-ish (50µs busy / 100µs idle)", 50.0, 100.0),
        ("service-ish (1ms busy / 2ms idle)", 1000.0, 2000.0),
        ("batch-ish (20ms busy / 80ms idle)", 20_000.0, 80_000.0),
    ];
    let mut t = Table::new(
        "Extension: C-state choice vs duty cycle (one Skylake core @2.2 GHz)",
        &[
            "pattern",
            "idle_state",
            "pkg_w",
            "wake_cost_us",
            "wake_vs_idle_%",
        ],
    );
    let mut jobs = Vec::new();
    for (label, busy, idle) in patterns {
        for fixed in [Some(CState::C1), Some(CState::C3), Some(CState::C6), None] {
            jobs.push((label, busy, idle, fixed));
        }
    }
    let results = sweep::run(Threads::from_env(), jobs, |(label, busy, idle, fixed)| {
        (label, idle, run(busy, idle, fixed))
    });
    for (label, idle, (w, wake_us, state)) in results {
        t.row(vec![
            label.into(),
            state,
            f3(w),
            f1(wake_us),
            f1(wake_us / idle * 100.0),
        ]);
    }
    println!("{t}");
    println!(
        "Reading: with microsecond idles, C6's 133 µs wake latency would eat \
         the whole idle window (wake_vs_idle > 100%), so the menu governor \
         stays shallow despite the higher floor power; with millisecond-scale \
         idles it goes deep and pockets the idle-power savings — the §2.1 \
         trade, quantified. (Wake cost is reported analytically; the paper's \
         policies use parking only for multi-second starvation where it is \
         negligible.)"
    );
}
