//! Table 1 — Summary of power management features available on the two
//! modeled platforms.

use pap_bench::Table;
use pap_simcpu::platform::PlatformSpec;

fn main() {
    let mut t = Table::new(
        "Table 1: platform power-management features",
        &["feature", "Skylake (Xeon SP 4114)", "Ryzen 1700X"],
    );
    let sky = PlatformSpec::skylake();
    let ryz = PlatformSpec::ryzen();

    let row = |name: &str, a: String, b: String| vec![name.to_string(), a, b];
    t.row(row(
        "cores/threads",
        format!(
            "{} cores, {} threads",
            sky.num_cores,
            sky.num_cores * sky.threads_per_core
        ),
        format!(
            "{} cores, {} threads",
            ryz.num_cores,
            ryz.num_cores * ryz.threads_per_core
        ),
    ));
    t.row(row(
        "frequency range",
        format!(
            "{}-{} + {} boost",
            sky.grid.min(),
            sky.base_freq,
            sky.turbo.peak()
        ),
        format!(
            "{}-{} + {} XFR",
            ryz.grid.min(),
            ryz.base_freq,
            ryz.turbo.peak()
        ),
    ));
    t.row(row(
        "DVFS granularity",
        format!("per-core, {} steps", sky.grid.step()),
        format!(
            "per-core, {} steps, {} simultaneous P-states",
            ryz.grid.step(),
            ryz.shared_pstate_slots.unwrap_or(0)
        ),
    ));
    t.row(row(
        "RAPL power capping",
        match &sky.rapl {
            Some(cfg) => format!("{}-{}", cfg.limit_range.0, cfg.limit_range.1),
            None => "none".into(),
        },
        match &ryz.rapl {
            Some(cfg) => format!("{}-{}", cfg.limit_range.0, cfg.limit_range.1),
            None => "monitoring only (no limits)".into(),
        },
    ));
    t.row(row(
        "power telemetry",
        if sky.per_core_power {
            "package + per-core"
        } else {
            "package only"
        }
        .into(),
        if ryz.per_core_power {
            "package + per-core"
        } else {
            "package only"
        }
        .into(),
    ));
    t.row(row("TDP", format!("{}", sky.tdp), format!("{}", ryz.tdp)));
    println!("{t}");
}
