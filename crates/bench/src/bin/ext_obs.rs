//! Extension: observability overhead & off-path guarantee bench.
//!
//! The decision trace (`powerd::obs`) must be strictly off-path: with no
//! observer attached, every policy's commanded `ControlAction` stream is
//! bit-identical to a build that never heard of observability, and with
//! an observer attached the control decisions still must not change —
//! only a record is appended per interval. This bench enforces both,
//! plus a cost bound, for every policy on its native platform:
//!
//! * run each (policy, platform) simulation twice — observer off and
//!   observer on — from identical initial state, and require the two
//!   commanded frequency/park streams to be **bit-identical**;
//! * time the daemon step in both runs and fail if tracing pushes the
//!   mean step latency above a generous ceiling (1 ms — the real
//!   control interval is 1 s, so even this is 0.1% duty);
//! * exercise both sinks: aggregate metrics across all traced runs into
//!   one Prometheus exposition and print a JSONL record sample.
//!
//! CI runs it as a smoke test:
//! `cargo run --release -p pap-bench --bin ext_obs`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use pap_bench::Table;
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::metrics::ControlMetrics;
use pap_telemetry::sampler::Sampler;
use pap_workloads::engine::RunningApp;
use pap_workloads::phases::PhasedProfile;
use pap_workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;
use powerd::obs::DecisionTrace;
use powerd::runner::standalone_freq;

const DURATION: Seconds = Seconds(60.0);
const TICK: Seconds = Seconds(0.002);
/// Ceiling on the mean traced step latency. The control interval is
/// 1 s; a traced decision costing more than 1 ms would be 0.1% duty and
/// means something pathological crept onto the hot path.
const MAX_TRACED_STEP_SECONDS: f64 = 1e-3;

struct Outcome {
    /// Commanded frequencies, one row per control interval.
    freqs: Vec<Vec<KiloHertz>>,
    /// Park flags, one row per control interval.
    parked: Vec<Vec<bool>>,
    /// Mean daemon step wall time (s).
    mean_step: f64,
    /// The decision trace, when observing.
    trace: Option<DecisionTrace>,
}

fn run(
    policy: PolicyKind,
    platform: &PlatformSpec,
    observe: Option<Arc<ControlMetrics>>,
) -> Outcome {
    let mix = [
        ("cactus", spec::CACTUS_BSSN, 70u32),
        ("lbm", spec::LBM, 50),
        ("gcc", spec::GCC, 50),
        ("leela", spec::LEELA, 30),
    ];
    let apps: Vec<AppSpec> = mix
        .iter()
        .enumerate()
        .map(|(core, (name, profile, shares))| {
            AppSpec::new(name.to_string(), core)
                .with_priority(if core == 3 {
                    Priority::Low
                } else {
                    Priority::High
                })
                .with_shares(*shares)
                .with_baseline_ips(profile.ips(standalone_freq(platform, profile)))
        })
        .collect();
    let config = DaemonConfig::new(policy, Watts(40.0), apps);

    let mut chip = Chip::new(platform.clone());
    if policy == PolicyKind::RaplNative {
        chip.set_rapl_limit(Some(Watts(40.0))).expect("RAPL range");
    }
    let mut daemon = Daemon::new(config, platform).expect("valid config");
    if let Some(metrics) = observe {
        daemon.attach_observer(DecisionTrace::with_metrics(metrics));
    }
    let mut engines: Vec<RunningApp> = mix
        .iter()
        .enumerate()
        .map(|(i, (_, profile, _))| {
            RunningApp::from_phased(
                PhasedProfile::with_generated_phases(*profile, 42 ^ (i as u64) << 8, 0.1),
                true,
            )
        })
        .collect();

    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).expect("valid freqs");
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).expect("core in range");
    }
    let mut parked = action.parked.clone();

    let mut sampler = Sampler::new(&chip);
    let mut freqs_log = Vec::new();
    let mut parked_log = Vec::new();
    let mut step_seconds = 0.0;
    let mut steps = 0u32;
    let mut t = 0.0;
    let mut next_control = 1.0;
    while t < DURATION.value() {
        for (i, app) in engines.iter_mut().enumerate() {
            if parked[i] {
                continue;
            }
            let f = chip.effective_freq(i);
            let out = app.advance(TICK, f);
            chip.set_load(i, out.load).expect("core in range");
            chip.add_instructions(i, out.instructions)
                .expect("core in range");
        }
        chip.tick(TICK);
        t += TICK.value();

        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let started = Instant::now();
                let action = daemon.step(&sample);
                step_seconds += started.elapsed().as_secs_f64();
                steps += 1;
                chip.set_all_requested(&action.freqs).expect("valid freqs");
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).expect("core in range");
                }
                parked = action.parked.clone();
                freqs_log.push(action.freqs);
                parked_log.push(action.parked);
            }
        }
    }

    Outcome {
        freqs: freqs_log,
        parked: parked_log,
        mean_step: step_seconds / steps.max(1) as f64,
        trace: daemon.take_observer(),
    }
}

fn main() -> ExitCode {
    let skylake = PlatformSpec::skylake();
    let ryzen = PlatformSpec::ryzen();
    let cases: &[(PolicyKind, &PlatformSpec, &str)] = &[
        (PolicyKind::RaplNative, &skylake, "skylake"),
        (PolicyKind::Priority, &skylake, "skylake"),
        (PolicyKind::FrequencyShares, &skylake, "skylake"),
        (PolicyKind::PerformanceShares, &skylake, "skylake"),
        (PolicyKind::PowerShares, &ryzen, "ryzen"),
    ];

    let metrics = Arc::new(ControlMetrics::new());
    let mut t = Table::new(
        "Decision-trace overhead: observer off vs on (60 s, 1 s intervals)",
        &[
            "policy",
            "platform",
            "actions",
            "identical",
            "off step (us)",
            "on step (us)",
            "records",
        ],
    );

    let mut all_identical = true;
    let mut worst_traced = 0.0f64;
    let mut sample_record = None;
    for (policy, platform, plat_name) in cases {
        let off = run(*policy, platform, None);
        let on = run(*policy, platform, Some(metrics.clone()));
        let identical = off.freqs == on.freqs && off.parked == on.parked;
        all_identical &= identical;
        worst_traced = worst_traced.max(on.mean_step);
        let trace = on.trace.expect("observer attached");
        if sample_record.is_none() {
            sample_record = trace.records().last().map(|r| r.to_json());
        }
        t.row(vec![
            policy.name().into(),
            (*plat_name).into(),
            off.freqs.len().to_string(),
            if identical { "yes" } else { "DIVERGED" }.into(),
            format!("{:.1}", off.mean_step * 1e6),
            format!("{:.1}", on.mean_step * 1e6),
            trace.len().to_string(),
        ]);
    }
    println!("{t}");

    println!("aggregated metrics across all traced runs:");
    print!("{}", metrics.expose());
    if let Some(json) = sample_record {
        println!("\nsample JSONL record:\n{json}");
    }

    let mut ok = true;
    if !all_identical {
        println!("FAIL: attaching an observer changed a policy's commanded actions");
        ok = false;
    } else {
        println!(
            "\nverdict: all {} policies bit-identical with tracing on",
            cases.len()
        );
    }
    if worst_traced > MAX_TRACED_STEP_SECONDS {
        println!(
            "FAIL: worst traced mean step {:.1} us exceeds the {:.0} us ceiling",
            worst_traced * 1e6,
            MAX_TRACED_STEP_SECONDS * 1e6
        );
        ok = false;
    } else {
        println!(
            "verdict: worst traced mean step {:.1} us (ceiling {:.0} us)",
            worst_traced * 1e6,
            MAX_TRACED_STEP_SECONDS * 1e6
        );
    }
    if metrics.decisions.get() == 0 {
        println!("FAIL: metrics sink recorded no decisions");
        ok = false;
    }
    if ok {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
