//! Extension: the fleet fast path — WideChip-backed nodes plus decision
//! memoization, end to end (DESIGN.md §16).
//!
//! Replays the same seeded churn-heavy diurnal day at 1024 nodes through
//! three stacks, all on the sharded `pap-scale` engine:
//!
//! * **baseline** — scalar per-core `Chip` nodes, memoization off: what
//!   the fleet paid before this fast path landed;
//! * **widechip** — batch-stepped `WideChip` nodes, memoization off:
//!   the simulator half of the win in isolation;
//! * **fleet** — `WideChip` nodes with exact (ε = 0) decision
//!   memoization: the shipping configuration.
//!
//! Unlike `ext_cluster_scale` (which pins one sim tick per control
//! interval to isolate the control plane), this bench runs a realistic
//! tick-to-interval ratio so the measured speedup is the *end-to-end*
//! arbiter + simulation cost per control window.
//!
//! Exits non-zero if (a) any stack diverges from the baseline in any
//! checked bit — energy to the bit, node caps, per-app reports, free
//! cores — or (b) the fleet stack is below 3x the baseline's end-to-end
//! throughput. Memo hit rate and steps/sec land in
//! `results/BENCH_fleet.json` for CI.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use clusterd::cluster::AppReport;
use clusterd::{Cluster, ClusterConfig};
use pap_bench::{f1, Table};
use pap_scale::{run_sharded, ChurnLoad, ScaleConfig};
use pap_simcpu::chip::Chip;
use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_tenants::arrival::ArrivalTrace;
use powerd::config::{MemoMode, PolicyKind};
use powerd::memo::MemoStats;

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

const NODES: usize = 1024;
const SEED: u64 = 1009;
const MEAN_LOAD: f64 = 0.25;
const SWING: f64 = 0.15;
/// Tenants replaced per window on top of the diurnal target (oldest
/// first), so placement and daemon reconfiguration stay hot all day.
const TURNOVER: usize = 32;
/// Sim ticks per control interval: a 1 s control loop over a 2 ms
/// telemetry tick. (The cluster default is 1 ms — 1000 ticks — which
/// would only flatter the WideChip side; 500 is conservative.)
const TICKS_PER_INTERVAL: u64 = 500;
/// Cluster-level cap rebalances every N node control intervals; between
/// rebalances a settled node's inputs are bit-stable and the memo can
/// replay.
const REBALANCE_EVERY: u64 = 8;

/// End state + wall time of one replay. Everything the three stacks
/// must agree on bit-for-bit.
struct Outcome {
    label: &'static str,
    wall_secs: f64,
    intervals: u64,
    energy_bits: u64,
    caps: Vec<Watts>,
    reports: Vec<AppReport>,
    free_cores: usize,
    /// Node control steps executed (nodes x windows).
    steps: u64,
    memo: Option<MemoStats>,
}

impl Outcome {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall_secs
    }

    fn agrees_with(&self, other: &Outcome) -> bool {
        self.intervals == other.intervals
            && self.energy_bits == other.energy_bits
            && self.caps == other.caps
            && self.reports == other.reports
            && self.free_cores == other.free_cores
    }
}

fn config(nodes: usize, memo: MemoMode) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        nodes,
        PolicyKind::FrequencyShares,
        Watts(60.0 * nodes as f64),
    );
    cfg.tick = Seconds(cfg.control_interval.value() / TICKS_PER_INTERVAL as f64);
    cfg.rebalance_every = REBALANCE_EVERY;
    cfg.memo = memo;
    cfg
}

/// Replay `windows` control windows of the seeded churn-heavy diurnal
/// day on a fresh cluster over chip backend `C`.
fn replay<C: ChipLike + Send>(
    label: &'static str,
    nodes: usize,
    windows: u64,
    memo: MemoMode,
) -> Outcome {
    let cfg = config(nodes, memo);
    let interval = cfg.control_interval;
    let mut cluster: Cluster<C> = Cluster::with_backend(cfg).expect("budget funds the node floors");
    let capacity = nodes * cluster.config().platform.num_cores;
    let period = Seconds(windows as f64 * interval.value());
    let trace = ArrivalTrace::diurnal(MEAN_LOAD, SWING, period);
    // Churn-heavy: beyond the diurnal ramp, `TURNOVER` tenants are
    // replaced every window even when the target population is flat.
    let mut load = ChurnLoad::new(trace, SEED, capacity, TURNOVER);
    let scale = ScaleConfig {
        shards: 0,
        chunk_nodes: 32,
        epsilon: 0.0,
    };

    let started = Instant::now();
    for w in 0..windows {
        let batch = load.next_batch(Seconds(w as f64 * interval.value()));
        for r in cluster.depart_batch(&batch.departures) {
            r.expect("departing app is placed");
        }
        let admitted: Vec<bool> = cluster
            .admit_batch(&batch.arrivals)
            .iter()
            .map(Result::is_ok)
            .collect();
        load.commit(&batch, &admitted);
        run_sharded(&mut cluster, 1, &scale);
    }
    let wall_secs = started.elapsed().as_secs_f64();

    Outcome {
        label,
        wall_secs,
        intervals: cluster.intervals_run(),
        energy_bits: cluster.energy_j().to_bits(),
        caps: cluster.node_caps(),
        reports: cluster.reports(),
        free_cores: cluster.free_cores(),
        steps: nodes as u64 * windows,
        memo: cluster.memo_stats(),
    }
}

fn json_report(outcomes: &[Outcome], windows: u64, speedup: f64) -> String {
    let mut s = String::from("{\n  \"bench\": \"fleet\",\n");
    let _ = writeln!(
        s,
        "  \"nodes\": {NODES},\n  \"windows\": {windows},\n  \"seed\": {SEED},\n  \
         \"ticks_per_interval\": {TICKS_PER_INTERVAL},\n  \"speedup\": {speedup:.2},\n  \
         \"stacks\": ["
    );
    for (i, o) in outcomes.iter().enumerate() {
        let (hits, misses, rate) = o
            .memo
            .map_or((0, 0, 0.0), |m| (m.hits, m.misses, m.hit_rate()));
        let _ = writeln!(
            s,
            "    {{\"stack\": \"{}\", \"wall_s\": {:.4}, \"steps_per_s\": {:.0}, \
             \"memo_hits\": {hits}, \"memo_misses\": {misses}, \"memo_hit_rate\": {rate:.4}, \
             \"identical_to_baseline\": {}}}{}",
            o.label,
            o.wall_secs,
            o.steps_per_sec(),
            o.agrees_with(&outcomes[0]),
            if i + 1 == outcomes.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let mut windows = 48u64;
    let mut out_path = String::from("results/BENCH_fleet.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--windows" => {
                windows = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--windows takes a positive integer");
            }
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?} (supported: --windows N, --out PATH)"),
        }
    }

    let outcomes = [
        replay::<Chip>("baseline_chip", NODES, windows, MemoMode::Off),
        replay::<WideChip>("widechip", NODES, windows, MemoMode::Off),
        replay::<WideChip>("fleet_memo", NODES, windows, MemoMode::exact()),
    ];
    let speedup = outcomes[0].wall_secs / outcomes[2].wall_secs;

    let mut t = Table::new(
        format!("Fleet fast path ({NODES} nodes, {windows} churn-heavy windows)"),
        &[
            "stack",
            "identical",
            "wall_s",
            "ksteps/s",
            "vs_baseline",
            "memo_hit_rate",
        ],
    );
    for o in &outcomes {
        t.row(vec![
            o.label.to_string(),
            if o.agrees_with(&outcomes[0]) {
                "yes".into()
            } else {
                "NO".into()
            },
            f2(o.wall_secs),
            f1(o.steps_per_sec() / 1e3),
            f2(outcomes[0].wall_secs / o.wall_secs),
            o.memo
                .map_or("-".into(), |m| format!("{:.1}%", m.hit_rate() * 100.0)),
        ]);
    }
    println!("{t}");

    let mut failures = Vec::new();
    for o in &outcomes[1..] {
        if !o.agrees_with(&outcomes[0]) {
            failures.push(format!(
                "{}: diverged from the scalar-Chip baseline at epsilon = 0",
                o.label
            ));
        }
    }
    if speedup < 3.0 {
        failures.push(format!(
            "fleet stack is {speedup:.2}x the baseline end-to-end (gate: >= 3x)"
        ));
    }

    let json = json_report(&outcomes, windows, speedup);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("Report written to {out_path}");

    if failures.is_empty() {
        let memo = outcomes[2].memo.expect("fleet stack memoizes");
        println!(
            "PASS: all stacks bit-identical, {speedup:.1}x end-to-end at {NODES} nodes, \
             memo hit rate {:.1}%.",
            memo.hit_rate() * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
