//! Ablation: the priority policy's starvation choice (§4.1, §5.1).
//!
//! When the budget cannot fit all low-priority apps at the minimum
//! P-state, the paper's implementation starves them (parks their cores,
//! freeing power and turbo headroom for HP); the alternative floors every
//! core at the minimum P-state and throttles HP instead. We quantify the
//! trade across limits.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult};

fn run(limit: f64, floor: bool) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::skylake(), PolicyKind::Priority, Watts(limit))
        .floor_low_priority(floor)
        .duration(Seconds(60.0))
        .warmup(15);
    for i in 0..5 {
        e = e.app(format!("hp-{i}"), spec::CACTUS_BSSN, Priority::High, 100);
    }
    for i in 0..5 {
        e = e.app(format!("lp-{i}"), spec::LEELA, Priority::Low, 100);
    }
    e.run().expect("experiment runs")
}

fn main() {
    let mut jobs = Vec::new();
    for limit in [60.0, 50.0, 45.0, 40.0, 35.0] {
        for floor in [false, true] {
            jobs.push((limit, floor));
        }
    }
    let results = par_map(jobs, |(limit, floor)| (limit, floor, run(limit, floor)));

    let mut t = Table::new(
        "Ablation: starve-LP vs floor-LP priority variants (5 HP cactusBSSN + 5 LP leela)",
        &[
            "variant", "limit_w", "hp_perf", "lp_perf", "hp_mhz", "pkg_w",
        ],
    );
    for (limit, floor, r) in &results {
        let hp = r.apps[..5].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
        let lp = r.apps[5..].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
        let hp_mhz = r.apps[..5].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / 5.0;
        t.row(vec![
            if *floor { "floor" } else { "starve" }.into(),
            f1(*limit),
            f3(hp),
            f3(lp),
            f1(hp_mhz),
            f1(r.mean_package_power.value()),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: at tight limits the starving variant keeps HP substantially \
         faster (parked LP cores return power and opportunistic headroom) at \
         the cost of LP performance going to zero; the flooring variant keeps \
         LP crawling at the minimum P-state and gives up HP performance."
    );
}
