//! Extension: why IPS misleads on multithreaded workloads (§5.2).
//!
//! A contended 5-thread workload (spinlock, 30 % serial) shares the
//! socket with five single-threaded leela instances at equal shares,
//! under performance shares and frequency shares. Spinning threads retire
//! instructions at full rate, so the IPS-driven policy sees the
//! multithreaded app as well-served even as contention destroys its
//! useful throughput — and misallocates accordingly. Frequency shares
//! are immune (the paper's rationale for preferring HWP-style abstract
//! performance, and another argument for the frequency policy).

use pap_bench::{f1, f3, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::sampler::Sampler;
use pap_workloads::engine::RunningApp;
use pap_workloads::multithread::MtWorkload;
use pap_workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;

const MT_CORES: usize = 5;

struct Outcome {
    mt_useful_gips: f64,
    mt_counter_gips: f64,
    st_gips: f64,
    mt_mhz: f64,
    st_mhz: f64,
}

fn run(policy: PolicyKind) -> Outcome {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform.clone());
    let mut mt = MtWorkload::new(spec::LEELA, 0.3, MT_CORES);
    let mut st: Vec<RunningApp> = (0..5).map(|_| RunningApp::looping(spec::LEELA)).collect();

    // The multithreaded app's 5 threads are cores 0..5 with one AppSpec
    // per core (the daemon sees per-core telemetry either way).
    let solo_ips = spec::LEELA.ips(platform.turbo.cap_for(1, false));
    let mut apps: Vec<AppSpec> = (0..MT_CORES)
        .map(|c| {
            AppSpec::new(format!("mt/{c}"), c)
                .with_shares(50)
                .with_priority(Priority::High)
                .with_baseline_ips(solo_ips)
        })
        .collect();
    for c in MT_CORES..10 {
        apps.push(
            AppSpec::new(format!("st/{c}"), c)
                .with_shares(50)
                .with_priority(Priority::High)
                .with_baseline_ips(solo_ips),
        );
    }
    let config = DaemonConfig::new(policy, Watts(42.0), apps);
    let mut daemon = Daemon::new(config, &platform).unwrap();
    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).unwrap();
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).unwrap();
    }

    let mut sampler = Sampler::new(&chip);
    let dt = Seconds(0.002);
    let mut t = 0.0;
    let mut next = 1.0;
    let warmup = 15.0;
    let mut st_instr = 0u64;
    let mut mt_useful_at_warmup = 0u64;
    let mut mt_counter_at_warmup = 0u64;
    let mut mt_mhz = 0.0;
    let mut st_mhz = 0.0;
    let mut samples = 0.0;

    while t < 75.0 {
        let freqs: Vec<KiloHertz> = (0..MT_CORES).map(|c| chip.effective_freq(c)).collect();
        let steps = mt.advance(dt, &freqs);
        for (c, s) in steps.iter().enumerate() {
            chip.set_load(c, s.load).unwrap();
            chip.add_instructions(c, s.instructions).unwrap();
        }
        for (i, app) in st.iter_mut().enumerate() {
            let core = MT_CORES + i;
            let f = chip.effective_freq(core);
            let out = app.advance(dt, f);
            chip.set_load(core, out.load).unwrap();
            if t >= warmup {
                st_instr += out.instructions;
            }
            chip.add_instructions(core, out.instructions).unwrap();
        }
        chip.tick(dt);
        t += dt.value();
        if (t - warmup).abs() < dt.value() / 2.0 {
            mt_useful_at_warmup = mt.useful_retired();
            mt_counter_at_warmup = mt.counter_retired();
        }
        if t + 1e-9 >= next {
            next += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).unwrap();
                if t >= warmup {
                    mt_mhz += (0..MT_CORES)
                        .map(|c| sample.cores[c].rates.active_freq.mhz() as f64)
                        .sum::<f64>()
                        / MT_CORES as f64;
                    st_mhz += (MT_CORES..10)
                        .map(|c| sample.cores[c].rates.active_freq.mhz() as f64)
                        .sum::<f64>()
                        / 5.0;
                    samples += 1.0;
                }
            }
        }
    }
    let window = 75.0 - warmup;
    Outcome {
        mt_useful_gips: (mt.useful_retired() - mt_useful_at_warmup) as f64 / window / 1e9,
        mt_counter_gips: (mt.counter_retired() - mt_counter_at_warmup) as f64 / window / 1e9,
        st_gips: st_instr as f64 / window / 1e9,
        mt_mhz: mt_mhz / samples,
        st_mhz: st_mhz / samples,
    }
}

fn main() {
    let mut t = Table::new(
        "Extension §5.2: contended 5-thread app (30% serial) vs 5x single-thread leela, equal shares, 42 W",
        &[
            "policy",
            "mt_counter_gips",
            "mt_useful_gips",
            "inflation",
            "st_gips",
            "mt_mhz",
            "st_mhz",
        ],
    );
    for policy in [PolicyKind::PerformanceShares, PolicyKind::FrequencyShares] {
        let o = run(policy);
        t.row(vec![
            policy.name().into(),
            f1(o.mt_counter_gips),
            f1(o.mt_useful_gips),
            f3(o.mt_counter_gips / o.mt_useful_gips),
            f1(o.st_gips),
            f1(o.mt_mhz),
            f1(o.st_mhz),
        ]);
    }
    println!("{t}");
    println!(
        "Reading: the counter-visible GIPS of the multithreaded app is several \
         times its useful GIPS (spin inflation). The IPS-driven performance \
         policy takes that inflated signal at face value and treats the app as \
         well-served — under frequency shares the allocation depends only on \
         frequency, so the distortion cannot leak into the policy. This is the \
         paper's §5.2 caveat quantified, and its argument for HWP-style \
         abstract performance metrics on multithreaded workloads."
    );
}
