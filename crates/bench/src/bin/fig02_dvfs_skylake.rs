//! Figure 2 — Effects of DVFS on Skylake for SPEC CPU2017 workloads.
//!
//! Each benchmark runs pinned to an isolated core with all cores set to
//! the same P-state; we sweep the frequency range and report the box-plot
//! statistics (across the 11 benchmarks) of normalized runtime and average
//! package power. Paper features to reproduce: wide per-application
//! spread; AVX apps (lbm, imagick, cam4) are power outliers whose
//! performance saturates near 1.9 GHz; power jumps ~5 W above 2.2 GHz
//! (TurboBoost).

use pap_bench::dvfs::{run_sweep, SweepSpec};
use pap_simcpu::platform::PlatformSpec;

fn main() {
    run_sweep(SweepSpec {
        platform: PlatformSpec::skylake(),
        freqs_mhz: vec![800, 1100, 1400, 1700, 1900, 2200, 2500, 2800, 3000],
        reference_mhz: 2200,
        title: "Figure 2: DVFS sweep on Skylake (box stats across 11 SPEC2017 apps; runtime normalized to 2.2 GHz)",
    });
    println!(
        "Expected shape: normalized runtime falls with frequency but AVX apps \
         stop improving near 1.9 GHz (their frequency is capped); package power \
         rises super-linearly with a ~5 W TurboBoost jump above 2.2 GHz; AVX \
         apps appear as high-power outliers (p99 whisker)."
    );
}
