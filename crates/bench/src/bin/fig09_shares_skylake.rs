//! Figure 9 — Proportional share policies on Skylake.
//!
//! Five copies of leela (LD) at one share level and five of cactusBSSN
//! (HD) at another, under frequency shares and performance shares at
//! 40/50 W, swept over share ratios. Paper findings: the dynamic range is
//! low (800–3000 MHz), so at 90/10 the low-share app receives more than
//! its share; frequency and performance shares produce very similar
//! results — favoring the simpler, more stable frequency policy. Native
//! RAPL is shown for contrast: both apps end up at nearly the same
//! frequency regardless of shares.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult};

const RATIOS: [(u32, u32); 5] = [(90, 10), (70, 30), (50, 50), (30, 70), (10, 90)];
const LIMITS: [f64; 2] = [40.0, 50.0];

fn run(policy: PolicyKind, limit: f64, ld_share: u32, hd_share: u32) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::skylake(), policy, Watts(limit))
        .duration(Seconds(60.0))
        .warmup(15);
    for i in 0..5 {
        e = e.app(format!("leela-{i}"), spec::LEELA, Priority::High, ld_share);
    }
    for i in 0..5 {
        e = e.app(
            format!("cactus-{i}"),
            spec::CACTUS_BSSN,
            Priority::High,
            hd_share,
        );
    }
    e.run().expect("experiment runs")
}

fn main() {
    let policies = [PolicyKind::FrequencyShares, PolicyKind::PerformanceShares];
    let mut jobs = Vec::new();
    for &policy in &policies {
        for &limit in &LIMITS {
            for &(ld, hd) in &RATIOS {
                jobs.push((policy, limit, ld, hd));
            }
        }
    }
    let results = par_map(jobs, |(policy, limit, ld, hd)| {
        (policy, limit, ld, hd, run(policy, limit, ld, hd))
    });

    for &policy in &policies {
        let mut t = Table::new(
            format!(
                "Figure 9 ({}): leela (LD) vs cactusBSSN (HD), 5 copies each on Skylake",
                policy.name()
            ),
            &[
                "ld/hd_shares",
                "limit_w",
                "ld_mhz",
                "hd_mhz",
                "ld_perf",
                "hd_perf",
                "ld_freq_frac",
                "pkg_w",
            ],
        );
        for &(ld, hd) in &RATIOS {
            for &limit in &LIMITS {
                let r = &results
                    .iter()
                    .find(|(p, l, a, b, _)| *p == policy && *l == limit && *a == ld && *b == hd)
                    .expect("swept")
                    .4;
                let ld_mhz = r.apps[..5].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / 5.0;
                let hd_mhz = r.apps[5..].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / 5.0;
                let ld_perf = r.apps[..5].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
                let hd_perf = r.apps[5..].iter().map(|a| a.norm_perf).sum::<f64>() / 5.0;
                t.row(vec![
                    format!("{ld}/{hd}"),
                    f1(limit),
                    f1(ld_mhz),
                    f1(hd_mhz),
                    f3(ld_perf),
                    f3(hd_perf),
                    f3(ld_mhz / (ld_mhz + hd_mhz)),
                    f1(r.mean_package_power.value()),
                ]);
            }
        }
        println!("{t}");
    }

    // RAPL contrast at 50/50-irrelevant shares.
    let r = run(PolicyKind::RaplNative, 40.0, 50, 50);
    let ld_mhz = r.apps[..5].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / 5.0;
    let hd_mhz = r.apps[5..].iter().map(|a| a.mean_freq_mhz).sum::<f64>() / 5.0;
    println!(
        "Native RAPL at 40 W for contrast: leela {} MHz vs cactusBSSN {} MHz — \
         shares cannot be expressed at all.",
        f1(ld_mhz),
        f1(hd_mhz)
    );
    println!(
        "Expected shape: measured frequency fraction tracks the share ratio in \
         the middle of the range but compresses at 90/10 (the 800 MHz floor \
         guarantees the low-share app >10%); frequency and performance shares \
         nearly coincide."
    );
}
