//! Extension: multi-tenant SLO scenarios (DESIGN.md §12).
//!
//! Runs every `pap-tenants` library scenario under all three control
//! modes — the SLO-aware share controller, static shares, and native
//! RAPL — as one parallel sweep, then:
//!
//! - proves the sweep is **byte-reproducible**: the scorecard JSONL
//!   from the `PAP_SWEEP_THREADS`-controlled parallel run must equal a
//!   serial rerun exactly;
//! - gates on the headline result: in every scenario the SLO-aware
//!   controller must beat both static shares and RAPL on
//!   attainment-per-watt (same budget, same workload, same seed);
//! - gates on cost accounting being **off-path**: pricing a run with a
//!   tariff must only add cost fields — stripping the tariff from the
//!   priced scorecard leaves bytes identical to the unpriced run;
//! - writes `results/BENCH_tenants.json` for CI to archive.

use std::fmt::Write as _;
use std::process::ExitCode;

use pap_bench::sweep::{self, Threads};
use pap_bench::{f1, f3, Table};
use pap_tenants::prelude::*;

fn jobs() -> Vec<(&'static str, ControlMode)> {
    let mut out = Vec::new();
    for name in names() {
        for mode in ControlMode::ALL {
            out.push((*name, mode));
        }
    }
    out
}

fn run_cell((name, mode): (&'static str, ControlMode)) -> SloScorecard {
    by_name(name).expect("library scenario").run(mode)
}

fn json_report(cards: &[SloScorecard], reproducible: bool) -> String {
    let mut out = String::from("{\n  \"bench\": \"ext_tenants\",\n");
    let _ = writeln!(out, "  \"reproducible_across_threads\": {reproducible},");
    out.push_str("  \"runs\": [\n");
    for (i, c) in cards.iter().enumerate() {
        let comma = if i + 1 < cards.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", c.summary_json());
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut out_path = String::from("results/BENCH_tenants.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?} (supported: --out PATH)"),
        }
    }

    // The sweep under the environment's thread policy, then a serial
    // rerun: scorecards must match byte-for-byte or the scenario layer
    // has a scheduling-dependent code path.
    let cards = sweep::run(Threads::from_env(), jobs(), run_cell);
    let serial = sweep::run(Threads::Serial, jobs(), run_cell);
    let parallel_bytes: String = cards.iter().map(|c| c.to_jsonl()).collect();
    let serial_bytes: String = serial.iter().map(|c| c.to_jsonl()).collect();
    let reproducible = parallel_bytes == serial_bytes;

    let mut t = Table::new(
        "Multi-tenant SLO scenarios: attainment per watt by control mode".to_string(),
        &[
            "scenario",
            "mode",
            "attainment",
            "att_per_w",
            "jain",
            "batch_gips",
            "mean_w",
            "dropped",
        ],
    );
    for c in &cards {
        let dropped: u64 = c.tenants.iter().map(|ten| ten.dropped).sum();
        t.row(vec![
            c.scenario.to_string(),
            c.mode.to_string(),
            f3(c.attainment()),
            f3(c.attainment_per_watt()),
            f3(c.jain()),
            f3(c.batch_gips()),
            f1(c.mean_package_w),
            dropped.to_string(),
        ]);
    }
    println!("{t}");

    let mut failures = Vec::new();
    if !reproducible {
        failures.push(
            "scorecards differ between the parallel and serial sweeps \
             (scenario runs must not depend on PAP_SWEEP_THREADS)"
                .to_string(),
        );
    }
    // Cost accounting must be off-path: rerun one cell with a tariff
    // and demand that stripping the tariff from the priced scorecard
    // reproduces the unpriced bytes exactly — pricing adds fields, it
    // never changes a measured number.
    {
        let plain = by_name("diurnal-flash")
            .expect("library scenario")
            .run(ControlMode::SloAware);
        let priced = by_name("diurnal-flash")
            .expect("library scenario")
            .with_tariff(0.25)
            .run(ControlMode::SloAware);
        let mut stripped = priced.clone();
        stripped.tariff_usd_per_kwh = None;
        if stripped.to_jsonl() != plain.to_jsonl() {
            failures.push(
                "tariff accounting perturbed the scorecard: priced run with \
                 tariff stripped differs from the unpriced run"
                    .to_string(),
            );
        }
        if !priced.to_jsonl().contains("\"cost_usd\":") {
            failures.push("priced run is missing cost_usd fields".to_string());
        }
    }
    for name in names() {
        let by_mode = |mode: ControlMode| {
            cards
                .iter()
                .find(|c| c.scenario == *name && c.mode == mode.name())
                .expect("every cell ran")
        };
        let aware = by_mode(ControlMode::SloAware);
        let stat = by_mode(ControlMode::StaticShares);
        let rapl = by_mode(ControlMode::RaplNative);
        for (rival, label) in [(stat, "static-shares"), (rapl, "rapl")] {
            if aware.attainment_per_watt() <= rival.attainment_per_watt() {
                failures.push(format!(
                    "{name}: slo-aware attainment/W {:.4} does not beat {label} {:.4}",
                    aware.attainment_per_watt(),
                    rival.attainment_per_watt()
                ));
            }
        }
    }

    let json = json_report(&cards, reproducible);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("Report written to {out_path}");

    if failures.is_empty() {
        println!(
            "PASS: SLO-aware share control beats static shares and RAPL on \
             attainment-per-watt in every scenario; sweep byte-reproducible \
             across thread counts; tariff accounting strictly off-path."
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
