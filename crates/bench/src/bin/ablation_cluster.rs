//! Ablation: Ryzen 3-P-state slot selection — exact DP clustering (mean
//! and floor variants) vs naive evenly-spaced levels, measured through a
//! full frequency-shares run with eight distinct share levels — plus the
//! cluster control-plane ablation: the serial `clusterd` arbiter vs the
//! sharded `pap-scale` engine on the same churned fleet, with a
//! serial-vs-sharded parity check (the full scaling sweep lives in
//! `ext_cluster_scale`).

use std::time::Instant;

use clusterd::{Cluster, ClusterConfig};
use pap_bench::{f1, f3, par_map, Table};
use pap_scale::{run_sharded, ChurnLoad, ScaleConfig};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_tenants::arrival::ArrivalTrace;
use pap_workloads::spec;
use powerd::config::{ControllerTuning, PolicyKind, Priority};
use powerd::quantize::SlotSelector;
use powerd::runner::Experiment;

/// Serial vs sharded on one churned 64-node fleet: wall seconds and the
/// bit-identity verdict the scale engine is held to at epsilon = 0.
fn engine_ablation() {
    const NODES: usize = 64;
    const WINDOWS: u64 = 16;
    let run = |sharded: bool| {
        let mut cfg = ClusterConfig::new(
            NODES,
            PolicyKind::FrequencyShares,
            Watts(60.0 * NODES as f64),
        );
        cfg.tick = cfg.control_interval;
        let interval = cfg.control_interval;
        let mut cluster = Cluster::new(cfg).expect("budget funds the node floors");
        let capacity = NODES * cluster.config().platform.num_cores;
        let period = Seconds(WINDOWS as f64 * interval.value());
        let mut load = ChurnLoad::new(
            ArrivalTrace::diurnal(0.25, 0.15, period),
            1009,
            capacity,
            NODES,
        );
        let scale = ScaleConfig::default();
        let started = Instant::now();
        for w in 0..WINDOWS {
            let batch = load.next_batch(Seconds(w as f64 * interval.value()));
            let admitted: Vec<bool> = if sharded {
                for r in cluster.depart_batch(&batch.departures) {
                    r.expect("departing app is placed");
                }
                cluster
                    .admit_batch(&batch.arrivals)
                    .iter()
                    .map(Result::is_ok)
                    .collect()
            } else {
                for name in &batch.departures {
                    cluster.depart(name).expect("departing app is placed");
                }
                batch
                    .arrivals
                    .iter()
                    .map(|req| cluster.admit(req).is_ok())
                    .collect()
            };
            load.commit(&batch, &admitted);
            if sharded {
                run_sharded(&mut cluster, 1, &scale);
            } else {
                cluster.run(1);
            }
        }
        (started.elapsed().as_secs_f64(), cluster)
    };
    let (serial_s, serial) = run(false);
    let (sharded_s, sharded) = run(true);
    let identical = serial.energy_j().to_bits() == sharded.energy_j().to_bits()
        && serial.node_caps() == sharded.node_caps()
        && serial.reports() == sharded.reports()
        && serial.last_rollup() == sharded.last_rollup();
    let mut t = Table::new(
        format!("Ablation: cluster engine ({NODES} nodes, {WINDOWS} churned windows)"),
        &["engine", "wall_s", "mean W", "apps"],
    );
    t.row(vec![
        "serial".into(),
        f3(serial_s),
        f1(serial.mean_power().value()),
        serial.reports().len().to_string(),
    ]);
    t.row(vec![
        "sharded".into(),
        f3(sharded_s),
        f1(sharded.mean_power().value()),
        sharded.reports().len().to_string(),
    ]);
    println!("{t}");
    println!(
        "serial-vs-sharded parity at epsilon=0: {} (speedup {:.2}x; \
         see ext_cluster_scale for the 8..1024-node sweep)",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED — determinism broken"
        },
        serial_s / sharded_s
    );
    assert!(identical, "sharded engine must match the serial reference");
}

fn main() {
    let selectors = [
        ("dp_mean", SlotSelector::DpMean),
        ("dp_floor", SlotSelector::DpFloor),
        ("greedy", SlotSelector::Greedy),
    ];
    let results = par_map(selectors.to_vec(), |(name, selector)| {
        let tuning = ControllerTuning {
            slot_selector: selector,
            ..ControllerTuning::default()
        };
        let mut e = Experiment::new(
            PlatformSpec::ryzen(),
            PolicyKind::FrequencyShares,
            Watts(42.0),
        )
        .tuning(tuning)
        .duration(Seconds(60.0))
        .warmup(15);
        for i in 0..8 {
            let profile = if i % 2 == 0 {
                spec::LEELA
            } else {
                spec::CACTUS_BSSN
            };
            e = e.app(
                format!("app-{i}"),
                profile,
                Priority::High,
                10 + 12 * i as u32,
            );
        }
        (name, e.run().expect("experiment runs"))
    });

    let mut t = Table::new(
        "Ablation: Ryzen shared-slot selector (frequency shares, 42 W, shares 10..94)",
        &[
            "selector",
            "pkg_w",
            "share_rank_violations",
            "mean_abs_share_err_%",
        ],
    );
    for (name, r) in &results {
        // Rank violations: pairs where a higher-share app runs slower.
        let mut violations = 0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                // shares rise with index
                if r.apps[j].mean_freq_mhz + 1.0 < r.apps[i].mean_freq_mhz {
                    violations += 1;
                }
            }
        }
        // Deviation of each app's frequency fraction from its share fraction.
        let total_share: f64 = (0..8).map(|i| (10 + 12 * i) as f64).sum();
        let total_mhz: f64 = r.apps.iter().map(|a| a.mean_freq_mhz).sum();
        let err: f64 = (0..8)
            .map(|i| {
                let want = (10 + 12 * i) as f64 / total_share;
                let got = r.apps[i].mean_freq_mhz / total_mhz;
                (want - got).abs() * 100.0
            })
            .sum::<f64>()
            / 8.0;
        t.row(vec![
            name.to_string(),
            f1(r.mean_package_power.value()),
            format!("{violations}"),
            f3(err),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: DP selectors respect share ordering with smaller deviation \
         from the configured fractions; the naive evenly-spaced selector wastes \
         the three levels when allocations cluster, producing larger errors."
    );
    println!();
    engine_ablation();
}
