//! Ablation: Ryzen 3-P-state slot selection — exact DP clustering (mean
//! and floor variants) vs naive evenly-spaced levels, measured through a
//! full frequency-shares run with eight distinct share levels.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::{ControllerTuning, PolicyKind, Priority};
use powerd::quantize::SlotSelector;
use powerd::runner::Experiment;

fn main() {
    let selectors = [
        ("dp_mean", SlotSelector::DpMean),
        ("dp_floor", SlotSelector::DpFloor),
        ("greedy", SlotSelector::Greedy),
    ];
    let results = par_map(selectors.to_vec(), |(name, selector)| {
        let tuning = ControllerTuning {
            slot_selector: selector,
            ..ControllerTuning::default()
        };
        let mut e = Experiment::new(
            PlatformSpec::ryzen(),
            PolicyKind::FrequencyShares,
            Watts(42.0),
        )
        .tuning(tuning)
        .duration(Seconds(60.0))
        .warmup(15);
        for i in 0..8 {
            let profile = if i % 2 == 0 {
                spec::LEELA
            } else {
                spec::CACTUS_BSSN
            };
            e = e.app(
                format!("app-{i}"),
                profile,
                Priority::High,
                10 + 12 * i as u32,
            );
        }
        (name, e.run().expect("experiment runs"))
    });

    let mut t = Table::new(
        "Ablation: Ryzen shared-slot selector (frequency shares, 42 W, shares 10..94)",
        &[
            "selector",
            "pkg_w",
            "share_rank_violations",
            "mean_abs_share_err_%",
        ],
    );
    for (name, r) in &results {
        // Rank violations: pairs where a higher-share app runs slower.
        let mut violations = 0;
        for i in 0..8 {
            for j in (i + 1)..8 {
                // shares rise with index
                if r.apps[j].mean_freq_mhz + 1.0 < r.apps[i].mean_freq_mhz {
                    violations += 1;
                }
            }
        }
        // Deviation of each app's frequency fraction from its share fraction.
        let total_share: f64 = (0..8).map(|i| (10 + 12 * i) as f64).sum();
        let total_mhz: f64 = r.apps.iter().map(|a| a.mean_freq_mhz).sum();
        let err: f64 = (0..8)
            .map(|i| {
                let want = (10 + 12 * i) as f64 / total_share;
                let got = r.apps[i].mean_freq_mhz / total_mhz;
                (want - got).abs() * 100.0
            })
            .sum::<f64>()
            / 8.0;
        t.row(vec![
            name.to_string(),
            f1(r.mean_package_power.value()),
            format!("{violations}"),
            f3(err),
        ]);
    }
    println!("{t}");
    println!(
        "Expected: DP selectors respect share ordering with smaller deviation \
         from the configured fractions; the naive evenly-spaced selector wastes \
         the three levels when allocations cluster, producing larger errors."
    );
}
