//! Figure 3 — Effects of DVFS on Ryzen for SPEC CPU2017 workloads.
//!
//! Same protocol as Figure 2 on the Ryzen platform. Paper features:
//! performance increases nearly linearly with frequency (no AVX
//! saturation on Zen 1) and power jumps at 3.5 GHz when Precision
//! Boost / XFR levels take effect.

use pap_bench::dvfs::{run_sweep, SweepSpec};
use pap_simcpu::platform::PlatformSpec;

fn main() {
    run_sweep(SweepSpec {
        platform: PlatformSpec::ryzen(),
        freqs_mhz: vec![400, 800, 1200, 1600, 2000, 2400, 2800, 3000, 3200, 3400, 3600, 3800],
        reference_mhz: 3000,
        title: "Figure 3: DVFS sweep on Ryzen (box stats across 11 SPEC2017 apps; runtime normalized to 3.0 GHz)",
    });
    println!(
        "Expected shape: runtime scales nearly linearly with frequency (no \
         saturation anomalies); package power jumps above 3.4 GHz where the \
         XFR voltage levels take effect."
    );
}
