//! Extension: FastCap face-off on the wide-chip simulator (DESIGN.md §15).
//!
//! Runs the FastCap optimizing allocator against the share, priority and
//! native-RAPL baselines on batch-stepped [`WideChip`] descriptors at 16,
//! 128 and 1024 cores. Every core hosts one synthetic app with its own
//! frequency *scalability*
//!
//! ```text
//! ips_i(f) = base_i · (α_i + (1 − α_i) · f / f_max)
//! ```
//!
//! — α near 1 models a memory-bound app whose progress barely responds
//! to frequency, α near 0 a compute-bound one. Under a uniform
//! frequency (what equal-share or RAPL capping produces) the speedups
//! `ips_i / base_i` spread with α, so Jain's fairness index over the
//! share-normalized speedups drops below 1. FastCap's efficiency-
//! weighted water-fill re-targets frequency at apps that still convert
//! hertz into progress, equalizing the speedups: its headline claim is
//! a *higher Jain fair-speedup at equal-or-better aggregate IPS*.
//!
//! Exits non-zero if, at 128 cores, FastCap's Jain fair-speedup falls
//! below the frequency-shares baseline, if its aggregate IPS collapses
//! (< 85 % of shares), or if its online package fit never reached
//! confidence (an unconfident run degenerates to the shares fallback
//! and proves nothing). Results land in `results/BENCH_fastcap.json`.

use std::fmt::Write as _;
use std::process::ExitCode;

use pap_bench::{f1, f3, par_map, Table};
use pap_model::{ModelConfig, TranslationKind};
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_telemetry::counters::CoreRates;
use pap_telemetry::sampler::{CoreSample, Sample};
use pap_telemetry::stats::jain;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;

const CORE_COUNTS: [usize; 3] = [16, 128, 1024];
const POLICIES: [PolicyKind; 4] = [
    PolicyKind::FastCap,
    PolicyKind::FrequencyShares,
    PolicyKind::Priority,
    PolicyKind::RaplNative,
];
/// Control intervals discarded while the loop and the online model
/// settle (the model's confidence gate needs the transient's frequency
/// spread), then measured.
const WARMUP_INTERVALS: usize = 30;
const MEASURE_INTERVALS: usize = 30;
/// Simulator ticks per 1 s control interval.
const TICKS_PER_INTERVAL: usize = 100;
const TICK: Seconds = Seconds(0.01);
/// Package budget per core (W). Between the wide descriptor's idle
/// floor and its ~8.5 W/core TDP, so the cap binds mid-grid and the
/// allocator has room to differentiate.
const LIMIT_W_PER_CORE: f64 = 3.8;

/// Frequency-scalability exponent of app `i`: a deterministic spread
/// over [0.15, 0.90] so every chip width carries the full mix of
/// compute-bound and memory-bound tenants.
fn alpha(i: usize) -> f64 {
    0.15 + 0.75 * ((i * 5) % 8) as f64 / 7.0
}

/// Peak (f = f_max) instruction rate of app `i`.
fn base_ips(i: usize) -> f64 {
    2.0e9 + 0.1e9 * ((i * 3) % 5) as f64
}

/// The synthetic scalability curve: progress at frequency `f`,
/// normalized to the app's own peak.
fn speedup(i: usize, f: KiloHertz, fmax: KiloHertz) -> f64 {
    let a = alpha(i);
    a + (1.0 - a) * f.khz() as f64 / fmax.khz() as f64
}

struct FaceOffResult {
    policy: &'static str,
    cores: usize,
    limit: Watts,
    /// Jain's index over mean share-normalized speedups (shares are
    /// equal, so this is the fair-speedup fairness directly).
    jain_fair_speedup: f64,
    /// Mean aggregate instruction throughput (GIPS).
    aggregate_gips: f64,
    mean_package_w: f64,
    mean_freq_mhz: f64,
    model_confident: bool,
}

fn run_face_off(policy: PolicyKind, n: usize) -> FaceOffResult {
    let spec = PlatformSpec::wide(n);
    let fmax = spec.grid.max();
    let limit = Watts(LIMIT_W_PER_CORE * n as f64);

    let apps: Vec<AppSpec> = (0..n)
        .map(|i| {
            AppSpec::new(format!("app{i}"), i)
                .with_shares(100)
                .with_priority(if i % 2 == 0 {
                    Priority::High
                } else {
                    Priority::Low
                })
                .with_baseline_ips(base_ips(i))
        })
        .collect();
    let mut config = DaemonConfig::new(policy, limit, apps);
    config.translation = TranslationKind::Online;
    // The default deadband and model-confidence thresholds are sized
    // for the paper's 10-core / 85 W parts; the wide descriptors scale
    // the package linearly, so the absolute-watt gates scale with it.
    let scale = (n as f64 / 10.0).max(1.0);
    config.tuning.deadband_watts *= scale;
    let mut daemon = Daemon::new(config, &spec).expect("valid face-off config");
    let mut model_cfg = ModelConfig::default();
    model_cfg.power.max_residual_watts *= scale;
    model_cfg.power.drift_floor_watts *= scale;
    daemon.set_model_config(model_cfg);

    let mut chip = WideChip::new(spec.clone());
    if policy == PolicyKind::RaplNative {
        chip.set_rapl_limit(Some(limit))
            .expect("wide spec has RAPL");
    }
    for c in 0..n {
        chip.set_load(c, LoadDescriptor::nominal())
            .expect("core in range");
    }

    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).expect("on-grid");
    let mut parked = action.parked.clone();
    for (c, &p) in parked.iter().enumerate() {
        chip.set_forced_idle(c, p).expect("core in range");
    }

    let mut speedup_sum = vec![0.0f64; n];
    let mut gips_sum = 0.0;
    let mut power_sum = 0.0;
    let mut freq_sum = 0.0;
    let mut measured = 0usize;

    for interval in 0..WARMUP_INTERVALS + MEASURE_INTERVALS {
        chip.run_ticks(TICKS_PER_INTERVAL, TICK);

        // Telemetry for this interval, straight off the chip: the
        // synthetic scalability curve plays the workload engine's part.
        let cores: Vec<CoreSample> = (0..n)
            .map(|c| {
                let f = chip.effective_freq(c);
                let (active, c0, ips) = if parked[c] {
                    (KiloHertz::ZERO, 0.0, 0.0)
                } else {
                    (f, 1.0, base_ips(c) * speedup(c, f, fmax))
                };
                CoreSample {
                    rates: CoreRates {
                        active_freq: active,
                        c0_residency: c0,
                        ips,
                    },
                    power: None,
                    requested_freq: chip.requested_freq(c),
                }
            })
            .collect();
        let sample = Sample {
            time: Seconds((interval + 1) as f64),
            interval: Seconds(1.0),
            package_power: chip.package_power(),
            cores_power: chip.cores_power(),
            cores,
        };

        if interval >= WARMUP_INTERVALS {
            measured += 1;
            power_sum += sample.package_power.value();
            for (c, s) in speedup_sum.iter_mut().enumerate() {
                let r = &sample.cores[c].rates;
                *s += r.ips / base_ips(c);
                gips_sum += r.ips / 1e9;
                freq_sum += r.active_freq.khz() as f64 / 1000.0;
            }
        }

        let action = daemon.step(&sample);
        chip.set_all_requested(&action.freqs).expect("on-grid");
        parked.copy_from_slice(&action.parked);
        for (c, &p) in action.parked.iter().enumerate() {
            chip.set_forced_idle(c, p).expect("core in range");
        }
    }

    let mean_speedups: Vec<f64> = speedup_sum
        .iter()
        .map(|s| s / measured.max(1) as f64)
        .collect();
    FaceOffResult {
        policy: policy.name(),
        cores: n,
        limit,
        jain_fair_speedup: jain(&mean_speedups),
        aggregate_gips: gips_sum / measured.max(1) as f64,
        mean_package_w: power_sum / measured.max(1) as f64,
        mean_freq_mhz: freq_sum / (measured.max(1) * n) as f64,
        model_confident: daemon.model_confident(),
    }
}

fn json_report(results: &[FaceOffResult]) -> String {
    let mut s = String::from("{\n  \"bench\": \"fastcap\",\n");
    let _ = writeln!(
        s,
        "  \"warmup_intervals\": {WARMUP_INTERVALS},\n  \
         \"measure_intervals\": {MEASURE_INTERVALS},\n  \"runs\": ["
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"policy\": \"{}\", \"cores\": {}, \"limit_w\": {:.1}, \
             \"jain_fair_speedup\": {:.4}, \"aggregate_gips\": {:.2}, \
             \"mean_package_w\": {:.1}, \"mean_freq_mhz\": {:.1}, \
             \"model_confident\": {}}}{}",
            r.policy,
            r.cores,
            r.limit.value(),
            r.jain_fair_speedup,
            r.aggregate_gips,
            r.mean_package_w,
            r.mean_freq_mhz,
            r.model_confident,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let mut out_path = String::from("results/BENCH_fastcap.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out takes a path"),
            other => panic!("unknown argument {other:?} (supported: --out PATH)"),
        }
    }

    let mut jobs = Vec::new();
    for &n in &CORE_COUNTS {
        for &policy in &POLICIES {
            jobs.push((policy, n));
        }
    }
    let results = par_map(jobs, |(policy, n)| run_face_off(policy, n));

    let mut t = Table::new(
        "FastCap face-off: Jain fair-speedup vs aggregate IPS on wide chips",
        &[
            "cores", "policy", "limit_w", "jain", "agg_gips", "pkg_w", "mhz", "model",
        ],
    );
    for r in &results {
        t.row(vec![
            r.cores.to_string(),
            r.policy.into(),
            f1(r.limit.value()),
            f3(r.jain_fair_speedup),
            f1(r.aggregate_gips),
            f1(r.mean_package_w),
            f1(r.mean_freq_mhz),
            if r.model_confident { "conf" } else { "naive" }.into(),
        ]);
    }
    println!("{t}");

    let find = |policy: &str, cores: usize| -> &FaceOffResult {
        results
            .iter()
            .find(|r| r.policy == policy && r.cores == cores)
            .expect("swept")
    };
    let mut failures = Vec::new();
    for &n in &CORE_COUNTS {
        let fast = find("fastcap", n);
        let shares = find("freq-shares", n);
        // The headline gate is pinned at 128 cores; the other widths
        // report but only fail on outright inversions beyond noise.
        if n == 128 {
            if fast.jain_fair_speedup < shares.jain_fair_speedup {
                failures.push(format!(
                    "128 cores: FastCap Jain {:.4} below frequency-shares {:.4}",
                    fast.jain_fair_speedup, shares.jain_fair_speedup
                ));
            }
            if fast.aggregate_gips < 0.85 * shares.aggregate_gips {
                failures.push(format!(
                    "128 cores: FastCap aggregate {:.1} GIPS collapsed below 85% of \
                     shares' {:.1} GIPS",
                    fast.aggregate_gips, shares.aggregate_gips
                ));
            }
            if !fast.model_confident {
                failures.push(
                    "128 cores: FastCap's package fit never became confident — the run \
                     degenerated to the shares fallback and gates nothing"
                        .into(),
                );
            }
        } else if fast.jain_fair_speedup < shares.jain_fair_speedup - 0.02 {
            failures.push(format!(
                "{n} cores: FastCap Jain {:.4} inverted below frequency-shares {:.4}",
                fast.jain_fair_speedup, shares.jain_fair_speedup
            ));
        }
        // Every policy must actually respect the cap it was given.
        for r in results.iter().filter(|r| r.cores == n) {
            if r.mean_package_w > r.limit.value() * 1.1 {
                failures.push(format!(
                    "{n} cores: {} ran {:.0} W against a {:.0} W limit",
                    r.policy,
                    r.mean_package_w,
                    r.limit.value()
                ));
            }
        }
    }

    let json = json_report(&results);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("Report written to {out_path}");

    if failures.is_empty() {
        println!(
            "PASS: FastCap holds the cap while beating the share baseline on \
             Jain fair-speedup without sacrificing aggregate IPS."
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
