//! Figure 4 — Impact of RAPL on per-core DVFS (gcc benchmark).
//!
//! Ten copies of `gcc` on Skylake: half the cores are unconstrained at
//! 2.5 GHz, the other half are throttled to a swept frequency, while the
//! RAPL limit is progressively lowered. Paper findings: (a) power saved by
//! the throttled cores is spent by the unconstrained cores to run faster
//! (at 50 W with the throttled half at 0.8 GHz the unconstrained half goes
//! from −14 % to +6 % of its 2.5 GHz performance); (b) RAPL maintains one
//! global maximum frequency and only ever reduces the *unconstrained*
//! cores — per-core DVFS is an effective differential mechanism, but
//! RAPL's policy is fixed.

use pap_bench::{f1, f3, par_map, run_fixed, Table, SKYLAKE_LIMITS};
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::profile::WorkloadProfile;
use pap_workloads::spec;

fn main() {
    let platform = PlatformSpec::skylake();
    let throttle_points: [u64; 5] = [2500, 2100, 1700, 1200, 800];
    let assignments: Vec<Option<WorkloadProfile>> = vec![Some(spec::GCC); 10];

    // Baseline: unconstrained performance at 2.5 GHz with no power limit.
    let base = run_fixed(
        platform.clone(),
        &[KiloHertz::from_mhz(2500); 10],
        &assignments,
        None,
        Seconds(30.0),
    );
    let base_ips: f64 = base.mean_ips[..5].iter().sum::<f64>() / 5.0;

    let mut jobs = Vec::new();
    for &limit in &SKYLAKE_LIMITS {
        for &thr in &throttle_points {
            jobs.push((limit, thr));
        }
    }
    let results = par_map(jobs, |(limit, thr)| {
        let mut req = vec![KiloHertz::from_mhz(2500); 10];
        for r in req.iter_mut().skip(5) {
            *r = KiloHertz::from_mhz(thr);
        }
        let r = run_fixed(
            platform.clone(),
            &req,
            &assignments,
            Some(Watts(limit)),
            Seconds(40.0),
        );
        (limit, thr, r)
    });

    let mut t = Table::new(
        "Figure 4: RAPL x per-core DVFS, 10x gcc on Skylake (5 cores free @2.5 GHz, 5 throttled)",
        &[
            "limit_w",
            "throttle_mhz",
            "free_mhz",
            "throttled_mhz",
            "free_perf_vs_2.5GHz",
            "pkg_w",
        ],
    );
    for (limit, thr, r) in &results {
        let free_mhz = r.mean_freq_mhz[..5].iter().sum::<f64>() / 5.0;
        let thr_mhz = r.mean_freq_mhz[5..].iter().sum::<f64>() / 5.0;
        let free_perf = r.mean_ips[..5].iter().sum::<f64>() / 5.0 / base_ips;
        t.row(vec![
            f1(*limit),
            format!("{thr}"),
            f1(free_mhz),
            f1(thr_mhz),
            f3(free_perf),
            f1(r.mean_package_power.value()),
        ]);
    }
    println!("{t}");
    println!(
        "Paper anchors at 50 W: throttled half at 800 MHz lifts the free half \
         from ~0.86 to ~1.06 of its unlimited 2.5 GHz performance. Expected \
         shape: at each limit, lowering the throttled half's frequency raises \
         the free half's frequency/performance (saved power is re-spent); the \
         throttled cores always run at their programmed frequency — RAPL only \
         reduces the unconstrained cores."
    );
}
