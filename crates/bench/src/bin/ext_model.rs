//! Extension: learned translation bench — online model vs the naïve α.
//!
//! The paper's translation (§5.2) converts a power error into a
//! frequency delta with `α = ΔP / P_max`, a deliberately crude constant
//! the closed loop has to iterate away. The `pap_model` online model
//! learns the chip's real power/frequency curve from the daemon's own
//! telemetry and inverts *that* instead, falling back to naïve α
//! bit-for-bit while its fits are not yet trustworthy.
//!
//! This bench replays one budget schedule — a warm-up cap, a hard step
//! down, then diurnal-style retargets — over an identical workload mix
//! three times:
//!
//! * **naive** — the paper's α translation;
//! * **online** — the learned model (warm by the time the step lands);
//! * **fallback** — the online plumbing with a fit that is never
//!   allowed to become confident, which must reproduce the naive run's
//!   commanded frequencies exactly.
//!
//! Scored on settling time: after each downward retarget, how many
//! control intervals until package power holds within the tolerance
//! band around the new cap. Exits non-zero if the online model needs
//! more settling intervals than naïve α overall, if it sustains a cap
//! violation, or if the fallback run diverges from naive, so CI can run
//! it as a smoke test:
//! `cargo run --release -p pap-bench --bin ext_model -- --seed 42`.

use std::process::ExitCode;

use pap_bench::{f1, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::sampler::Sampler;
use pap_workloads::engine::RunningApp;
use pap_workloads::phases::PhasedProfile;
use pap_workloads::spec;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority, TranslationKind};
use powerd::daemon::Daemon;
use powerd::prelude::{ModelConfig, ModelSnapshot};
use powerd::runner::standalone_freq;

/// The budget schedule: (time the cap takes effect, cap). The first
/// entry is the warm-up cap the daemon starts under; the 60 s entry is
/// the headline hard step; the rest emulate a compressed diurnal cycle.
const SCHEDULE: &[(f64, f64)] = &[
    (0.0, 45.0),
    (60.0, 30.0),
    (95.0, 40.0),
    (130.0, 27.0),
    (165.0, 36.0),
];

const DURATION: Seconds = Seconds(200.0);
const TICK: Seconds = Seconds(0.002);
/// Settled = within this band of the cap for [`HOLD`] consecutive
/// intervals. The band must contain the controller's steady state: on
/// Skylake the three shared P-state slots quantize the operating point
/// into a persistent ±2.7 W limit cycle around the cap.
const TOL_WATTS: f64 = 3.5;
/// Consecutive in-band intervals that count as settled.
const HOLD: usize = 3;
/// A sustained violation: this far over the cap after settling once
/// (just above the quantization limit cycle's crest).
const VIOLATION_WATTS: f64 = 4.5;

struct Retarget {
    at: f64,
    cap: f64,
    /// Scored steps are the downward ones: the controller must shed
    /// power it is already spending, so the translation's gain is what
    /// sets the settling time.
    scored: bool,
}

struct Outcome {
    /// Commanded per-core frequencies, one row per control interval.
    freqs: Vec<Vec<KiloHertz>>,
    /// Package power per control interval.
    power: Vec<f64>,
    /// Settling intervals per scored retarget (capped at the window).
    settling: Vec<usize>,
    /// Worst overshoot (W over cap) after first settling, per scored step.
    resettle_over: Vec<f64>,
    snapshot: ModelSnapshot,
}

fn schedule() -> Vec<Retarget> {
    SCHEDULE
        .windows(2)
        .map(|w| Retarget {
            at: w[1].0,
            cap: w[1].1,
            scored: w[1].1 < w[0].1,
        })
        .chain(std::iter::once(Retarget {
            at: SCHEDULE[0].0,
            cap: SCHEDULE[0].1,
            scored: false,
        }))
        .collect()
}

fn run(kind: TranslationKind, never_confident: bool, seed: u64) -> Outcome {
    let platform = PlatformSpec::skylake();
    let mix = [
        ("cactus", spec::CACTUS_BSSN, 70u32),
        ("lbm", spec::LBM, 50),
        ("gcc", spec::GCC, 50),
        ("leela", spec::LEELA, 30),
    ];
    let apps: Vec<AppSpec> = mix
        .iter()
        .enumerate()
        .map(|(core, (name, profile, shares))| {
            AppSpec::new(name.to_string(), core)
                .with_priority(Priority::High)
                .with_shares(*shares)
                .with_baseline_ips(profile.ips(standalone_freq(&platform, profile)))
        })
        .collect();
    let mut config = DaemonConfig::new(PolicyKind::FrequencyShares, Watts(SCHEDULE[0].1), apps);
    config.translation = kind;

    let mut chip = Chip::new(platform.clone());
    let mut daemon = Daemon::new(config, &platform).expect("valid config");
    if never_confident {
        daemon.set_model_config(ModelConfig::never_confident());
    }
    let mut engines: Vec<RunningApp> = mix
        .iter()
        .enumerate()
        .map(|(i, (_, profile, _))| {
            RunningApp::from_phased(
                PhasedProfile::with_generated_phases(*profile, seed ^ (i as u64) << 8, 0.1),
                true,
            )
        })
        .collect();

    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).expect("valid freqs");
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).expect("core in range");
    }
    let mut parked = action.parked.clone();

    let mut sampler = Sampler::new(&chip);
    let mut retargets: Vec<Retarget> = schedule();
    retargets.sort_by(|a, b| a.at.total_cmp(&b.at));
    let mut next_retarget = 0;

    let mut freqs_log = Vec::new();
    let mut power_log = Vec::new();
    let mut t = 0.0;
    let mut next_control = 1.0;
    while t < DURATION.value() {
        if next_retarget < retargets.len() && t + 1e-9 >= retargets[next_retarget].at {
            daemon
                .retarget_budget(Watts(retargets[next_retarget].cap))
                .expect("cap within RAPL range");
            next_retarget += 1;
        }
        for (i, app) in engines.iter_mut().enumerate() {
            if parked[i] {
                continue;
            }
            let f = chip.effective_freq(i);
            let out = app.advance(TICK, f);
            chip.set_load(i, out.load).expect("core in range");
            chip.add_instructions(i, out.instructions)
                .expect("core in range");
        }
        chip.tick(TICK);
        t += TICK.value();

        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                power_log.push(sample.package_power.value());
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).expect("valid freqs");
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).expect("core in range");
                }
                parked = action.parked.clone();
                freqs_log.push(action.freqs.clone());
            }
        }
    }

    // Score settling per retarget window.
    let mut settling = Vec::new();
    let mut resettle_over = Vec::new();
    for (i, r) in retargets.iter().enumerate() {
        if !r.scored {
            continue;
        }
        let start = r.at as usize; // 1 s intervals: index == second
        let end = retargets
            .get(i + 1)
            .map(|n| n.at as usize)
            .unwrap_or(power_log.len())
            .min(power_log.len());
        let window = &power_log[start.min(power_log.len())..end];
        let settled_at = window
            .windows(HOLD)
            .position(|w| w.iter().all(|&p| (p - r.cap).abs() <= TOL_WATTS));
        settling.push(settled_at.unwrap_or(window.len()));
        let over = match settled_at {
            Some(s) => window[s..]
                .iter()
                .map(|&p| p - r.cap)
                .fold(0.0f64, f64::max),
            None => f64::INFINITY,
        };
        resettle_over.push(over);
    }

    Outcome {
        freqs: freqs_log,
        power: power_log,
        settling,
        resettle_over,
        snapshot: daemon.model_snapshot(),
    }
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            other => {
                eprintln!("unknown argument: {other} (usage: ext_model [--seed N])");
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "budget schedule: {} retargets over {} s, seed {seed}",
        SCHEDULE.len() - 1,
        DURATION.value()
    );
    for w in SCHEDULE.windows(2) {
        println!("  t={:>5.0}s  {} W -> {} W", w[1].0, w[0].1, w[1].1);
    }
    println!();

    let naive = run(TranslationKind::Naive, false, seed);
    let online = run(TranslationKind::Online, false, seed);
    let fallback = run(TranslationKind::Online, true, seed);

    let mut t = Table::new(
        "Budget-step settling: naive α vs learned model (1 s intervals)",
        &[
            "translation",
            "settling (per step)",
            "total",
            "worst resettle over (W)",
            "fallback %",
            "prediction rms (W)",
        ],
    );
    for (name, o) in [
        ("naive", &naive),
        ("online", &online),
        ("fallback", &fallback),
    ] {
        let per_step = o
            .settling
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let worst = o.resettle_over.iter().cloned().fold(0.0f64, f64::max);
        t.row(vec![
            name.into(),
            per_step,
            o.settling.iter().sum::<usize>().to_string(),
            if worst.is_finite() {
                f1(worst)
            } else {
                "never settled".into()
            },
            format!("{:.0}", o.snapshot.fallback_fraction() * 100.0),
            o.snapshot
                .prediction_rms_watts
                .map(f1)
                .unwrap_or_else(|| "n/a".into()),
        ]);
    }
    println!("{t}");

    let naive_total: usize = naive.settling.iter().sum();
    let online_total: usize = online.settling.iter().sum();
    let identical = naive.freqs == fallback.freqs && naive.power == fallback.power;
    let online_violation = online
        .resettle_over
        .iter()
        .any(|&o| !o.is_finite() || o > VIOLATION_WATTS);

    println!(
        "fallback vs naive: commanded frequencies {} over {} intervals",
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        },
        naive.freqs.len()
    );

    let mut ok = true;
    if online_total > naive_total {
        println!(
            "FAIL: online settles in {online_total} intervals vs naive {naive_total} — the learned \
             model must beat or match α"
        );
        ok = false;
    } else {
        println!(
            "verdict: online settles in {online_total} intervals vs naive {naive_total} across \
             {} downward steps",
            naive.settling.len()
        );
    }
    if online_violation {
        println!("FAIL: online run sustains a cap violation after settling");
        ok = false;
    }
    if !identical {
        println!("FAIL: low-confidence fallback must reproduce the naive run exactly");
        ok = false;
    }
    if ok {
        println!("PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
