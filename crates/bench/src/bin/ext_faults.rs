//! Extension: chaos bench — the resilience layer vs injected faults.
//!
//! One seeded [`FaultPlan::chaos`] schedule (per-core power outage,
//! package-telemetry outage, flaky reads, stuck and failed frequency
//! writes, energy glitches, a counter rollover, a thermal emergency) is
//! replayed twice over the same power-shares workload mix on the
//! per-core-DVFS server platform:
//!
//! * **resilient** — retries, per-sensor health tracking, and the
//!   degradation ladder (power shares → frequency shares → uniform cap);
//! * **baseline** — the plain daemon with stale-fill telemetry and
//!   fire-and-forget writes, i.e. what happens when nobody handles
//!   errors.
//!
//! Scored on the inner chip's ground truth. The headline: the resilient
//! stack holds the package cap through every fault (fairness degrades
//! gracefully instead), while the baseline blindly raises frequencies on
//! stale below-limit readings during the package outage and sails over
//! budget. Exits non-zero if the resilient run shows any sustained cap
//! violation, so CI can run it as a chaos smoke test:
//! `cargo run --release -p pap-bench --bin ext_faults -- --seed 42`.

use std::process::ExitCode;

use pap_bench::{f1, Table};
use pap_faults::chaos_platform;
use pap_faults::plan::{ChaosProfile, FaultPlan};
use pap_faults::runner::{ChaosExperiment, ChaosResult};
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::spec;
use powerd::config::PolicyKind;

const LIMIT: Watts = Watts(30.0);
const DURATION: Seconds = Seconds(120.0);

fn run(seed: u64, resilient: bool, plan: &FaultPlan) -> ChaosResult {
    ChaosExperiment::new(chaos_platform(), PolicyKind::PowerShares, LIMIT)
        .app("cactus", spec::CACTUS_BSSN, 70)
        .app("lbm", spec::LBM, 50)
        .app("gcc", spec::GCC, 50)
        .app("leela", spec::LEELA, 30)
        .duration(DURATION)
        .plan(plan.clone())
        .seed(seed)
        .resilience(resilient)
        .run()
        .expect("chaos run")
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            other => {
                eprintln!("unknown argument: {other} (usage: ext_faults [--seed N])");
                return ExitCode::FAILURE;
            }
        }
    }

    let platform = chaos_platform();
    let plan = FaultPlan::chaos(seed, &ChaosProfile::default(), DURATION, platform.num_cores);
    println!(
        "chaos schedule: seed {seed}, {} faults over {}s on {} ({} cores), {} cap\n",
        plan.faults.len(),
        DURATION.value(),
        platform.name,
        platform.num_cores,
        LIMIT,
    );

    let resilient = run(seed, true, &plan);
    let baseline = run(seed, false, &plan);
    // Fault-free reference: the daemon's own transient regulation
    // overshoot, so the chaos rows can be read against it.
    let clean = run(seed, true, &FaultPlan::new());

    let mut t = Table::new(
        "Chaos under an identical fault schedule: resilient vs baseline",
        &[
            "stack",
            "sustained viol",
            "viol intervals",
            "worst over (W)",
            "mean pkg (W)",
            "jain",
            "starved",
            "ladder moves",
        ],
    );
    for (name, r) in [
        ("resilient", &resilient),
        ("baseline", &baseline),
        ("no-fault ref", &clean),
    ] {
        t.row(vec![
            name.into(),
            r.sustained_violations.to_string(),
            format!("{}/{}", r.violations, r.intervals),
            f1(r.worst_over_watts),
            f1(r.mean_power.value()),
            format!("{:.3}", r.jain),
            r.starved.to_string(),
            r.transitions.len().to_string(),
        ]);
    }
    println!("{t}");

    let mut lt = Table::new(
        "Degradation ladder (resilient run)",
        &["t (s)", "from", "to", "reason"],
    );
    for e in &resilient.transitions {
        lt.row(vec![
            f1(e.time.value()),
            e.from.name().into(),
            e.to.name().into(),
            e.reason.into(),
        ]);
    }
    println!("{lt}");

    let mut at = Table::new(
        "Share-normalized throughput (resilient run)",
        &["app", "core", "shares", "retired", "retired/share"],
    );
    for a in &resilient.apps {
        at.row(vec![
            a.name.clone(),
            a.core.to_string(),
            a.shares.to_string(),
            format!("{:.2e}", a.retired as f64),
            format!("{:.2e}", a.normalized),
        ]);
    }
    println!("{at}");

    println!(
        "injected: {:?}\nfinal ladder level reached: {}",
        resilient.injected,
        resilient
            .transitions
            .last()
            .map(|e| e.to.name())
            .unwrap_or("nominal"),
    );

    let baseline_misbehaved = baseline.sustained_violations > 0 || baseline.starved > 0;
    println!(
        "\nverdict: resilient {} ({} sustained violations); baseline {} ({} sustained, {} starved)",
        if resilient.sustained_violations == 0 {
            "HELD THE CAP"
        } else {
            "VIOLATED THE CAP"
        },
        resilient.sustained_violations,
        if baseline_misbehaved {
            "misbehaved as expected"
        } else {
            "unexpectedly survived"
        },
        baseline.sustained_violations,
        baseline.starved,
    );

    if resilient.sustained_violations > 0 {
        eprintln!("FAIL: the resilient stack sustained a package-cap violation under faults");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
