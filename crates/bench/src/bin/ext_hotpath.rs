//! Extension: hot-path memory discipline bench (DESIGN.md §11).
//!
//! Installs a counting global allocator and drives every policy's
//! steady-state control loop (observer detached, naive and online
//! translation) through `Daemon::step_view`, proving **zero heap
//! allocations per step** and measuring steps/sec for both the borrowed
//! view path and the owning `step()` path.
//!
//! Exits non-zero if any scenario allocates in steady state, or if the
//! zero-alloc view path is more than 10 % slower than the allocating
//! owned path (the view path exists to be faster; falling behind the
//! baseline it replaces is a regression). Results land in
//! `results/BENCH_hotpath.json` for CI to archive.
//!
//! A second section sweeps the batch-stepped [`WideChip`] simulator
//! against the per-core-struct [`Chip`] at 128/512/1024 cores under an
//! identical closed-loop drive (periodic retargeting, mixed loads,
//! RAPL enforcement), checks the two stay bit-identical, and gates the
//! ≥4× tick-throughput speedup at 1024 cores that justifies keeping a
//! second simulator core (DESIGN.md §15).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use pap_alloccount::{AllocCounter, CountingAlloc};
use pap_bench::{f1, Table};
use pap_model::TranslationKind;
use pap_simcpu::chip::Chip;
use pap_simcpu::core::CoreCounters as SimCounters;
use pap_simcpu::cstate::CState;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_telemetry::counters::CoreRates;
use pap_telemetry::sampler::{CoreSample, Sample};
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Steps to run before measuring (fills scratch capacities and the
/// online model's observation windows).
const WARMUP: usize = 300;
/// Distinct pre-synthesized telemetry samples cycled during the run.
const SAMPLE_CYCLE: usize = 512;
/// Timing trials per path; the best (fastest) trial is reported so a
/// scheduler hiccup on a shared CI runner can't fail the perf gate.
/// Allocation counting spans *all* view-path trials.
const TRIALS: usize = 3;

fn skylake_apps() -> Vec<AppSpec> {
    vec![
        AppSpec::new("a0", 0)
            .with_shares(70)
            .with_priority(Priority::High)
            .with_baseline_ips(2.4e9),
        AppSpec::new("a1", 1)
            .with_shares(30)
            .with_priority(Priority::Low)
            .with_baseline_ips(1.8e9),
        AppSpec::new("a2", 2)
            .with_shares(50)
            .with_priority(Priority::High)
            .with_baseline_ips(2.0e9),
        AppSpec::new("a3", 3)
            .with_shares(10)
            .with_priority(Priority::Low)
            .with_baseline_ips(1.5e9),
    ]
}

fn ryzen_apps() -> Vec<AppSpec> {
    (0..6)
        .map(|i| {
            AppSpec::new(format!("r{i}"), i)
                .with_shares(10 + 15 * i as u32)
                .with_baseline_ips(2.0e9)
        })
        .collect()
}

fn baseline_for(apps: &[AppSpec], core: usize) -> Option<f64> {
    apps.iter().find(|a| a.core == core).map(|a| a.baseline_ips)
}

/// Deterministic synthetic telemetry, same regime as the golden-replay
/// suite: package power quadratic in total managed GHz, centered so it
/// crosses the limit both ways; per-core power on Ryzen only.
fn synth_freq(i: usize, c: usize, platform: &PlatformSpec) -> KiloHertz {
    let lo = platform.grid.min().khz();
    let hi = platform.grid.max().khz();
    let span_steps = (hi - lo) / 100_000;
    let k = (i as u64 * 13 + c as u64 * 7) % span_steps.max(1);
    KiloHertz(lo + k * 100_000)
}

fn synth_sample(i: usize, platform: &PlatformSpec, apps: &[AppSpec], limit: Watts) -> Sample {
    let total_ghz: f64 = (0..platform.num_cores)
        .filter(|&c| baseline_for(apps, c).is_some())
        .map(|c| synth_freq(i, c, platform).ghz())
        .sum();
    let t0 = apps.len() as f64 * (platform.grid.min().ghz() + platform.grid.max().ghz()) / 2.0;
    let wobble = (((i * 37) % 17) as f64 - 8.0) * 0.25;
    let pkg =
        limit.value() + 1.2 * (total_ghz - t0) + 0.18 * (total_ghz * total_ghz - t0 * t0) + wobble;
    let cores = (0..platform.num_cores)
        .map(|c| {
            let managed = baseline_for(apps, c);
            let freq = if managed.is_some() {
                synth_freq(i, c, platform)
            } else {
                KiloHertz::ZERO
            };
            let ips = managed.map_or(0.0, |b| b * (0.1 + 0.3 * freq.ghz()));
            let power = if platform.per_core_power {
                Some(Watts(1.5 + 2.2 * freq.ghz() + ((i + c) % 5) as f64 * 0.3))
            } else {
                None
            };
            CoreSample {
                rates: CoreRates {
                    active_freq: freq,
                    c0_residency: 1.0,
                    ips,
                },
                power,
                requested_freq: freq,
            }
        })
        .collect();
    Sample {
        time: Seconds((i + 1) as f64),
        interval: Seconds(1.0),
        package_power: Watts(pkg),
        cores_power: Watts((pkg - 10.0).max(0.0)),
        cores,
    }
}

struct ScenarioResult {
    name: String,
    policy: &'static str,
    translation: &'static str,
    steps: usize,
    alloc_events: u64,
    alloc_bytes: u64,
    steps_per_sec_view: f64,
    steps_per_sec_owned: f64,
}

fn make_daemon(
    policy: PolicyKind,
    platform: &PlatformSpec,
    apps: &[AppSpec],
    translation: TranslationKind,
    limit: Watts,
) -> Daemon {
    let mut config = DaemonConfig::new(policy, limit, apps.to_vec());
    config.translation = translation;
    Daemon::new(config, platform).expect("valid bench config")
}

/// Run one scenario: warm up, then measure the zero-alloc view path and
/// (on a fresh daemon, same telemetry) the owning path.
fn run_scenario(
    name: &str,
    policy: PolicyKind,
    platform: &PlatformSpec,
    apps: &[AppSpec],
    translation: TranslationKind,
    steps: usize,
) -> ScenarioResult {
    let limit = Watts(45.0);
    let samples: Vec<Sample> = (0..SAMPLE_CYCLE)
        .map(|i| synth_sample(i, platform, apps, limit))
        .collect();

    // View path: steady-state allocation count plus throughput.
    let mut d = make_daemon(policy, platform, apps, translation, limit);
    d.initial();
    for i in 0..WARMUP {
        d.step_view(&samples[i % SAMPLE_CYCLE]);
    }
    let before = AllocCounter::snapshot();
    let mut view_secs = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for i in 0..steps {
            d.step_view(&samples[(WARMUP + i) % SAMPLE_CYCLE]);
        }
        view_secs = view_secs.min(started.elapsed().as_secs_f64());
    }
    let after = AllocCounter::snapshot();

    // Owned path: identical telemetry, fresh daemon, `step()` clones the
    // action out of the arena every interval.
    let mut d = make_daemon(policy, platform, apps, translation, limit);
    d.initial();
    for i in 0..WARMUP {
        d.step(&samples[i % SAMPLE_CYCLE]);
    }
    let mut owned_secs = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        for i in 0..steps {
            d.step(&samples[(WARMUP + i) % SAMPLE_CYCLE]);
        }
        owned_secs = owned_secs.min(started.elapsed().as_secs_f64());
    }

    ScenarioResult {
        name: name.to_string(),
        policy: policy_label(policy),
        translation: match translation {
            TranslationKind::Naive => "naive",
            TranslationKind::Online => "online",
        },
        steps,
        alloc_events: after.events_since(&before),
        alloc_bytes: after.bytes_since(&before),
        steps_per_sec_view: steps as f64 / view_secs,
        steps_per_sec_owned: steps as f64 / owned_secs,
    }
}

/// Core counts for the wide-chip sweep; the last is the gated width.
const WIDE_CORES: [usize; 3] = [128, 512, 1024];
/// Required `WideChip`-vs-`Chip` tick-throughput ratio at the widest
/// descriptor — the bar the batch-stepped simulator must clear to earn
/// its keep as a second implementation.
const WIDE_SPEEDUP_GATE: f64 = 4.0;
/// Simulator tick used by the sweep.
const WIDE_DT: Seconds = Seconds(0.001);
/// Ticks between frequency retargets, mimicking a 1 s control interval
/// over a ~128 ms cadence so the memoized power path sees real
/// movement instead of pure steady state.
const WIDE_RETARGET_EVERY: usize = 128;
/// Untimed ticks that fill caches and settle the RAPL controller.
const WIDE_WARMUP_TICKS: usize = 256;

/// Everything that must come out bit-identical from the two simulator
/// cores after an identical drive.
type WideFingerprint = (u32, u32, Vec<SimCounters>, Vec<u64>);

struct WideResult {
    cores: usize,
    ticks: usize,
    ticks_per_sec_chip: f64,
    ticks_per_sec_wide: f64,
    speedup: f64,
    bit_identical: bool,
}

/// Deterministic per-core frequency pattern; `phase` rotates it so
/// retargets actually move cores.
fn wide_freq_pattern(spec: &PlatformSpec, phase: usize) -> Vec<KiloHertz> {
    let lo = spec.grid.min().khz();
    let step = spec.grid.step().khz();
    let span = (spec.grid.max().khz() - lo) / step;
    (0..spec.num_cores)
        .map(|c| {
            KiloHertz(lo + (c as u64 * (7 + 4 * phase as u64) + phase as u64) % (span + 1) * step)
        })
        .collect()
}

/// Mixed per-core configuration (same spread the equivalence tests
/// use): full-tilt, AVX, partial-utilization, idle and parked cores,
/// plus shallow idle states.
fn wide_core_setup(c: usize) -> (LoadDescriptor, bool, CState) {
    let load = match c % 5 {
        0 => LoadDescriptor::nominal(),
        1 => LoadDescriptor {
            capacitance: 1.9,
            utilization: 1.0,
            avx: true,
        },
        2 => LoadDescriptor {
            capacitance: 1.2,
            utilization: 0.6,
            avx: false,
        },
        3 => LoadDescriptor::IDLE,
        _ => LoadDescriptor {
            capacitance: 0.8,
            utilization: 0.9,
            avx: false,
        },
    };
    (
        load,
        c % 7 == 3,
        if c % 4 == 1 { CState::C1 } else { CState::C6 },
    )
}

/// Drive the per-core-struct `Chip` through the sweep schedule; returns
/// best-trial seconds per `ticks` plus the end-state fingerprint.
fn sweep_chip(n: usize, ticks: usize) -> (f64, WideFingerprint) {
    let spec = PlatformSpec::wide(n);
    let mut chip = Chip::new(spec.clone());
    let patterns = [wide_freq_pattern(&spec, 0), wide_freq_pattern(&spec, 1)];
    for c in 0..n {
        let (load, parked, idle) = wide_core_setup(c);
        chip.set_load(c, load).unwrap();
        chip.set_forced_idle(c, parked).unwrap();
        chip.set_idle_state(c, idle).unwrap();
    }
    chip.set_rapl_limit(Some(Watts(4.0 * n as f64))).unwrap();
    let mut t_abs = 0usize;
    let mut drive = |chip: &mut Chip, count: usize| {
        for _ in 0..count {
            if t_abs.is_multiple_of(WIDE_RETARGET_EVERY) {
                let p = &patterns[(t_abs / WIDE_RETARGET_EVERY) % 2];
                chip.set_all_requested(p).unwrap();
            }
            chip.tick(WIDE_DT);
            t_abs += 1;
        }
    };
    drive(&mut chip, WIDE_WARMUP_TICKS);
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        drive(&mut chip, ticks);
        best = best.min(started.elapsed().as_secs_f64());
    }
    let fp = (
        chip.package_energy_raw(),
        chip.cores_energy_raw(),
        (0..n).map(|c| chip.counters(c)).collect(),
        (0..n).map(|c| chip.effective_freq(c).khz()).collect(),
    );
    (best, fp)
}

/// Identical schedule over the batch-stepped `WideChip`.
fn sweep_wide(n: usize, ticks: usize) -> (f64, WideFingerprint) {
    let spec = PlatformSpec::wide(n);
    let mut chip = WideChip::new(spec.clone());
    let patterns = [wide_freq_pattern(&spec, 0), wide_freq_pattern(&spec, 1)];
    for c in 0..n {
        let (load, parked, idle) = wide_core_setup(c);
        chip.set_load(c, load).unwrap();
        chip.set_forced_idle(c, parked).unwrap();
        chip.set_idle_state(c, idle).unwrap();
    }
    chip.set_rapl_limit(Some(Watts(4.0 * n as f64))).unwrap();
    let mut t_abs = 0usize;
    let mut drive = |chip: &mut WideChip, count: usize| {
        for _ in 0..count {
            if t_abs.is_multiple_of(WIDE_RETARGET_EVERY) {
                let p = &patterns[(t_abs / WIDE_RETARGET_EVERY) % 2];
                chip.set_all_requested(p).unwrap();
            }
            chip.tick(WIDE_DT);
            t_abs += 1;
        }
    };
    drive(&mut chip, WIDE_WARMUP_TICKS);
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let started = Instant::now();
        drive(&mut chip, ticks);
        best = best.min(started.elapsed().as_secs_f64());
    }
    let fp = (
        chip.package_energy_raw(),
        chip.cores_energy_raw(),
        (0..n).map(|c| chip.counters(c)).collect(),
        (0..n).map(|c| chip.effective_freq(c).khz()).collect(),
    );
    (best, fp)
}

fn run_wide_sweep() -> Vec<WideResult> {
    WIDE_CORES
        .iter()
        .map(|&n| {
            // Roughly constant work per width so the sweep stays quick.
            let ticks = (400_000 / n).max(256);
            let (chip_secs, chip_fp) = sweep_chip(n, ticks);
            let (wide_secs, wide_fp) = sweep_wide(n, ticks);
            let chip_tps = ticks as f64 / chip_secs;
            let wide_tps = ticks as f64 / wide_secs;
            WideResult {
                cores: n,
                ticks,
                ticks_per_sec_chip: chip_tps,
                ticks_per_sec_wide: wide_tps,
                speedup: wide_tps / chip_tps,
                bit_identical: chip_fp == wide_fp,
            }
        })
        .collect()
}

/// One scenario row recovered from a committed `BENCH_hotpath.json`.
struct BaselineEntry {
    name: String,
    policy: String,
    translation: String,
    view: f64,
    owned: f64,
}

fn extract_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(&rest[..rest.find('"')?])
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Recover the scenario rates from a previously written report. The
/// report serializes one scenario object per line (see [`json_report`]),
/// so line-oriented key scanning is exact for files this bench wrote.
fn parse_baseline(text: &str) -> Vec<BaselineEntry> {
    text.lines()
        .filter_map(|line| {
            Some(BaselineEntry {
                name: extract_str(line, "\"name\": \"")?.to_string(),
                policy: extract_str(line, "\"policy\": \"")?.to_string(),
                translation: extract_str(line, "\"translation\": \"")?.to_string(),
                view: extract_num(line, "\"steps_per_sec_view\": ")?,
                owned: extract_num(line, "\"steps_per_sec_owned\": ")?,
            })
        })
        .collect()
}

/// Regression guard against a committed baseline report, scoped to the
/// shares policies (the heavy water-fill / slot-DP controllers whose
/// cost the fleet fast path is meant to keep down). Absolute steps/sec
/// are machine-dependent and single scenarios jitter >10 % run-to-run
/// even on one host, so the guard compares the *geometric mean* of the
/// per-scenario view-path ratios (current / baseline) against the same
/// aggregate over the owned path, which serves as the machine-speed
/// proxy: both paths slow down equally on a slower runner, but only a
/// genuine controller regression drags the view aggregate below the
/// owned one. A normalized aggregate >10 % down fails. Failures are
/// appended to `failures`.
fn check_against_baseline(results: &[ScenarioResult], text: &str, failures: &mut Vec<String>) {
    let base = parse_baseline(text);
    let matched: Vec<(&ScenarioResult, &BaselineEntry)> = results
        .iter()
        .filter_map(|r| {
            base.iter()
                .find(|b| {
                    b.name == r.name
                        && b.translation == r.translation
                        && b.policy.contains("shares")
                        && b.view > 0.0
                        && b.owned > 0.0
                })
                .map(|b| (r, b))
        })
        .collect();
    if matched.is_empty() {
        failures.push("baseline report contains no shares-policy scenarios".to_string());
        return;
    }
    let geomean = |ratios: &mut dyn Iterator<Item = f64>| -> f64 {
        let (sum, n) = ratios.fold((0.0, 0u32), |(s, n), r| (s + r.ln(), n + 1));
        (sum / n as f64).exp()
    };
    let view = geomean(&mut matched.iter().map(|(r, b)| r.steps_per_sec_view / b.view));
    let owned = geomean(&mut matched.iter().map(|(r, b)| r.steps_per_sec_owned / b.owned));
    if view < 0.9 * owned {
        failures.push(format!(
            "shares-policy view path regressed >10% vs the recorded baseline: \
             aggregate view ratio {view:.3} vs owned-path (machine-speed) ratio {owned:.3} \
             over {} scenarios",
            matched.len()
        ));
    } else {
        println!(
            "Baseline guard: shares-policy view ratio {view:.3} vs owned ratio {owned:.3} \
             over {} scenarios — no regression",
            matched.len()
        );
    }
}

fn policy_label(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::RaplNative => "rapl",
        PolicyKind::Priority => "priority",
        PolicyKind::PowerShares => "power-shares",
        PolicyKind::FrequencyShares => "freq-shares",
        PolicyKind::PerformanceShares => "perf-shares",
        PolicyKind::FastCap => "fastcap",
    }
}

fn scenarios() -> Vec<(&'static str, PolicyKind, PlatformSpec, Vec<AppSpec>)> {
    vec![
        (
            "skylake_priority",
            PolicyKind::Priority,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_freq",
            PolicyKind::FrequencyShares,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_perf",
            PolicyKind::PerformanceShares,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "skylake_rapl",
            PolicyKind::RaplNative,
            PlatformSpec::skylake(),
            skylake_apps(),
        ),
        (
            "ryzen_power",
            PolicyKind::PowerShares,
            PlatformSpec::ryzen(),
            ryzen_apps(),
        ),
        (
            "ryzen_freq",
            PolicyKind::FrequencyShares,
            PlatformSpec::ryzen(),
            ryzen_apps(),
        ),
    ]
}

fn json_report(results: &[ScenarioResult], wide: &[WideResult]) -> String {
    let mut s = String::from("{\n  \"bench\": \"hotpath\",\n");
    let _ = writeln!(
        s,
        "  \"warmup_steps\": {WARMUP},\n  \"timing_trials\": {TRIALS},\n  \"scenarios\": ["
    );
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"policy\": \"{}\", \"translation\": \"{}\", \
             \"steps\": {}, \"alloc_events\": {}, \"alloc_bytes\": {}, \
             \"steps_per_sec_view\": {:.1}, \"steps_per_sec_owned\": {:.1}}}{}",
            r.name,
            r.policy,
            r.translation,
            r.steps,
            r.alloc_events,
            r.alloc_bytes,
            r.steps_per_sec_view,
            r.steps_per_sec_owned,
            if i + 1 == results.len() { "" } else { "," }
        );
    }
    s.push_str("  ],\n  \"widechip\": [\n");
    for (i, r) in wide.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"cores\": {}, \"ticks\": {}, \"ticks_per_sec_chip\": {:.1}, \
             \"ticks_per_sec_wide\": {:.1}, \"speedup\": {:.2}, \
             \"bit_identical\": {}}}{}",
            r.cores,
            r.ticks,
            r.ticks_per_sec_chip,
            r.ticks_per_sec_wide,
            r.speedup,
            r.bit_identical,
            if i + 1 == wide.len() { "" } else { "," }
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() -> ExitCode {
    let mut steps = 20_000usize;
    let mut out_path = String::from("results/BENCH_hotpath.json");
    let mut baseline_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--steps" => {
                steps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--steps takes a positive integer");
            }
            "--out" => out_path = args.next().expect("--out takes a path"),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline takes a path")),
            other => panic!(
                "unknown argument {other:?} (supported: --steps N, --out PATH, --baseline PATH)"
            ),
        }
    }

    let mut results = Vec::new();
    for translation in [TranslationKind::Naive, TranslationKind::Online] {
        for (name, policy, platform, apps) in scenarios() {
            results.push(run_scenario(
                name,
                policy,
                &platform,
                &apps,
                translation,
                steps,
            ));
        }
    }

    let mut t = Table::new(
        format!("Hot-path memory discipline ({steps} steady-state steps per scenario)"),
        &[
            "scenario",
            "policy",
            "translation",
            "allocs",
            "ksteps_view",
            "ksteps_owned",
            "view_gain_%",
        ],
    );
    let mut failures = Vec::new();
    for r in &results {
        let gain = (r.steps_per_sec_view / r.steps_per_sec_owned - 1.0) * 100.0;
        t.row(vec![
            r.name.clone(),
            r.policy.into(),
            r.translation.into(),
            r.alloc_events.to_string(),
            f1(r.steps_per_sec_view / 1e3),
            f1(r.steps_per_sec_owned / 1e3),
            f1(gain),
        ]);
        if r.alloc_events > 0 {
            failures.push(format!(
                "{}/{}: {} heap allocation events ({} bytes) in steady state",
                r.name, r.translation, r.alloc_events, r.alloc_bytes
            ));
        }
        if r.steps_per_sec_view < 0.9 * r.steps_per_sec_owned {
            failures.push(format!(
                "{}/{}: view path {:.0} steps/s is >10% below the owned path {:.0} steps/s",
                r.name, r.translation, r.steps_per_sec_view, r.steps_per_sec_owned
            ));
        }
    }
    println!("{t}");

    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => check_against_baseline(&results, &text, &mut failures),
            Err(e) => failures.push(format!("--baseline {path}: {e}")),
        }
    }

    let wide = run_wide_sweep();
    let mut wt = Table::new(
        "Wide-chip batch stepping vs per-core Chip (identical closed-loop drive)",
        &[
            "cores",
            "ticks",
            "kticks_chip",
            "kticks_wide",
            "speedup",
            "bit_identical",
        ],
    );
    for r in &wide {
        wt.row(vec![
            r.cores.to_string(),
            r.ticks.to_string(),
            f1(r.ticks_per_sec_chip / 1e3),
            f1(r.ticks_per_sec_wide / 1e3),
            f1(r.speedup),
            r.bit_identical.to_string(),
        ]);
        if !r.bit_identical {
            failures.push(format!(
                "{} cores: WideChip diverged from Chip under an identical drive",
                r.cores
            ));
        }
        if r.cores == *WIDE_CORES.last().unwrap() && r.speedup < WIDE_SPEEDUP_GATE {
            failures.push(format!(
                "{} cores: batch stepping only {:.2}x the per-core loop \
                 (gate: >={WIDE_SPEEDUP_GATE}x)",
                r.cores, r.speedup
            ));
        }
    }
    println!("{wt}");

    let json = json_report(&results, &wide);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("Report written to {out_path}");

    if failures.is_empty() {
        println!(
            "PASS: zero heap allocations per steady-state step across every \
             policy and translation; borrowed view path at or above the \
             owned path's throughput; wide-chip batch stepping bit-identical \
             to the per-core simulator and >={WIDE_SPEEDUP_GATE}x faster at \
             the widest descriptor."
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
