//! Figure 8 — Priority policy on Ryzen.
//!
//! Same protocol as Figure 7 on the Ryzen platform (which lacks RAPL
//! limiting, so only the daemon enforces the budget), with core power
//! reported as well — Ryzen exposes per-core power telemetry. Paper
//! findings mirror Skylake: at 50 W LP runs only with ≤4 HP apps, at 40 W
//! only with 2 HP apps; core power dips slightly from 4H4L to 2H6L
//! because the 4H class is all high-demand while the 2H class is mixed.

use pap_bench::mixes::{ryzen_priority, Mix};
use pap_bench::{f1, f3, par_map, Table, POLICY_LIMITS};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use powerd::config::{PolicyKind, Priority};
use powerd::runner::{Experiment, ExperimentResult};

fn run_mix(mix: &Mix, limit: f64) -> ExperimentResult {
    let mut e = Experiment::new(PlatformSpec::ryzen(), PolicyKind::Priority, Watts(limit))
        .duration(Seconds(60.0))
        .warmup(15);
    for (i, (profile, pri)) in mix.entries.iter().enumerate() {
        e = e.app(format!("{}-{}", profile.name, i), *profile, *pri, 100);
    }
    e.run().expect("experiment runs")
}

fn class_stats(mix: &Mix, r: &ExperimentResult, class: Priority) -> (f64, f64, f64, usize) {
    let idx: Vec<usize> = mix
        .entries
        .iter()
        .enumerate()
        .filter(|(_, (_, p))| *p == class)
        .map(|(i, _)| i)
        .collect();
    if idx.is_empty() {
        return (0.0, 0.0, 0.0, 0);
    }
    let n = idx.len() as f64;
    let perf = idx.iter().map(|&i| r.apps[i].norm_perf).sum::<f64>() / n;
    let freq = idx.iter().map(|&i| r.apps[i].mean_freq_mhz).sum::<f64>() / n;
    let power = idx
        .iter()
        .map(|&i| r.apps[i].mean_power.map(|w| w.value()).unwrap_or(0.0))
        .sum::<f64>()
        / n;
    (perf, freq, power, idx.len())
}

fn main() {
    let mixes = ryzen_priority();
    let mut jobs = Vec::new();
    for (m, mix) in mixes.iter().enumerate() {
        for &limit in &POLICY_LIMITS {
            jobs.push((m, limit, mix));
        }
    }
    let results = par_map(jobs, |(m, limit, mix)| (m, limit, run_mix(mix, limit)));

    let mut t = Table::new(
        "Figure 8: Ryzen priority mixes — class averages (priority policy)",
        &[
            "mix",
            "limit_w",
            "hp_perf",
            "lp_perf",
            "hp_mhz",
            "lp_mhz",
            "hp_core_w",
            "lp_core_w",
            "pkg_w",
        ],
    );
    for (m, mix) in mixes.iter().enumerate() {
        for &limit in &POLICY_LIMITS {
            let r = &results
                .iter()
                .find(|(mm, l, _)| *mm == m && *l == limit)
                .expect("swept")
                .2;
            let (hp_perf, hp_mhz, hp_w, _) = class_stats(mix, r, Priority::High);
            let (lp_perf, lp_mhz, lp_w, n_lp) = class_stats(mix, r, Priority::Low);
            let dash = || "-".to_string();
            t.row(vec![
                mix.label.into(),
                f1(limit),
                f3(hp_perf),
                if n_lp == 0 { dash() } else { f3(lp_perf) },
                f1(hp_mhz),
                if n_lp == 0 { dash() } else { f1(lp_mhz) },
                f3(hp_w),
                if n_lp == 0 { dash() } else { f3(lp_w) },
                f1(r.mean_package_power.value()),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected shape: identical to Skylake — HP protected at every limit, \
         LP starved at 40-50 W unless the HP class is small; per-core power of \
         starved LP cores near zero; HP core power higher for the all-HD 4H4L \
         class than the mixed 2H6L class."
    );
}
