//! Figure 5 — Effect of co-location under RAPL ("unfair throttling").
//!
//! A latency-sensitive application (websearch, 300 users, 9 cores) is
//! co-located with a power virus (cpuburn, 1 core) under progressively
//! lower RAPL limits. The paper observes a dramatic p90 degradation —
//! below 50 % of the solo performance under ~40 W — because the virus
//! drives the package into its limit and RAPL throttles every core,
//! including the 9 serving latency-sensitive traffic.

use pap_bench::{f1, f3, par_map, Table};
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_workloads::burn::CPUBURN;
use powerd::config::PolicyKind;
use powerd::runner::LatencyExperiment;

fn main() {
    let limits = [85.0, 65.0, 55.0, 45.0, 40.0, 35.0, 30.0];
    let mut jobs = Vec::new();
    for &l in &limits {
        for colocated in [false, true] {
            jobs.push((l, colocated));
        }
    }
    let results = par_map(jobs, |(limit, colocated)| {
        let mut e = LatencyExperiment::new(
            PlatformSpec::skylake(),
            PolicyKind::RaplNative,
            Watts(limit),
        )
        .duration(Seconds(90.0))
        .warmup(Seconds(15.0));
        if colocated {
            e = e.colocate(CPUBURN);
        }
        (limit, colocated, e.run().expect("experiment runs"))
    });

    let p90 = |limit: f64, colocated: bool| -> f64 {
        results
            .iter()
            .find(|(l, c, _)| *l == limit && *c == colocated)
            .map(|(_, _, r)| r.p90_ms)
            .expect("swept")
    };

    let mut t = Table::new(
        "Figure 5: websearch p90 under RAPL, alone vs co-located with cpuburn (Skylake)",
        &[
            "limit_w",
            "alone_p90_ms",
            "coloc_p90_ms",
            "alone_norm",
            "coloc_norm",
            "coloc_vs_alone",
        ],
    );
    let base = p90(85.0, false);
    for &l in &limits {
        let a = p90(l, false);
        let c = p90(l, true);
        t.row(vec![
            f1(l),
            f1(a),
            f1(c),
            f3(a / base),
            f3(c / base),
            f3(c / a),
        ]);
    }
    println!("{t}");
    println!(
        "Expected shape: alone, websearch holds its p90 until very low limits \
         (it only needs ~44 W); co-located, the 1-core power virus pushes the \
         package into the limit and RAPL throttles all 10 cores, so p90 \
         degrades dramatically below ~45 W (paper: performance less than 50% \
         of solo under 40 W)."
    );
}
