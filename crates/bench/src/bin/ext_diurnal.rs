//! Extension: diurnal colocation — the datacenter scenario the paper's
//! introduction motivates.
//!
//! A latency-critical service with a (compressed) diurnal load curve
//! shares the socket with low-priority batch work under one power limit.
//! Under the priority policy the batch class soaks up the budget at
//! night and is throttled/starved back at peak, keeping the service's
//! tail flat across the day; native RAPL lets the batch work inflate the
//! peak-hour tail.

use pap_bench::{f1, Table};
use pap_simcpu::chip::Chip;
use pap_simcpu::freq::KiloHertz;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::sampler::Sampler;
use pap_workloads::engine::RunningApp;
use pap_workloads::latency::{DemandShape, ServiceConfig};
use pap_workloads::spec;
use pap_workloads::traces::{LoadTrace, TracedService};
use powerd::config::{AppSpec, DaemonConfig, PolicyKind, Priority};
use powerd::daemon::Daemon;

const SERVICE_CORES: usize = 5;
const DAY: f64 = 120.0; // compressed day length in simulated seconds

struct PhaseStats {
    p90_ms: f64,
    batch_ips: f64,
    pkg_w: f64,
}

fn run(policy: PolicyKind, limit: f64) -> (PhaseStats, PhaseStats) {
    let platform = PlatformSpec::skylake();
    let mut chip = Chip::new(platform.clone());
    if policy == PolicyKind::RaplNative {
        chip.set_rapl_limit(Some(Watts(limit))).unwrap();
    }

    let service_cfg = ServiceConfig {
        users: 200,
        mean_think: Seconds(0.5),
        mean_service_cycles: 20.0e6,
        demand: DemandShape::Exponential,
        capacitance: 0.55,
        seed: 77,
    };
    // Peak at the first half of the day, trough in the second.
    let trace = LoadTrace::Diurnal {
        mean: 0.6,
        swing: 0.4,
        period: Seconds(DAY),
    };
    let mut service = TracedService::new(service_cfg, SERVICE_CORES, trace);
    let mut batch: Vec<RunningApp> = (SERVICE_CORES..10)
        .map(|_| RunningApp::looping(spec::CACTUS_BSSN))
        .collect();

    let mut apps: Vec<AppSpec> = (0..SERVICE_CORES)
        .map(|c| {
            AppSpec::new(format!("web/{c}"), c)
                .with_priority(Priority::High)
                .with_shares(90)
                .with_baseline_ips(3.0e9)
        })
        .collect();
    for c in SERVICE_CORES..10 {
        apps.push(
            AppSpec::new(format!("batch/{c}"), c)
                .with_priority(Priority::Low)
                .with_shares(10)
                .with_baseline_ips(3.0e9),
        );
    }
    let config = DaemonConfig::new(policy, Watts(limit), apps);
    let mut daemon = Daemon::new(config, &platform).unwrap();
    let action = daemon.initial();
    chip.set_all_requested(&action.freqs).unwrap();
    let mut parked = action.parked.clone();
    for (core, &p) in parked.iter().enumerate() {
        chip.set_forced_idle(core, p).unwrap();
    }

    let mut sampler = Sampler::new(&chip);
    let dt = Seconds(0.001);
    let mut t = 0.0;
    let mut next_control = 1.0;

    // accumulate per half-day (peak = sin>0 half, trough = sin<0 half)
    let mut acc = [
        (Vec::<f64>::new(), 0u64, 0.0f64, 0u64), // (latencies proxy, batch instr, pkg-J, ticks)
        (Vec::<f64>::new(), 0u64, 0.0f64, 0u64),
    ];
    let warmup = DAY; // one full day of warm-up
    let total = warmup + 2.0 * DAY;
    let mut p90_marks: [Vec<f64>; 2] = [Vec::new(), Vec::new()];

    while t < total {
        let freqs: Vec<KiloHertz> = (0..SERVICE_CORES)
            .map(|c| {
                if parked[c] {
                    KiloHertz(1)
                } else {
                    chip.effective_freq(c)
                }
            })
            .collect();
        let loads = service.advance(dt, &freqs);
        for (c, load) in loads.into_iter().enumerate() {
            if parked[c] {
                continue;
            }
            let instr = (load.utilization * freqs[c].hz() * dt.value()) as u64;
            chip.set_load(c, load).unwrap();
            chip.add_instructions(c, instr).unwrap();
        }
        let phase_idx = if ((t % DAY) / DAY) < 0.5 { 0 } else { 1 }; // 0 = peak half, 1 = trough half
        for (i, app) in batch.iter_mut().enumerate() {
            let core = SERVICE_CORES + i;
            if parked[core] {
                continue;
            }
            let f = chip.effective_freq(core);
            let out = app.advance(dt, f);
            chip.set_load(core, out.load).unwrap();
            chip.add_instructions(core, out.instructions).unwrap();
            if t >= warmup {
                acc[phase_idx].1 += out.instructions;
            }
        }
        chip.tick(dt);
        if t >= warmup {
            acc[phase_idx].2 += chip.package_power().value() * dt.value();
            acc[phase_idx].3 += 1;
        }
        t += dt.value();

        if t + 1e-9 >= next_control {
            next_control += 1.0;
            if let Some(sample) = sampler.sample(&chip) {
                let action = daemon.step(&sample);
                chip.set_all_requested(&action.freqs).unwrap();
                for (core, &p) in action.parked.iter().enumerate() {
                    chip.set_forced_idle(core, p).unwrap();
                }
                parked = action.parked.clone();
            }
            // sample the service tail once per second into the phase
            // bucket, then restart the window
            if t >= warmup {
                if service.service().completed() > 30 {
                    p90_marks[phase_idx].push(service.service().p90_ms());
                }
                service.service_mut().reset_stats();
            } else if t >= warmup - 1.5 {
                // clear warm-up latencies just before measurement starts
                service.service_mut().reset_stats();
            }
        }
    }

    let stats = |i: usize| -> PhaseStats {
        let (_, instr, joules, ticks) = &acc[i];
        let secs = *ticks as f64 * dt.value();
        PhaseStats {
            p90_ms: pap_telemetry::stats::percentile(&p90_marks[i], 50.0),
            batch_ips: *instr as f64 / secs,
            pkg_w: joules / secs,
        }
    };
    (stats(0), stats(1))
}

fn main() {
    let mut t = Table::new(
        "Extension: diurnal service + low-priority batch under a 45 W limit (compressed day)",
        &["policy", "phase", "service_p90_ms", "batch_gips", "pkg_w"],
    );
    for policy in [PolicyKind::Priority, PolicyKind::RaplNative] {
        let (peak, trough) = run(policy, 45.0);
        for (label, s) in [("peak", &peak), ("trough", &trough)] {
            t.row(vec![
                policy.name().into(),
                label.into(),
                f1(s.p90_ms),
                f1(s.batch_ips / 1e9),
                f1(s.pkg_w),
            ]);
        }
    }
    println!("{t}");
    println!(
        "Expected: under the priority policy the batch class gets most of its \
         throughput in the trough and is pushed back at peak, holding the \
         service p90 nearly flat across the day; under RAPL the batch work \
         competes at peak and the peak-hour tail inflates. The budget stays \
         fully used around the clock either way — the utilization argument \
         for colocating batch work at all."
    );
}
