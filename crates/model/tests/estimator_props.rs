//! Property tests for the online estimators: on any physically
//! plausible quadratic power curve the fit converges, is trusted, and
//! inverts correctly — and noise within the confidence gate's residual
//! budget does not break any of it.

use pap_model::{EstimatorConfig, PowerCurveEstimator, ScalabilityConfig, ScalabilityEstimator};
use proptest::prelude::*;

/// A plausible package curve `P = t0 + t1·f + t2·f²` (f in total GHz):
/// idle floor, positive linear term, super-linear growth.
fn curve() -> impl Strategy<Value = (f64, f64, f64)> {
    (3.0f64..15.0, 0.5f64..4.0, 0.2f64..1.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sweeping any plausible quadratic makes the fit confident and
    /// accurate: predictions and slopes match the ground truth.
    #[test]
    fn estimator_converges_on_quadratic_curves(
        (t0, t1, t2) in curve(),
        noise in proptest::collection::vec(-0.2f64..0.2, 60),
    ) {
        let p = |f: f64| t0 + t1 * f + t2 * f * f;
        let mut e = PowerCurveEstimator::new(EstimatorConfig::default());
        for (i, n) in noise.iter().enumerate() {
            let f = 4.0 + (i % 20) as f64 * 0.2; // 4.0..7.8 total GHz
            e.observe(f, p(f) + n);
        }
        prop_assert!(e.confident(), "snapshot: {:?}", e.snapshot());
        for f in [4.5, 6.0, 7.5] {
            prop_assert!(
                (e.predict(f) - p(f)).abs() < 1.0,
                "predict({f}) = {} vs true {}",
                e.predict(f),
                p(f)
            );
            let true_slope = t1 + 2.0 * t2 * f;
            prop_assert!(
                (e.slope_w_per_ghz(f) - true_slope).abs() < 0.3 * true_slope + 0.3,
                "slope({f}) = {} vs true {true_slope}",
                e.slope_w_per_ghz(f)
            );
        }
    }

    /// The exact inversion round-trips: moving by the returned delta
    /// changes the predicted power by the requested amount.
    #[test]
    fn inversion_round_trips(
        (t0, t1, t2) in curve(),
        err in -6.0f64..6.0,
    ) {
        let p = |f: f64| t0 + t1 * f + t2 * f * f;
        let mut e = PowerCurveEstimator::new(EstimatorConfig::default());
        for i in 0..60 {
            let f = 4.0 + (i % 20) as f64 * 0.2;
            e.observe(f, p(f));
        }
        if let Some(d) = e.delta_ghz_for_watts(6.0, err) {
            prop_assert!(
                (e.predict(6.0 + d) - e.predict(6.0) - err).abs() < 1e-6,
                "delta {d} absorbs {err} W"
            );
            prop_assert!(d * err >= 0.0, "delta sign follows the error");
        } else {
            // Refusal is only legitimate when the target power is off
            // the fitted parabola entirely.
            let vertex_w = e.predict(-e.snapshot().theta[1] / (2.0 * e.snapshot().theta[2]));
            prop_assert!(
                e.predict(6.0) + err < vertex_w + 1e-6,
                "inversion refused a reachable target"
            );
        }
    }

    /// The scalability fit recovers any positive linear perf/GHz law.
    #[test]
    fn scalability_converges_on_linear_laws(
        slope in 0.05f64..0.5,
        intercept in 0.0f64..0.3,
        noise in proptest::collection::vec(-0.01f64..0.01, 40),
    ) {
        let mut e = ScalabilityEstimator::new(ScalabilityConfig::default());
        for (i, n) in noise.iter().enumerate() {
            let f = 1.0 + (i % 16) as f64 * 0.15;
            e.observe(f, intercept + slope * f + n);
        }
        prop_assert!(e.confident(), "snapshot: {:?}", e.snapshot());
        prop_assert!(
            (e.slope_per_ghz() - slope).abs() < 0.1 * slope + 0.02,
            "slope {} vs true {slope}",
            e.slope_per_ghz()
        );
    }
}
