//! Online power-vs-frequency curve estimation.
//!
//! CMOS dynamic power is `P = C_eff·V²·f` with `V` roughly affine in
//! `f`, so power is close to quadratic-plus in frequency over a chip's
//! operating range. [`PowerCurveEstimator`] fits `P ≈ θ₀ + θ₁f + θ₂f²`
//! (frequency in GHz, power in watts) with recursive least squares and
//! answers the two questions the translation layer asks:
//!
//! * `predict(f)` — expected power at an operating point (used by
//!   `clusterd` for learned node-capacity curves);
//! * `slope_w_per_ghz(f)` — the local marginal cost `dP/df = θ₁ + 2θ₂f`;
//! * `delta_ghz_for_watts(f, ΔP)` — the exact frequency move that
//!   absorbs a watt error on the fitted curve (used to turn a watt
//!   error into a frequency delta in one step).
//!
//! The fit is only *trusted* when the confidence gate passes: enough
//! observations, enough frequency spread actually seen (a settled
//! control loop sits at one point, and a slope fitted there is
//! garbage), a small recent residual and a physically sane (positive)
//! slope. A windowed drift test resets the fit when the workload
//! changes phase and the old curve stops predicting.

use crate::rls::Rls;

/// Tunables for one power-curve fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// RLS forgetting factor λ (1.0 = never forget).
    pub forgetting: f64,
    /// Observations required before the fit can be trusted.
    pub min_observations: u64,
    /// Maximum recent residual RMS (watts) for the fit to be trusted.
    pub max_residual_watts: f64,
    /// Minimum frequency spread (GHz) seen since the last reset: the
    /// slope is only identifiable once the loop has actually moved.
    pub min_spread_ghz: f64,
    /// Minimum trusted marginal cost (W/GHz); a smaller or negative
    /// fitted slope is physically implausible and forces fallback.
    pub min_slope_w_per_ghz: f64,
    /// Recent-residual window length (sizes the residual RMS used by
    /// the confidence gate).
    pub drift_window: usize,
    /// An observation is a drift outlier when its squared prediction
    /// error exceeds this multiple of the long-run mean squared
    /// residual as of the start of the outlier run.
    pub drift_factor: f64,
    /// Residual floor (watts): prediction errors below this never
    /// count as outliers, so a near-perfect fit is not reset by
    /// harmless noise.
    pub drift_floor_watts: f64,
    /// Consecutive outliers that constitute a phase change and reset
    /// the fit.
    pub drift_streak: usize,
}

impl Default for EstimatorConfig {
    fn default() -> EstimatorConfig {
        EstimatorConfig {
            forgetting: 0.995,
            min_observations: 10,
            max_residual_watts: 3.0,
            min_spread_ghz: 0.15,
            min_slope_w_per_ghz: 0.2,
            drift_window: 12,
            drift_factor: 25.0,
            drift_floor_watts: 0.75,
            drift_streak: 4,
        }
    }
}

impl EstimatorConfig {
    /// A gate that can never pass: the estimator keeps learning but is
    /// never trusted, so every query falls back to the naïve model.
    /// Used to prove the fallback path is bit-identical to the seed.
    pub fn never_confident() -> EstimatorConfig {
        EstimatorConfig {
            min_observations: u64::MAX,
            ..EstimatorConfig::default()
        }
    }
}

/// Reportable state of one power-curve fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveSnapshot {
    /// Fitted `[θ₀, θ₁, θ₂]` of `P = θ₀ + θ₁f + θ₂f²` (f in GHz).
    pub theta: [f64; 3],
    /// Observations accepted since the last reset.
    pub observations: u64,
    /// Recent residual RMS in watts (∞ before any observation).
    pub residual_rms_watts: f64,
    /// Frequency spread (GHz) seen since the last reset.
    pub spread_ghz: f64,
    /// Whether the confidence gate currently passes.
    pub confident: bool,
    /// Drift resets since construction.
    pub resets: u64,
}

/// One online quadratic power-vs-frequency fit.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerCurveEstimator {
    cfg: EstimatorConfig,
    rls: Rls<3>,
    f_lo: f64,
    f_hi: f64,
    resets: u64,
    outlier_streak: usize,
    streak_baseline: f64,
}

impl PowerCurveEstimator {
    /// A fresh estimator with the given tunables.
    pub fn new(cfg: EstimatorConfig) -> PowerCurveEstimator {
        PowerCurveEstimator {
            rls: Rls::new(cfg.forgetting, cfg.drift_window),
            cfg,
            f_lo: f64::INFINITY,
            f_hi: f64::NEG_INFINITY,
            resets: 0,
            outlier_streak: 0,
            streak_baseline: 0.0,
        }
    }

    /// Fold in one observation of `watts` drawn at `f_ghz`. Implausible
    /// samples (non-finite, non-positive, or a zero/absurd frequency —
    /// what a backfilled telemetry outage produces) are rejected rather
    /// than folded into the fit. Returns the a-priori prediction
    /// residual for accepted samples.
    pub fn observe(&mut self, f_ghz: f64, watts: f64) -> Option<f64> {
        if !f_ghz.is_finite() || !watts.is_finite() {
            return None;
        }
        if f_ghz <= 1e-3 || f_ghz > 1e3 || watts <= 0.0 || watts > 1e4 {
            return None;
        }
        if self.update_drift(watts - self.predict(f_ghz)) {
            self.rls.reset();
            self.f_lo = f64::INFINITY;
            self.f_hi = f64::NEG_INFINITY;
            self.resets += 1;
            self.outlier_streak = 0;
        }
        let resid = self.rls.observe([1.0, f_ghz, f_ghz * f_ghz], watts);
        self.f_lo = self.f_lo.min(f_ghz);
        self.f_hi = self.f_hi.max(f_ghz);
        Some(resid)
    }

    /// Advance the phase-change detector with one a-priori prediction
    /// error; true when the fit should be reset. The outlier baseline
    /// is frozen at the start of a run, so a genuine phase jump keeps
    /// counting even while the EWMA chases the new level.
    fn update_drift(&mut self, pred_err: f64) -> bool {
        if self.rls.observations() < self.cfg.drift_window as u64 {
            return false;
        }
        let floor = self.cfg.drift_floor_watts * self.cfg.drift_floor_watts;
        let sq = pred_err * pred_err;
        let baseline = if self.outlier_streak == 0 {
            self.rls.long_mean_sq().max(floor)
        } else {
            self.streak_baseline
        };
        if sq > self.cfg.drift_factor * baseline {
            if self.outlier_streak == 0 {
                self.streak_baseline = baseline;
            }
            self.outlier_streak += 1;
        } else {
            self.outlier_streak = 0;
        }
        self.outlier_streak >= self.cfg.drift_streak
    }

    /// Expected watts at `f_ghz` under the current fit.
    pub fn predict(&self, f_ghz: f64) -> f64 {
        self.rls.predict([1.0, f_ghz, f_ghz * f_ghz])
    }

    /// Local marginal power cost `dP/df` in W/GHz at `f_ghz`.
    pub fn slope_w_per_ghz(&self, f_ghz: f64) -> f64 {
        let t = self.rls.theta();
        t[1] + 2.0 * t[2] * f_ghz
    }

    /// [`PowerCurveEstimator::slope_w_per_ghz`] with the query point
    /// clamped into the frequency range actually observed, so the
    /// slope is never read off an extrapolated tail of the parabola.
    pub fn slope_at_clamped(&self, f_ghz: f64) -> f64 {
        self.slope_w_per_ghz(f_ghz.clamp(self.f_lo, self.f_hi))
    }

    /// Exact inversion of the fitted curve: the frequency move (GHz,
    /// signed like `delta_watts`) from `from_ghz` that changes predicted
    /// power by `delta_watts`. Unlike a one-step linearization at
    /// `from_ghz` — whose slope is the steepest point of a downward
    /// move, so large sheds get under-corrected — this solves the
    /// quadratic for the target power directly. `None` when the target
    /// is unreachable on the fitted parabola (negative discriminant) or
    /// the solution is on the wrong side; the caller then linearizes.
    pub fn delta_ghz_for_watts(&self, from_ghz: f64, delta_watts: f64) -> Option<f64> {
        let [t0, t1, t2] = self.rls.theta();
        let target = self.predict(from_ghz) + delta_watts;
        let x = if t2.abs() < 1e-9 {
            if t1.abs() < 1e-9 {
                return None;
            }
            (target - t0) / t1
        } else {
            let disc = t1 * t1 - 4.0 * t2 * (t0 - target);
            if disc < 0.0 {
                return None;
            }
            // Of the two roots, the one nearest the operating point is
            // on the branch the loop actually moves along.
            let r1 = (-t1 + disc.sqrt()) / (2.0 * t2);
            let r2 = (-t1 - disc.sqrt()) / (2.0 * t2);
            if (r1 - from_ghz).abs() <= (r2 - from_ghz).abs() {
                r1
            } else {
                r2
            }
        };
        let delta = x - from_ghz;
        if !delta.is_finite() || delta * delta_watts < 0.0 {
            return None;
        }
        Some(delta)
    }

    /// Frequency spread (GHz) seen since the last reset.
    pub fn spread_ghz(&self) -> f64 {
        if self.f_hi >= self.f_lo {
            self.f_hi - self.f_lo
        } else {
            0.0
        }
    }

    /// Whether the fit passes the confidence gate and may be used in
    /// place of the naïve translation.
    pub fn confident(&self) -> bool {
        self.rls.observations() >= self.cfg.min_observations
            && self.spread_ghz() >= self.cfg.min_spread_ghz
            && self.rls.residual_rms() <= self.cfg.max_residual_watts
            && self.slope_at_clamped(0.5 * (self.f_lo + self.f_hi)) >= self.cfg.min_slope_w_per_ghz
    }

    /// Observations accepted since the last reset.
    pub fn observations(&self) -> u64 {
        self.rls.observations()
    }

    /// Recent residual RMS in watts.
    pub fn residual_rms(&self) -> f64 {
        self.rls.residual_rms()
    }

    /// Drift resets since construction.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Reportable state of the fit.
    pub fn snapshot(&self) -> CurveSnapshot {
        CurveSnapshot {
            theta: self.rls.theta(),
            observations: self.rls.observations(),
            residual_rms_watts: self.rls.residual_rms(),
            spread_ghz: self.spread_ghz(),
            confident: self.confident(),
            resets: self.resets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad(f: f64) -> f64 {
        3.0 + 2.0 * f + 1.4 * f * f
    }

    fn trained() -> PowerCurveEstimator {
        let mut e = PowerCurveEstimator::new(EstimatorConfig::default());
        for i in 0..60 {
            let f = 1.0 + (i % 20) as f64 * 0.1;
            e.observe(f, quad(f));
        }
        e
    }

    #[test]
    fn learns_quadratic_curve_and_slope() {
        let e = trained();
        assert!(e.confident());
        assert!((e.predict(2.0) - quad(2.0)).abs() < 0.05);
        // dP/df at 2.0 GHz: 2 + 2·1.4·2 = 7.6
        assert!((e.slope_w_per_ghz(2.0) - 7.6).abs() < 0.2);
    }

    #[test]
    fn not_confident_without_spread() {
        let mut e = PowerCurveEstimator::new(EstimatorConfig::default());
        for _ in 0..100 {
            e.observe(2.0, quad(2.0));
        }
        assert!(
            !e.confident(),
            "settled loop at one point must not be trusted"
        );
    }

    #[test]
    fn rejects_poisoned_samples() {
        let mut e = trained();
        let before = e.snapshot();
        assert!(e.observe(0.0, 25.0).is_none(), "zero frequency");
        assert!(e.observe(2.0, f64::NAN).is_none(), "NaN watts");
        assert!(e.observe(f64::INFINITY, 25.0).is_none(), "inf frequency");
        assert!(e.observe(2.0, -5.0).is_none(), "negative watts");
        assert_eq!(
            e.snapshot(),
            before,
            "rejected samples must not touch the fit"
        );
    }

    #[test]
    fn phase_change_resets_fit() {
        let mut e = trained();
        assert_eq!(e.resets(), 0);
        // New phase: +30 W offset — the old curve mispredicts wildly.
        for i in 0..40 {
            let f = 1.0 + (i % 20) as f64 * 0.1;
            e.observe(f, quad(f) + 30.0);
            if e.resets() > 0 {
                break;
            }
        }
        assert!(
            e.resets() >= 1,
            "drift test should reset on a 30 W phase jump"
        );
    }

    #[test]
    fn inversion_absorbs_the_exact_watt_error() {
        let e = trained();
        for err in [5.0, -4.0, 0.5] {
            let d = e.delta_ghz_for_watts(2.0, err).unwrap();
            assert_eq!(d > 0.0, err > 0.0, "delta sign follows the error");
            assert!(
                (e.predict(2.0 + d) - e.predict(2.0) - err).abs() < 1e-6,
                "moving by the returned delta changes power by {err}"
            );
        }
        // An unreachable shed (below the parabola's minimum) refuses
        // rather than answering nonsense.
        assert!(e.delta_ghz_for_watts(2.0, -500.0).is_none());
    }

    #[test]
    fn never_confident_config_never_trusts() {
        let mut e = PowerCurveEstimator::new(EstimatorConfig::never_confident());
        for i in 0..500 {
            let f = 1.0 + (i % 20) as f64 * 0.1;
            e.observe(f, quad(f));
        }
        assert!(!e.confident());
    }
}
