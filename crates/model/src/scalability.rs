//! Per-app IPS-vs-frequency scalability estimation.
//!
//! How much performance a frequency change buys differs per workload:
//! a compute-bound app scales almost linearly with the clock while a
//! memory-bound one barely moves (Conoci et al.). The performance-
//! shares policy translates a watt error into a *performance* delta,
//! so it needs `d(perf)/df` per app. [`ScalabilityEstimator`] fits
//! `perf ≈ θ₀ + θ₁·f` (frequency in GHz, performance normalized to the
//! app's baseline IPS) and exposes the slope once the fit is
//! identifiable — same confidence idea as the power curve: enough
//! observations, enough frequency spread, small residual, and a
//! non-negative slope.

use crate::rls::Rls;

/// Tunables for one scalability fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityConfig {
    /// RLS forgetting factor λ.
    pub forgetting: f64,
    /// Observations required before the slope can be trusted.
    pub min_observations: u64,
    /// Maximum recent residual RMS (normalized-performance units).
    pub max_residual: f64,
    /// Minimum frequency spread (GHz) seen since the last reset.
    pub min_spread_ghz: f64,
    /// Recent-residual window length (sizes the residual RMS used by
    /// the confidence gate).
    pub drift_window: usize,
    /// An observation is a drift outlier when its squared prediction
    /// error exceeds this multiple of the long-run mean squared
    /// residual as of the start of the outlier run.
    pub drift_factor: f64,
    /// Residual floor below which prediction errors never count as
    /// outliers.
    pub drift_floor: f64,
    /// Consecutive outliers that constitute a phase change and reset
    /// the fit.
    pub drift_streak: usize,
}

impl Default for ScalabilityConfig {
    fn default() -> ScalabilityConfig {
        ScalabilityConfig {
            forgetting: 0.995,
            min_observations: 8,
            max_residual: 0.15,
            min_spread_ghz: 0.1,
            drift_window: 12,
            drift_factor: 25.0,
            drift_floor: 0.05,
            drift_streak: 4,
        }
    }
}

impl ScalabilityConfig {
    /// A gate that can never pass (see
    /// [`crate::power::EstimatorConfig::never_confident`]).
    pub fn never_confident() -> ScalabilityConfig {
        ScalabilityConfig {
            min_observations: u64::MAX,
            ..ScalabilityConfig::default()
        }
    }
}

/// Reportable state of one scalability fit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilitySnapshot {
    /// Fitted `[θ₀, θ₁]` of `perf = θ₀ + θ₁·f` (f in GHz).
    pub theta: [f64; 2],
    /// Observations accepted since the last reset.
    pub observations: u64,
    /// Recent residual RMS (normalized-performance units).
    pub residual_rms: f64,
    /// Whether the confidence gate currently passes.
    pub confident: bool,
    /// Drift resets since construction.
    pub resets: u64,
}

/// One online linear performance-vs-frequency fit.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityEstimator {
    cfg: ScalabilityConfig,
    rls: Rls<2>,
    f_lo: f64,
    f_hi: f64,
    resets: u64,
    outlier_streak: usize,
    streak_baseline: f64,
}

impl ScalabilityEstimator {
    /// A fresh estimator with the given tunables.
    pub fn new(cfg: ScalabilityConfig) -> ScalabilityEstimator {
        ScalabilityEstimator {
            rls: Rls::new(cfg.forgetting, cfg.drift_window),
            cfg,
            f_lo: f64::INFINITY,
            f_hi: f64::NEG_INFINITY,
            resets: 0,
            outlier_streak: 0,
            streak_baseline: 0.0,
        }
    }

    /// Fold in one observation of normalized performance `perf` at
    /// `f_ghz`. Implausible samples are rejected. Returns the a-priori
    /// residual for accepted samples.
    pub fn observe(&mut self, f_ghz: f64, perf: f64) -> Option<f64> {
        if !f_ghz.is_finite() || !perf.is_finite() {
            return None;
        }
        if f_ghz <= 1e-3 || f_ghz > 1e3 || perf <= 0.0 || perf > 1e3 {
            return None;
        }
        if self.update_drift(perf - self.predict(f_ghz)) {
            self.rls.reset();
            self.f_lo = f64::INFINITY;
            self.f_hi = f64::NEG_INFINITY;
            self.resets += 1;
            self.outlier_streak = 0;
        }
        let resid = self.rls.observe([1.0, f_ghz], perf);
        self.f_lo = self.f_lo.min(f_ghz);
        self.f_hi = self.f_hi.max(f_ghz);
        Some(resid)
    }

    /// Advance the phase-change detector with one a-priori prediction
    /// error; true when the fit should be reset (same frozen-baseline
    /// outlier-streak test as the power curve's).
    fn update_drift(&mut self, pred_err: f64) -> bool {
        if self.rls.observations() < self.cfg.drift_window as u64 {
            return false;
        }
        let floor = self.cfg.drift_floor * self.cfg.drift_floor;
        let sq = pred_err * pred_err;
        let baseline = if self.outlier_streak == 0 {
            self.rls.long_mean_sq().max(floor)
        } else {
            self.streak_baseline
        };
        if sq > self.cfg.drift_factor * baseline {
            if self.outlier_streak == 0 {
                self.streak_baseline = baseline;
            }
            self.outlier_streak += 1;
        } else {
            self.outlier_streak = 0;
        }
        self.outlier_streak >= self.cfg.drift_streak
    }

    /// Expected normalized performance at `f_ghz`.
    pub fn predict(&self, f_ghz: f64) -> f64 {
        self.rls.predict([1.0, f_ghz])
    }

    /// Fitted `d(perf)/df` in normalized-performance units per GHz.
    pub fn slope_per_ghz(&self) -> f64 {
        self.rls.theta()[1]
    }

    /// Whether the fit passes the confidence gate.
    pub fn confident(&self) -> bool {
        let spread = if self.f_hi >= self.f_lo {
            self.f_hi - self.f_lo
        } else {
            0.0
        };
        self.rls.observations() >= self.cfg.min_observations
            && spread >= self.cfg.min_spread_ghz
            && self.rls.residual_rms() <= self.cfg.max_residual
            && self.slope_per_ghz() >= 0.0
    }

    /// Observations accepted since the last reset.
    pub fn observations(&self) -> u64 {
        self.rls.observations()
    }

    /// Reportable state of the fit.
    pub fn snapshot(&self) -> ScalabilitySnapshot {
        ScalabilitySnapshot {
            theta: self.rls.theta(),
            observations: self.rls.observations(),
            residual_rms: self.rls.residual_rms(),
            confident: self.confident(),
            resets: self.resets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_scalability() {
        let mut e = ScalabilityEstimator::new(ScalabilityConfig::default());
        // A compute-bound app: perf = 0.1 + 0.4·f
        for i in 0..40 {
            let f = 1.0 + (i % 16) as f64 * 0.1;
            e.observe(f, 0.1 + 0.4 * f);
        }
        assert!(e.confident());
        assert!(
            (e.slope_per_ghz() - 0.4).abs() < 0.02,
            "{}",
            e.slope_per_ghz()
        );
    }

    #[test]
    fn memory_bound_app_gets_flat_slope() {
        let mut e = ScalabilityEstimator::new(ScalabilityConfig::default());
        for i in 0..40 {
            let f = 1.0 + (i % 16) as f64 * 0.1;
            e.observe(f, 0.8 + 0.01 * f);
        }
        assert!(e.confident());
        assert!(e.slope_per_ghz() < 0.05);
    }

    #[test]
    fn rejects_poisoned_samples() {
        let mut e = ScalabilityEstimator::new(ScalabilityConfig::default());
        assert!(e.observe(0.0, 0.5).is_none());
        assert!(e.observe(2.0, f64::NAN).is_none());
        assert!(e.observe(2.0, 0.0).is_none());
        assert_eq!(e.observations(), 0);
    }
}
