//! Fixed-size recursive least squares with exponential forgetting.
//!
//! The estimators in this crate fit tiny linear-in-parameters models
//! (a quadratic power curve, a linear scalability line) from a stream
//! of telemetry samples. [`Rls`] is the shared numerical core: the
//! classic RLS recursion over an `N`-dimensional regressor with a
//! forgetting factor `λ`, plus the residual bookkeeping the confidence
//! gate and the drift detector need — a slow EWMA of the squared
//! a-priori residual (the long-run fit quality) and a short ring
//! buffer of recent squared residuals (the windowed fit quality). A
//! workload phase change shows up as the window mean jumping far
//! above the long-run mean, which callers turn into a fit reset.

/// Initial covariance scale: a large `P₀·I` makes the first few
/// observations dominate, as is standard for RLS warm-up.
const P0: f64 = 1e4;

/// Covariance blow-up guard. Under a forgetting factor with poor
/// excitation (the regressor barely moves, as in a settled control
/// loop) the covariance grows without bound; past this diagonal the
/// covariance is re-seeded while the parameters are kept.
const P_MAX: f64 = 1e7;

/// Recursive least squares over an `N`-dimensional regressor.
#[derive(Debug, Clone, PartialEq)]
pub struct Rls<const N: usize> {
    theta: [f64; N],
    p: [[f64; N]; N],
    forgetting: f64,
    observations: u64,
    /// Slow EWMA of the squared a-priori residual.
    long_ms: f64,
    /// Ring buffer of recent squared a-priori residuals.
    window: Vec<f64>,
    window_len: usize,
    next: usize,
}

impl<const N: usize> Rls<N> {
    /// A fresh fit. `forgetting` is the RLS λ in `(0, 1]` (1 = ordinary
    /// least squares); `window_len` sizes the recent-residual window
    /// used for drift detection.
    pub fn new(forgetting: f64, window_len: usize) -> Rls<N> {
        assert!(forgetting > 0.0 && forgetting <= 1.0);
        assert!(window_len > 0);
        let mut p = [[0.0; N]; N];
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = P0;
        }
        Rls {
            theta: [0.0; N],
            p,
            forgetting,
            observations: 0,
            long_ms: 0.0,
            window: Vec::with_capacity(window_len),
            window_len,
            next: 0,
        }
    }

    /// Clear the fit back to its initial state (parameters, covariance
    /// and residual history). Allocation-free: drift resets happen on
    /// the control hot path, so the residual window's buffer is kept
    /// and merely emptied.
    pub fn reset(&mut self) {
        self.theta = [0.0; N];
        self.p = [[0.0; N]; N];
        for (i, row) in self.p.iter_mut().enumerate() {
            row[i] = P0;
        }
        self.observations = 0;
        self.long_ms = 0.0;
        self.window.clear();
        self.next = 0;
    }

    /// Fold in one observation `y ≈ xᵀθ`. Returns the a-priori
    /// residual `y - xᵀθ` (prediction error before the update).
    pub fn observe(&mut self, x: [f64; N], y: f64) -> f64 {
        let resid = y - self.predict(x);

        // k = Px / (λ + xᵀPx);  θ += k·resid;  P = (P - k·(Px)ᵀ)/λ
        let mut px = [0.0; N];
        for (pxi, row) in px.iter_mut().zip(&self.p) {
            *pxi = row.iter().zip(&x).map(|(p, xj)| p * xj).sum();
        }
        let xpx: f64 = x.iter().zip(&px).map(|(a, b)| a * b).sum();
        let denom = self.forgetting + xpx;
        let mut k = [0.0; N];
        for (ki, pxi) in k.iter_mut().zip(&px) {
            *ki = pxi / denom;
        }
        for (ti, ki) in self.theta.iter_mut().zip(&k) {
            *ti += ki * resid;
        }
        for (row, ki) in self.p.iter_mut().zip(&k) {
            for (pij, pxj) in row.iter_mut().zip(&px) {
                *pij = (*pij - ki * pxj) / self.forgetting;
            }
        }
        if (0..N).any(|i| self.p[i][i] > P_MAX) {
            for (i, row) in self.p.iter_mut().enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = if i == j { P0 } else { 0.0 };
                }
            }
        }

        self.observations += 1;
        let sq = resid * resid;
        if self.observations == 1 {
            self.long_ms = sq;
        } else {
            self.long_ms += 0.02 * (sq - self.long_ms);
        }
        if self.window.len() < self.window_len {
            self.window.push(sq);
        } else {
            self.window[self.next] = sq;
        }
        self.next = (self.next + 1) % self.window_len;
        resid
    }

    /// Model prediction `xᵀθ`.
    pub fn predict(&self, x: [f64; N]) -> f64 {
        x.iter().zip(&self.theta).map(|(a, b)| a * b).sum()
    }

    /// The current parameter vector.
    pub fn theta(&self) -> [f64; N] {
        self.theta
    }

    /// Observations folded in since the last reset.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Whether the recent-residual window has filled since the last
    /// reset (the drift test is meaningless before then).
    pub fn window_full(&self) -> bool {
        self.window.len() >= self.window_len
    }

    /// Mean squared residual over the recent window.
    pub fn window_mean_sq(&self) -> f64 {
        if self.window.is_empty() {
            return f64::INFINITY;
        }
        self.window.iter().sum::<f64>() / self.window.len() as f64
    }

    /// Slow EWMA of the squared residual (long-run fit quality).
    pub fn long_mean_sq(&self) -> f64 {
        self.long_ms
    }

    /// RMS residual over the recent window (∞ before any observation).
    pub fn residual_rms(&self) -> f64 {
        self.window_mean_sq().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_fit() {
        let mut rls: Rls<2> = Rls::new(1.0, 8);
        for i in 0..50 {
            let x = i as f64 * 0.1;
            rls.observe([1.0, x], 2.0 + 3.0 * x);
        }
        let t = rls.theta();
        assert!((t[0] - 2.0).abs() < 1e-4, "intercept {t:?}");
        assert!((t[1] - 3.0).abs() < 1e-4, "slope {t:?}");
        assert!(rls.residual_rms() < 1e-4);
    }

    #[test]
    fn recovers_quadratic_fit() {
        let mut rls: Rls<3> = Rls::new(0.995, 8);
        for i in 0..200 {
            let f = 0.5 + (i % 40) as f64 * 0.05;
            rls.observe([1.0, f, f * f], 4.0 + 1.5 * f + 2.0 * f * f);
        }
        let t = rls.theta();
        assert!((t[0] - 4.0).abs() < 1e-3, "{t:?}");
        assert!((t[1] - 1.5).abs() < 1e-3, "{t:?}");
        assert!((t[2] - 2.0).abs() < 1e-3, "{t:?}");
    }

    #[test]
    fn window_tracks_recent_residuals() {
        let mut rls: Rls<1> = Rls::new(1.0, 4);
        for _ in 0..50 {
            rls.observe([1.0], 5.0);
        }
        assert!(rls.window_full());
        assert!(rls.window_mean_sq() < 1e-9);
        // A phase change: the target jumps, recent residuals explode
        // relative to the long-run mean.
        for _ in 0..4 {
            rls.observe([1.0], 25.0);
        }
        assert!(
            rls.window_mean_sq() > 100.0 * rls.long_mean_sq().max(1e-12)
                || rls.window_mean_sq() > 1.0
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut rls: Rls<2> = Rls::new(0.99, 4);
        for _ in 0..10 {
            rls.observe([1.0, 2.0], 7.0);
        }
        rls.reset();
        assert_eq!(rls.observations(), 0);
        assert_eq!(rls.theta(), [0.0, 0.0]);
        assert!(!rls.window_full());
    }

    #[test]
    fn covariance_guard_keeps_fit_finite() {
        // Constant regressor + forgetting: covariance would blow up
        // along the unexcited directions without the guard.
        let mut rls: Rls<3> = Rls::new(0.95, 8);
        for _ in 0..10_000 {
            rls.observe([1.0, 2.0, 4.0], 10.0);
        }
        let t = rls.theta();
        assert!(t.iter().all(|v| v.is_finite()), "{t:?}");
        assert!((rls.predict([1.0, 2.0, 4.0]) - 10.0).abs() < 1e-3);
    }
}
