//! # pap-model — online power/performance model learning
//!
//! The *Per-Application Power Delivery* controllers translate a watt
//! error into a frequency (or performance) delta with a deliberately
//! naïve linear model, `α = ΔP/P_max`, and let the closed loop absorb
//! the modelling error over several control intervals. That costs
//! convergence time and overshoot at every budget retarget. This crate
//! learns better translations *online*, from the telemetry the daemon
//! already samples:
//!
//! * [`power::PowerCurveEstimator`] — recursive-least-squares fit of
//!   power vs. frequency on a quadratic basis (matching V²f physics),
//!   per package and per core;
//! * [`scalability::ScalabilityEstimator`] — per-app linear fit of
//!   normalized performance vs. frequency;
//! * [`translate::OnlineModel`] — the two estimators behind the
//!   [`translate::TranslationModel`] seam, with confidence gating
//!   (observation count, frequency spread, residual variance), drift
//!   detection (windowed residual test that resets a fit on workload
//!   phase change), and a hard fallback to the paper's naïve α
//!   arithmetic ([`translate::NaiveAlpha`]) whenever a fit is not
//!   trusted — so behaviour is never worse than the seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod power;
pub mod rls;
pub mod scalability;
pub mod translate;

pub use power::{CurveSnapshot, EstimatorConfig, PowerCurveEstimator};
pub use scalability::{ScalabilityConfig, ScalabilityEstimator, ScalabilitySnapshot};
pub use translate::{
    AppFitSnapshot, ModelConfig, ModelSnapshot, NaiveAlpha, OnlineModel, TranslationKind,
    TranslationModel, TranslationQuery,
};
