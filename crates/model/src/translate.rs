//! The budget-to-frequency translation seam.
//!
//! The paper's controllers all share one step: turn a package power
//! error (watts) into a frequency or performance delta. The seed does
//! this with the deliberately naïve linear model `α = ΔP/P_max` —
//! "wrong in general (power is super-linear in frequency)" — and lets
//! the closed loop absorb the error over several intervals.
//! [`TranslationModel`] makes that step pluggable:
//!
//! * [`NaiveAlpha`] reproduces the paper's formula bit-for-bit (the
//!   same IEEE-754 operations in the same order as
//!   `powerd::alpha`), so selecting it is behaviourally identical to
//!   the seed;
//! * [`OnlineModel`] answers from curves learned out of the very
//!   telemetry the daemon already samples — an exact inversion of a
//!   fitted package power curve, and per-app performance
//!   scalability — and *hard-falls-back* to [`NaiveAlpha`]'s exact
//!   arithmetic whenever any needed fit fails its confidence gate, so
//!   behaviour is never worse than the seed.

use std::cell::Cell;
use std::collections::BTreeMap;

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::units::Watts;
use pap_telemetry::sampler::Sample;

use crate::power::{CurveSnapshot, EstimatorConfig, PowerCurveEstimator};
use crate::scalability::{ScalabilityConfig, ScalabilityEstimator, ScalabilitySnapshot};

/// Which translation model a daemon uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranslationKind {
    /// The paper's naïve `α = ΔP/P_max` linear translation (seed
    /// behaviour).
    #[default]
    Naive,
    /// The learned translation with hard fallback to naïve α while
    /// unconfident.
    Online,
}

impl TranslationKind {
    /// Short name, as accepted by `powerd-sim --model`.
    pub fn name(self) -> &'static str {
        match self {
            TranslationKind::Naive => "naive",
            TranslationKind::Online => "online",
        }
    }

    /// Parse a `--model` argument.
    pub fn parse(s: &str) -> Option<TranslationKind> {
        match s {
            "naive" => Some(TranslationKind::Naive),
            "online" => Some(TranslationKind::Online),
            _ => None,
        }
    }
}

/// Everything a policy knows at the translation step.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslationQuery<'a> {
    /// Signed power error to absorb (positive = raise frequencies).
    pub power_error: Watts,
    /// The platform's maximum package power (the paper's `P_max`).
    pub max_power: Watts,
    /// The grid's maximum frequency (the paper's `MaxFrequency`).
    pub max_freq: KiloHertz,
    /// Cores with headroom in the direction of the error (the paper's
    /// `NumAvailableCores`).
    pub available: usize,
    /// The paper's `MaxPerformance` (1.0 in normalized units).
    pub max_performance: f64,
    /// Current per-core operating frequencies of the managed cores,
    /// for evaluating local slopes.
    pub current: &'a [KiloHertz],
}

/// A pluggable budget-to-frequency/performance translation.
pub trait TranslationModel {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Total frequency delta (kHz, across all available cores) that
    /// should absorb `power_error`. The caller applies damping and
    /// distributes the delta over cores.
    fn frequency_delta_khz(&self, q: &TranslationQuery<'_>) -> f64;

    /// Total performance delta (normalized units, across all available
    /// cores) that should absorb `power_error`.
    fn performance_delta(&self, q: &TranslationQuery<'_>) -> f64;

    /// Learned actuation gain for one core (kHz of frequency per watt
    /// of power), if a trusted per-core power curve exists. `None`
    /// means the caller should use its configured static gain.
    fn khz_per_watt(&self, _core: usize, _freq: KiloHertz) -> Option<f64> {
        None
    }

    /// Whether the model trusts its package power fit enough for global
    /// optimization policies (FastCap) to build allocations on its
    /// answers. The default is `false`: a model with no learned state
    /// forces optimizers down their share-based fallback, so behaviour
    /// can never be worse than the seed.
    fn package_confident(&self) -> bool {
        false
    }
}

/// The naïve translation arithmetic, shared verbatim by [`NaiveAlpha`]
/// and [`OnlineModel`]'s fallback path. Degenerate inputs yield a zero
/// delta (never NaN/inf), mirroring the hardened `powerd::alpha`.
fn naive_frequency_delta_khz(q: &TranslationQuery<'_>) -> f64 {
    if !q.power_error.value().is_finite()
        || !q.max_power.value().is_finite()
        || q.max_power.value() <= 0.0
        || q.available == 0
    {
        return 0.0;
    }
    let alpha = q.power_error.value() / q.max_power.value();
    alpha * q.max_freq.khz() as f64 * q.available as f64
}

/// Performance-delta counterpart of [`naive_frequency_delta_khz`].
fn naive_performance_delta(q: &TranslationQuery<'_>) -> f64 {
    if !q.power_error.value().is_finite()
        || !q.max_power.value().is_finite()
        || q.max_power.value() <= 0.0
        || !q.max_performance.is_finite()
        || q.available == 0
    {
        return 0.0;
    }
    let alpha = q.power_error.value() / q.max_power.value();
    alpha * q.max_performance * q.available as f64
}

/// The paper's naïve α translation as a [`TranslationModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveAlpha;

impl TranslationModel for NaiveAlpha {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn frequency_delta_khz(&self, q: &TranslationQuery<'_>) -> f64 {
        naive_frequency_delta_khz(q)
    }

    fn performance_delta(&self, q: &TranslationQuery<'_>) -> f64 {
        naive_performance_delta(q)
    }
}

/// Tunables for the whole online model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModelConfig {
    /// Power-curve estimator tunables (package and per-core fits).
    pub power: EstimatorConfig,
    /// Per-app scalability estimator tunables.
    pub scalability: ScalabilityConfig,
}

impl ModelConfig {
    /// Confidence gates that can never pass: the model keeps learning
    /// but answers every query through the naïve fallback. Used to
    /// prove fallback bit-identicality.
    pub fn never_confident() -> ModelConfig {
        ModelConfig {
            power: EstimatorConfig::never_confident(),
            scalability: ScalabilityConfig::never_confident(),
        }
    }
}

/// One per-app scalability entry in a [`ModelSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct AppFitSnapshot {
    /// The core the app is pinned to.
    pub core: usize,
    /// The fit state.
    pub fit: ScalabilitySnapshot,
}

/// Reportable state of an [`OnlineModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSnapshot {
    /// Whether learning was enabled at snapshot time (the resilience
    /// layer gates this off during telemetry outages).
    pub learning: bool,
    /// The package power-vs-total-effective-GHz fit.
    pub package: CurveSnapshot,
    /// Per-core power fits, for platforms with per-core energy.
    /// Indexed by core; cores never observed are absent.
    pub cores: Vec<(usize, CurveSnapshot)>,
    /// Per-app scalability fits.
    pub apps: Vec<AppFitSnapshot>,
    /// Translation queries answered since construction.
    pub queries: u64,
    /// Queries answered through the naïve fallback.
    pub fallbacks: u64,
    /// RMS of the package-power prediction error (watts) over the
    /// intervals where the fit was already confident; `None` until the
    /// fit first becomes confident.
    pub prediction_rms_watts: Option<f64>,
}

impl ModelSnapshot {
    /// Fraction of translation queries that fell back to naïve α.
    pub fn fallback_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.fallbacks as f64 / self.queries as f64
        }
    }
}

/// Online power/performance model: learned package and per-core power
/// curves plus per-app scalability fits, with confidence-gated use and
/// hard fallback to [`NaiveAlpha`].
#[derive(Debug, Clone)]
pub struct OnlineModel {
    cfg: ModelConfig,
    package: PowerCurveEstimator,
    cores: BTreeMap<usize, PowerCurveEstimator>,
    apps: BTreeMap<usize, ScalabilityEstimator>,
    learning: bool,
    queries: Cell<u64>,
    fallbacks: Cell<u64>,
    pred_n: u64,
    pred_sum_sq: f64,
    generation: u64,
}

impl OnlineModel {
    /// A fresh model with the given tunables.
    pub fn new(cfg: ModelConfig) -> OnlineModel {
        OnlineModel {
            package: PowerCurveEstimator::new(cfg.power),
            cores: BTreeMap::new(),
            apps: BTreeMap::new(),
            cfg,
            learning: true,
            queries: Cell::new(0),
            fallbacks: Cell::new(0),
            pred_n: 0,
            pred_sum_sq: 0.0,
            generation: 0,
        }
    }

    /// Monotone counter bumped whenever the fits (or the learning gate)
    /// change. Two equal generations imply every translation query
    /// answers identically, which is what decision memoization
    /// fingerprints instead of hashing the fit state itself.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Enable or disable learning. Queries still work while learning
    /// is off (the resilience layer turns it off when telemetry is
    /// unhealthy, so poisoned backfill never reaches the fits).
    pub fn set_learning(&mut self, on: bool) {
        if self.learning != on {
            self.generation += 1;
        }
        self.learning = on;
    }

    /// Whether the package power fit has enough spread to be trusted —
    /// the gate [`TranslationModel`] queries use before preferring the
    /// learned curve over the naïve fallback. Cheap enough to sample
    /// every interval for decision tracing.
    pub fn package_confident(&self) -> bool {
        self.package.confident()
    }

    /// Whether observations are currently folded into the fits.
    pub fn learning(&self) -> bool {
        self.learning
    }

    /// The configured tunables.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Fold one telemetry sample into the package fit (power vs. total
    /// effective GHz) and, where per-core power exists, the per-core
    /// fits. Rejected and learning-disabled samples leave the fits
    /// untouched.
    pub fn observe_sample(&mut self, sample: &Sample) {
        if !self.learning {
            return;
        }
        self.generation += 1;
        let total_ghz: f64 = sample
            .cores
            .iter()
            .map(|c| c.rates.active_freq.ghz() * c.rates.c0_residency.clamp(0.0, 1.0))
            .sum();
        let was_confident = self.package.confident();
        if let Some(resid) = self
            .package
            .observe(total_ghz, sample.package_power.value())
        {
            if was_confident {
                self.pred_n += 1;
                self.pred_sum_sq += resid * resid;
            }
        }
        for (c, core) in sample.cores.iter().enumerate() {
            if let Some(p) = core.power {
                let eff_ghz =
                    core.rates.active_freq.ghz() * core.rates.c0_residency.clamp(0.0, 1.0);
                self.cores
                    .entry(c)
                    .or_insert_with(|| PowerCurveEstimator::new(self.cfg.power))
                    .observe(eff_ghz, p.value());
            }
        }
    }

    /// Fold one app observation (normalized performance at an active
    /// frequency) into that app's scalability fit.
    pub fn observe_app(&mut self, core: usize, active_freq: KiloHertz, normalized_perf: f64) {
        if !self.learning {
            return;
        }
        self.generation += 1;
        self.apps
            .entry(core)
            .or_insert_with(|| ScalabilityEstimator::new(self.cfg.scalability))
            .observe(active_freq.ghz(), normalized_perf);
    }

    /// Drop the scalability fit for a departed app's core.
    pub fn forget_app(&mut self, core: usize) {
        if self.apps.remove(&core).is_some() {
            self.generation += 1;
        }
    }

    /// Predicted package draw (watts) with all of `cores` cores busy at
    /// `freq`, if the package fit is trusted. This is the learned
    /// capacity curve `clusterd` feeds into its water-fill.
    pub fn predicted_capacity(&self, cores: usize, freq: KiloHertz) -> Option<Watts> {
        if !self.package.confident() || cores == 0 {
            return None;
        }
        let w = self.package.predict(freq.ghz() * cores as f64);
        if w.is_finite() && w > 0.0 {
            Some(Watts(w))
        } else {
            None
        }
    }

    /// Reportable state.
    pub fn snapshot(&self) -> ModelSnapshot {
        ModelSnapshot {
            learning: self.learning,
            package: self.package.snapshot(),
            cores: self.cores.iter().map(|(c, e)| (*c, e.snapshot())).collect(),
            apps: self
                .apps
                .iter()
                .map(|(c, e)| AppFitSnapshot {
                    core: *c,
                    fit: e.snapshot(),
                })
                .collect(),
            queries: self.queries.get(),
            fallbacks: self.fallbacks.get(),
            prediction_rms_watts: if self.pred_n > 0 {
                Some((self.pred_sum_sq / self.pred_n as f64).sqrt())
            } else {
                None
            },
        }
    }

    fn fall_back(&self) {
        self.fallbacks.set(self.fallbacks.get() + 1);
    }

    /// The learned total frequency delta, or `None` when the package
    /// fit (or the query) does not support a trusted answer.
    fn learned_frequency_delta_khz(&self, q: &TranslationQuery<'_>) -> Option<f64> {
        if !self.package.confident() || q.available == 0 || !q.power_error.value().is_finite() {
            return None;
        }
        let total_ghz: f64 = q.current.iter().map(|f| f.ghz()).sum();
        let slope = self.package.slope_at_clamped(total_ghz);
        if !slope.is_finite() || slope < self.cfg.power.min_slope_w_per_ghz {
            return None;
        }
        // Invert the fitted curve exactly; fall back to a one-step
        // linearization at the (already trusted) local slope when the
        // target power is off the parabola.
        let delta_ghz = self
            .package
            .delta_ghz_for_watts(total_ghz, q.power_error.value())
            .unwrap_or(q.power_error.value() / slope);
        let delta_khz = delta_ghz * 1e6;
        // Never command more than moving every available core across
        // the whole grid; a wild extrapolation must not escape.
        let cap = q.max_freq.khz() as f64 * q.available as f64;
        Some(delta_khz.clamp(-cap, cap))
    }

    /// Mean scalability slope over apps with trusted fits.
    fn trusted_perf_slope(&self) -> Option<f64> {
        // Streaming mean (no intermediate Vec): this sits on the control
        // hot path via performance_delta.
        let mut sum = 0.0;
        let mut count = 0usize;
        for e in self.apps.values().filter(|e| e.confident()) {
            sum += e.slope_per_ghz().max(0.0);
            count += 1;
        }
        if count == 0 {
            return None;
        }
        Some(sum / count as f64)
    }
}

impl TranslationModel for OnlineModel {
    fn name(&self) -> &'static str {
        "online"
    }

    fn frequency_delta_khz(&self, q: &TranslationQuery<'_>) -> f64 {
        self.queries.set(self.queries.get() + 1);
        match self.learned_frequency_delta_khz(q) {
            Some(d) => d,
            None => {
                self.fall_back();
                naive_frequency_delta_khz(q)
            }
        }
    }

    fn performance_delta(&self, q: &TranslationQuery<'_>) -> f64 {
        self.queries.set(self.queries.get() + 1);
        let learned = self.learned_frequency_delta_khz(q).and_then(|delta_khz| {
            let slope = self.trusted_perf_slope()?;
            if slope <= 1e-6 {
                return None;
            }
            let per_core_ghz = delta_khz / 1e6 / q.available as f64;
            let cap = q.max_performance.abs() * q.available as f64;
            Some((per_core_ghz * slope * q.available as f64).clamp(-cap, cap))
        });
        match learned {
            Some(d) => d,
            None => {
                self.fall_back();
                naive_performance_delta(q)
            }
        }
    }

    fn khz_per_watt(&self, core: usize, freq: KiloHertz) -> Option<f64> {
        let e = self.cores.get(&core)?;
        if !e.confident() {
            return None;
        }
        let slope = e.slope_at_clamped(freq.ghz());
        if !slope.is_finite() || slope < self.cfg.power.min_slope_w_per_ghz {
            return None;
        }
        Some((1e6 / slope).clamp(1e3, 2e6))
    }

    fn package_confident(&self) -> bool {
        OnlineModel::package_confident(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query<'a>(err: f64, current: &'a [KiloHertz]) -> TranslationQuery<'a> {
        TranslationQuery {
            power_error: Watts(err),
            max_power: Watts(85.0),
            max_freq: KiloHertz::from_mhz(2200),
            available: current.len(),
            max_performance: 1.0,
            current,
        }
    }

    #[test]
    fn naive_matches_paper_formula() {
        let cur = [KiloHertz::from_mhz(1800); 4];
        let q = query(8.5, &cur);
        let expect = (8.5f64 / 85.0) * 2_200_000.0 * 4.0;
        assert_eq!(NaiveAlpha.frequency_delta_khz(&q), expect);
        assert_eq!(
            NaiveAlpha.performance_delta(&q),
            (8.5f64 / 85.0) * 1.0 * 4.0
        );
    }

    #[test]
    fn naive_zeroes_degenerate_inputs() {
        let cur = [KiloHertz::from_mhz(1800); 4];
        let mut q = query(8.5, &cur);
        q.max_power = Watts(0.0);
        assert_eq!(NaiveAlpha.frequency_delta_khz(&q), 0.0);
        assert_eq!(NaiveAlpha.performance_delta(&q), 0.0);
        let mut q = query(f64::NAN, &cur);
        q.available = 4;
        assert_eq!(NaiveAlpha.frequency_delta_khz(&q), 0.0);
        let mut q = query(8.5, &cur);
        q.available = 0;
        assert_eq!(NaiveAlpha.frequency_delta_khz(&q), 0.0);
    }

    #[test]
    fn unconfident_online_is_bit_identical_to_naive() {
        let model = OnlineModel::new(ModelConfig::never_confident());
        let cur = [KiloHertz::from_mhz(1400), KiloHertz::from_mhz(2000)];
        for err in [-20.0, -3.2, 0.0, 0.7, 14.9] {
            let q = query(err, &cur);
            assert_eq!(
                model.frequency_delta_khz(&q).to_bits(),
                NaiveAlpha.frequency_delta_khz(&q).to_bits(),
            );
            assert_eq!(
                model.performance_delta(&q).to_bits(),
                NaiveAlpha.performance_delta(&q).to_bits(),
            );
        }
        let snap = model.snapshot();
        assert_eq!(snap.queries, 10);
        assert_eq!(snap.fallbacks, 10);
        assert_eq!(snap.fallback_fraction(), 1.0);
    }

    /// Feed the model a synthetic package curve (quadratic in total
    /// GHz) with enough spread to be identifiable.
    fn trained_model() -> OnlineModel {
        let mut m = OnlineModel::new(ModelConfig::default());
        for i in 0..60 {
            let per_core = 1.0 + (i % 20) as f64 * 0.06; // GHz
            let total = per_core * 4.0;
            let watts = 10.0 + 1.0 * total + 0.25 * total * total;
            m.package.observe(total, watts);
        }
        m
    }

    #[test]
    fn confident_model_inverts_the_learned_curve() {
        let m = trained_model();
        let cur = [KiloHertz::from_ghz(1.6); 4];
        let q = query(4.0, &cur);
        // Exact inversion of P = 10 + F + 0.25F² from F = 6.4 total GHz
        // for +4 W: solve 0.25x² + x + 10 = P(6.4) + 4.
        let target = 10.0 + 6.4 + 0.25 * 6.4 * 6.4 + 4.0;
        let x = (-1.0 + (1.0f64 - 4.0 * 0.25 * (10.0 - target)).sqrt()) / (2.0 * 0.25);
        let expect = (x - 6.4) * 1e6;
        let got = m.frequency_delta_khz(&q);
        assert!(
            (got - expect).abs() / expect < 0.05,
            "got {got}, want ≈{expect}"
        );
        assert_eq!(m.snapshot().fallbacks, 0);
    }

    #[test]
    fn learned_delta_is_clamped() {
        let mut m = trained_model();
        // Nearly flat curve region would imply a huge delta; the clamp
        // keeps it within moving every core across the grid.
        let cur = [KiloHertz::from_ghz(1.6); 2];
        let q = query(500.0, &cur);
        let d = m.frequency_delta_khz(&q);
        assert!(d <= 2_200_000.0 * 2.0 + 1.0, "{d}");
        m.set_learning(false);
        assert!(!m.learning());
    }

    #[test]
    fn performance_delta_needs_app_fits() {
        let mut m = trained_model();
        let cur = [KiloHertz::from_ghz(1.6); 4];
        let q = query(4.0, &cur);
        // No app fits yet: falls back.
        assert_eq!(
            m.performance_delta(&q).to_bits(),
            NaiveAlpha.performance_delta(&q).to_bits()
        );
        for i in 0..40 {
            let f = KiloHertz::from_mhz(1000 + (i % 16) * 100);
            m.observe_app(0, f, 0.1 + 0.3 * f.ghz());
        }
        let learned = m.performance_delta(&q);
        // ΔF from the exact inversion (≈0.904 GHz over 4 cores),
        // scaled by the 0.3/GHz per-app scalability slope.
        let target = 10.0 + 6.4 + 0.25 * 6.4 * 6.4 + 4.0;
        let x = (-1.0 + (1.0f64 - 4.0 * 0.25 * (10.0 - target)).sqrt()) / (2.0 * 0.25);
        let expect = (x - 6.4) / 4.0 * 0.3 * 4.0;
        assert!(
            (learned - expect).abs() < 0.05 * expect.abs() + 1e-3,
            "{learned} vs {expect}"
        );
    }

    #[test]
    fn learning_gate_freezes_fits() {
        let mut m = trained_model();
        let before = m.snapshot().package;
        m.set_learning(false);
        let s = Sample {
            time: pap_simcpu::units::Seconds(1.0),
            interval: pap_simcpu::units::Seconds(1.0),
            package_power: Watts(500.0),
            cores_power: Watts(400.0),
            cores: Vec::new(),
        };
        m.observe_sample(&s);
        m.observe_app(0, KiloHertz::from_ghz(2.0), 0.5);
        assert_eq!(m.snapshot().package, before);
        assert!(m.snapshot().apps.is_empty());
    }

    #[test]
    fn predicted_capacity_requires_confidence() {
        let m = OnlineModel::new(ModelConfig::default());
        assert!(m.predicted_capacity(4, KiloHertz::from_ghz(2.2)).is_none());
        let m = trained_model();
        let cap = m.predicted_capacity(4, KiloHertz::from_ghz(2.2)).unwrap();
        let total = 8.8f64;
        let expect = 10.0 + total + 0.25 * total * total;
        assert!((cap.value() - expect).abs() < 1.5, "{cap:?} vs {expect}");
    }
}
