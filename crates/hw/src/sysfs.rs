//! Injectable sysfs access with typed errors.
//!
//! Everything the Linux backend touches goes through a [`SysfsRoot`],
//! which prefixes every path with an injectable root directory. On a
//! real host the root is `/`; in tests it is a tempdir built by
//! [`crate::mock::MockSysfs`]. That one seam is what lets offline CI
//! exercise the entire backend — discovery, telemetry, frequency
//! writes, failure handling — against fixture trees with no hardware
//! and no privileges.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A typed sysfs access failure. The variants a resilient daemon cares
/// about — a file that vanished (driver unbound, CPU offlined) and a
/// permission error (not root, sysfs mounted read-only) — are
/// distinguished from generic I/O so callers can react differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// The path does not exist (missing driver, offlined CPU, or a file
    /// that disappeared mid-run).
    NotFound(String),
    /// The path exists but access was denied (needs root, or sysfs is
    /// read-only in this mount namespace).
    PermissionDenied(String),
    /// Any other I/O failure, with the `io::ErrorKind` preserved.
    Io {
        /// The path being accessed.
        path: String,
        /// The underlying error kind.
        kind: io::ErrorKind,
    },
    /// The file was read but its contents did not parse as expected.
    Parse {
        /// The path being parsed.
        path: String,
        /// The offending content (trimmed).
        value: String,
    },
    /// The host lacks a required capability (no cpufreq, no energy
    /// source, unwritable governor, ...).
    Unsupported(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::NotFound(p) => write!(f, "{p}: not found"),
            HwError::PermissionDenied(p) => {
                write!(
                    f,
                    "{p}: permission denied (are you root? is sysfs writable?)"
                )
            }
            HwError::Io { path, kind } => write!(f, "{path}: {kind}"),
            HwError::Parse { path, value } => write!(f, "{path}: cannot parse {value:?}"),
            HwError::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for HwError {}

impl HwError {
    /// Map an `io::Error` on `path` to the typed variant.
    pub fn from_io(path: &Path, err: &io::Error) -> HwError {
        let path = path.display().to_string();
        match err.kind() {
            io::ErrorKind::NotFound => HwError::NotFound(path),
            io::ErrorKind::PermissionDenied => HwError::PermissionDenied(path),
            kind => HwError::Io { path, kind },
        }
    }
}

/// A sysfs tree rooted at an injectable directory.
///
/// Relative paths are given sysfs-style (`sys/class/powercap/...`); a
/// leading `/` is tolerated and stripped, so the same path literals
/// work against the system root and against a fixture root.
#[derive(Debug, Clone)]
pub struct SysfsRoot {
    root: PathBuf,
}

impl SysfsRoot {
    /// A tree rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> SysfsRoot {
        SysfsRoot { root: root.into() }
    }

    /// The real system tree (root `/`).
    pub fn system() -> SysfsRoot {
        SysfsRoot::new("/")
    }

    /// The absolute path for a sysfs-relative path.
    pub fn path(&self, rel: &str) -> PathBuf {
        self.root.join(rel.trim_start_matches('/'))
    }

    /// Whether `rel` exists.
    pub fn exists(&self, rel: &str) -> bool {
        self.path(rel).exists()
    }

    /// Read `rel` as a trimmed string.
    pub fn read_string(&self, rel: &str) -> Result<String, HwError> {
        let path = self.path(rel);
        fs::read_to_string(&path)
            .map(|s| s.trim().to_string())
            .map_err(|e| HwError::from_io(&path, &e))
    }

    /// Read `rel` as a decimal `u64` (the dominant sysfs scalar format).
    pub fn read_u64(&self, rel: &str) -> Result<u64, HwError> {
        let s = self.read_string(rel)?;
        s.parse().map_err(|_| HwError::Parse {
            path: self.path(rel).display().to_string(),
            value: s,
        })
    }

    /// Write `value` to `rel` (no trailing newline needed; sysfs
    /// attributes accept both).
    pub fn write(&self, rel: &str, value: &str) -> Result<(), HwError> {
        let path = self.path(rel);
        fs::write(&path, value).map_err(|e| HwError::from_io(&path, &e))
    }

    /// Sorted entry names of the directory at `rel`.
    pub fn list(&self, rel: &str) -> Result<Vec<String>, HwError> {
        let path = self.path(rel);
        let entries = fs::read_dir(&path).map_err(|e| HwError::from_io(&path, &e))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_mapping_from_io_kinds() {
        let p = Path::new("/sys/x");
        let e = HwError::from_io(p, &io::Error::from(io::ErrorKind::NotFound));
        assert_eq!(e, HwError::NotFound("/sys/x".into()));
        let e = HwError::from_io(p, &io::Error::from(io::ErrorKind::PermissionDenied));
        assert_eq!(e, HwError::PermissionDenied("/sys/x".into()));
        assert!(e.to_string().contains("permission denied"));
        let e = HwError::from_io(p, &io::Error::from(io::ErrorKind::TimedOut));
        assert!(matches!(e, HwError::Io { kind, .. } if kind == io::ErrorKind::TimedOut));
    }

    #[test]
    fn leading_slash_is_tolerated() {
        let r = SysfsRoot::new("/tmp/fixture");
        assert_eq!(r.path("/sys/class/powercap"), r.path("sys/class/powercap"));
    }

    #[test]
    fn missing_file_is_typed_not_found() {
        let r = SysfsRoot::new("/nonexistent-pap-hw-root");
        match r.read_string("sys/anything") {
            Err(HwError::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }
        assert!(!r.exists("sys/anything"));
    }
}
