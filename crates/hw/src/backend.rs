//! [`LinuxBackend`]: the real-hardware implementation of
//! [`powerd::hw::PowerBackend`].
//!
//! Telemetry comes from whichever energy source the host offers — Intel
//! RAPL powercap zones first, then AMD hwmon energy/power channels —
//! and frequency control goes through cpufreq (`scaling_setspeed` under
//! the `userspace` governor, `scaling_max_freq` clamping otherwise).
//! Every sysfs touch goes through the injected [`SysfsRoot`], so the
//! whole backend runs against [`crate::mock::MockSysfs`] fixtures in
//! offline CI, and a [`BackendClock::Manual`] clock makes sample
//! intervals deterministic in tests.
//!
//! Failure handling follows the daemon's degraded-mode philosophy: a
//! sensor read or actuator write that fails is recorded in a
//! [`HealthTracker`] (hysteresis, no flapping) and the loop carries on —
//! the package meter holds its snapshot so the next successful read
//! still integrates the missed energy, and per-core frequency reads fall
//! back to the last programmed target.
//!
//! Per-core C0 residency comes from `/proc/stat` jiffy deltas
//! ([`crate::procstat`]), and `ips` is estimated as
//! `residency × frequency × nominal IPC` — a progress *proxy*, not a
//! retired-instruction count (no perf-events bridge), but one that is
//! monotone in both utilization and frequency, which is what the
//! IPS-consuming policies (performance shares, FastCap) need from it.
//! When the stat source is absent the backend reports the conservative
//! defaults (residency 1.0, ips 0) **and** flags
//! [`SensorId::Utilization`] unhealthy rather than passing assumed
//! values off as measurements. Core parking maps to the CPU
//! online/offline interface (`cpu*/online`) when the host exposes it;
//! [`BackendOptions::no_offline`] and hosts without the file (always
//! CPU 0) fall back to pinning parked cores at the grid floor.

use std::time::Instant;

use pap_simcpu::freq::{FreqGrid, KiloHertz};
use pap_simcpu::platform::{PlatformSpec, Vendor};
use pap_simcpu::turbo::TurboTable;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::health::{HealthTracker, SensorId};
use pap_telemetry::sampler::{CoreSample, Sample};
use powerd::daemon::ControlAction;
use powerd::hw::PowerBackend;

use crate::cpufreq::{self, WriteMode};
use crate::hwmon::HwmonMeter;
use crate::procstat::{self, CpuTicks};
use crate::rapl::RaplMeter;
use crate::sysfs::{HwError, SysfsRoot};

/// Nominal instructions-per-cycle used for the IPS estimate. Real IPC
/// varies per workload; the estimate is only ever consumed *normalized*
/// (against a baseline measured through the same estimator), so the
/// constant cancels out as long as it is applied consistently.
const NOMINAL_IPC: f64 = 1.0;

/// Time source for sample intervals.
#[derive(Debug)]
pub enum BackendClock {
    /// Wall-clock time (real hosts).
    Wall(Instant),
    /// Manually advanced time (tests); [`LinuxBackend::advance`] moves
    /// it.
    Manual(f64),
}

impl BackendClock {
    /// Wall-clock time starting now.
    pub fn wall() -> BackendClock {
        BackendClock::Wall(Instant::now())
    }

    /// Manual time starting at zero.
    pub fn manual() -> BackendClock {
        BackendClock::Manual(0.0)
    }

    fn now(&self) -> f64 {
        match self {
            BackendClock::Wall(start) => start.elapsed().as_secs_f64(),
            BackendClock::Manual(t) => *t,
        }
    }
}

/// The package-level energy source the probe found.
#[derive(Debug)]
enum PackageMeter {
    Rapl(RaplMeter),
    Hwmon(HwmonMeter),
    None,
}

/// Construction options for [`LinuxBackend`].
#[derive(Debug)]
pub struct BackendOptions {
    /// Read telemetry but never write a sysfs file.
    pub dry_run: bool,
    /// How frequency targets are applied.
    pub write_mode: WriteMode,
    /// Time source.
    pub clock: BackendClock,
    /// Escape hatch: never offline a CPU; parked cores pin to the grid
    /// floor instead. For hosts where offlining fights the scheduler,
    /// irq affinity or a hypervisor.
    pub no_offline: bool,
}

impl Default for BackendOptions {
    fn default() -> BackendOptions {
        BackendOptions {
            dry_run: false,
            write_mode: WriteMode::Auto,
            clock: BackendClock::wall(),
            no_offline: false,
        }
    }
}

/// A [`PowerBackend`] over the live Linux sysfs tree (or a mock of it).
#[derive(Debug)]
pub struct LinuxBackend {
    root: SysfsRoot,
    spec: PlatformSpec,
    cpus: Vec<usize>,
    dry_run: bool,
    write_mode: WriteMode,
    clock: BackendClock,
    meter: PackageMeter,
    core_meters: Vec<(usize, HwmonMeter)>,
    health: HealthTracker,
    no_offline: bool,
    /// Last programmed target per policy slot (index into `cpus`).
    targets: Vec<KiloHertz>,
    /// Park flag per slot, as last applied.
    parked: Vec<bool>,
    /// Whether the slot's CPU was actually taken offline (vs. parked by
    /// floor-pinning); offline CPUs are skipped in telemetry instead of
    /// counted as sensor failures.
    offlined: Vec<bool>,
    /// Previous `/proc/stat` reading per slot (`None` before the first
    /// read and across offline periods).
    prev_ticks: Vec<Option<CpuTicks>>,
    /// Last derived C0 residency per slot, held across sub-jiffy
    /// intervals where the counters did not move.
    residency: Vec<f64>,
    last_sample_t: f64,
    last_pkg_w: Watts,
    /// Seconds since the package meter last read successfully; grows
    /// across failed reads so the post-recovery average is taken over
    /// the true interval the held snapshot covers.
    pkg_elapsed: f64,
}

impl LinuxBackend {
    /// Probe the tree under `root` and build a backend.
    ///
    /// Fails with [`HwError::Unsupported`] when no cpufreq policies
    /// exist; a host with cpufreq but no energy source is accepted
    /// (package power reads as the last known value, initially 0) so
    /// `--dry-run` inspection works everywhere.
    pub fn probe(root: SysfsRoot, opts: BackendOptions) -> Result<LinuxBackend, HwError> {
        let cpus = cpufreq::cpus(&root)?;
        let policy = cpufreq::read_policy(&root, cpus[0])?;

        let meter = match RaplMeter::package(&root)? {
            Some(m) => PackageMeter::Rapl(m),
            None => match HwmonMeter::package(&root)? {
                Some(m) => PackageMeter::Hwmon(m),
                None => PackageMeter::None,
            },
        };
        let core_meters = HwmonMeter::cores(&root)?;
        let spec = synthesize_spec(&root, &cpus, &policy, &meter, !core_meters.is_empty());

        let targets = cpus
            .iter()
            .map(|&c| {
                cpufreq::cur_khz(&root, c)
                    .map(KiloHertz)
                    .unwrap_or(spec.grid.max())
            })
            .collect();

        let last_sample_t = opts.clock.now();
        let n = cpus.len();
        Ok(LinuxBackend {
            root,
            spec,
            cpus,
            dry_run: opts.dry_run,
            write_mode: opts.write_mode,
            clock: opts.clock,
            meter,
            core_meters,
            health: HealthTracker::new(3, 2),
            no_offline: opts.no_offline,
            targets,
            parked: vec![false; n],
            offlined: vec![false; n],
            prev_ticks: vec![None; n],
            residency: vec![1.0; n],
            last_sample_t,
            last_pkg_w: Watts(0.0),
            pkg_elapsed: 0.0,
        })
    }

    /// The CPUs under control, ascending.
    pub fn cpus(&self) -> &[usize] {
        &self.cpus
    }

    /// Whether writes are suppressed.
    pub fn dry_run(&self) -> bool {
        self.dry_run
    }

    /// A one-line description of the probed telemetry/actuation surface.
    pub fn describe(&self) -> String {
        let source = match &self.meter {
            PackageMeter::Rapl(m) => format!("rapl:{}", m.domain().name),
            PackageMeter::Hwmon(HwmonMeter::Energy { .. }) => "hwmon-energy".to_string(),
            PackageMeter::Hwmon(HwmonMeter::Power { .. }) => "hwmon-power".to_string(),
            PackageMeter::None => "none".to_string(),
        };
        format!(
            "{} cpus, {:.1}-{:.1} GHz, energy source: {source}, per-core meters: {}{}",
            self.cpus.len(),
            self.spec.grid.min().ghz(),
            self.spec.grid.max().ghz(),
            self.core_meters.len(),
            if self.dry_run { ", DRY RUN" } else { "" },
        )
    }

    /// The sensor health tracker (read side; exported for reporting).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }
}

/// Build a [`PlatformSpec`] from what the sysfs tree advertises. The
/// power model is a placeholder (the daemon's policies act on *measured*
/// power; the model only seeds predictions) and turbo is flat at the
/// hardware ceiling — real opportunistic limits are not discoverable
/// from sysfs.
fn synthesize_spec(
    root: &SysfsRoot,
    cpus: &[usize],
    policy: &cpufreq::CpuPolicy,
    meter: &PackageMeter,
    per_core_power: bool,
) -> PlatformSpec {
    let min = KiloHertz(policy.hw_min_khz);
    let max = KiloHertz(policy.hw_max_khz);
    // cpufreq has no step attribute; 100 MHz matches Intel/AMD P-state
    // granularity and FreqGrid tolerates a non-divisible span.
    let grid = FreqGrid::new(min, max, KiloHertz::from_mhz(100));
    // intel_pstate exposes the nominal frequency; fall back to the
    // hardware ceiling.
    let base_freq = root
        .read_u64(&format!(
            "{}/cpu{}/cpufreq/base_frequency",
            crate::cpufreq::CPU_DIR,
            policy.cpu
        ))
        .map(KiloHertz)
        .unwrap_or(max);
    let (name, vendor): (&'static str, Vendor) = match meter {
        PackageMeter::Rapl(_) => ("Linux host (Intel RAPL)", Vendor::Intel),
        PackageMeter::Hwmon(_) => ("Linux host (AMD hwmon)", Vendor::Amd),
        PackageMeter::None => ("Linux host", Vendor::Intel),
    };
    let mut spec = PlatformSpec::skylake(); // donor for the placeholder power model
    spec.name = name;
    spec.vendor = vendor;
    spec.num_cores = cpus.len();
    spec.threads_per_core = 1;
    spec.base_freq = base_freq;
    spec.grid = grid;
    spec.turbo = TurboTable::flat(cpus.len(), max, max);
    spec.rapl = None;
    spec.per_core_power = per_core_power;
    spec.shared_pstate_slots = None;
    spec
}

impl PowerBackend for LinuxBackend {
    fn platform(&self) -> &PlatformSpec {
        &self.spec
    }

    fn sample(&mut self) -> Option<Sample> {
        let now = self.clock.now();
        let dt = now - self.last_sample_t;
        if dt <= 0.0 {
            return None;
        }
        self.last_sample_t = now;
        let dt = Seconds(dt);
        let t = Seconds(now);

        self.pkg_elapsed += dt.value();
        let pkg_dt = Seconds(self.pkg_elapsed);
        let package_power = match &mut self.meter {
            PackageMeter::Rapl(m) => Some(m.power(&self.root, pkg_dt)),
            PackageMeter::Hwmon(m) => Some(m.power(&self.root, pkg_dt)),
            PackageMeter::None => None,
        };
        let package_power = match package_power {
            Some(Ok(w)) => {
                self.health.record(SensorId::PackagePower, true, t);
                self.last_pkg_w = w;
                self.pkg_elapsed = 0.0;
                w
            }
            Some(Err(_)) => {
                // The meter kept its snapshot; report the last known
                // power and let hysteresis decide when to declare the
                // sensor dead.
                self.health.record(SensorId::PackagePower, false, t);
                self.last_pkg_w
            }
            None => self.last_pkg_w,
        };

        // One `/proc/stat` read covers every core; its loss degrades the
        // single utilization sensor, not each core's counter health.
        let ticks = procstat::read(&self.root);
        self.health.record(SensorId::Utilization, ticks.is_ok(), t);

        let mut cores = Vec::with_capacity(self.cpus.len());
        for (slot, &cpu) in self.cpus.iter().enumerate() {
            if self.offlined[slot] {
                // Intentionally offline: zero activity is the truth, and
                // skipping the reads keeps the health tracker free of
                // self-inflicted failures.
                self.prev_ticks[slot] = None;
                self.residency[slot] = 0.0;
                cores.push(CoreSample {
                    rates: CoreRates {
                        active_freq: KiloHertz::ZERO,
                        c0_residency: 0.0,
                        ips: 0.0,
                    },
                    power: None,
                    requested_freq: self.targets[slot],
                });
                continue;
            }
            let active_freq = match cpufreq::cur_khz(&self.root, cpu) {
                Ok(khz) => {
                    self.health.record(SensorId::CoreCounters(slot), true, t);
                    KiloHertz(khz)
                }
                Err(_) => {
                    self.health.record(SensorId::CoreCounters(slot), false, t);
                    self.targets[slot]
                }
            };
            let c0_residency = match &ticks {
                Ok(per_cpu) => {
                    match per_cpu.iter().find(|&&(c, _)| c == cpu) {
                        Some(&(_, now)) => {
                            if let Some(f) =
                                self.prev_ticks[slot].and_then(|prev| now.busy_fraction_since(prev))
                            {
                                self.residency[slot] = f;
                            }
                            // else: sub-jiffy interval or counter reset —
                            // hold the last derived value.
                            self.prev_ticks[slot] = Some(now);
                        }
                        None => {
                            // Offlined outside our control: idle, by
                            // definition, until its counters return.
                            self.prev_ticks[slot] = None;
                            self.residency[slot] = 0.0;
                        }
                    }
                    self.residency[slot]
                }
                Err(_) => {
                    // Source absent: report the conservative default the
                    // backend always used — but the Utilization sensor is
                    // flagged above, so consumers know it is assumed.
                    self.prev_ticks[slot] = None;
                    1.0
                }
            };
            // IPS estimate: busy cycles per second at NOMINAL_IPC. Zero
            // when the utilization source is down (ips = 0 is this
            // crate's documented "no progress signal" value).
            let ips = if ticks.is_ok() {
                NOMINAL_IPC * c0_residency * active_freq.hz()
            } else {
                0.0
            };
            let power = self
                .core_meters
                .iter_mut()
                .find(|(c, _)| *c == cpu)
                .and_then(|(_, m)| m.power(&self.root, dt).ok());
            cores.push(CoreSample {
                rates: CoreRates {
                    active_freq,
                    c0_residency,
                    ips,
                },
                power,
                requested_freq: self.targets[slot],
            });
        }

        Some(Sample {
            time: t,
            interval: dt,
            package_power,
            cores_power: package_power,
            cores,
        })
    }

    fn apply(&mut self, action: &ControlAction) -> Result<(), String> {
        let t = Seconds(self.clock.now());
        let n = self.cpus.len().min(action.freqs.len());
        for slot in 0..n {
            let cpu = self.cpus[slot];
            let park = action.parked.get(slot).copied().unwrap_or(false);
            // A parked core is taken fully offline when the kernel
            // exposes the hotplug file for it (never CPU 0) and the
            // operator has not vetoed it; otherwise it pins to the grid
            // floor — the pre-hotplug behavior.
            let online = format!("{}/cpu{cpu}/online", cpufreq::CPU_DIR);
            let can_offline = !self.no_offline && !self.dry_run && self.root.exists(&online);

            // Bring a previously-offlined CPU back whenever it should no
            // longer be offline (unparked, or offlining vetoed mid-run).
            if self.offlined[slot] && !(park && can_offline) {
                let ok = self.root.write(&online, "1").is_ok();
                self.health.record(SensorId::FreqActuator(slot), ok, t);
                if !ok {
                    // Stuck offline; keep telemetry treating it as such
                    // and retry on the next apply.
                    self.parked[slot] = park;
                    self.targets[slot] = self.spec.grid.min();
                    continue;
                }
                self.offlined[slot] = false;
            }

            if park && can_offline {
                if !self.offlined[slot] {
                    let ok = self.root.write(&online, "0").is_ok();
                    self.health.record(SensorId::FreqActuator(slot), ok, t);
                    if ok {
                        self.offlined[slot] = true;
                        self.prev_ticks[slot] = None;
                    }
                }
                if self.offlined[slot] {
                    self.parked[slot] = true;
                    self.targets[slot] = self.spec.grid.min();
                    continue; // no cpufreq writes to an offline CPU
                }
                // Offline write failed: fall through to the floor pin.
            }

            self.parked[slot] = park;
            let khz = if park {
                self.spec.grid.min()
            } else {
                action.freqs[slot]
            };
            self.targets[slot] = khz;
            if self.dry_run {
                continue;
            }
            let ok = cpufreq::set_target(&self.root, cpu, khz.khz(), self.write_mode).is_ok();
            // A failed write is a degraded actuator, not a daemon crash:
            // record it and keep driving the cores that still work.
            self.health.record(SensorId::FreqActuator(slot), ok, t);
        }
        Ok(())
    }

    fn advance(&mut self, dt: Seconds) {
        if let BackendClock::Manual(t) = &mut self.clock {
            *t += dt.value();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockSysfs;
    use pap_telemetry::health::SensorState;

    fn manual(opts_dry: bool, mock: &MockSysfs) -> LinuxBackend {
        LinuxBackend::probe(
            mock.root(),
            BackendOptions {
                dry_run: opts_dry,
                write_mode: WriteMode::Auto,
                clock: BackendClock::manual(),
                no_offline: false,
            },
        )
        .expect("probe fixture")
    }

    #[test]
    fn probes_intel_fixture_and_synthesizes_platform() {
        let mock = MockSysfs::intel(4);
        let b = manual(false, &mock);
        assert_eq!(b.platform().num_cores, 4);
        assert_eq!(b.platform().vendor, Vendor::Intel);
        assert_eq!(b.platform().grid.min().khz(), 800_000);
        assert_eq!(b.platform().grid.max().khz(), 3_000_000);
        assert!(b.describe().contains("rapl:package-0"), "{}", b.describe());
    }

    #[test]
    fn apply_writes_and_sample_reads_back() {
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        let action = ControlAction {
            freqs: vec![KiloHertz(1_200_000), KiloHertz(2_600_000)],
            parked: vec![false, false],
        };
        b.apply(&action).unwrap();
        // The fixture "hardware" settles on the programmed frequencies.
        mock.set_cur_khz(0, 1_200_000);
        mock.set_cur_khz(1, 2_600_000);
        mock.add_package_energy_uj(20_000_000); // 20 J over the next 1 s
        b.advance(Seconds(1.0));
        let s = b.sample().expect("time advanced");
        assert_eq!(s.cores[0].rates.active_freq.khz(), 1_200_000);
        assert_eq!(s.cores[1].rates.active_freq.khz(), 2_600_000);
        assert_eq!(s.cores[0].requested_freq.khz(), 1_200_000);
        assert!((s.package_power.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dry_run_reads_everything_but_writes_nothing() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let before = root
            .read_string("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
            .unwrap();
        let mut b = manual(true, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(1_000_000), KiloHertz(1_000_000)],
            parked: vec![false, false],
        })
        .unwrap();
        let after = root
            .read_string("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
            .unwrap();
        assert_eq!(before, after, "dry-run must not touch sysfs");
        // Telemetry still works.
        mock.add_package_energy_uj(5_000_000);
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert!((s.package_power.value() - 5.0).abs() < 1e-9);
        // And requested_freq reflects the (unwritten) targets.
        assert_eq!(s.cores[0].requested_freq.khz(), 1_000_000);
    }

    #[test]
    fn parked_cores_pin_to_the_grid_floor() {
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(2_000_000), KiloHertz(2_000_000)],
            parked: vec![true, false],
        })
        .unwrap();
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
                .unwrap(),
            800_000
        );
    }

    #[test]
    fn vanishing_energy_counter_degrades_health_not_the_loop() {
        let mock = MockSysfs::intel(1);
        let mut b = manual(false, &mock);
        mock.add_package_energy_uj(10_000_000);
        b.advance(Seconds(1.0));
        assert!((b.sample().unwrap().package_power.value() - 10.0).abs() < 1e-9);

        // The counter file disappears mid-run (driver unbind).
        mock.remove("sys/class/powercap/intel-rapl:0/energy_uj");
        for _ in 0..3 {
            b.advance(Seconds(1.0));
            let s = b.sample().expect("loop keeps producing samples");
            assert!(
                (s.package_power.value() - 10.0).abs() < 1e-9,
                "holds last known power"
            );
        }
        let h = b.health().sensor(SensorId::PackagePower).unwrap();
        assert_eq!(h.state, SensorState::Unhealthy, "demoted after 3 failures");

        // Driver rebinds: the meter's held snapshot integrates the gap.
        mock.restore_package_energy();
        mock.add_package_energy_uj(40_000_000);
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert!(
            (s.package_power.value() - 10.0).abs() < 1e-9,
            "40 J over the 4 s since the last good read, got {}",
            s.package_power
        );
    }

    #[test]
    fn amd_fixture_reports_per_core_power() {
        let mock = MockSysfs::amd(2);
        let mut b = manual(false, &mock);
        assert_eq!(b.platform().vendor, Vendor::Amd);
        assert!(b.platform().per_core_power);
        mock.add_socket_energy_uj(30_000_000);
        mock.add_core_energy_uj(0, 12_000_000);
        mock.add_core_energy_uj(1, 6_000_000);
        b.advance(Seconds(2.0));
        let s = b.sample().unwrap();
        assert!((s.package_power.value() - 15.0).abs() < 1e-9);
        assert!((s.cores[0].power.unwrap().value() - 6.0).abs() < 1e-9);
        assert!((s.cores[1].power.unwrap().value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn schedutil_host_applies_via_max_freq_clamp() {
        let mock = MockSysfs::amd(1);
        let mut b = manual(false, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(1_800_000)],
            parked: vec![false],
        })
        .unwrap();
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq")
                .unwrap(),
            1_800_000,
            "non-userspace governor -> ceiling clamp"
        );
    }

    #[test]
    fn zero_interval_sample_is_none() {
        let mock = MockSysfs::intel(1);
        let mut b = manual(false, &mock);
        assert!(b.sample().is_none(), "no time has passed");
    }

    #[test]
    fn residency_and_ips_derive_from_proc_stat_deltas() {
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        // Baseline read establishes prev ticks (zero-delta holds 1.0).
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert_eq!(s.cores[0].rates.c0_residency, 1.0, "no delta yet: hold");
        // Next interval: cpu0 60 % busy, cpu1 25 % busy.
        mock.advance_cpu_jiffies(0, 60, 40);
        mock.advance_cpu_jiffies(1, 25, 75);
        mock.set_cur_khz(0, 2_000_000);
        mock.set_cur_khz(1, 2_000_000);
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert!((s.cores[0].rates.c0_residency - 0.60).abs() < 1e-9);
        assert!((s.cores[1].rates.c0_residency - 0.25).abs() < 1e-9);
        // IPS is the busy-cycle proxy: residency x frequency x IPC(1).
        assert!((s.cores[0].rates.ips - 0.60 * 2.0e9).abs() < 1.0);
        assert!((s.cores[1].rates.ips - 0.25 * 2.0e9).abs() < 1.0);
        assert!(b.health().is_healthy(SensorId::Utilization));
    }

    #[test]
    fn missing_proc_stat_flags_utilization_not_core_counters() {
        let mock = MockSysfs::intel(1);
        let mut b = manual(false, &mock);
        mock.remove("proc/stat");
        for _ in 0..3 {
            b.advance(Seconds(1.0));
            let s = b.sample().expect("loop keeps producing samples");
            // Old conservative defaults, but now *flagged*.
            assert_eq!(s.cores[0].rates.c0_residency, 1.0);
            assert_eq!(s.cores[0].rates.ips, 0.0);
        }
        assert!(!b.health().is_healthy(SensorId::Utilization));
        assert!(
            b.health().is_healthy(SensorId::CoreCounters(0)),
            "cpufreq reads are a separate sensor"
        );
    }

    #[test]
    fn parked_core_goes_offline_and_back() {
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        let online = "sys/devices/system/cpu/cpu1/online";
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(2_000_000), KiloHertz(2_000_000)],
            parked: vec![false, true],
        })
        .unwrap();
        assert_eq!(mock.root().read_u64(online).unwrap(), 0, "cpu1 offlined");
        // Offline core: telemetry reports zero activity, no health noise.
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert_eq!(s.cores[1].rates.active_freq.khz(), 0);
        assert_eq!(s.cores[1].rates.c0_residency, 0.0);
        assert_eq!(s.cores[1].rates.ips, 0.0);
        assert!(s.cores[0].rates.active_freq.khz() > 0, "cpu0 unaffected");
        // Unpark: the backend re-onlines the CPU and resumes driving it.
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(2_000_000), KiloHertz(1_500_000)],
            parked: vec![false, false],
        })
        .unwrap();
        assert_eq!(mock.root().read_u64(online).unwrap(), 1, "cpu1 back online");
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu1/cpufreq/scaling_setspeed")
                .unwrap(),
            1_500_000
        );
        for (id, h) in b.health().sensors() {
            assert_eq!(h.total_failures, 0, "{id} failed during hotplug");
        }
    }

    #[test]
    fn no_offline_falls_back_to_the_floor_pin() {
        let mock = MockSysfs::intel(2);
        let mut b = LinuxBackend::probe(
            mock.root(),
            BackendOptions {
                dry_run: false,
                write_mode: WriteMode::Auto,
                clock: BackendClock::manual(),
                no_offline: true,
            },
        )
        .unwrap();
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(2_000_000), KiloHertz(2_000_000)],
            parked: vec![false, true],
        })
        .unwrap();
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu1/online")
                .unwrap(),
            1,
            "escape hatch: CPU stays online"
        );
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu1/cpufreq/scaling_setspeed")
                .unwrap(),
            800_000,
            "parked core pinned to the grid floor"
        );
    }

    #[test]
    fn cpu0_never_offlines_even_when_parked() {
        // The kernel exposes no cpu0/online; parking the boot CPU must
        // fall back to the floor pin.
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(2_000_000), KiloHertz(2_000_000)],
            parked: vec![true, false],
        })
        .unwrap();
        assert!(!mock.root().exists("sys/devices/system/cpu/cpu0/online"));
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
                .unwrap(),
            800_000
        );
    }
}
