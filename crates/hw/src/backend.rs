//! [`LinuxBackend`]: the real-hardware implementation of
//! [`powerd::hw::PowerBackend`].
//!
//! Telemetry comes from whichever energy source the host offers — Intel
//! RAPL powercap zones first, then AMD hwmon energy/power channels —
//! and frequency control goes through cpufreq (`scaling_setspeed` under
//! the `userspace` governor, `scaling_max_freq` clamping otherwise).
//! Every sysfs touch goes through the injected [`SysfsRoot`], so the
//! whole backend runs against [`crate::mock::MockSysfs`] fixtures in
//! offline CI, and a [`BackendClock::Manual`] clock makes sample
//! intervals deterministic in tests.
//!
//! Failure handling follows the daemon's degraded-mode philosophy: a
//! sensor read or actuator write that fails is recorded in a
//! [`HealthTracker`] (hysteresis, no flapping) and the loop carries on —
//! the package meter holds its snapshot so the next successful read
//! still integrates the missed energy, and per-core frequency reads fall
//! back to the last programmed target.
//!
//! **Known limits** (documented, not hidden): instruction counters need
//! a perf-events bridge this crate does not ship, so `ips` is reported
//! as 0 and C0 residency as 1.0 — the frequency-shares and uniform-cap
//! policies (which consume frequencies and package power) are fully
//! functional, while the performance-shares policy would see no progress
//! signal on real hardware. Core parking maps to the CPU
//! online/offline interface and is intentionally not performed; parked
//! cores are instead pinned to the grid floor.

use std::time::Instant;

use pap_simcpu::freq::{FreqGrid, KiloHertz};
use pap_simcpu::platform::{PlatformSpec, Vendor};
use pap_simcpu::turbo::TurboTable;
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::CoreRates;
use pap_telemetry::health::{HealthTracker, SensorId};
use pap_telemetry::sampler::{CoreSample, Sample};
use powerd::daemon::ControlAction;
use powerd::hw::PowerBackend;

use crate::cpufreq::{self, WriteMode};
use crate::hwmon::HwmonMeter;
use crate::rapl::RaplMeter;
use crate::sysfs::{HwError, SysfsRoot};

/// Time source for sample intervals.
#[derive(Debug)]
pub enum BackendClock {
    /// Wall-clock time (real hosts).
    Wall(Instant),
    /// Manually advanced time (tests); [`LinuxBackend::advance`] moves
    /// it.
    Manual(f64),
}

impl BackendClock {
    /// Wall-clock time starting now.
    pub fn wall() -> BackendClock {
        BackendClock::Wall(Instant::now())
    }

    /// Manual time starting at zero.
    pub fn manual() -> BackendClock {
        BackendClock::Manual(0.0)
    }

    fn now(&self) -> f64 {
        match self {
            BackendClock::Wall(start) => start.elapsed().as_secs_f64(),
            BackendClock::Manual(t) => *t,
        }
    }
}

/// The package-level energy source the probe found.
#[derive(Debug)]
enum PackageMeter {
    Rapl(RaplMeter),
    Hwmon(HwmonMeter),
    None,
}

/// Construction options for [`LinuxBackend`].
#[derive(Debug)]
pub struct BackendOptions {
    /// Read telemetry but never write a sysfs file.
    pub dry_run: bool,
    /// How frequency targets are applied.
    pub write_mode: WriteMode,
    /// Time source.
    pub clock: BackendClock,
}

impl Default for BackendOptions {
    fn default() -> BackendOptions {
        BackendOptions {
            dry_run: false,
            write_mode: WriteMode::Auto,
            clock: BackendClock::wall(),
        }
    }
}

/// A [`PowerBackend`] over the live Linux sysfs tree (or a mock of it).
#[derive(Debug)]
pub struct LinuxBackend {
    root: SysfsRoot,
    spec: PlatformSpec,
    cpus: Vec<usize>,
    dry_run: bool,
    write_mode: WriteMode,
    clock: BackendClock,
    meter: PackageMeter,
    core_meters: Vec<(usize, HwmonMeter)>,
    health: HealthTracker,
    /// Last programmed target per policy slot (index into `cpus`).
    targets: Vec<KiloHertz>,
    last_sample_t: f64,
    last_pkg_w: Watts,
    /// Seconds since the package meter last read successfully; grows
    /// across failed reads so the post-recovery average is taken over
    /// the true interval the held snapshot covers.
    pkg_elapsed: f64,
}

impl LinuxBackend {
    /// Probe the tree under `root` and build a backend.
    ///
    /// Fails with [`HwError::Unsupported`] when no cpufreq policies
    /// exist; a host with cpufreq but no energy source is accepted
    /// (package power reads as the last known value, initially 0) so
    /// `--dry-run` inspection works everywhere.
    pub fn probe(root: SysfsRoot, opts: BackendOptions) -> Result<LinuxBackend, HwError> {
        let cpus = cpufreq::cpus(&root)?;
        let policy = cpufreq::read_policy(&root, cpus[0])?;

        let meter = match RaplMeter::package(&root)? {
            Some(m) => PackageMeter::Rapl(m),
            None => match HwmonMeter::package(&root)? {
                Some(m) => PackageMeter::Hwmon(m),
                None => PackageMeter::None,
            },
        };
        let core_meters = HwmonMeter::cores(&root)?;
        let spec = synthesize_spec(&root, &cpus, &policy, &meter, !core_meters.is_empty());

        let targets = cpus
            .iter()
            .map(|&c| {
                cpufreq::cur_khz(&root, c)
                    .map(KiloHertz)
                    .unwrap_or(spec.grid.max())
            })
            .collect();

        let last_sample_t = opts.clock.now();
        Ok(LinuxBackend {
            root,
            spec,
            cpus,
            dry_run: opts.dry_run,
            write_mode: opts.write_mode,
            clock: opts.clock,
            meter,
            core_meters,
            health: HealthTracker::new(3, 2),
            targets,
            last_sample_t,
            last_pkg_w: Watts(0.0),
            pkg_elapsed: 0.0,
        })
    }

    /// The CPUs under control, ascending.
    pub fn cpus(&self) -> &[usize] {
        &self.cpus
    }

    /// Whether writes are suppressed.
    pub fn dry_run(&self) -> bool {
        self.dry_run
    }

    /// A one-line description of the probed telemetry/actuation surface.
    pub fn describe(&self) -> String {
        let source = match &self.meter {
            PackageMeter::Rapl(m) => format!("rapl:{}", m.domain().name),
            PackageMeter::Hwmon(HwmonMeter::Energy { .. }) => "hwmon-energy".to_string(),
            PackageMeter::Hwmon(HwmonMeter::Power { .. }) => "hwmon-power".to_string(),
            PackageMeter::None => "none".to_string(),
        };
        format!(
            "{} cpus, {:.1}-{:.1} GHz, energy source: {source}, per-core meters: {}{}",
            self.cpus.len(),
            self.spec.grid.min().ghz(),
            self.spec.grid.max().ghz(),
            self.core_meters.len(),
            if self.dry_run { ", DRY RUN" } else { "" },
        )
    }

    /// The sensor health tracker (read side; exported for reporting).
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }
}

/// Build a [`PlatformSpec`] from what the sysfs tree advertises. The
/// power model is a placeholder (the daemon's policies act on *measured*
/// power; the model only seeds predictions) and turbo is flat at the
/// hardware ceiling — real opportunistic limits are not discoverable
/// from sysfs.
fn synthesize_spec(
    root: &SysfsRoot,
    cpus: &[usize],
    policy: &cpufreq::CpuPolicy,
    meter: &PackageMeter,
    per_core_power: bool,
) -> PlatformSpec {
    let min = KiloHertz(policy.hw_min_khz);
    let max = KiloHertz(policy.hw_max_khz);
    // cpufreq has no step attribute; 100 MHz matches Intel/AMD P-state
    // granularity and FreqGrid tolerates a non-divisible span.
    let grid = FreqGrid::new(min, max, KiloHertz::from_mhz(100));
    // intel_pstate exposes the nominal frequency; fall back to the
    // hardware ceiling.
    let base_freq = root
        .read_u64(&format!(
            "{}/cpu{}/cpufreq/base_frequency",
            crate::cpufreq::CPU_DIR,
            policy.cpu
        ))
        .map(KiloHertz)
        .unwrap_or(max);
    let (name, vendor): (&'static str, Vendor) = match meter {
        PackageMeter::Rapl(_) => ("Linux host (Intel RAPL)", Vendor::Intel),
        PackageMeter::Hwmon(_) => ("Linux host (AMD hwmon)", Vendor::Amd),
        PackageMeter::None => ("Linux host", Vendor::Intel),
    };
    let mut spec = PlatformSpec::skylake(); // donor for the placeholder power model
    spec.name = name;
    spec.vendor = vendor;
    spec.num_cores = cpus.len();
    spec.threads_per_core = 1;
    spec.base_freq = base_freq;
    spec.grid = grid;
    spec.turbo = TurboTable::flat(cpus.len(), max, max);
    spec.rapl = None;
    spec.per_core_power = per_core_power;
    spec.shared_pstate_slots = None;
    spec
}

impl PowerBackend for LinuxBackend {
    fn platform(&self) -> &PlatformSpec {
        &self.spec
    }

    fn sample(&mut self) -> Option<Sample> {
        let now = self.clock.now();
        let dt = now - self.last_sample_t;
        if dt <= 0.0 {
            return None;
        }
        self.last_sample_t = now;
        let dt = Seconds(dt);
        let t = Seconds(now);

        self.pkg_elapsed += dt.value();
        let pkg_dt = Seconds(self.pkg_elapsed);
        let package_power = match &mut self.meter {
            PackageMeter::Rapl(m) => Some(m.power(&self.root, pkg_dt)),
            PackageMeter::Hwmon(m) => Some(m.power(&self.root, pkg_dt)),
            PackageMeter::None => None,
        };
        let package_power = match package_power {
            Some(Ok(w)) => {
                self.health.record(SensorId::PackagePower, true, t);
                self.last_pkg_w = w;
                self.pkg_elapsed = 0.0;
                w
            }
            Some(Err(_)) => {
                // The meter kept its snapshot; report the last known
                // power and let hysteresis decide when to declare the
                // sensor dead.
                self.health.record(SensorId::PackagePower, false, t);
                self.last_pkg_w
            }
            None => self.last_pkg_w,
        };

        let mut cores = Vec::with_capacity(self.cpus.len());
        for (slot, &cpu) in self.cpus.iter().enumerate() {
            let active_freq = match cpufreq::cur_khz(&self.root, cpu) {
                Ok(khz) => {
                    self.health.record(SensorId::CoreCounters(slot), true, t);
                    KiloHertz(khz)
                }
                Err(_) => {
                    self.health.record(SensorId::CoreCounters(slot), false, t);
                    self.targets[slot]
                }
            };
            let power = self
                .core_meters
                .iter_mut()
                .find(|(c, _)| *c == cpu)
                .and_then(|(_, m)| m.power(&self.root, dt).ok());
            cores.push(CoreSample {
                rates: CoreRates {
                    active_freq,
                    c0_residency: 1.0, // no idle accounting without perf/cpuidle
                    ips: 0.0,          // no instruction counters without perf
                },
                power,
                requested_freq: self.targets[slot],
            });
        }

        Some(Sample {
            time: t,
            interval: dt,
            package_power,
            cores_power: package_power,
            cores,
        })
    }

    fn apply(&mut self, action: &ControlAction) -> Result<(), String> {
        let t = Seconds(self.clock.now());
        let n = self.cpus.len().min(action.freqs.len());
        for slot in 0..n {
            let cpu = self.cpus[slot];
            // No CPU offlining: parked cores sit at the grid floor.
            let khz = if action.parked.get(slot).copied().unwrap_or(false) {
                self.spec.grid.min()
            } else {
                action.freqs[slot]
            };
            self.targets[slot] = khz;
            if self.dry_run {
                continue;
            }
            let ok = cpufreq::set_target(&self.root, cpu, khz.khz(), self.write_mode).is_ok();
            // A failed write is a degraded actuator, not a daemon crash:
            // record it and keep driving the cores that still work.
            self.health.record(SensorId::FreqActuator(slot), ok, t);
        }
        Ok(())
    }

    fn advance(&mut self, dt: Seconds) {
        if let BackendClock::Manual(t) = &mut self.clock {
            *t += dt.value();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockSysfs;
    use pap_telemetry::health::SensorState;

    fn manual(opts_dry: bool, mock: &MockSysfs) -> LinuxBackend {
        LinuxBackend::probe(
            mock.root(),
            BackendOptions {
                dry_run: opts_dry,
                write_mode: WriteMode::Auto,
                clock: BackendClock::manual(),
            },
        )
        .expect("probe fixture")
    }

    #[test]
    fn probes_intel_fixture_and_synthesizes_platform() {
        let mock = MockSysfs::intel(4);
        let b = manual(false, &mock);
        assert_eq!(b.platform().num_cores, 4);
        assert_eq!(b.platform().vendor, Vendor::Intel);
        assert_eq!(b.platform().grid.min().khz(), 800_000);
        assert_eq!(b.platform().grid.max().khz(), 3_000_000);
        assert!(b.describe().contains("rapl:package-0"), "{}", b.describe());
    }

    #[test]
    fn apply_writes_and_sample_reads_back() {
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        let action = ControlAction {
            freqs: vec![KiloHertz(1_200_000), KiloHertz(2_600_000)],
            parked: vec![false, false],
        };
        b.apply(&action).unwrap();
        // The fixture "hardware" settles on the programmed frequencies.
        mock.set_cur_khz(0, 1_200_000);
        mock.set_cur_khz(1, 2_600_000);
        mock.add_package_energy_uj(20_000_000); // 20 J over the next 1 s
        b.advance(Seconds(1.0));
        let s = b.sample().expect("time advanced");
        assert_eq!(s.cores[0].rates.active_freq.khz(), 1_200_000);
        assert_eq!(s.cores[1].rates.active_freq.khz(), 2_600_000);
        assert_eq!(s.cores[0].requested_freq.khz(), 1_200_000);
        assert!((s.package_power.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn dry_run_reads_everything_but_writes_nothing() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let before = root
            .read_string("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
            .unwrap();
        let mut b = manual(true, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(1_000_000), KiloHertz(1_000_000)],
            parked: vec![false, false],
        })
        .unwrap();
        let after = root
            .read_string("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
            .unwrap();
        assert_eq!(before, after, "dry-run must not touch sysfs");
        // Telemetry still works.
        mock.add_package_energy_uj(5_000_000);
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert!((s.package_power.value() - 5.0).abs() < 1e-9);
        // And requested_freq reflects the (unwritten) targets.
        assert_eq!(s.cores[0].requested_freq.khz(), 1_000_000);
    }

    #[test]
    fn parked_cores_pin_to_the_grid_floor() {
        let mock = MockSysfs::intel(2);
        let mut b = manual(false, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(2_000_000), KiloHertz(2_000_000)],
            parked: vec![true, false],
        })
        .unwrap();
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
                .unwrap(),
            800_000
        );
    }

    #[test]
    fn vanishing_energy_counter_degrades_health_not_the_loop() {
        let mock = MockSysfs::intel(1);
        let mut b = manual(false, &mock);
        mock.add_package_energy_uj(10_000_000);
        b.advance(Seconds(1.0));
        assert!((b.sample().unwrap().package_power.value() - 10.0).abs() < 1e-9);

        // The counter file disappears mid-run (driver unbind).
        mock.remove("sys/class/powercap/intel-rapl:0/energy_uj");
        for _ in 0..3 {
            b.advance(Seconds(1.0));
            let s = b.sample().expect("loop keeps producing samples");
            assert!(
                (s.package_power.value() - 10.0).abs() < 1e-9,
                "holds last known power"
            );
        }
        let h = b.health().sensor(SensorId::PackagePower).unwrap();
        assert_eq!(h.state, SensorState::Unhealthy, "demoted after 3 failures");

        // Driver rebinds: the meter's held snapshot integrates the gap.
        mock.restore_package_energy();
        mock.add_package_energy_uj(40_000_000);
        b.advance(Seconds(1.0));
        let s = b.sample().unwrap();
        assert!(
            (s.package_power.value() - 10.0).abs() < 1e-9,
            "40 J over the 4 s since the last good read, got {}",
            s.package_power
        );
    }

    #[test]
    fn amd_fixture_reports_per_core_power() {
        let mock = MockSysfs::amd(2);
        let mut b = manual(false, &mock);
        assert_eq!(b.platform().vendor, Vendor::Amd);
        assert!(b.platform().per_core_power);
        mock.add_socket_energy_uj(30_000_000);
        mock.add_core_energy_uj(0, 12_000_000);
        mock.add_core_energy_uj(1, 6_000_000);
        b.advance(Seconds(2.0));
        let s = b.sample().unwrap();
        assert!((s.package_power.value() - 15.0).abs() < 1e-9);
        assert!((s.cores[0].power.unwrap().value() - 6.0).abs() < 1e-9);
        assert!((s.cores[1].power.unwrap().value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn schedutil_host_applies_via_max_freq_clamp() {
        let mock = MockSysfs::amd(1);
        let mut b = manual(false, &mock);
        b.apply(&ControlAction {
            freqs: vec![KiloHertz(1_800_000)],
            parked: vec![false],
        })
        .unwrap();
        assert_eq!(
            mock.root()
                .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq")
                .unwrap(),
            1_800_000,
            "non-userspace governor -> ceiling clamp"
        );
    }

    #[test]
    fn zero_interval_sample_is_none() {
        let mock = MockSysfs::intel(1);
        let mut b = manual(false, &mock);
        assert!(b.sample().is_none(), "no time has passed");
    }
}
