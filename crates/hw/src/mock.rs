//! Tempdir-backed mock sysfs trees for offline testing.
//!
//! [`MockSysfs`] materialises a realistic slice of a Linux sysfs under a
//! private temp directory and hands out a [`SysfsRoot`] pointing at it,
//! so every code path in this crate — discovery, reads, frequency
//! writes, counter wraps, files vanishing mid-run — runs in plain CI
//! with no hardware, no privileges and no external crates. Two layouts
//! mirror the two hardware families the backend supports:
//!
//! * [`MockSysfs::intel`] — `acpi-cpufreq` policies with the
//!   `userspace` governor plus an `intel-rapl:0` powercap package zone
//!   (with a `core` subzone) whose `energy_uj` wraps at the advertised
//!   `max_energy_range_uj`;
//! * [`MockSysfs::amd`] — the same cpufreq shape under `schedutil`
//!   plus an `amd_energy`-style hwmon device with a labelled socket
//!   accumulator and per-core `EcoreNNN` channels (and a labelless
//!   `k10temp` device that discovery must skip).
//!
//! The directory is removed on drop.

use std::cell::Cell;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::sysfs::SysfsRoot;

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// kHz hardware floor used by both fixture layouts.
pub const FIXTURE_HW_MIN_KHZ: u64 = 800_000;
/// kHz hardware ceiling used by both fixture layouts.
pub const FIXTURE_HW_MAX_KHZ: u64 = 3_000_000;
/// Wrap range of the fixture RAPL package zone (a realistic
/// non-power-of-two value as advertised by real parts).
pub const FIXTURE_RAPL_RANGE_UJ: u64 = 262_143_328_850;

/// A mock sysfs tree on disk. See the module docs.
#[derive(Debug)]
pub struct MockSysfs {
    dir: PathBuf,
    package_uj: Cell<u64>,
    socket_uj: Cell<u64>,
    core_uj: Vec<Cell<u64>>,
    /// Cumulative (busy, idle) jiffies per CPU, mirrored into
    /// `proc/stat` on every change.
    cpu_jiffies: Vec<Cell<(u64, u64)>>,
}

impl MockSysfs {
    fn fresh(tag: &str) -> MockSysfs {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pap-hw-mock-{tag}-{}-{id}", std::process::id()));
        fs::create_dir_all(&dir).expect("create mock sysfs dir");
        MockSysfs {
            dir,
            package_uj: Cell::new(0),
            socket_uj: Cell::new(0),
            core_uj: Vec::new(),
            cpu_jiffies: Vec::new(),
        }
    }

    /// An empty tree: no cpufreq, no powercap, no hwmon.
    pub fn empty() -> MockSysfs {
        MockSysfs::fresh("empty")
    }

    /// An Intel-style host: `num_cpus` cpufreq policies under the
    /// `userspace` governor and a RAPL package zone with a `core`
    /// subzone.
    pub fn intel(num_cpus: usize) -> MockSysfs {
        let mut mock = MockSysfs::fresh("intel");
        mock.put_cpufreq(num_cpus, "acpi-cpufreq", "userspace");
        mock.put("sys/class/powercap/intel-rapl:0/name", "package-0");
        mock.put(
            "sys/class/powercap/intel-rapl:0/max_energy_range_uj",
            &FIXTURE_RAPL_RANGE_UJ.to_string(),
        );
        mock.put("sys/class/powercap/intel-rapl:0/energy_uj", "0");
        mock.put("sys/class/powercap/intel-rapl:0:0/name", "core");
        mock.put(
            "sys/class/powercap/intel-rapl:0:0/max_energy_range_uj",
            &FIXTURE_RAPL_RANGE_UJ.to_string(),
        );
        mock.put("sys/class/powercap/intel-rapl:0:0/energy_uj", "0");
        mock
    }

    /// An AMD-style host: `num_cpus` cpufreq policies under
    /// `schedutil`, a labelless `k10temp` hwmon device, and an
    /// `amd_energy` device with an `Esocket0` accumulator plus one
    /// `EcoreNNN` channel per CPU.
    pub fn amd(num_cpus: usize) -> MockSysfs {
        let mut mock = MockSysfs::fresh("amd");
        mock.put_cpufreq(num_cpus, "acpi-cpufreq", "schedutil");
        // A temperature-only device discovery must skip.
        mock.put("sys/class/hwmon/hwmon0/name", "k10temp");
        mock.put("sys/class/hwmon/hwmon0/temp1_input", "45000");
        // amd_energy: energy1 = socket, energy2.. = cores.
        mock.put("sys/class/hwmon/hwmon1/name", "amd_energy");
        mock.put("sys/class/hwmon/hwmon1/energy1_label", "Esocket0");
        mock.put("sys/class/hwmon/hwmon1/energy1_input", "0");
        for c in 0..num_cpus {
            mock.put(
                &format!("sys/class/hwmon/hwmon1/energy{}_label", c + 2),
                &format!("Ecore{c:03}"),
            );
            mock.put(
                &format!("sys/class/hwmon/hwmon1/energy{}_input", c + 2),
                "0",
            );
            mock.core_uj.push(Cell::new(0));
        }
        mock
    }

    /// An AMD-style host whose only telemetry is an instantaneous
    /// `power1_input` channel (zenpower-style), no energy accumulator.
    pub fn amd_power_only(num_cpus: usize) -> MockSysfs {
        let mut mock = MockSysfs::fresh("amdp");
        mock.put_cpufreq(num_cpus, "acpi-cpufreq", "schedutil");
        mock.put("sys/class/hwmon/hwmon0/name", "zenpower");
        mock.put("sys/class/hwmon/hwmon0/power1_input", "0");
        mock
    }

    fn put_cpufreq(&mut self, num_cpus: usize, driver: &str, governor: &str) {
        for cpu in 0..num_cpus {
            // Hotplug control file — the kernel exposes it for every CPU
            // except the boot CPU.
            if cpu > 0 {
                self.put(&format!("sys/devices/system/cpu/cpu{cpu}/online"), "1");
            }
            self.cpu_jiffies.push(Cell::new((0, 0)));
            let base = format!("sys/devices/system/cpu/cpu{cpu}/cpufreq");
            self.put(&format!("{base}/scaling_driver"), driver);
            self.put(&format!("{base}/scaling_governor"), governor);
            self.put(
                &format!("{base}/scaling_available_governors"),
                "conservative ondemand userspace powersave performance schedutil",
            );
            self.put(&format!("{base}/scaling_cur_freq"), "2000000");
            self.put(
                &format!("{base}/scaling_min_freq"),
                &FIXTURE_HW_MIN_KHZ.to_string(),
            );
            self.put(
                &format!("{base}/scaling_max_freq"),
                &FIXTURE_HW_MAX_KHZ.to_string(),
            );
            self.put(
                &format!("{base}/cpuinfo_min_freq"),
                &FIXTURE_HW_MIN_KHZ.to_string(),
            );
            self.put(
                &format!("{base}/cpuinfo_max_freq"),
                &FIXTURE_HW_MAX_KHZ.to_string(),
            );
            self.put(&format!("{base}/scaling_setspeed"), "<unsupported>");
        }
        self.write_proc_stat();
    }

    /// Rewrite `proc/stat` from the tracked jiffy counters, in the
    /// kernel's format (aggregate `cpu ` line first, then per-CPU
    /// lines, then unrelated counters a parser must skip).
    fn write_proc_stat(&self) {
        let (busy, idle) = self.cpu_jiffies.iter().fold((0u64, 0u64), |(b, i), cell| {
            let (cb, ci) = cell.get();
            (b + cb, i + ci)
        });
        let mut text = format!("cpu  {busy} 0 0 {idle} 0 0 0 0 0 0");
        for (cpu, cell) in self.cpu_jiffies.iter().enumerate() {
            let (cb, ci) = cell.get();
            text.push_str(&format!("\ncpu{cpu} {cb} 0 0 {ci} 0 0 0 0 0 0"));
        }
        text.push_str("\nintr 0\nctxt 0\nbtime 0");
        self.put("proc/stat", &text);
    }

    /// Advance CPU `cpu`'s cumulative jiffy counters by `busy` working
    /// and `idle` idle ticks, simulating the interval's utilization
    /// (the backend derives C0 residency from the deltas).
    pub fn advance_cpu_jiffies(&self, cpu: usize, busy: u64, idle: u64) {
        let cell = &self.cpu_jiffies[cpu];
        let (b, i) = cell.get();
        cell.set((b + busy, i + idle));
        self.write_proc_stat();
    }

    /// The [`SysfsRoot`] for this tree.
    pub fn root(&self) -> SysfsRoot {
        SysfsRoot::new(&self.dir)
    }

    /// Create (or overwrite) file `rel` with `contents` plus the
    /// trailing newline sysfs emits.
    pub fn put(&self, rel: &str, contents: &str) {
        let path = self.dir.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create mock dirs");
        }
        fs::write(&path, format!("{contents}\n")).expect("write mock file");
    }

    /// Delete file `rel`, simulating a driver unbind / CPU offline.
    pub fn remove(&self, rel: &str) {
        let _ = fs::remove_file(self.dir.join(rel));
    }

    // ---- Intel (powercap) counter control --------------------------

    /// The fixture package zone's wrap range in µJ.
    pub fn package_max_energy_range_uj(&self) -> u64 {
        FIXTURE_RAPL_RANGE_UJ
    }

    /// Set the RAPL package counter to an absolute µJ value.
    pub fn set_package_energy_uj(&self, uj: u64) {
        self.package_uj.set(uj);
        self.put("sys/class/powercap/intel-rapl:0/energy_uj", &uj.to_string());
    }

    /// Advance the RAPL package counter by `uj`, wrapping at the
    /// advertised range exactly like the kernel counter does.
    pub fn add_package_energy_uj(&self, uj: u64) {
        let next = (self.package_uj.get() + uj) % (FIXTURE_RAPL_RANGE_UJ + 1);
        self.set_package_energy_uj(next);
    }

    /// Re-materialise the package `energy_uj` file at the tracked
    /// counter value (driver rebind after [`MockSysfs::remove`]).
    pub fn restore_package_energy(&self) {
        self.set_package_energy_uj(self.package_uj.get());
    }

    // ---- AMD (hwmon) counter control -------------------------------

    /// Set the hwmon socket accumulator to an absolute µJ value.
    pub fn set_socket_energy_uj(&self, uj: u64) {
        self.socket_uj.set(uj);
        self.put("sys/class/hwmon/hwmon1/energy1_input", &uj.to_string());
    }

    /// Advance the hwmon socket accumulator by `uj` (wraps at u64).
    pub fn add_socket_energy_uj(&self, uj: u64) {
        self.set_socket_energy_uj(self.socket_uj.get().wrapping_add(uj));
    }

    /// Advance core `c`'s hwmon accumulator by `uj`.
    pub fn add_core_energy_uj(&self, c: usize, uj: u64) {
        let cell = &self.core_uj[c];
        cell.set(cell.get().wrapping_add(uj));
        self.put(
            &format!("sys/class/hwmon/hwmon1/energy{}_input", c + 2),
            &cell.get().to_string(),
        );
    }

    /// Set the instantaneous `power1_input` channel in µW
    /// ([`MockSysfs::amd_power_only`] layout).
    pub fn set_hwmon_power_uw(&self, uw: u64) {
        self.put("sys/class/hwmon/hwmon0/power1_input", &uw.to_string());
    }

    // ---- cpufreq control -------------------------------------------

    /// Set `scaling_cur_freq` of `cpu`, simulating the governor/hardware
    /// settling on a frequency.
    pub fn set_cur_khz(&self, cpu: usize, khz: u64) {
        self.put(
            &format!("sys/devices/system/cpu/cpu{cpu}/cpufreq/scaling_cur_freq"),
            &khz.to_string(),
        );
    }
}

impl Drop for MockSysfs {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_trees_are_isolated_and_cleaned_up() {
        let a = MockSysfs::intel(1);
        let b = MockSysfs::intel(1);
        assert_ne!(a.dir, b.dir);
        let dir = a.dir.clone();
        assert!(dir.exists());
        drop(a);
        assert!(!dir.exists(), "tempdir removed on drop");
        assert!(b.dir.exists(), "sibling tree untouched");
    }

    #[test]
    fn package_counter_wraps_like_the_kernel() {
        let mock = MockSysfs::intel(1);
        mock.set_package_energy_uj(FIXTURE_RAPL_RANGE_UJ);
        mock.add_package_energy_uj(1);
        assert_eq!(
            mock.root()
                .read_u64("sys/class/powercap/intel-rapl:0/energy_uj")
                .unwrap(),
            0,
            "counter counts 0..=max then wraps to 0"
        );
    }
}
