//! AMD energy/power telemetry via the hwmon sysfs class:
//! `/sys/class/hwmon/hwmon*`.
//!
//! AMD parts expose package (and on `amd_energy`, per-core) energy as
//! hwmon channels rather than powercap zones. Per the sysfs hwmon ABI,
//! `energy*_input` is in **microjoules** and `power*_input` in
//! **microwatts**; some out-of-tree sensors report milliwatts, so the
//! power unit is configurable. Channel labels identify what a channel
//! measures: `amd_energy` labels the socket accumulator `Esocket0` and
//! per-core accumulators `Ecore000`, `Ecore001`, ….

use pap_simcpu::units::{Seconds, Watts};

use crate::sysfs::{HwError, SysfsRoot};

/// Base of the hwmon tree.
pub const HWMON_DIR: &str = "sys/class/hwmon";

/// Unit of a `power*_input` channel. The ABI says microwatts; the
/// millwatt variant covers nonconforming drivers (BMC bridges, some
/// out-of-tree sensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerUnit {
    /// Microwatts (the sysfs hwmon ABI).
    MicroWatts,
    /// Milliwatts (nonconforming drivers).
    MilliWatts,
}

impl PowerUnit {
    /// Convert a raw channel reading to watts.
    pub fn to_watts(self, raw: u64) -> Watts {
        match self {
            PowerUnit::MicroWatts => Watts(raw as f64 * 1e-6),
            PowerUnit::MilliWatts => Watts(raw as f64 * 1e-3),
        }
    }
}

/// One hwmon device directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwmonDevice {
    /// Directory name, e.g. `hwmon2`.
    pub key: String,
    /// Driver name from the `name` attribute, e.g. `amd_energy`,
    /// `zenpower`, `k10temp`.
    pub name: String,
}

impl HwmonDevice {
    fn file(&self, name: &str) -> String {
        format!("{HWMON_DIR}/{}/{name}", self.key)
    }

    /// Label of channel file `chan` (e.g. `energy1`), if present.
    pub fn label(&self, root: &SysfsRoot, chan: &str) -> Option<String> {
        root.read_string(&self.file(&format!("{chan}_label"))).ok()
    }
}

/// All hwmon devices, in directory order.
pub fn discover(root: &SysfsRoot) -> Result<Vec<HwmonDevice>, HwError> {
    let entries = match root.list(HWMON_DIR) {
        Ok(e) => e,
        Err(HwError::NotFound(_)) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for key in entries {
        if !key.starts_with("hwmon") {
            continue;
        }
        let name = root
            .read_string(&format!("{HWMON_DIR}/{key}/name"))
            .unwrap_or_default();
        out.push(HwmonDevice { key, name });
    }
    Ok(out)
}

/// A stateful interval-power meter over one hwmon channel: either a
/// wrapping microjoule energy accumulator or an instantaneous power
/// channel.
#[derive(Debug, Clone)]
pub enum HwmonMeter {
    /// An `energy*_input` accumulator in µJ; interval power is the
    /// wrapped delta over the interval. hwmon advertises no wrap range,
    /// so deltas wrap at the counter's natural 64-bit width.
    Energy {
        /// Channel file, sysfs-relative.
        file: String,
        /// Previous snapshot in µJ.
        prev_uj: u64,
    },
    /// A `power*_input` instantaneous channel.
    Power {
        /// Channel file, sysfs-relative.
        file: String,
        /// Channel unit.
        unit: PowerUnit,
    },
}

impl HwmonMeter {
    /// An energy meter over `dev`'s channel `chan` (e.g. `energy1`),
    /// snapshotting the current counter.
    pub fn energy(root: &SysfsRoot, dev: &HwmonDevice, chan: &str) -> Result<HwmonMeter, HwError> {
        let file = dev.file(&format!("{chan}_input"));
        let prev_uj = root.read_u64(&file)?;
        Ok(HwmonMeter::Energy { file, prev_uj })
    }

    /// A power meter over `dev`'s channel `chan` (e.g. `power1`).
    pub fn power_channel(
        root: &SysfsRoot,
        dev: &HwmonDevice,
        chan: &str,
        unit: PowerUnit,
    ) -> Result<HwmonMeter, HwError> {
        let file = dev.file(&format!("{chan}_input"));
        root.read_u64(&file)?; // probe readability
        Ok(HwmonMeter::Power { file, unit })
    }

    /// The package-level meter for this host, preferring an energy
    /// accumulator labelled `Esocket*`/`package` over a bare
    /// `energy1_input` over a `power1_input` channel. `None` when no
    /// hwmon device offers either.
    pub fn package(root: &SysfsRoot) -> Result<Option<HwmonMeter>, HwError> {
        let devices = discover(root)?;
        // Pass 1: a labelled socket/package energy accumulator.
        for dev in &devices {
            for chan_idx in 1..=64u32 {
                let chan = format!("energy{chan_idx}");
                if !root.exists(&dev.file(&format!("{chan}_input"))) {
                    break;
                }
                if let Some(label) = dev.label(root, &chan) {
                    let l = label.to_ascii_lowercase();
                    if l.starts_with("esocket") || l.contains("package") || l.contains("socket") {
                        return Ok(Some(HwmonMeter::energy(root, dev, &chan)?));
                    }
                }
            }
        }
        // Pass 2: any energy accumulator.
        for dev in &devices {
            if root.exists(&dev.file("energy1_input")) {
                return Ok(Some(HwmonMeter::energy(root, dev, "energy1")?));
            }
        }
        // Pass 3: an instantaneous power channel (ABI microwatts).
        for dev in &devices {
            if root.exists(&dev.file("power1_input")) {
                return Ok(Some(HwmonMeter::power_channel(
                    root,
                    dev,
                    "power1",
                    PowerUnit::MicroWatts,
                )?));
            }
        }
        Ok(None)
    }

    /// Per-core energy meters from an `amd_energy`-style device whose
    /// channels are labelled `EcoreNNN`; returned as `(core, meter)`.
    pub fn cores(root: &SysfsRoot) -> Result<Vec<(usize, HwmonMeter)>, HwError> {
        let mut out = Vec::new();
        for dev in discover(root)? {
            for chan_idx in 1..=1024u32 {
                let chan = format!("energy{chan_idx}");
                if !root.exists(&dev.file(&format!("{chan}_input"))) {
                    break;
                }
                if let Some(label) = dev.label(root, &chan) {
                    if let Some(n) = label
                        .strip_prefix("Ecore")
                        .and_then(|s| s.parse::<usize>().ok())
                    {
                        out.push((n, HwmonMeter::energy(root, &dev, &chan)?));
                    }
                }
            }
            if !out.is_empty() {
                break;
            }
        }
        out.sort_by_key(|(n, _)| *n);
        Ok(out)
    }

    /// Average power over `dt` since the previous call. Energy meters
    /// advance their snapshot on success and hold it on failure, like
    /// [`crate::rapl::RaplMeter`].
    pub fn power(&mut self, root: &SysfsRoot, dt: Seconds) -> Result<Watts, HwError> {
        match self {
            HwmonMeter::Energy { file, prev_uj } => {
                let now = root.read_u64(file)?;
                let delta = now.wrapping_sub(*prev_uj);
                *prev_uj = now;
                Ok(Watts(delta as f64 * 1e-6 / dt.value()))
            }
            HwmonMeter::Power { file, unit } => {
                let raw = root.read_u64(file)?;
                Ok(unit.to_watts(raw))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockSysfs;

    #[test]
    fn microwatt_and_milliwatt_parsing() {
        assert!((PowerUnit::MicroWatts.to_watts(15_500_000).value() - 15.5).abs() < 1e-9);
        assert!((PowerUnit::MilliWatts.to_watts(15_500).value() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn amd_fixture_prefers_socket_energy_accumulator() {
        let mock = MockSysfs::amd(4);
        let root = mock.root();
        let mut m = HwmonMeter::package(&root).unwrap().expect("amd fixture");
        assert!(matches!(m, HwmonMeter::Energy { .. }));
        mock.add_socket_energy_uj(42_000_000); // 42 J
        let p = m.power(&root, Seconds(2.0)).unwrap();
        assert!((p.value() - 21.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn per_core_channels_resolve_by_label() {
        let mock = MockSysfs::amd(4);
        let root = mock.root();
        let cores = HwmonMeter::cores(&root).unwrap();
        assert_eq!(cores.len(), 4);
        assert_eq!(cores[0].0, 0);
        assert_eq!(cores[3].0, 3);
        let mut m = cores.into_iter().next().unwrap().1;
        mock.add_core_energy_uj(0, 5_000_000);
        let p = m.power(&root, Seconds(1.0)).unwrap();
        assert!((p.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn power_channel_fallback_reads_instantaneous_microwatts() {
        let mock = MockSysfs::amd_power_only(2);
        let root = mock.root();
        let mut m = HwmonMeter::package(&root).unwrap().expect("power channel");
        assert!(matches!(m, HwmonMeter::Power { .. }));
        mock.set_hwmon_power_uw(33_250_000);
        let p = m.power(&root, Seconds(1.0)).unwrap();
        assert!((p.value() - 33.25).abs() < 1e-9);
    }

    #[test]
    fn no_hwmon_tree_is_none() {
        let mock = MockSysfs::empty();
        assert!(HwmonMeter::package(&mock.root()).unwrap().is_none());
        assert!(HwmonMeter::cores(&mock.root()).unwrap().is_empty());
    }

    #[test]
    fn energy_counter_u64_wraparound() {
        let mock = MockSysfs::amd(1);
        let root = mock.root();
        mock.set_socket_energy_uj(u64::MAX - 999);
        let mut m = HwmonMeter::package(&root).unwrap().unwrap();
        mock.set_socket_energy_uj(1_000); // wraps past u64::MAX
        let p = m.power(&root, Seconds(1.0)).unwrap();
        assert!((p.value() - 2e-3).abs() < 1e-12, "{}", p.value());
    }
}
