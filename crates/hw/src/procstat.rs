//! Per-CPU utilization from `/proc/stat` jiffy deltas.
//!
//! The daemon's IPS-based policies need to know how busy each core
//! actually is; cpufreq alone only says how fast it *would* run. The
//! kernel's `/proc/stat` exposes cumulative per-CPU jiffy counters that
//! every Linux host has, need no privileges, and — unlike perf events —
//! no file descriptors per core. One read per control interval and a
//! delta against the previous read yields the C0 (busy) fraction.
//!
//! Reads go through the injected [`SysfsRoot`] like every other file
//! this crate touches, so the mock-sysfs harness can script utilization
//! in offline CI ([`crate::mock::MockSysfs::advance_cpu_jiffies`]).

use crate::sysfs::{HwError, SysfsRoot};

/// Path of the stat file under the injected root.
pub const PROC_STAT: &str = "proc/stat";

/// Cumulative jiffy counters of one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTicks {
    /// Jiffies spent doing work (user + nice + system + irq + softirq
    /// + steal).
    pub busy: u64,
    /// All jiffies (busy + idle + iowait).
    pub total: u64,
}

impl CpuTicks {
    /// Busy fraction over the interval since `prev`, or `None` when no
    /// jiffy elapsed (interval shorter than the kernel tick) or the
    /// counters went backwards (CPU re-onlined, counter reset).
    pub fn busy_fraction_since(&self, prev: CpuTicks) -> Option<f64> {
        let total = self.total.checked_sub(prev.total)?;
        let busy = self.busy.checked_sub(prev.busy)?;
        if total == 0 {
            return None;
        }
        Some((busy as f64 / total as f64).clamp(0.0, 1.0))
    }
}

/// Read `/proc/stat` and extract per-CPU counters, ascending by CPU
/// index. The aggregate `cpu ` line is skipped; CPUs currently offline
/// are simply absent (kernel semantics).
pub fn read(root: &SysfsRoot) -> Result<Vec<(usize, CpuTicks)>, HwError> {
    Ok(parse(&root.read_string(PROC_STAT)?))
}

/// Parse the text of `/proc/stat`. Malformed lines are skipped: a
/// telemetry reader must degrade, not panic, on a kernel format drift.
fn parse(text: &str) -> Vec<(usize, CpuTicks)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut fields = line.split_whitespace();
        let Some(cpu) = fields
            .next()
            .and_then(|tag| tag.strip_prefix("cpu"))
            .and_then(|n| n.parse::<usize>().ok())
        else {
            continue;
        };
        // user nice system idle iowait irq softirq steal [guest ...]
        let mut v = [0u64; 8];
        let mut seen = 0;
        for (slot, field) in v.iter_mut().zip(&mut fields) {
            let Ok(n) = field.parse::<u64>() else {
                break;
            };
            *slot = n;
            seen += 1;
        }
        if seen < 4 {
            continue; // need at least user..idle
        }
        let busy = v[0] + v[1] + v[2] + v[5] + v[6] + v[7];
        let total = busy + v[3] + v[4];
        out.push((cpu, CpuTicks { busy, total }));
    }
    out.sort_unstable_by_key(|&(cpu, _)| cpu);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
cpu  1000 20 300 5000 40 5 6 7 0 0
cpu0 500 10 150 2500 20 2 3 4 0 0
cpu1 500 10 150 2500 20 3 3 3 0 0
intr 12345
ctxt 6789
";

    #[test]
    fn parses_per_cpu_lines_and_skips_the_aggregate() {
        let ticks = parse(SAMPLE);
        assert_eq!(ticks.len(), 2);
        let (cpu, t) = ticks[0];
        assert_eq!(cpu, 0);
        assert_eq!(t.busy, 500 + 10 + 150 + 2 + 3 + 4);
        assert_eq!(t.total, t.busy + 2500 + 20);
    }

    #[test]
    fn busy_fraction_from_deltas() {
        let prev = CpuTicks {
            busy: 100,
            total: 1000,
        };
        let now = CpuTicks {
            busy: 160,
            total: 1100,
        };
        assert!((now.busy_fraction_since(prev).unwrap() - 0.6).abs() < 1e-12);
        // No elapsed jiffies: undecidable, not 0/0 = NaN.
        assert_eq!(now.busy_fraction_since(now), None);
        // Counter regression (re-onlined CPU): undecidable.
        assert_eq!(prev.busy_fraction_since(now), None);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let ticks = parse("cpu0 bogus\ncpu1 1 2 3\ncpu2 10 0 10 80 0 0 0 0\nnoise\n");
        assert_eq!(ticks.len(), 1, "only the complete line survives: {ticks:?}");
        assert_eq!(ticks[0].0, 2);
    }

    #[test]
    fn out_of_order_cpus_are_sorted() {
        let ticks = parse("cpu3 1 0 0 9 0 0 0 0\ncpu1 2 0 0 8 0 0 0 0\n");
        assert_eq!(ticks[0].0, 1);
        assert_eq!(ticks[1].0, 3);
    }
}
