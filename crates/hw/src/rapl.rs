//! Intel RAPL through the powercap sysfs interface:
//! `/sys/class/powercap/intel-rapl:*`.
//!
//! Each powercap zone exposes a microjoule energy counter (`energy_uj`)
//! that wraps at an advertised per-zone range
//! (`max_energy_range_uj`) — *not* the raw 32-bit MSR format the
//! simulator emulates. Interval power therefore goes through
//! [`pap_telemetry::counters::power_from_energy_uj`], the wrap-aware
//! µJ variant.

use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::counters::power_from_energy_uj;

use crate::sysfs::{HwError, SysfsRoot};

/// Base of the powercap tree.
pub const POWERCAP_DIR: &str = "sys/class/powercap";

/// One discovered RAPL zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaplDomain {
    /// Zone directory name, e.g. `intel-rapl:0` or `intel-rapl:0:0`.
    pub key: String,
    /// Zone name from the `name` attribute, e.g. `package-0`, `core`,
    /// `dram`.
    pub name: String,
    /// The counter's wrap range in µJ.
    pub max_energy_range_uj: u64,
}

impl RaplDomain {
    /// Whether this is a package-level zone.
    pub fn is_package(&self) -> bool {
        self.name.starts_with("package")
    }

    fn file(&self, name: &str) -> String {
        format!("{POWERCAP_DIR}/{}/{name}", self.key)
    }

    /// Read the zone's current energy counter in µJ.
    pub fn energy_uj(&self, root: &SysfsRoot) -> Result<u64, HwError> {
        root.read_u64(&self.file("energy_uj"))
    }
}

/// All RAPL zones under the powercap tree, top-level zones first (the
/// directory sort puts `intel-rapl:0` before `intel-rapl:0:0`).
pub fn discover(root: &SysfsRoot) -> Result<Vec<RaplDomain>, HwError> {
    let entries = match root.list(POWERCAP_DIR) {
        Ok(e) => e,
        Err(HwError::NotFound(_)) => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for key in entries {
        if !key.starts_with("intel-rapl:") {
            continue;
        }
        // A zone directory without its metadata files (driver mid-unbind)
        // is skipped rather than failing the whole discovery.
        let name = match root.read_string(&format!("{POWERCAP_DIR}/{key}/name")) {
            Ok(n) => n,
            Err(HwError::NotFound(_)) => continue,
            Err(e) => return Err(e),
        };
        let max_energy_range_uj =
            match root.read_u64(&format!("{POWERCAP_DIR}/{key}/max_energy_range_uj")) {
                Ok(v) => v,
                Err(HwError::NotFound(_)) => continue,
                Err(e) => return Err(e),
            };
        out.push(RaplDomain {
            key,
            name,
            max_energy_range_uj,
        });
    }
    Ok(out)
}

/// Stateful interval-power meter over one RAPL zone.
#[derive(Debug, Clone)]
pub struct RaplMeter {
    domain: RaplDomain,
    prev_uj: u64,
}

impl RaplMeter {
    /// Snapshot the zone's counter and start metering.
    pub fn new(root: &SysfsRoot, domain: RaplDomain) -> Result<RaplMeter, HwError> {
        let prev_uj = domain.energy_uj(root)?;
        Ok(RaplMeter { domain, prev_uj })
    }

    /// A meter over the first package zone, or `None` when the host has
    /// no RAPL.
    pub fn package(root: &SysfsRoot) -> Result<Option<RaplMeter>, HwError> {
        match discover(root)?.into_iter().find(|d| d.is_package()) {
            Some(d) => Ok(Some(RaplMeter::new(root, d)?)),
            None => Ok(None),
        }
    }

    /// The zone being metered.
    pub fn domain(&self) -> &RaplDomain {
        &self.domain
    }

    /// Average power since the previous call, over an interval of `dt`.
    /// Advances the snapshot on success; a failed read leaves it
    /// untouched so the next successful read still yields a correct
    /// (longer-interval) average.
    pub fn power(&mut self, root: &SysfsRoot, dt: Seconds) -> Result<Watts, HwError> {
        let now_uj = self.domain.energy_uj(root)?;
        let p = power_from_energy_uj(self.prev_uj, now_uj, self.domain.max_energy_range_uj, dt);
        self.prev_uj = now_uj;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockSysfs;

    #[test]
    fn discovers_package_and_subzones() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let zones = discover(&root).unwrap();
        assert!(zones
            .iter()
            .any(|z| z.name == "package-0" && z.is_package()));
        assert!(zones.iter().any(|z| z.name == "core" && !z.is_package()));
    }

    #[test]
    fn no_powercap_tree_is_not_an_error() {
        let mock = MockSysfs::empty();
        assert!(discover(&mock.root()).unwrap().is_empty());
        assert!(RaplMeter::package(&mock.root()).unwrap().is_none());
    }

    #[test]
    fn interval_power_from_energy_deltas() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let mut m = RaplMeter::package(&root)
            .unwrap()
            .expect("intel fixture has rapl");
        mock.add_package_energy_uj(25_000_000); // 25 J
        let p = m.power(&root, Seconds(1.0)).unwrap();
        assert!((p.value() - 25.0).abs() < 1e-9, "{p}");
        // No further energy: zero watts.
        let p = m.power(&root, Seconds(1.0)).unwrap();
        assert_eq!(p.value(), 0.0);
    }

    #[test]
    fn counter_wrap_mid_run_is_handled() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let max = mock.package_max_energy_range_uj();
        // Park the counter 10 µJ below the range, then add 30 J.
        mock.set_package_energy_uj(max - 10);
        let mut m = RaplMeter::package(&root).unwrap().unwrap();
        mock.add_package_energy_uj(30_000_000);
        let p = m.power(&root, Seconds(2.0)).unwrap();
        assert!((p.value() - 15.0).abs() < 1e-6, "wrapped power {p}");
    }

    #[test]
    fn failed_read_keeps_the_snapshot() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let mut m = RaplMeter::package(&root).unwrap().unwrap();
        mock.add_package_energy_uj(10_000_000);
        mock.remove("sys/class/powercap/intel-rapl:0/energy_uj");
        assert!(matches!(
            m.power(&root, Seconds(1.0)),
            Err(HwError::NotFound(_))
        ));
        // File comes back (driver rebind): the accumulated 10 J over the
        // combined 2 s interval still reads correctly.
        mock.restore_package_energy();
        let p = m.power(&root, Seconds(2.0)).unwrap();
        assert!((p.value() - 5.0).abs() < 1e-9, "{p}");
    }
}
