//! The cpufreq sysfs interface: `/sys/devices/system/cpu/cpu*/cpufreq`.
//!
//! Reads the scaling driver, governor and current/min/max frequencies,
//! and writes per-core frequency targets. Two write strategies exist,
//! mirroring what real hosts offer:
//!
//! * **setspeed** — with the `userspace` governor active,
//!   `scaling_setspeed` programs the exact target (the paper's model of
//!   per-core DVFS control);
//! * **max-freq clamp** — with any other governor, `scaling_max_freq`
//!   caps the core from above. The governor still picks frequencies
//!   below the cap, which is the portable fallback on hosts running
//!   `schedutil`/`ondemand` (per "a single Linux command", clamping the
//!   ceiling is how operators apply fleet-wide efficiency settings).

use crate::sysfs::{HwError, SysfsRoot};

/// Base of the per-CPU tree.
pub const CPU_DIR: &str = "sys/devices/system/cpu";

/// One CPU's cpufreq policy state, read in a single pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuPolicy {
    /// CPU index (`cpuN`).
    pub cpu: usize,
    /// `scaling_driver` (e.g. `intel_pstate`, `acpi-cpufreq`,
    /// `amd-pstate-epp`).
    pub driver: String,
    /// `scaling_governor` (e.g. `performance`, `schedutil`,
    /// `userspace`).
    pub governor: String,
    /// `scaling_cur_freq` in kHz.
    pub cur_khz: u64,
    /// `scaling_min_freq` in kHz.
    pub min_khz: u64,
    /// `scaling_max_freq` in kHz.
    pub max_khz: u64,
    /// `cpuinfo_min_freq` in kHz (the hardware floor).
    pub hw_min_khz: u64,
    /// `cpuinfo_max_freq` in kHz (the hardware ceiling).
    pub hw_max_khz: u64,
}

/// How frequency targets are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Detect per CPU: `setspeed` when the `userspace` governor is
    /// active, otherwise clamp `scaling_max_freq`.
    Auto,
    /// Always write `scaling_setspeed` (requires the `userspace`
    /// governor).
    Setspeed,
    /// Always clamp via `scaling_max_freq`.
    MaxFreq,
}

fn cpufreq_file(cpu: usize, file: &str) -> String {
    format!("{CPU_DIR}/cpu{cpu}/cpufreq/{file}")
}

/// CPUs that expose a cpufreq policy directory, in ascending order.
pub fn cpus(root: &SysfsRoot) -> Result<Vec<usize>, HwError> {
    let mut out = Vec::new();
    for name in root.list(CPU_DIR)? {
        if let Some(n) = name
            .strip_prefix("cpu")
            .and_then(|s| s.parse::<usize>().ok())
        {
            if root.exists(&cpufreq_file(n, "scaling_driver")) {
                out.push(n);
            }
        }
    }
    out.sort_unstable();
    if out.is_empty() {
        return Err(HwError::Unsupported(format!(
            "no cpufreq policies under {}",
            root.path(CPU_DIR).display()
        )));
    }
    Ok(out)
}

/// Read one CPU's full policy state.
pub fn read_policy(root: &SysfsRoot, cpu: usize) -> Result<CpuPolicy, HwError> {
    Ok(CpuPolicy {
        cpu,
        driver: root.read_string(&cpufreq_file(cpu, "scaling_driver"))?,
        governor: root.read_string(&cpufreq_file(cpu, "scaling_governor"))?,
        cur_khz: root.read_u64(&cpufreq_file(cpu, "scaling_cur_freq"))?,
        min_khz: root.read_u64(&cpufreq_file(cpu, "scaling_min_freq"))?,
        max_khz: root.read_u64(&cpufreq_file(cpu, "scaling_max_freq"))?,
        hw_min_khz: root.read_u64(&cpufreq_file(cpu, "cpuinfo_min_freq"))?,
        hw_max_khz: root.read_u64(&cpufreq_file(cpu, "cpuinfo_max_freq"))?,
    })
}

/// The current frequency of `cpu` in kHz (`scaling_cur_freq`).
pub fn cur_khz(root: &SysfsRoot, cpu: usize) -> Result<u64, HwError> {
    root.read_u64(&cpufreq_file(cpu, "scaling_cur_freq"))
}

/// Governors this CPU's policy offers (`scaling_available_governors`),
/// or an empty list when the file is absent (e.g. `intel_pstate` active
/// mode offers a fixed pair).
pub fn available_governors(root: &SysfsRoot, cpu: usize) -> Vec<String> {
    root.read_string(&cpufreq_file(cpu, "scaling_available_governors"))
        .map(|s| s.split_whitespace().map(str::to_string).collect())
        .unwrap_or_default()
}

/// Read the current governor of `cpu`.
pub fn governor(root: &SysfsRoot, cpu: usize) -> Result<String, HwError> {
    root.read_string(&cpufreq_file(cpu, "scaling_governor"))
}

/// Switch `cpu` to `gov`.
pub fn set_governor(root: &SysfsRoot, cpu: usize, gov: &str) -> Result<(), HwError> {
    root.write(&cpufreq_file(cpu, "scaling_governor"), gov)
}

/// Program a frequency target on `cpu` according to `mode`. Returns
/// the file that was written (for tracing).
pub fn set_target(
    root: &SysfsRoot,
    cpu: usize,
    khz: u64,
    mode: WriteMode,
) -> Result<&'static str, HwError> {
    let use_setspeed = match mode {
        WriteMode::Setspeed => true,
        WriteMode::MaxFreq => false,
        WriteMode::Auto => governor(root, cpu)? == "userspace",
    };
    if use_setspeed {
        root.write(&cpufreq_file(cpu, "scaling_setspeed"), &khz.to_string())?;
        Ok("scaling_setspeed")
    } else {
        root.write(&cpufreq_file(cpu, "scaling_max_freq"), &khz.to_string())?;
        Ok("scaling_max_freq")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockSysfs;

    #[test]
    fn discovers_policies_and_reads_state() {
        let mock = MockSysfs::intel(4);
        let root = mock.root();
        assert_eq!(cpus(&root).unwrap(), vec![0, 1, 2, 3]);
        let p = read_policy(&root, 2).unwrap();
        assert_eq!(p.cpu, 2);
        assert_eq!(p.driver, "acpi-cpufreq");
        assert_eq!(p.governor, "userspace");
        assert_eq!(p.hw_min_khz, 800_000);
        assert_eq!(p.hw_max_khz, 3_000_000);
        assert!(available_governors(&root, 2)
            .iter()
            .any(|g| g == "userspace"));
    }

    #[test]
    fn setspeed_round_trip() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let file = set_target(&root, 1, 1_500_000, WriteMode::Auto).unwrap();
        assert_eq!(file, "scaling_setspeed", "userspace governor -> setspeed");
        assert_eq!(
            root.read_u64("sys/devices/system/cpu/cpu1/cpufreq/scaling_setspeed")
                .unwrap(),
            1_500_000
        );
    }

    #[test]
    fn non_userspace_governor_clamps_max_freq() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        set_governor(&root, 0, "schedutil").unwrap();
        let file = set_target(&root, 0, 2_000_000, WriteMode::Auto).unwrap();
        assert_eq!(file, "scaling_max_freq");
        assert_eq!(
            root.read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_max_freq")
                .unwrap(),
            2_000_000
        );
    }

    #[test]
    fn missing_cpufreq_is_unsupported() {
        let mock = MockSysfs::empty();
        let root = mock.root();
        assert!(matches!(
            cpus(&root),
            Err(HwError::NotFound(_)) | Err(HwError::Unsupported(_))
        ));
    }
}
