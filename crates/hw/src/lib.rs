//! `pap-hw` — the real Linux power backend.
//!
//! Everything else in this workspace runs the paper's per-application
//! power-delivery daemon against a *simulated* chip. This crate is the
//! bridge to real hardware: a [`backend::LinuxBackend`] implements the
//! same [`powerd::hw::PowerBackend`] trait the simulator backends do,
//! but reads and writes the live Linux sysfs:
//!
//! | Surface | Tree | Module |
//! |---|---|---|
//! | Frequency read/write | `/sys/devices/system/cpu/*/cpufreq` | [`cpufreq`] |
//! | Intel package energy | `/sys/class/powercap/intel-rapl*` | [`rapl`] |
//! | AMD package/core energy | `/sys/class/hwmon/hwmon*` | [`hwmon`] |
//! | Per-CPU utilization | `/proc/stat` | [`procstat`] |
//! | Core parking | `/sys/devices/system/cpu/*/online` | [`backend`] |
//!
//! Every path is resolved through an injectable [`sysfs::SysfsRoot`],
//! and [`mock::MockSysfs`] materialises Intel- and AMD-shaped fixture
//! trees in a tempdir, so the complete backend — discovery, telemetry,
//! counter wraps, frequency writes, sensors vanishing mid-run — is
//! exercised in offline CI with no hardware and no privileges.
//!
//! [`govcmp`] replays the paper's §2.2 governor comparison against
//! whichever tree the root points at.
//!
//! This crate has no dependencies beyond the workspace's own simulator,
//! telemetry and daemon crates.

pub mod backend;
pub mod cpufreq;
pub mod govcmp;
pub mod hwmon;
pub mod mock;
pub mod procstat;
pub mod rapl;
pub mod sysfs;

pub use backend::{BackendClock, BackendOptions, LinuxBackend};
pub use sysfs::{HwError, SysfsRoot};
