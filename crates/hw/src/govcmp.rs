//! Governor comparison replay (§2.2) against a real sysfs tree.
//!
//! The paper motivates per-application power delivery by showing what
//! stock cpufreq governors do to power and frequency. `govcmp` replays
//! that measurement on whatever host the backend is pointed at: for each
//! self-acting governor the policy offers, switch every CPU to it, let
//! it settle, sample package power and mean frequency for a fixed
//! window, then restore the original governors. With `dry_run` set it
//! never writes — it measures only the currently active governor, which
//! is the safe first run on a production host.
//!
//! Time is injected as a `wait` closure: real runs sleep, tests advance
//! mock counters, so the whole sweep is exercised offline.

use pap_simcpu::units::Seconds;

use crate::cpufreq;
use crate::hwmon::HwmonMeter;
use crate::rapl::RaplMeter;
use crate::sysfs::{HwError, SysfsRoot};

/// Governors worth comparing, in report order. `userspace` is excluded:
/// it does nothing without an external agent programming setspeed.
const CANDIDATES: [&str; 5] = [
    "performance",
    "ondemand",
    "conservative",
    "schedutil",
    "powersave",
];

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct GovCmpConfig {
    /// Measurement window per governor.
    pub duration: Seconds,
    /// Sample interval within the window.
    pub interval: Seconds,
    /// Never write sysfs; measure the active governor only.
    pub dry_run: bool,
}

impl Default for GovCmpConfig {
    fn default() -> GovCmpConfig {
        GovCmpConfig {
            duration: Seconds(10.0),
            interval: Seconds(1.0),
            dry_run: false,
        }
    }
}

/// One governor's measured row.
#[derive(Debug, Clone, PartialEq)]
pub struct GovRow {
    /// Governor name.
    pub governor: String,
    /// Mean package power over the window, watts (0 when the host has
    /// no energy source).
    pub mean_pkg_w: f64,
    /// Mean `scaling_cur_freq` across CPUs and samples, kHz.
    pub mean_khz: f64,
    /// Energy over the window in watt-hours.
    pub wh: f64,
    /// Samples taken.
    pub samples: usize,
}

/// The package meter for a sweep, if the host has one.
fn package_meter(root: &SysfsRoot) -> Result<Option<Meter>, HwError> {
    if let Some(m) = RaplMeter::package(root)? {
        return Ok(Some(Meter::Rapl(m)));
    }
    Ok(HwmonMeter::package(root)?.map(Meter::Hwmon))
}

enum Meter {
    Rapl(RaplMeter),
    Hwmon(HwmonMeter),
}

impl Meter {
    fn power_w(&mut self, root: &SysfsRoot, dt: Seconds) -> Option<f64> {
        match self {
            Meter::Rapl(m) => m.power(root, dt).ok().map(|w| w.value()),
            Meter::Hwmon(m) => m.power(root, dt).ok().map(|w| w.value()),
        }
    }
}

/// Measure one window under whatever governor is currently active.
fn measure(
    root: &SysfsRoot,
    cpus: &[usize],
    governor: &str,
    cfg: &GovCmpConfig,
    wait: &mut impl FnMut(Seconds),
) -> Result<GovRow, HwError> {
    let mut meter = package_meter(root)?;
    let steps = (cfg.duration.value() / cfg.interval.value())
        .round()
        .max(1.0) as usize;
    let mut pkg_acc = 0.0;
    let mut khz_acc = 0.0;
    let mut samples = 0usize;
    for _ in 0..steps {
        wait(cfg.interval);
        if let Some(m) = meter.as_mut() {
            if let Some(w) = m.power_w(root, cfg.interval) {
                pkg_acc += w;
            }
        }
        let mut khz = 0.0;
        for &c in cpus {
            khz += cpufreq::cur_khz(root, c)? as f64;
        }
        khz_acc += khz / cpus.len() as f64;
        samples += 1;
    }
    let mean_pkg_w = pkg_acc / samples as f64;
    Ok(GovRow {
        governor: governor.to_string(),
        mean_pkg_w,
        mean_khz: khz_acc / samples as f64,
        wh: mean_pkg_w * cfg.duration.value() / 3600.0,
        samples,
    })
}

/// Run the sweep. `wait` is called once per sample interval; pass a
/// sleeping closure on real hosts.
pub fn run(
    root: &SysfsRoot,
    cfg: &GovCmpConfig,
    mut wait: impl FnMut(Seconds),
) -> Result<Vec<GovRow>, HwError> {
    let cpus = cpufreq::cpus(root)?;
    if cfg.dry_run {
        let active = cpufreq::governor(root, cpus[0])?;
        return Ok(vec![measure(root, &cpus, &active, cfg, &mut wait)?]);
    }

    let offered = cpufreq::available_governors(root, cpus[0]);
    let sweep: Vec<&str> = CANDIDATES
        .iter()
        .copied()
        .filter(|g| offered.iter().any(|o| o == g))
        .collect();
    if sweep.is_empty() {
        return Err(HwError::Unsupported(
            "no comparable governors offered by this policy".to_string(),
        ));
    }

    // Save per-CPU governors so the host leaves the sweep as it entered.
    let mut saved = Vec::with_capacity(cpus.len());
    for &c in &cpus {
        saved.push(cpufreq::governor(root, c)?);
    }

    let mut rows = Vec::with_capacity(sweep.len());
    let mut failure: Option<HwError> = None;
    for gov in sweep {
        let switch = || -> Result<(), HwError> {
            for &c in &cpus {
                cpufreq::set_governor(root, c, gov)?;
            }
            Ok(())
        };
        if let Err(e) = switch() {
            failure = Some(e);
            break;
        }
        match measure(root, &cpus, gov, cfg, &mut wait) {
            Ok(row) => rows.push(row),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }

    // Restore unconditionally, even when the sweep aborted mid-way.
    for (&c, gov) in cpus.iter().zip(&saved) {
        cpufreq::set_governor(root, c, gov)?;
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(rows),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::MockSysfs;

    /// The fixture offers all five candidates; a full sweep measures
    /// each and restores the original governor.
    #[test]
    fn full_sweep_measures_each_governor_and_restores() {
        let mock = MockSysfs::intel(2);
        let root = mock.root();
        let cfg = GovCmpConfig {
            duration: Seconds(3.0),
            interval: Seconds(1.0),
            dry_run: false,
        };
        // The "host" burns 12 W under performance, 5 W otherwise.
        let rows = run(&root, &cfg, |dt| {
            let gov = cpufreq::governor(&root, 0).unwrap();
            let w = if gov == "performance" { 12.0 } else { 5.0 };
            mock.add_package_energy_uj((w * dt.value() * 1e6) as u64);
        })
        .unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].governor, "performance");
        assert_eq!(rows[0].samples, 3);
        assert!((rows[0].mean_pkg_w - 12.0).abs() < 1e-6, "{rows:?}");
        assert!((rows[1].mean_pkg_w - 5.0).abs() < 1e-6, "{rows:?}");
        assert!(
            (rows[0].wh - 12.0 * 3.0 / 3600.0).abs() < 1e-9,
            "window energy in Wh"
        );
        // Original governor restored on every CPU.
        for c in 0..2 {
            assert_eq!(cpufreq::governor(&root, c).unwrap(), "userspace");
        }
    }

    #[test]
    fn dry_run_measures_only_the_active_governor() {
        let mock = MockSysfs::amd(2);
        let root = mock.root();
        let cfg = GovCmpConfig {
            duration: Seconds(2.0),
            interval: Seconds(1.0),
            dry_run: true,
        };
        let rows = run(&root, &cfg, |dt| {
            mock.add_socket_energy_uj((8.0 * dt.value() * 1e6) as u64)
        })
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].governor, "schedutil", "no switching in dry-run");
        assert!((rows[0].mean_pkg_w - 8.0).abs() < 1e-6);
        assert_eq!(cpufreq::governor(&root, 0).unwrap(), "schedutil");
    }

    #[test]
    fn host_without_energy_source_still_reports_frequencies() {
        let mock = MockSysfs::intel(1);
        let root = mock.root();
        mock.remove("sys/class/powercap/intel-rapl:0/energy_uj");
        mock.remove("sys/class/powercap/intel-rapl:0/name");
        mock.remove("sys/class/powercap/intel-rapl:0/max_energy_range_uj");
        mock.remove("sys/class/powercap/intel-rapl:0:0/energy_uj");
        mock.remove("sys/class/powercap/intel-rapl:0:0/name");
        mock.remove("sys/class/powercap/intel-rapl:0:0/max_energy_range_uj");
        let cfg = GovCmpConfig {
            duration: Seconds(1.0),
            interval: Seconds(1.0),
            dry_run: true,
        };
        let rows = run(&root, &cfg, |_| {}).unwrap();
        assert_eq!(rows[0].mean_pkg_w, 0.0);
        assert!((rows[0].mean_khz - 2_000_000.0).abs() < 1e-6);
    }
}
