//! End-to-end: the §5 monitoring loop (`powerd::hw::run_daemon`) over a
//! [`LinuxBackend`] against a mock sysfs tree. The `drive` closure plays
//! the hardware's part — settling `scaling_cur_freq` at whatever the
//! daemon programmed and charging the RAPL counter with a
//! frequency-dependent power draw — so the complete control loop
//! (sample → policy → sysfs write → sample) runs offline.

use pap_hw::mock::MockSysfs;
use pap_hw::{BackendClock, BackendOptions, LinuxBackend};
use pap_simcpu::units::{Seconds, Watts};
use pap_telemetry::health::SensorId;
use powerd::config::{AppSpec, DaemonConfig, PolicyKind};
use powerd::daemon::Daemon;
use powerd::hw::{run_daemon, PowerBackend};

fn fixture_daemon(backend: &LinuxBackend, limit: f64) -> Daemon {
    let apps = vec![
        AppSpec::new("hi", 0).with_shares(70).with_baseline_ips(3e9),
        AppSpec::new("lo", 1).with_shares(30).with_baseline_ips(3e9),
    ];
    Daemon::new(
        DaemonConfig::new(PolicyKind::FrequencyShares, Watts(limit), apps),
        backend.platform(),
    )
    .expect("valid daemon over synthesized platform")
}

/// Idle draw plus ~5 W per core at the 3 GHz ceiling, linear in
/// frequency — enough structure for the controller to react to.
fn model_power_w(khz: &[u64]) -> f64 {
    3.0 + khz.iter().map(|&f| 5.0 * f as f64 / 3.0e6).sum::<f64>()
}

#[test]
fn daemon_loop_controls_the_mock_host() {
    let mock = MockSysfs::intel(2);
    let mut backend = LinuxBackend::probe(
        mock.root(),
        BackendOptions {
            dry_run: false,
            write_mode: pap_hw::cpufreq::WriteMode::Auto,
            clock: BackendClock::manual(),
            no_offline: false,
        },
    )
    .expect("probe intel fixture");
    let mut daemon = fixture_daemon(&backend, 9.0);

    let tick = Seconds(0.1);
    let root = mock.root();
    run_daemon(&mut backend, &mut daemon, Seconds(30.0), tick, |_, _| {
        // "Hardware": each tick the cores settle at the programmed
        // setspeed and the package burns the model's power.
        let mut khz = [0u64; 2];
        for (c, k) in khz.iter_mut().enumerate() {
            *k = root
                .read_u64(&format!(
                    "sys/devices/system/cpu/cpu{c}/cpufreq/scaling_setspeed"
                ))
                .expect("daemon wrote a target");
            mock.set_cur_khz(c, *k);
        }
        let uj = model_power_w(&khz) * tick.value() * 1e6;
        mock.add_package_energy_uj(uj as u64);
    })
    .expect("loop completes");

    // The daemon actually wrote targets on the grid...
    let f0 = root
        .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
        .unwrap();
    let f1 = root
        .read_u64("sys/devices/system/cpu/cpu1/cpufreq/scaling_setspeed")
        .unwrap();
    for f in [f0, f1] {
        assert!((800_000..=3_000_000).contains(&f), "on-grid target {f}");
    }
    // ...favouring the 70-share app...
    assert!(f0 >= f1, "shares order: hi {f0} >= lo {f1}");
    // ...and pulled the modelled package power down toward the 9 W
    // limit. The synthesized platform carries a placeholder power model,
    // so steady state keeps an offset from the true optimum — what
    // matters is that the loop reacted (uncapped draw would be 13 W)
    // without collapsing to the 800 MHz floor (5.7 W).
    let p = model_power_w(&[f0, f1]);
    assert!(p <= 11.5, "reacted to the limit, got {p:.2} W");
    assert!(p > 5.8, "not collapsed to the floor, got {p:.2} W");

    // Every sensor the loop touched stayed healthy.
    for (id, h) in backend.health().sensors() {
        assert_eq!(h.total_failures, 0, "{id} failed during a clean run");
    }
}

/// The headline telemetry fix: live samples carry real `/proc/stat`
/// utilization and a nonzero IPS estimate, enough signal to drive an
/// IPS-consuming policy (performance shares) end to end on the mock
/// host without any sensor degradation.
#[test]
fn proc_stat_utilization_drives_an_ips_policy() {
    let mock = MockSysfs::intel(2);
    let mut backend = LinuxBackend::probe(
        mock.root(),
        BackendOptions {
            dry_run: false,
            write_mode: pap_hw::cpufreq::WriteMode::Auto,
            clock: BackendClock::manual(),
            no_offline: false,
        },
    )
    .expect("probe intel fixture");
    let apps = vec![
        AppSpec::new("busy", 0)
            .with_shares(50)
            .with_baseline_ips(3e9),
        AppSpec::new("idle", 1)
            .with_shares(50)
            .with_baseline_ips(3e9),
    ];
    let mut daemon = Daemon::new(
        DaemonConfig::new(PolicyKind::PerformanceShares, Watts(9.0), apps),
        backend.platform(),
    )
    .expect("perf-shares daemon over the synthesized platform");

    let tick = Seconds(0.1);
    let root = mock.root();
    run_daemon(&mut backend, &mut daemon, Seconds(30.0), tick, |_, _| {
        // "Hardware": core 0 runs ~90 % busy, core 1 ~30 % busy, both
        // settle at the programmed setspeed, the package burns the
        // model's power. 10 jiffies per 0.1 s tick (100 Hz kernel).
        mock.advance_cpu_jiffies(0, 9, 1);
        mock.advance_cpu_jiffies(1, 3, 7);
        let mut khz = [0u64; 2];
        for (c, k) in khz.iter_mut().enumerate() {
            *k = root
                .read_u64(&format!(
                    "sys/devices/system/cpu/cpu{c}/cpufreq/scaling_setspeed"
                ))
                .expect("daemon wrote a target");
            mock.set_cur_khz(c, *k);
        }
        let uj = model_power_w(&khz) * tick.value() * 1e6;
        mock.add_package_energy_uj(uj as u64);
    })
    .expect("loop completes");

    // The live samples carried the real utilization signal...
    mock.advance_cpu_jiffies(0, 9, 1);
    mock.advance_cpu_jiffies(1, 3, 7);
    backend.advance(tick);
    let s = backend.sample().expect("time advanced");
    for c in &s.cores {
        assert!(
            c.rates.c0_residency < 1.0,
            "sub-1.0 residency, got {}",
            c.rates.c0_residency
        );
        assert!(c.rates.ips > 0.0, "nonzero ips estimate");
    }
    assert!((s.cores[0].rates.c0_residency - 0.9).abs() < 0.05);
    assert!((s.cores[1].rates.c0_residency - 0.3).abs() < 0.05);

    // ...and the policy consumed it: with equal shares, the servo pushes
    // the utilization-starved app to a higher frequency to equalize
    // delivered (normalized) performance.
    let f0 = root
        .read_u64("sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed")
        .unwrap();
    let f1 = root
        .read_u64("sys/devices/system/cpu/cpu1/cpufreq/scaling_setspeed")
        .unwrap();
    for f in [f0, f1] {
        assert!((800_000..=3_000_000).contains(&f), "on-grid target {f}");
    }
    assert!(
        f1 > f0,
        "perf-shares compensates the 30 %-busy core: f0={f0} f1={f1}"
    );

    // No degradation anywhere: every sensor stayed healthy for the
    // whole run, including the new utilization source.
    for (id, h) in backend.health().sensors() {
        assert_eq!(h.total_failures, 0, "{id} failed during a clean run");
    }
    assert!(backend
        .health()
        .sensor(SensorId::Utilization)
        .is_some_and(|h| h.total_failures == 0));
}

#[test]
fn sensor_loss_mid_run_degrades_gracefully() {
    let mock = MockSysfs::intel(2);
    let mut backend = LinuxBackend::probe(
        mock.root(),
        BackendOptions {
            dry_run: false,
            write_mode: pap_hw::cpufreq::WriteMode::Auto,
            clock: BackendClock::manual(),
            no_offline: false,
        },
    )
    .unwrap();
    let mut daemon = fixture_daemon(&backend, 9.0);

    let tick = Seconds(0.1);
    let mut ticks = 0u32;
    run_daemon(&mut backend, &mut daemon, Seconds(20.0), tick, |_, _| {
        ticks += 1;
        if ticks < 100 {
            mock.add_package_energy_uj((8.0 * tick.value() * 1e6) as u64);
        } else if ticks == 100 {
            // 10 s in, the package energy counter vanishes for good
            // (writing more energy would re-create the file).
            mock.remove("sys/class/powercap/intel-rapl:0/energy_uj");
        }
    })
    .expect("loop survives the sensor loss");

    let h = backend
        .health()
        .sensor(SensorId::PackagePower)
        .expect("tracked");
    assert!(h.total_failures > 0, "failures recorded");
    assert_eq!(
        h.state,
        pap_telemetry::health::SensorState::Unhealthy,
        "hysteresis demoted the dead counter"
    );
}
