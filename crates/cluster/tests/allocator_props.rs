//! Property tests for the hierarchical budget allocator: conservation
//! (caps handed out never exceed the cluster budget) and monotonicity
//! (more budget never hurts any node), plus conservation across a live
//! cluster's admission/departure/rebalance lifecycle.

use clusterd::admission::{AppRequest, DemandClass};
use clusterd::allocator::{BudgetAllocator, NodeClaim};
use clusterd::cluster::{Cluster, ClusterConfig};
use pap_simcpu::units::Watts;
use powerd::config::PolicyKind;
use proptest::prelude::*;

fn claims() -> impl Strategy<Value = Vec<NodeClaim>> {
    proptest::collection::vec(
        (0.0f64..500.0, 5.0f64..30.0, 0.0f64..80.0, 0.0f64..100.0).prop_map(
            |(shares, min, span, current)| NodeClaim {
                node: 0,
                shares,
                min: Watts(min),
                max: Watts(min + span),
                current: Watts(current),
            },
        ),
        1..12usize,
    )
}

proptest! {
    /// Σ node caps ≤ cluster cap, and no node exceeds its ceiling —
    /// even when the cap cannot fund every floor.
    #[test]
    fn rebalance_conserves_budget(cap in 0.0f64..1000.0, claims in claims()) {
        let out = BudgetAllocator::new(Watts(cap)).rebalance(&claims);
        prop_assert_eq!(out.len(), claims.len());
        let total: f64 = out.iter().map(|w| w.value()).sum();
        prop_assert!(total <= cap + 1e-6, "handed out {total} of {cap}");
        for (got, claim) in out.iter().zip(&claims) {
            prop_assert!(got.value() <= claim.max.value() + 1e-6);
            prop_assert!(got.value() >= -1e-12);
        }
    }

    /// Raising the cluster cap never lowers any node's cap.
    #[test]
    fn rebalance_is_monotone_in_cap(
        cap in 0.0f64..600.0,
        extra in 0.0f64..400.0,
        claims in claims(),
    ) {
        let lo = BudgetAllocator::new(Watts(cap)).rebalance(&claims);
        let hi = BudgetAllocator::new(Watts(cap + extra)).rebalance(&claims);
        for (node, (l, h)) in lo.iter().zip(&hi).enumerate() {
            prop_assert!(
                h.value() >= l.value() - 1e-6,
                "node {node}: cap {cap} -> {l}, cap {} -> {h}",
                cap + extra
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Conservation holds through a live cluster's whole lifecycle:
    /// after every admission, departure, and rebalance, the node caps
    /// still sum to at most the cluster cap.
    #[test]
    fn cluster_lifecycle_conserves_budget(ops in proptest::collection::vec((0u8..3, 0u32..200), 1..8usize)) {
        let mut cfg = ClusterConfig::new(3, PolicyKind::FrequencyShares, Watts(140.0));
        cfg.rebalance_every = 1; // rebalance after every interval
        let mut c = Cluster::new(cfg).unwrap();
        let check = |c: &Cluster| {
            let total: f64 = c.node_caps().iter().map(|w| w.value()).sum();
            total <= 140.0 + 1e-6
        };
        let mut next_id = 0usize;
        let mut alive: Vec<String> = Vec::new();
        for (kind, arg) in ops {
            match kind {
                0 | 1 => {
                    let demand = if kind == 0 { DemandClass::Moderate } else { DemandClass::Light };
                    let name = format!("app{next_id}");
                    next_id += 1;
                    if c.admit(&AppRequest::new(name.clone(), 1 + arg, demand)).is_ok() {
                        alive.push(name);
                    }
                }
                _ => {
                    if !alive.is_empty() {
                        let name = alive.remove(arg as usize % alive.len());
                        c.depart(&name).unwrap();
                    }
                }
            }
            prop_assert!(check(&c), "after op: caps {:?}", c.node_caps());
            c.run(1);
            prop_assert!(check(&c), "after rebalance: caps {:?}", c.node_caps());
        }
    }
}
