//! The cluster: many nodes under one global power budget, with dynamic
//! admission, departures, periodic hierarchical rebalancing, and a
//! serial reference engine (the parallel engine in [`crate::engine`]
//! must reproduce it exactly).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_telemetry::rollup::{ClusterRollup, NodeTelemetry};
use pap_workloads::traces::LoadTrace;
use powerd::config::{AppSpec, MemoMode, PolicyKind, TranslationKind};
use powerd::daemon::DaemonError;
use powerd::memo::MemoStats;
use powerd::obs::{DecisionEvent, DecisionRecord, DecisionTrace};

use crate::admission::{AppRequest, Placement};
use crate::allocator::{claims_from_rollup, node_cap_bounds, BudgetAllocator, NodeClaim};
use crate::node::Node;

/// Everything needed to bring up a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes (all share one platform model).
    pub nodes: usize,
    /// The chip model every node runs.
    pub platform: PlatformSpec,
    /// The per-node daemon policy.
    pub policy: PolicyKind,
    /// The one global power budget split across nodes.
    pub cluster_cap: Watts,
    /// Length of one control interval.
    pub control_interval: Seconds,
    /// Simulation tick within an interval.
    pub tick: Seconds,
    /// Rebalance node caps every this many intervals (0 = never; the
    /// initial even split then stands for the whole run, which is the
    /// static RAPL-per-node baseline).
    pub rebalance_every: u64,
    /// Which budget-to-frequency translation every node daemon uses.
    /// Under [`TranslationKind::Online`] nodes also publish their
    /// learned capacity predictions, which the allocator uses to clamp
    /// claim ceilings at rebalance time.
    pub translation: TranslationKind,
    /// Decision memoization applied to every node daemon (the fleet
    /// fast path's control-plane half; exact replay by default).
    pub memo: MemoMode,
}

impl ClusterConfig {
    /// A Skylake cluster with 1 s control intervals, 1 ms ticks, and
    /// rebalancing every 4 intervals.
    pub fn new(nodes: usize, policy: PolicyKind, cluster_cap: Watts) -> ClusterConfig {
        ClusterConfig {
            nodes,
            platform: PlatformSpec::skylake(),
            policy,
            cluster_cap,
            control_interval: Seconds(1.0),
            tick: Seconds(0.001),
            rebalance_every: 4,
            translation: TranslationKind::Naive,
            memo: MemoMode::default(),
        }
    }
}

/// Why a cluster operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A node daemon rejected the operation.
    Daemon(DaemonError),
    /// Every core of every node is occupied.
    ClusterFull {
        /// The app that could not be placed.
        app: String,
        /// Total cores in the cluster, all busy.
        cores: usize,
    },
    /// An app with this name is already placed.
    DuplicateApp {
        /// The offending name.
        app: String,
    },
    /// No app with this name is placed.
    UnknownApp {
        /// The name looked up.
        app: String,
    },
    /// The global budget cannot fund every node's platform floor.
    InsufficientBudget {
        /// The configured cluster cap.
        cap: Watts,
        /// Minimum budget the node floors require.
        required: Watts,
    },
    /// A cluster needs at least one node.
    NoNodes,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Daemon(e) => write!(f, "node daemon: {e}"),
            ClusterError::ClusterFull { app, cores } => {
                write!(
                    f,
                    "cluster full: no free core for '{app}' ({cores} cores all busy)"
                )
            }
            ClusterError::DuplicateApp { app } => {
                write!(f, "app '{app}' is already placed")
            }
            ClusterError::UnknownApp { app } => write!(f, "no app named '{app}'"),
            ClusterError::InsufficientBudget { cap, required } => write!(
                f,
                "cluster cap {cap} cannot fund node power floors (needs at least {required})"
            ),
            ClusterError::NoNodes => write!(f, "cluster needs at least one node"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Daemon(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DaemonError> for ClusterError {
    fn from(e: DaemonError) -> ClusterError {
        ClusterError::Daemon(e)
    }
}

/// Final per-app accounting, for fairness and throughput reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// App name.
    pub name: String,
    /// Node it ran on.
    pub node: usize,
    /// Core it was pinned to.
    pub core: usize,
    /// Its proportional shares.
    pub shares: u32,
    /// Instructions retired over the whole run.
    pub total_instructions: u64,
    /// Standalone instruction rate at max frequency.
    pub baseline_ips: f64,
}

impl AppReport {
    /// Performance normalized to the app's standalone rate: achieved
    /// IPS over `elapsed` divided by `baseline_ips`.
    pub fn normalized_perf(&self, elapsed: Seconds) -> f64 {
        if elapsed.value() <= 0.0 || self.baseline_ips <= 0.0 {
            return 0.0;
        }
        (self.total_instructions as f64 / elapsed.value()) / self.baseline_ips
    }
}

/// What happened to one app when its node was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub enum RequeueOutcome {
    /// The app found a core on a healthy node.
    Requeued {
        /// App name.
        app: String,
        /// Where it landed.
        placement: Placement,
    },
    /// No healthy node could take the app; it left the cluster.
    Dropped {
        /// App name.
        app: String,
        /// Why re-admission failed.
        error: ClusterError,
    },
}

/// A running cluster. Admission, departures, and the serial engine live
/// here; [`crate::engine::run_parallel`] drives the same nodes
/// concurrently.
///
/// Generic over the node simulator backend through the [`ChipLike`]
/// seam, defaulting to the batch [`WideChip`]; `Cluster<Chip>` gets the
/// scalar reference backend (the two are bit-identical — see
/// `ext_fleet`).
#[derive(Debug)]
pub struct Cluster<C: ChipLike = WideChip> {
    pub(crate) cfg: ClusterConfig,
    pub(crate) nodes: Vec<Node<C>>,
    pub(crate) allocator: BudgetAllocator,
    pub(crate) placements: HashMap<String, usize>,
    pub(crate) requests: HashMap<String, AppRequest>,
    pub(crate) quarantined: Vec<bool>,
    pub(crate) intervals_run: u64,
    pub(crate) energy_j: f64,
    pub(crate) last_rollup: Option<ClusterRollup>,
    /// Decision-trace observer: one record with `source = "cluster"` per
    /// rebalance round. `None` (the default) keeps observability
    /// strictly off-path.
    pub(crate) observer: Option<DecisionTrace>,
}

impl Cluster {
    /// Bring up an idle cluster on the default [`WideChip`] backend.
    /// See [`Cluster::with_backend`].
    pub fn new(cfg: ClusterConfig) -> Result<Cluster, ClusterError> {
        Cluster::with_backend(cfg)
    }
}

impl<C: ChipLike> Cluster<C> {
    /// Bring up an idle cluster on an explicit backend. The global
    /// budget must at least fund every node's platform power floor; the
    /// initial split is even (clamped to the platform range), so with
    /// `rebalance_every == 0` this is exactly the static RAPL-per-node
    /// baseline. All nodes share one [`Arc`]ed platform spec.
    pub fn with_backend(cfg: ClusterConfig) -> Result<Cluster<C>, ClusterError> {
        if cfg.nodes == 0 {
            return Err(ClusterError::NoNodes);
        }
        let (min, max) = node_cap_bounds(&cfg.platform);
        let required = Watts(min.value() * cfg.nodes as f64);
        if cfg.cluster_cap.value() < required.value() {
            return Err(ClusterError::InsufficientBudget {
                cap: cfg.cluster_cap,
                required,
            });
        }
        let even =
            Watts((cfg.cluster_cap.value() / cfg.nodes as f64).clamp(min.value(), max.value()));
        let platform = Arc::new(cfg.platform.clone());
        let nodes = (0..cfg.nodes)
            .map(|id| {
                Node::with_chip(
                    id,
                    Arc::clone(&platform),
                    cfg.policy,
                    even,
                    cfg.control_interval,
                    cfg.tick,
                )
                .map(|mut n| {
                    n.set_translation(cfg.translation);
                    n.set_memo(cfg.memo);
                    n
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Cluster {
            allocator: BudgetAllocator::new(cfg.cluster_cap),
            nodes,
            placements: HashMap::new(),
            requests: HashMap::new(),
            quarantined: vec![false; cfg.nodes],
            intervals_run: 0,
            energy_j: 0.0,
            last_rollup: None,
            observer: None,
            cfg,
        })
    }

    /// Aggregate decision-memoization counters across every node's
    /// daemon. `None` when memoization is off.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        let mut total = MemoStats::default();
        let mut any = false;
        for n in &self.nodes {
            if let Some(s) = n.memo_stats() {
                total.merge(s);
                any = true;
            }
        }
        any.then_some(total)
    }

    /// Attach a decision-trace observer; each subsequent rebalance round
    /// appends one [`DecisionRecord`] with `source = "cluster"`.
    pub fn attach_observer(&mut self, trace: DecisionTrace) {
        self.observer = Some(trace);
    }

    /// The attached decision trace, if any.
    pub fn observer(&self) -> Option<&DecisionTrace> {
        self.observer.as_ref()
    }

    /// Detach and return the decision trace (e.g. at end of run).
    pub fn take_observer(&mut self) -> Option<DecisionTrace> {
        self.observer.take()
    }

    /// Place an arriving app on the least-saturated node with a free
    /// core, spilling to the next candidate if that node's daemon
    /// rejects it. Fails with [`ClusterError::ClusterFull`] when every
    /// core in the cluster is occupied.
    pub fn admit(&mut self, req: &AppRequest) -> Result<Placement, ClusterError> {
        self.admit_with(req, None)
    }

    /// [`Cluster::admit`], attaching an offered-load trace to the app:
    /// its demand on whichever node accepts it follows the trace
    /// instead of running flat out.
    pub fn admit_traced(
        &mut self,
        req: &AppRequest,
        trace: LoadTrace,
    ) -> Result<Placement, ClusterError> {
        self.admit_with(req, Some(trace))
    }

    fn admit_with(
        &mut self,
        req: &AppRequest,
        trace: Option<LoadTrace>,
    ) -> Result<Placement, ClusterError> {
        if self.placements.contains_key(&req.name) {
            return Err(ClusterError::DuplicateApp {
                app: req.name.clone(),
            });
        }
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            self.nodes[a]
                .saturation()
                .total_cmp(&self.nodes[b].saturation())
                .then(a.cmp(&b))
        });
        let mut last_err = None;
        for i in order {
            if self.quarantined[i] || self.nodes[i].free_cores() == 0 {
                continue;
            }
            match self.nodes[i].admit_traced(req, trace.clone()) {
                Ok(core) => {
                    self.placements.insert(req.name.clone(), i);
                    self.requests.insert(req.name.clone(), req.clone());
                    return Ok(Placement { node: i, core });
                }
                Err(e) => last_err = Some(e),
            }
        }
        match last_err {
            Some(e) => Err(ClusterError::Daemon(e)),
            None => Err(ClusterError::ClusterFull {
                app: req.name.clone(),
                cores: self.total_cores(),
            }),
        }
    }

    /// Admit a batch of arriving apps, in request order, returning one
    /// outcome per request. Outcome-identical to calling
    /// [`Cluster::admit`] once per request, but placement costs
    /// O(log nodes) per app instead of a fresh O(nodes log nodes)
    /// candidate sort — the difference between minutes and milliseconds
    /// when a day of tenant churn lands on a 1000-node cluster.
    ///
    /// Equivalence argument: sequential admission orders candidates by
    /// `(saturation, id)`, and every node runs the same platform, so
    /// that order is exactly `(busy_cores, id)` — which a min-heap
    /// maintains incrementally as the batch places apps.
    pub fn admit_batch(&mut self, reqs: &[AppRequest]) -> Vec<Result<Placement, ClusterError>> {
        // Full and quarantined nodes start outside the heap; a node that
        // fills mid-batch is simply not pushed back.
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| !self.quarantined[*i] && n.free_cores() > 0)
            .map(|(i, n)| Reverse((n.busy_cores(), i)))
            .collect();
        let mut out = Vec::with_capacity(reqs.len());
        let mut spilled = Vec::new();
        for req in reqs {
            if self.placements.contains_key(&req.name) {
                out.push(Err(ClusterError::DuplicateApp {
                    app: req.name.clone(),
                }));
                continue;
            }
            let mut placed = None;
            let mut last_err = None;
            while let Some(Reverse((busy, i))) = heap.pop() {
                match self.nodes[i].admit(req) {
                    Ok(core) => {
                        self.placements.insert(req.name.clone(), i);
                        self.requests.insert(req.name.clone(), req.clone());
                        if self.nodes[i].free_cores() > 0 {
                            heap.push(Reverse((busy + 1, i)));
                        }
                        placed = Some(Placement { node: i, core });
                        break;
                    }
                    // A daemon rejection is app-specific; the node stays
                    // a candidate for the rest of the batch.
                    Err(e) => {
                        last_err = Some(e);
                        spilled.push(Reverse((busy, i)));
                    }
                }
            }
            heap.extend(spilled.drain(..));
            out.push(match placed {
                Some(p) => Ok(p),
                None => Err(match last_err {
                    Some(e) => ClusterError::Daemon(e),
                    None => ClusterError::ClusterFull {
                        app: req.name.clone(),
                        cores: self.total_cores(),
                    },
                }),
            });
        }
        out
    }

    /// Depart a batch of apps, in order, returning one outcome per
    /// name. The batched counterpart of [`Cluster::admit_batch`] for
    /// per-epoch churn application.
    pub fn depart_batch(&mut self, names: &[String]) -> Vec<Result<AppSpec, ClusterError>> {
        names.iter().map(|n| self.depart(n)).collect()
    }

    /// Remove an app; its core parks immediately and its budget claim
    /// dissolves at the next rebalance.
    pub fn depart(&mut self, name: &str) -> Result<AppSpec, ClusterError> {
        let node = *self
            .placements
            .get(name)
            .ok_or_else(|| ClusterError::UnknownApp { app: name.into() })?;
        let spec = self.nodes[node].depart(name)?;
        self.placements.remove(name);
        self.requests.remove(name);
        Ok(spec)
    }

    /// Take an unhealthy node out of service: every resident app is
    /// departed and requeued through the normal admission spill (which
    /// skips quarantined nodes), and the node stops receiving
    /// placements. Its budget claim dissolves at the next rebalance —
    /// with no apps its share weight is zero and its ceiling is revoked
    /// toward idle draw, so the allocator hands its power to healthy
    /// nodes. Apps no healthy node can hold are reported as
    /// [`RequeueOutcome::Dropped`] and leave the cluster.
    pub fn quarantine_node(&mut self, node: usize) -> Result<Vec<RequeueOutcome>, ClusterError> {
        if node >= self.nodes.len() {
            return Err(ClusterError::NoNodes);
        }
        let started = self.observer.as_ref().map(|_| std::time::Instant::now());
        self.quarantined[node] = true;
        let evicted: Vec<String> = self.nodes[node]
            .apps()
            .iter()
            .map(|a| a.spec.name.clone())
            .collect();
        let mut outcomes = Vec::with_capacity(evicted.len());
        for name in evicted {
            let req = self
                .requests
                .get(&name)
                .cloned()
                .expect("every placed app has a recorded request");
            self.depart(&name)?;
            match self.admit(&req) {
                Ok(placement) => outcomes.push(RequeueOutcome::Requeued {
                    app: name,
                    placement,
                }),
                Err(error) => outcomes.push(RequeueOutcome::Dropped { app: name, error }),
            }
        }
        let requeued = outcomes
            .iter()
            .filter(|o| matches!(o, RequeueOutcome::Requeued { .. }))
            .count();
        self.push_ops_record(
            DecisionEvent::Quarantine {
                node,
                evicted: outcomes.len(),
                requeued,
                dropped: outcomes.len() - requeued,
            },
            started,
        );
        Ok(outcomes)
    }

    /// Return a quarantined node to service. Nothing moves back
    /// proactively; the node simply becomes eligible for future
    /// admissions and wins budget again once it holds apps.
    pub fn restore_node(&mut self, node: usize) -> Result<(), ClusterError> {
        if node >= self.nodes.len() {
            return Err(ClusterError::NoNodes);
        }
        let started = self.observer.as_ref().map(|_| std::time::Instant::now());
        self.quarantined[node] = false;
        self.push_ops_record(DecisionEvent::Restore { node }, started);
        Ok(())
    }

    /// Append a cluster-operations record (quarantine/restore) to the
    /// observer, when one is attached. `source = "cluster-ops"` keeps
    /// these distinct from the arbiter's per-rebalance `"cluster"`
    /// records (which also drive the rebalance counter).
    fn push_ops_record(&mut self, event: DecisionEvent, started: Option<std::time::Instant>) {
        if self.observer.is_none() {
            return;
        }
        let record = DecisionRecord {
            time: self.elapsed(),
            source: "cluster-ops",
            policy: self.cfg.policy.name(),
            level: None,
            budget: self.cfg.cluster_cap,
            measured: self.last_rollup.as_ref().map(|r| r.total_power()),
            translation: self.cfg.translation.name(),
            model_confident: false,
            apps: Vec::new(),
            events: vec![event],
            latency: Seconds(started.map_or(0.0, |s| s.elapsed().as_secs_f64())),
        };
        if let Some(obs) = self.observer.as_mut() {
            obs.push(record);
        }
    }

    /// Whether a node is currently quarantined.
    pub fn is_node_quarantined(&self, node: usize) -> bool {
        self.quarantined.get(node).copied().unwrap_or(false)
    }

    /// Serial reference engine: advance every node one control interval
    /// (in node order), aggregate telemetry, and rebalance when due.
    /// The parallel engine must produce bit-identical state.
    pub fn run(&mut self, intervals: u64) {
        for _ in 0..intervals {
            let teles: Vec<NodeTelemetry> = self
                .nodes
                .iter_mut()
                .map(|n| n.advance_interval())
                .collect();
            let rollup = ClusterRollup::new(self.cfg.control_interval, teles);
            self.intervals_run += 1;
            self.energy_j += rollup.total_power().value() * self.cfg.control_interval.value();
            if self.rebalance_due() {
                self.apply_rebalance(&rollup);
            }
            self.last_rollup = Some(rollup);
        }
    }

    pub(crate) fn rebalance_due(&self) -> bool {
        self.cfg.rebalance_every > 0 && self.intervals_run.is_multiple_of(self.cfg.rebalance_every)
    }

    pub(crate) fn apply_rebalance(&mut self, rollup: &ClusterRollup) {
        let started = self.observer.as_ref().map(|_| std::time::Instant::now());
        let claims = claims_from_rollup(&self.cfg.platform, rollup);
        let caps = self.allocator.rebalance(&claims);
        if self.observer.is_some() {
            let record = rebalance_record(
                &self.cfg,
                rollup,
                &claims,
                &caps,
                self.intervals_run,
                started,
            );
            if let Some(obs) = self.observer.as_mut() {
                obs.push(record);
            }
        }
        for (node, cap) in self.nodes.iter_mut().zip(caps) {
            node.retarget(cap)
                .expect("allocator output stays within platform bounds");
        }
    }

    /// The cluster's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Total cores across all nodes.
    pub fn total_cores(&self) -> usize {
        self.nodes.len() * self.cfg.platform.num_cores
    }

    /// Free cores across all nodes.
    pub fn free_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.free_cores()).sum()
    }

    /// Control intervals simulated so far.
    pub fn intervals_run(&self) -> u64 {
        self.intervals_run
    }

    /// Simulated time elapsed.
    pub fn elapsed(&self) -> Seconds {
        Seconds(self.intervals_run as f64 * self.cfg.control_interval.value())
    }

    /// Total cluster energy consumed (J) over all intervals run.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Mean cluster power draw over the whole run.
    pub fn mean_power(&self) -> Watts {
        let t = self.elapsed().value();
        if t <= 0.0 {
            return Watts(0.0);
        }
        Watts(self.energy_j / t)
    }

    /// The most recent telemetry roll-up.
    pub fn last_rollup(&self) -> Option<&ClusterRollup> {
        self.last_rollup.as_ref()
    }

    /// Current per-node power caps, in node order.
    pub fn node_caps(&self) -> Vec<Watts> {
        self.nodes.iter().map(|n| n.cap()).collect()
    }

    /// The nodes, in id order.
    pub fn nodes(&self) -> &[Node<C>] {
        &self.nodes
    }

    /// Per-app accounting for every currently-placed app, sorted by
    /// name for stable comparison.
    pub fn reports(&self) -> Vec<AppReport> {
        let mut out: Vec<AppReport> = self
            .nodes
            .iter()
            .flat_map(|n| {
                n.apps().iter().map(|a| AppReport {
                    name: a.spec.name.clone(),
                    node: n.id(),
                    core: a.spec.core,
                    shares: a.spec.shares,
                    total_instructions: a.engine.total_retired(),
                    baseline_ips: a.spec.baseline_ips,
                })
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// Detached engine state: everything an external engine (the sharded
/// control plane in `pap-scale`) needs to drive a cluster's nodes
/// itself and still leave the [`Cluster`] in exactly the state the
/// serial reference would have produced. Obtained from
/// [`Cluster::detach_engine`]; hand it back with
/// [`Cluster::attach_engine`] when the run is over.
///
/// The seam deliberately exposes the arbiter as two halves so external
/// engines can defer actuation: [`EngineSeam::rebalance`] computes the
/// new per-node caps (and emits the same [`DecisionRecord`] the serial
/// engine would), while *applying* those caps to the nodes is the
/// caller's job — a sharded engine publishes them as pending caps and
/// retargets each node at the start of its next local step, which is
/// observationally identical to the serial engine retargeting at the
/// end of the interval (no chip ticks happen in between either way).
#[derive(Debug)]
pub struct EngineSeam<C: ChipLike = WideChip> {
    nodes: Vec<Node<C>>,
    observer: Option<DecisionTrace>,
    cfg: ClusterConfig,
    allocator: BudgetAllocator,
    intervals_run: u64,
    energy_j: f64,
}

impl<C: ChipLike> Cluster<C> {
    /// Move the nodes, observer and run counters out into an
    /// [`EngineSeam`] for an external engine. The cluster is left
    /// empty-handed (zero nodes) until [`Cluster::attach_engine`]
    /// returns the seam; admission and `run` must not be called in
    /// between.
    pub fn detach_engine(&mut self) -> EngineSeam<C> {
        EngineSeam {
            nodes: std::mem::take(&mut self.nodes),
            observer: self.observer.take(),
            cfg: self.cfg.clone(),
            allocator: self.allocator,
            intervals_run: self.intervals_run,
            energy_j: self.energy_j,
        }
    }

    /// Reattach a seam after an external engine ran, writing the
    /// engine's counters (and its final roll-up, when it materialized
    /// one) back into the cluster.
    pub fn attach_engine(&mut self, seam: EngineSeam<C>, last_rollup: Option<ClusterRollup>) {
        self.nodes = seam.nodes;
        self.observer = seam.observer;
        self.intervals_run = seam.intervals_run;
        self.energy_j = seam.energy_j;
        if last_rollup.is_some() {
            self.last_rollup = last_rollup;
        }
    }
}

impl<C: ChipLike> EngineSeam<C> {
    /// The cluster's configuration.
    pub fn cfg(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Move the nodes out (e.g. to partition them across shards).
    pub fn take_nodes(&mut self) -> Vec<Node<C>> {
        std::mem::take(&mut self.nodes)
    }

    /// Return the nodes, in id order, after the run.
    pub fn put_nodes(&mut self, nodes: Vec<Node<C>>) {
        self.nodes = nodes;
    }

    /// Control intervals completed so far (seed value plus every
    /// [`EngineSeam::note_interval`] call).
    pub fn intervals_run(&self) -> u64 {
        self.intervals_run
    }

    /// Whether a decision-trace observer is attached (lets engines skip
    /// building roll-ups that only exist for the trace).
    pub fn has_observer(&self) -> bool {
        self.observer.is_some()
    }

    /// Account one completed interval: bumps the interval counter and
    /// integrates `total_power` over the control interval into the
    /// energy meter — the exact serial-reference accounting, so the
    /// energy total stays bit-identical when `total_power` does.
    pub fn note_interval(&mut self, total_power: Watts) {
        self.intervals_run += 1;
        self.energy_j += total_power.value() * self.cfg.control_interval.value();
    }

    /// Whether the interval just noted is a rebalance round (same
    /// cadence as the serial engine: every `rebalance_every` intervals,
    /// 0 = never).
    pub fn rebalance_due(&self) -> bool {
        self.cfg.rebalance_every > 0 && self.intervals_run.is_multiple_of(self.cfg.rebalance_every)
    }

    /// Run one arbiter round over aggregated telemetry: build claims,
    /// water-fill the cluster cap, emit the rebalance [`DecisionRecord`]
    /// when an observer is attached, and return the new per-node caps
    /// in node order. The caller applies them (see the type-level docs
    /// on deferred actuation).
    pub fn rebalance(&mut self, rollup: &ClusterRollup) -> Vec<Watts> {
        let started = self.observer.as_ref().map(|_| std::time::Instant::now());
        let claims = claims_from_rollup(&self.cfg.platform, rollup);
        let caps = self.allocator.rebalance(&claims);
        if self.observer.is_some() {
            let record = rebalance_record(
                &self.cfg,
                rollup,
                &claims,
                &caps,
                self.intervals_run,
                started,
            );
            if let Some(obs) = self.observer.as_mut() {
                obs.push(record);
            }
        }
        caps
    }
}

/// Build the decision record for one rebalance round. Shared by the
/// serial engine ([`Cluster::apply_rebalance`]), the parallel
/// arbiter in [`crate::engine`] and the [`EngineSeam`], so all
/// produce identical records for identical rounds. `intervals_run` is
/// the post-increment interval count, which every engine holds when
/// rebalancing.
pub(crate) fn rebalance_record(
    cfg: &ClusterConfig,
    rollup: &ClusterRollup,
    claims: &[NodeClaim],
    caps: &[Watts],
    intervals_run: u64,
    started: Option<std::time::Instant>,
) -> DecisionRecord {
    let mut events = Vec::new();
    for ((claim, cap), tel) in claims.iter().zip(caps).zip(&rollup.nodes) {
        if claim.is_revoked(&cfg.platform) {
            events.push(DecisionEvent::Revocation {
                node: claim.node,
                ceiling: claim.max,
                draw: tel.package_power,
            });
        }
        if *cap != claim.current {
            events.push(DecisionEvent::Retarget {
                node: claim.node,
                from: claim.current,
                to: *cap,
            });
        }
    }
    DecisionRecord {
        time: Seconds(intervals_run as f64 * cfg.control_interval.value()),
        source: "cluster",
        policy: cfg.policy.name(),
        level: None,
        budget: cfg.cluster_cap,
        measured: Some(rollup.total_power()),
        translation: cfg.translation.name(),
        model_confident: rollup.nodes.iter().any(|n| n.predicted_capacity.is_some()),
        apps: Vec::new(),
        events,
        latency: Seconds(started.map_or(0.0, |s| s.elapsed().as_secs_f64())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DemandClass;

    fn cluster(nodes: usize, cap: f64) -> Cluster {
        Cluster::new(ClusterConfig::new(
            nodes,
            PolicyKind::FrequencyShares,
            Watts(cap),
        ))
        .unwrap()
    }

    #[test]
    fn budget_must_fund_floors() {
        let err = Cluster::new(ClusterConfig::new(
            4,
            PolicyKind::FrequencyShares,
            Watts(50.0),
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InsufficientBudget { required, .. } if required == Watts(80.0)
        ));
        assert!(matches!(
            Cluster::new(ClusterConfig::new(
                0,
                PolicyKind::FrequencyShares,
                Watts(50.0)
            ))
            .unwrap_err(),
            ClusterError::NoNodes
        ));
    }

    #[test]
    fn admission_picks_least_saturated_and_spills() {
        let mut c = cluster(2, 170.0);
        let p0 = c
            .admit(&AppRequest::new("a", 50, DemandClass::Light))
            .unwrap();
        let p1 = c
            .admit(&AppRequest::new("b", 50, DemandClass::Light))
            .unwrap();
        assert_eq!((p0.node, p1.node), (0, 1), "spread across nodes");
        let p2 = c
            .admit(&AppRequest::new("c", 50, DemandClass::Light))
            .unwrap();
        assert_eq!(p2.node, 0, "tie broken by node id");
    }

    #[test]
    fn duplicate_and_unknown_names_are_typed() {
        let mut c = cluster(1, 85.0);
        c.admit(&AppRequest::new("a", 50, DemandClass::Light))
            .unwrap();
        assert!(matches!(
            c.admit(&AppRequest::new("a", 10, DemandClass::Heavy)),
            Err(ClusterError::DuplicateApp { .. })
        ));
        assert!(matches!(
            c.depart("ghost"),
            Err(ClusterError::UnknownApp { .. })
        ));
    }

    #[test]
    fn overload_is_cluster_full() {
        let mut c = cluster(2, 170.0);
        for i in 0..20 {
            c.admit(&AppRequest::new(format!("a{i}"), 10, DemandClass::Light))
                .unwrap();
        }
        assert_eq!(c.free_cores(), 0);
        let err = c
            .admit(&AppRequest::new("straw", 10, DemandClass::Light))
            .unwrap_err();
        assert!(
            matches!(err, ClusterError::ClusterFull { cores: 20, .. }),
            "{err}"
        );
        // a departure makes room again
        c.depart("a3").unwrap();
        let p = c
            .admit(&AppRequest::new("straw", 10, DemandClass::Light))
            .unwrap();
        assert_eq!(p.node, 1, "reuses the freed core's node");
    }

    #[test]
    fn rebalance_moves_budget_toward_load() {
        // node 0 packed with frequency-scalable high-demand apps (they
        // can always absorb more power, so they throttle at any cap and
        // keep their claim ceiling), node 1 one light app
        let mut c = cluster(2, 110.0);
        for i in 0..6 {
            let req = AppRequest::new(format!("h{i}"), 100, DemandClass::Moderate);
            let node = if c.nodes[0].free_cores() > 0 { 0 } else { 1 };
            let core = c.nodes[node].admit(&req).unwrap();
            assert!(core < 10);
            c.placements.insert(req.name.clone(), node);
        }
        c.nodes[1]
            .admit(&AppRequest::new("light", 10, DemandClass::Light))
            .unwrap();
        c.placements.insert("light".into(), 1);
        let before = c.node_caps();
        assert_eq!(before[0], before[1], "even split at startup");
        c.run(12);
        let after = c.node_caps();
        assert!(
            after[0].value() > after[1].value() + 10.0,
            "loaded node wins budget: {after:?}"
        );
        let total: f64 = after.iter().map(|w| w.value()).sum();
        assert!(total <= 110.0 + 1e-6, "conservation, got {total}");
    }

    #[test]
    fn quarantine_requeues_apps_and_returns_budget() {
        let mut c = cluster(3, 255.0);
        for i in 0..6 {
            c.admit(&AppRequest::new(format!("a{i}"), 50, DemandClass::Moderate))
                .unwrap();
        }
        c.run(4);
        let victim_apps: Vec<String> = c.nodes[1]
            .apps()
            .iter()
            .map(|a| a.spec.name.clone())
            .collect();
        assert!(!victim_apps.is_empty());

        let outcomes = c.quarantine_node(1).unwrap();
        assert_eq!(outcomes.len(), victim_apps.len());
        for o in &outcomes {
            match o {
                RequeueOutcome::Requeued { placement, .. } => {
                    assert_ne!(placement.node, 1, "requeue skips the sick node")
                }
                RequeueOutcome::Dropped { app, .. } => panic!("cluster had room for {app}"),
            }
        }
        assert!(c.is_node_quarantined(1));
        assert_eq!(c.nodes[1].busy_cores(), 0, "node fully evacuated");

        // New arrivals avoid the quarantined node too.
        let p = c
            .admit(&AppRequest::new("fresh", 50, DemandClass::Light))
            .unwrap();
        assert_ne!(p.node, 1);

        // The idle node's budget drains to its floor at rebalances and
        // flows to the nodes now holding its apps.
        c.run(8);
        let caps = c.node_caps();
        assert!(
            caps[1].value() < caps[0].value() && caps[1].value() < caps[2].value(),
            "quarantined node loses budget: {caps:?}"
        );

        // Restore: eligible again, wins placements and budget back.
        c.restore_node(1).unwrap();
        assert!(!c.is_node_quarantined(1));
        let p = c
            .admit(&AppRequest::new("back", 50, DemandClass::Moderate))
            .unwrap();
        assert_eq!(p.node, 1, "empty restored node is least saturated");
    }

    #[test]
    fn quarantine_with_no_room_drops_apps() {
        let mut c = cluster(2, 170.0);
        for i in 0..20 {
            c.admit(&AppRequest::new(format!("a{i}"), 10, DemandClass::Light))
                .unwrap();
        }
        assert_eq!(c.free_cores(), 0);
        let outcomes = c.quarantine_node(0).unwrap();
        assert_eq!(outcomes.len(), 10);
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, RequeueOutcome::Dropped { .. })),
            "the other node is full, nothing can requeue"
        );
        // The dropped apps are really gone: their names are reusable.
        c.restore_node(0).unwrap();
        c.admit(&AppRequest::new("a0", 10, DemandClass::Light))
            .unwrap();
    }

    #[test]
    fn batch_admission_matches_sequential() {
        // Same arrival stream into two identical clusters — one via the
        // heap-based batch path, one via per-app sequential admission —
        // including intra-batch duplicates and overflow past capacity.
        let reqs: Vec<AppRequest> = (0..35)
            .map(|i| {
                let class = match i % 3 {
                    0 => DemandClass::Heavy,
                    1 => DemandClass::Moderate,
                    _ => DemandClass::Light,
                };
                AppRequest::new(format!("a{}", i % 33), 10 + (i % 7) as u32 * 10, class)
            })
            .collect();
        let mut seq = cluster(3, 255.0);
        let mut bat = cluster(3, 255.0);
        // Uneven starting occupancy so the heap seed matters.
        for c in [&mut seq, &mut bat] {
            c.admit(&AppRequest::new("warm0", 50, DemandClass::Light))
                .unwrap();
            c.admit(&AppRequest::new("warm1", 50, DemandClass::Light))
                .unwrap();
            c.quarantine_node(2).unwrap();
        }
        let batched = bat.admit_batch(&reqs);
        let sequential: Vec<Result<Placement, ClusterError>> =
            reqs.iter().map(|r| seq.admit(r)).collect();
        assert_eq!(batched, sequential);
        assert_eq!(bat.reports(), seq.reports());

        // And batch departures mirror sequential ones.
        let names: Vec<String> = (0..6).map(|i| format!("a{i}")).collect();
        let dep_b = bat.depart_batch(&names);
        let dep_s: Vec<Result<powerd::config::AppSpec, ClusterError>> =
            names.iter().map(|n| seq.depart(n)).collect();
        assert_eq!(dep_b, dep_s);
        assert_eq!(bat.reports(), seq.reports());
    }

    #[test]
    fn quarantine_and_restore_are_traced() {
        use pap_telemetry::metrics::ControlMetrics;
        use std::sync::Arc;

        let metrics = Arc::new(ControlMetrics::new());
        let mut c = cluster(2, 170.0);
        c.attach_observer(DecisionTrace::with_metrics(Arc::clone(&metrics)));
        for i in 0..4 {
            c.admit(&AppRequest::new(format!("a{i}"), 50, DemandClass::Light))
                .unwrap();
        }
        c.quarantine_node(1).unwrap();
        c.restore_node(1).unwrap();
        let trace = c.take_observer().unwrap();
        let ops: Vec<&DecisionRecord> = trace
            .records()
            .iter()
            .filter(|r| r.source == "cluster-ops")
            .collect();
        assert_eq!(ops.len(), 2);
        match &ops[0].events[..] {
            [DecisionEvent::Quarantine {
                node,
                evicted,
                requeued,
                dropped,
            }] => {
                assert_eq!(*node, 1);
                assert_eq!(*evicted, 2);
                assert_eq!(*requeued, 2, "node 0 had 8 free cores");
                assert_eq!(*dropped, 0);
            }
            other => panic!("expected a quarantine event, got {other:?}"),
        }
        assert!(matches!(
            &ops[1].events[..],
            [DecisionEvent::Restore { node: 1 }]
        ));
        assert_eq!(metrics.quarantines.get(), 1);
        assert_eq!(metrics.restores.get(), 1);
        assert_eq!(
            metrics.rebalances.get(),
            0,
            "ops records are not rebalances"
        );
        let jsonl = trace.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"quarantine\""));
        assert!(jsonl.contains("\"kind\":\"restore\""));
    }

    #[test]
    fn seam_reproduces_serial_reference() {
        // Drive one cluster with the serial engine and a clone of it by
        // hand through the EngineSeam, replaying the exact serial loop.
        let setup = |c: &mut Cluster| {
            for i in 0..9 {
                c.admit(&AppRequest::new(format!("a{i}"), 40, DemandClass::Moderate))
                    .unwrap();
            }
        };
        let mut serial = cluster(3, 255.0);
        setup(&mut serial);
        serial.run(10);

        let mut seamed = cluster(3, 255.0);
        setup(&mut seamed);
        let mut seam = seamed.detach_engine();
        let mut nodes = seam.take_nodes();
        let mut last = None;
        for _ in 0..10 {
            let teles: Vec<_> = nodes.iter_mut().map(|n| n.advance_interval()).collect();
            let rollup = ClusterRollup::new(seam.cfg().control_interval, teles);
            seam.note_interval(rollup.total_power());
            if seam.rebalance_due() {
                let caps = seam.rebalance(&rollup);
                for (node, cap) in nodes.iter_mut().zip(caps) {
                    node.retarget(cap).unwrap();
                }
            }
            last = Some(rollup);
        }
        seam.put_nodes(nodes);
        seamed.attach_engine(seam, last);

        assert_eq!(serial.intervals_run(), seamed.intervals_run());
        assert_eq!(serial.energy_j().to_bits(), seamed.energy_j().to_bits());
        assert_eq!(serial.node_caps(), seamed.node_caps());
        assert_eq!(serial.reports(), seamed.reports());
        assert_eq!(serial.last_rollup(), seamed.last_rollup());
    }

    #[test]
    fn static_split_never_rebalances() {
        let mut cfg = ClusterConfig::new(2, PolicyKind::RaplNative, Watts(110.0));
        cfg.rebalance_every = 0;
        let mut c = Cluster::new(cfg).unwrap();
        for i in 0..6 {
            c.admit(&AppRequest::new(format!("h{i}"), 100, DemandClass::Heavy))
                .unwrap();
        }
        c.run(8);
        assert_eq!(c.node_caps(), vec![Watts(55.0); 2]);
        assert_eq!(c.intervals_run(), 8);
        assert_eq!(c.reports().len(), 6);
    }
}
