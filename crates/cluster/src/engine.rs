//! Parallel execution engine: every node ticks on its own `crossbeam`
//! scoped thread, synchronized with the budget arbiter twice per
//! control interval — once to hand telemetry in, once to receive new
//! caps out.
//!
//! Nodes share no mutable state (each owns its chip, daemon, and apps),
//! the roll-up aggregates telemetry in node order, and the arbiter runs
//! serially between the barriers, so a parallel run is bit-identical to
//! [`Cluster::run`] — checked by the `cluster_e2e` determinism test.

use std::sync::{Barrier, Mutex};

use pap_simcpu::units::Watts;
use pap_telemetry::rollup::{ClusterRollup, NodeTelemetry};

use crate::allocator::claims_from_rollup;
use crate::cluster::{rebalance_record, Cluster};

/// Advance the whole cluster `intervals` control intervals with one
/// worker thread per node. Equivalent to `cluster.run(intervals)`,
/// state-for-state.
pub fn run_parallel(cluster: &mut Cluster, intervals: u64) {
    let n = cluster.nodes.len();
    if n == 0 || intervals == 0 {
        return;
    }
    let barrier = Barrier::new(n + 1);
    let tele: Vec<Mutex<Option<NodeTelemetry>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let caps: Vec<Mutex<Option<Watts>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let cfg = cluster.cfg.clone();
    let allocator = cluster.allocator;
    let mut intervals_run = cluster.intervals_run;
    let mut energy_j = cluster.energy_j;
    let mut last_rollup = None;
    let mut observer = cluster.observer.take();

    crossbeam::thread::scope(|s| {
        for (i, node) in cluster.nodes.iter_mut().enumerate() {
            let barrier = &barrier;
            let tele = &tele;
            let caps = &caps;
            s.spawn(move |_| {
                for _ in 0..intervals {
                    let t = node.advance_interval();
                    *tele[i].lock().expect("telemetry slot") = Some(t);
                    barrier.wait(); // telemetry in
                    barrier.wait(); // caps out
                    if let Some(cap) = caps[i].lock().expect("cap slot").take() {
                        node.retarget(cap)
                            .expect("allocator output stays within platform bounds");
                    }
                }
            });
        }

        // The calling thread is the arbiter.
        for _ in 0..intervals {
            barrier.wait(); // all telemetry written
            let teles: Vec<NodeTelemetry> = tele
                .iter()
                .map(|m| {
                    m.lock()
                        .expect("telemetry slot")
                        .take()
                        .expect("node wrote")
                })
                .collect();
            let rollup = ClusterRollup::new(cfg.control_interval, teles);
            intervals_run += 1;
            energy_j += rollup.total_power().value() * cfg.control_interval.value();
            if cfg.rebalance_every > 0 && intervals_run.is_multiple_of(cfg.rebalance_every) {
                let started = observer.as_ref().map(|_| std::time::Instant::now());
                let claims = claims_from_rollup(&cfg.platform, &rollup);
                let new_caps = allocator.rebalance(&claims);
                if let Some(obs) = observer.as_mut() {
                    obs.push(rebalance_record(
                        &cfg,
                        &rollup,
                        &claims,
                        &new_caps,
                        intervals_run,
                        started,
                    ));
                }
                for (slot, cap) in caps.iter().zip(new_caps) {
                    *slot.lock().expect("cap slot") = Some(cap);
                }
            }
            last_rollup = Some(rollup);
            barrier.wait(); // caps published
        }
    })
    .expect("node worker panicked");

    cluster.intervals_run = intervals_run;
    cluster.energy_j = energy_j;
    cluster.last_rollup = last_rollup.or(cluster.last_rollup.take());
    cluster.observer = observer;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AppRequest, DemandClass};
    use crate::cluster::ClusterConfig;
    use powerd::config::PolicyKind;

    fn loaded_cluster_with(translation: powerd::config::TranslationKind) -> Cluster {
        let mut cfg = ClusterConfig::new(3, PolicyKind::FrequencyShares, Watts(150.0));
        cfg.rebalance_every = 2;
        cfg.translation = translation;
        let mut c = Cluster::new(cfg).unwrap();
        for (i, demand) in [
            DemandClass::Heavy,
            DemandClass::Moderate,
            DemandClass::Light,
        ]
        .iter()
        .cycle()
        .take(9)
        .enumerate()
        {
            c.admit(&AppRequest::new(
                format!("app{i}"),
                20 + 10 * (i as u32 % 4),
                *demand,
            ))
            .unwrap();
        }
        c
    }

    fn loaded_cluster() -> Cluster {
        loaded_cluster_with(powerd::config::TranslationKind::Naive)
    }

    fn assert_identical(serial: &Cluster, parallel: &Cluster) {
        assert_eq!(serial.intervals_run(), parallel.intervals_run());
        assert_eq!(serial.node_caps(), parallel.node_caps());
        assert_eq!(serial.reports(), parallel.reports());
        assert_eq!(serial.energy_j(), parallel.energy_j());
        let (sr, pr) = (
            serial.last_rollup().unwrap(),
            parallel.last_rollup().unwrap(),
        );
        assert_eq!(sr.total_power(), pr.total_power());
        assert_eq!(sr.total_ips(), pr.total_ips());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let mut serial = loaded_cluster();
        let mut parallel = loaded_cluster();
        serial.run(7);
        run_parallel(&mut parallel, 7);
        assert_identical(&serial, &parallel);
    }

    #[test]
    fn parallel_matches_serial_with_online_model() {
        // The learned model lives inside each node and its capacity
        // prediction flows to the arbiter through the telemetry
        // roll-up, so serial equivalence must survive the online
        // translation too.
        let mut serial = loaded_cluster_with(powerd::config::TranslationKind::Online);
        let mut parallel = loaded_cluster_with(powerd::config::TranslationKind::Online);
        serial.run(9);
        run_parallel(&mut parallel, 9);
        assert_identical(&serial, &parallel);
    }

    #[test]
    fn zero_intervals_is_a_no_op() {
        let mut c = loaded_cluster();
        run_parallel(&mut c, 0);
        assert_eq!(c.intervals_run(), 0);
        assert!(c.last_rollup().is_none());
    }
}
