//! One simulated machine of the cluster: a chip, its `powerd` daemon,
//! and the applications currently running on it.
//!
//! A node advances in whole control intervals — exactly the loop the
//! single-socket experiment runner uses (tick the apps and the chip,
//! then sample telemetry and let the daemon act) — so cluster results
//! are directly comparable to the paper's single-node experiments. All
//! state is owned: nodes on different threads share nothing (the
//! [`PlatformSpec`] is shared read-only through an [`Arc`]), which is
//! what lets the parallel engine reproduce the serial reference
//! bit-for-bit.
//!
//! [`Node`] is generic over its simulator backend through the
//! [`ChipLike`] seam and defaults to the struct-of-arrays
//! [`WideChip`], which steps 4–5× faster than the scalar
//! [`Chip`](pap_simcpu::chip::Chip) at fleet core counts while staying
//! bit-identical (`pap-simcpu`'s equivalence suite). Code that needs
//! the scalar backend writes `Node<Chip>`.

use std::sync::Arc;

use pap_simcpu::chiplike::ChipLike;
use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::{Seconds, Watts};
use pap_simcpu::widechip::WideChip;
use pap_telemetry::rollup::NodeTelemetry;
use pap_telemetry::sampler::Sampler;
use pap_workloads::engine::RunningApp;
use pap_workloads::traces::LoadTrace;
use powerd::config::{AppSpec, DaemonConfig, MemoMode, PolicyKind, TranslationKind};
use powerd::daemon::{ControlAction, Daemon, DaemonError};
use powerd::memo::MemoStats;

use crate::admission::AppRequest;

/// An application resident on a node.
#[derive(Debug)]
pub struct ResidentApp {
    /// The spec registered with the node's daemon.
    pub spec: AppSpec,
    /// The simulated workload.
    pub engine: RunningApp,
    /// Optional offered-load trace modulating the app's demand over
    /// time (utilization and retired instructions scale by the trace's
    /// intensity at the node's simulated clock). `None` = steady
    /// full-demand, the historical behaviour.
    pub trace: Option<LoadTrace>,
}

/// One cluster node: chip + daemon + resident apps.
#[derive(Debug)]
pub struct Node<C: ChipLike = WideChip> {
    id: usize,
    platform: Arc<PlatformSpec>,
    chip: C,
    daemon: Daemon,
    sampler: Sampler,
    apps: Vec<ResidentApp>,
    parked: Vec<bool>,
    cap: Watts,
    interval: Seconds,
    tick: Seconds,
}

impl Node {
    /// Bring up an idle node on the default [`WideChip`] backend: an
    /// empty daemon config (all cores parked) under `policy` with an
    /// initial power cap of `cap`.
    pub fn new(
        id: usize,
        platform: &PlatformSpec,
        policy: PolicyKind,
        cap: Watts,
        interval: Seconds,
        tick: Seconds,
    ) -> Result<Node, DaemonError> {
        Node::with_chip(id, Arc::new(platform.clone()), policy, cap, interval, tick)
    }
}

impl<C: ChipLike> Node<C> {
    /// Bring up an idle node on an explicit backend, sharing the
    /// platform spec instead of cloning it per node (a fleet of 1024
    /// nodes holds one spec, not 1024 copies of its frequency grid and
    /// power curves).
    pub fn with_chip(
        id: usize,
        platform: Arc<PlatformSpec>,
        policy: PolicyKind,
        cap: Watts,
        interval: Seconds,
        tick: Seconds,
    ) -> Result<Node<C>, DaemonError> {
        let mut config = DaemonConfig::new(policy, cap, Vec::new());
        config.control_interval = interval;
        let mut chip = C::shared(Arc::clone(&platform));
        if policy == PolicyKind::RaplNative {
            chip.set_rapl_limit(Some(cap)).expect("platform has RAPL");
        }
        let mut daemon = Daemon::new(config, &platform)?;
        let action = daemon.initial();
        apply(&mut chip, &action);
        let sampler = Sampler::new(&chip);
        Ok(Node {
            id,
            platform,
            chip,
            daemon,
            sampler,
            apps: Vec::new(),
            parked: action.parked,
            cap,
            interval,
            tick,
        })
    }

    /// Node id within the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's current power cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Select which budget-to-frequency translation the node's daemon
    /// uses ([`TranslationKind::Naive`] is the paper's α model).
    pub fn set_translation(&mut self, kind: TranslationKind) {
        self.daemon.set_translation(kind);
    }

    /// Switch the daemon's decision memoization mode.
    pub fn set_memo(&mut self, mode: MemoMode) {
        self.daemon.set_memo(mode);
    }

    /// The daemon's memoization counters, if memoization is enabled.
    pub fn memo_stats(&self) -> Option<MemoStats> {
        self.daemon.memo_stats()
    }

    /// The daemon's learned prediction of this node's maximum package
    /// draw, when its online power model is confident. Only published
    /// under [`TranslationKind::Online`] so that naive clusters arbitrate
    /// exactly as before the learned model existed.
    pub fn predicted_capacity(&self) -> Option<Watts> {
        match self.daemon.translation() {
            TranslationKind::Online => self.daemon.predicted_capacity(),
            TranslationKind::Naive => None,
        }
    }

    /// Cores with an app pinned.
    pub fn busy_cores(&self) -> usize {
        self.apps.len()
    }

    /// Cores available for placement.
    pub fn free_cores(&self) -> usize {
        self.platform.num_cores - self.apps.len()
    }

    /// Occupied fraction of the node's cores.
    pub fn saturation(&self) -> f64 {
        self.apps.len() as f64 / self.platform.num_cores as f64
    }

    /// Sum of resident apps' shares.
    pub fn total_shares(&self) -> f64 {
        self.apps.iter().map(|a| a.spec.shares as f64).sum()
    }

    /// The apps currently resident, for reporting.
    pub fn apps(&self) -> &[ResidentApp] {
        &self.apps
    }

    /// Place a requested app on the lowest free core. The daemon
    /// validates the grown config atomically; on error the node is
    /// unchanged. The app starts at the next control interval, when the
    /// daemon re-runs its initial distribution over the new app set.
    pub fn admit(&mut self, req: &AppRequest) -> Result<usize, DaemonError> {
        self.admit_traced(req, None)
    }

    /// [`Node::admit`], with an optional offered-load trace attached:
    /// the app's demand follows `trace` (diurnal, bursty, piecewise)
    /// instead of running flat out.
    pub fn admit_traced(
        &mut self,
        req: &AppRequest,
        trace: Option<LoadTrace>,
    ) -> Result<usize, DaemonError> {
        let core = (0..self.platform.num_cores)
            .find(|&c| self.apps.iter().all(|a| a.spec.core != c))
            .ok_or_else(|| {
                DaemonError::Config(powerd::config::ConfigError::CoreOutOfRange {
                    app: req.name.clone(),
                    core: self.platform.num_cores,
                    num_cores: self.platform.num_cores,
                })
            })?;
        let profile = req.demand.profile();
        let spec = AppSpec::new(req.name.clone(), core)
            .with_priority(req.priority)
            .with_shares(req.shares)
            .with_baseline_ips(profile.ips(self.platform.grid.max()));
        self.daemon.add_app(spec.clone())?;
        self.apps.push(ResidentApp {
            spec,
            engine: RunningApp::looping(profile),
            trace,
        });
        Ok(core)
    }

    /// Remove a resident app by name. Its core parks immediately (the
    /// workload is gone; leaving the chip's stale load descriptor
    /// burning power until the next daemon action would charge the node
    /// for a phantom app).
    pub fn depart(&mut self, name: &str) -> Result<AppSpec, DaemonError> {
        let spec = self.daemon.remove_app(name)?;
        self.apps.retain(|a| a.spec.name != name);
        self.chip
            .set_forced_idle(spec.core, true)
            .expect("core in range");
        self.parked[spec.core] = true;
        Ok(spec)
    }

    /// Change the node's power cap (validated against the platform's
    /// RAPL range by the daemon; RAPL-native nodes reprogram the chip's
    /// hardware limit too).
    pub fn retarget(&mut self, cap: Watts) -> Result<(), DaemonError> {
        self.daemon.retarget_budget(cap)?;
        if self.daemon.config().policy == PolicyKind::RaplNative {
            self.chip
                .set_rapl_limit(Some(cap))
                .expect("platform has RAPL");
        }
        self.cap = cap;
        Ok(())
    }

    /// Whether every running app's next advance is a pure memo replay
    /// whose load equals the descriptor already installed on its core
    /// (parked apps don't touch the chip and can't break steadiness;
    /// traced apps modulate utilization with time and always can).
    fn apps_steady(&self) -> bool {
        self.apps.iter().all(|a| {
            self.parked[a.spec.core]
                || (a.trace.is_none()
                    && a.engine
                        .steady_at(self.tick, self.chip.effective_freq(a.spec.core)))
        })
    }

    /// Advance one control interval: tick every unparked app and the
    /// chip, then sample telemetry and apply the daemon's decision.
    /// Returns the node's telemetry summary for the cluster roll-up.
    pub fn advance_interval(&mut self) -> NodeTelemetry {
        let steps = (self.interval.value() / self.tick.value()).round() as usize;
        // Per-app instruction credits, accumulated across the interval's
        // ticks and flushed to the chip once before sampling. Nothing
        // reads the chip's instruction counters until the sample below,
        // and u64 wrapping adds commute, so one bulk credit is exactly
        // the per-tick sequence — while skipping a chip call per app per
        // tick.
        let mut credited = vec![0u64; self.apps.len()];
        let steps = steps.max(1);
        let mut t = 0;
        while t < steps {
            // Steady fast path: when the chip's next tick is a pure
            // replay and every running app's next advance is a memo
            // replay of the load already installed, nothing the rest of
            // this interval does can change a chip input — so advance
            // each app through the remaining ticks in one tight loop
            // (exact per-tick state sequence, including run wraps) and
            // batch the chip ticks. Bit-identical to the per-tick loop;
            // the scalar reference backend never reports steady.
            if self.chip.steady_tick(self.tick) && self.apps_steady() {
                let k = steps - t;
                for (app, credit) in self.apps.iter_mut().zip(credited.iter_mut()) {
                    let core = app.spec.core;
                    if self.parked[core] {
                        continue;
                    }
                    let f = self.chip.effective_freq(core);
                    for _ in 0..k {
                        let out = app.engine.advance(self.tick, f);
                        *credit = credit.wrapping_add(out.instructions);
                    }
                }
                self.chip.run_ticks(k, self.tick);
                break;
            }
            for (app, credit) in self.apps.iter_mut().zip(credited.iter_mut()) {
                let core = app.spec.core;
                if self.parked[core] {
                    continue;
                }
                let f = self.chip.effective_freq(core);
                let out = app.engine.advance(self.tick, f);
                let (load, instructions) = match &app.trace {
                    Some(trace) => {
                        let s = trace.intensity(self.chip.now()).clamp(0.0, 1.0);
                        let mut load = out.load;
                        load.utilization *= s;
                        (load, (out.instructions as f64 * s) as u64)
                    }
                    None => (out.load, out.instructions),
                };
                self.chip.set_load(core, load).expect("core in range");
                *credit = credit.wrapping_add(instructions);
            }
            self.chip.tick(self.tick);
            t += 1;
        }
        for (app, credit) in self.apps.iter().zip(credited) {
            self.chip
                .add_instructions(app.spec.core, credit)
                .expect("core in range");
        }
        let sample = self
            .sampler
            .sample(&self.chip)
            .expect("a whole control interval elapsed");
        let action = self.daemon.step(&sample);
        apply(&mut self.chip, &action);
        self.parked = action.parked.clone();
        NodeTelemetry::from_sample(
            self.id,
            &sample,
            self.cap,
            self.busy_cores(),
            self.total_shares(),
        )
        .with_predicted_capacity(self.predicted_capacity())
    }
}

fn apply<C: ChipLike>(chip: &mut C, action: &ControlAction) {
    chip.set_all_requested(&action.freqs)
        .expect("daemon emits grid/slot-valid frequencies");
    for (core, &p) in action.parked.iter().enumerate() {
        chip.set_forced_idle(core, p).expect("core in range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::DemandClass;

    fn node() -> Node {
        Node::new(
            0,
            &PlatformSpec::skylake(),
            PolicyKind::FrequencyShares,
            Watts(45.0),
            Seconds(1.0),
            Seconds(0.001),
        )
        .unwrap()
    }

    #[test]
    fn idle_node_draws_little() {
        let mut n = node();
        assert_eq!(n.free_cores(), 10);
        let t = n.advance_interval();
        assert_eq!(t.busy_cores, 0);
        assert!(
            t.package_power.value() < 15.0,
            "all-parked node draws only package idle power, drew {}",
            t.package_power
        );
    }

    #[test]
    fn admitted_app_runs_next_interval() {
        let mut n = node();
        let core = n
            .admit(&AppRequest::new("hog", 100, DemandClass::Heavy))
            .unwrap();
        assert_eq!(core, 0);
        assert_eq!(n.busy_cores(), 1);
        // interval 1 bootstraps the daemon's initial distribution;
        // interval 2 actually runs the app
        n.advance_interval();
        let t = n.advance_interval();
        assert!(
            t.total_ips > 1e8,
            "app retires instructions, got {}",
            t.total_ips
        );
        assert!(
            t.package_power.value() > 15.0,
            "busy node draws above package idle"
        );
    }

    #[test]
    fn departure_parks_core_and_frees_it() {
        let mut n = node();
        n.admit(&AppRequest::new("a", 50, DemandClass::Light))
            .unwrap();
        n.admit(&AppRequest::new("b", 50, DemandClass::Light))
            .unwrap();
        n.advance_interval();
        n.advance_interval();
        let spec = n.depart("a").unwrap();
        assert_eq!(spec.core, 0);
        assert_eq!(n.free_cores(), 9);
        let t = n.advance_interval();
        assert_eq!(t.busy_cores, 1);
        // core 0 is free again for the next admission
        let core = n
            .admit(&AppRequest::new("c", 50, DemandClass::Light))
            .unwrap();
        assert_eq!(core, 0);
    }

    #[test]
    fn retarget_steers_node_power() {
        let mut n = node();
        for i in 0..6 {
            n.admit(&AppRequest::new(format!("a{i}"), 100, DemandClass::Heavy))
                .unwrap();
        }
        for _ in 0..8 {
            n.advance_interval();
        }
        let before = n.advance_interval().package_power;
        n.retarget(Watts(25.0)).unwrap();
        for _ in 0..8 {
            n.advance_interval();
        }
        let after = n.advance_interval().package_power;
        assert!(
            after.value() < before.value() - 5.0,
            "25 W cap must bite: {before} -> {after}"
        );
        assert!(n.retarget(Watts(5.0)).is_err(), "below RAPL floor rejected");
    }

    #[test]
    fn traced_app_demand_follows_the_trace() {
        let mut low = node();
        low.admit_traced(
            &AppRequest::new("t", 100, DemandClass::Heavy),
            Some(LoadTrace::Flat(0.2)),
        )
        .unwrap();
        low.advance_interval();
        let throttled = low.advance_interval();

        let mut full = node();
        full.admit(&AppRequest::new("t", 100, DemandClass::Heavy))
            .unwrap();
        full.advance_interval();
        let flat_out = full.advance_interval();

        assert!(
            throttled.total_ips < flat_out.total_ips * 0.5,
            "a 0.2-intensity trace must cut retirement: {} vs {}",
            throttled.total_ips,
            flat_out.total_ips
        );
    }

    #[test]
    fn full_node_rejects_admission() {
        let mut n = node();
        for i in 0..10 {
            n.admit(&AppRequest::new(format!("a{i}"), 10, DemandClass::Light))
                .unwrap();
        }
        assert_eq!(n.free_cores(), 0);
        assert!(n
            .admit(&AppRequest::new("x", 10, DemandClass::Light))
            .is_err());
    }
}
