//! The hierarchical budget allocator: cluster cap → per-node caps.
//!
//! This is the same mechanism the node daemons use one level down —
//! share-proportional water-fill with min-funding revocation
//! ([`powerd::policy::minfund`]) — applied to nodes instead of apps. A
//! node's claim carries the sum of its apps' shares as weight, the
//! platform's programmable floor/ceiling as bounds, and its measured
//! draw; nodes that leave their budget unused get their claim ceiling
//! revoked down toward their draw (the cluster-level analog of the
//! daemon's saturation-aware `useful_max`), so surplus flows to nodes
//! that can spend it.

use pap_simcpu::platform::PlatformSpec;
use pap_simcpu::units::Watts;
use pap_telemetry::rollup::ClusterRollup;
use powerd::policy::minfund::{proportional_fill, Claim};

/// Share weight of a node with no apps: small enough to be irrelevant
/// next to any real app shares, positive so the water-fill keeps the
/// claim (idle nodes still hold their floor).
const IDLE_SHARE: f64 = 1e-6;

/// Budget headroom (W) a node keeps above its measured draw when its
/// ceiling is revoked: enough to ramp without a rebalance round-trip,
/// small enough that hoarding is impossible.
const REVOKE_SLACK_WATTS: f64 = 4.0;

/// One node's claim on the cluster budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClaim {
    /// Node id (for reports; the allocator works in input order).
    pub node: usize,
    /// Sum of the node's app shares (0 for an idle node).
    pub shares: f64,
    /// Lowest cap the node's platform can program (RAPL floor).
    pub min: Watts,
    /// Highest useful cap this round (platform ceiling, possibly
    /// revoked down toward the node's measured draw).
    pub max: Watts,
    /// The node's current cap.
    pub current: Watts,
}

impl NodeClaim {
    /// Whether this round's ceiling sits below the platform ceiling —
    /// i.e. part of the node's claim was revoked, by draw-based
    /// revocation or a learned-capacity clamp. Drives the decision
    /// trace's revocation events.
    pub fn is_revoked(&self, platform: &PlatformSpec) -> bool {
        self.max < node_cap_bounds(platform).1
    }
}

/// The cluster-level arbiter. Pure: [`rebalance`](BudgetAllocator::rebalance)
/// maps (cap, claims) to per-node caps with no internal state, which is
/// what makes the parallel engine's serial-equivalence and the
/// conservation/monotonicity properties checkable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetAllocator {
    /// The one global budget split across all nodes.
    pub cluster_cap: Watts,
}

impl BudgetAllocator {
    /// An allocator for a global budget.
    pub fn new(cluster_cap: Watts) -> BudgetAllocator {
        BudgetAllocator { cluster_cap }
    }

    /// Split the cluster cap across node claims.
    ///
    /// Invariants (property-tested in `tests/allocator_props.rs`):
    /// **conservation** — the returned caps sum to at most the cluster
    /// cap; **monotonicity** — raising the cluster cap never lowers any
    /// node's cap. When the cap cannot even fund every node's floor,
    /// floors are scaled down proportionally rather than overdrawn (the
    /// cluster layer must never promise power that does not exist).
    pub fn rebalance(&self, claims: &[NodeClaim]) -> Vec<Watts> {
        if claims.is_empty() {
            return Vec::new();
        }
        let cap = self.cluster_cap.value().max(0.0);
        let sum_min: f64 = claims.iter().map(|c| c.min.value()).sum();
        if cap < sum_min {
            let scale = if sum_min > 0.0 { cap / sum_min } else { 0.0 };
            return claims
                .iter()
                .map(|c| Watts(c.min.value() * scale))
                .collect();
        }
        let mf: Vec<Claim> = claims
            .iter()
            .map(|c| {
                Claim::new(
                    c.shares.max(IDLE_SHARE),
                    c.current.value(),
                    c.min.value(),
                    c.max.value().max(c.min.value()),
                )
            })
            .collect();
        proportional_fill(cap, &mf)
            .allocations
            .into_iter()
            .map(Watts)
            .collect()
    }
}

/// The floor and ceiling a node's cap must stay within: the platform's
/// programmable RAPL range where it has one, else an idle floor up to
/// TDP (per-core-power platforms enforce caps in software).
pub fn node_cap_bounds(platform: &PlatformSpec) -> (Watts, Watts) {
    match &platform.rapl {
        Some(rapl) => rapl.limit_range,
        None => (Watts(5.0), platform.tdp),
    }
}

/// Build this round's claims from aggregated telemetry. Weight is the
/// node's total app shares; the ceiling is revoked toward the node's
/// measured draw when it leaves more than [`REVOKE_SLACK_WATTS`] of its
/// cap unused — a throttled node draws *at* its cap and keeps the full
/// platform ceiling, so revocation only ever takes what demonstrably
/// is not wanted.
///
/// A node whose daemon publishes a learned capacity prediction (its
/// online power model's estimate of the maximum draw with every app
/// core at the top P-state) additionally has its ceiling clamped to
/// that prediction plus slack: budget above what the node's chip can
/// physically spend is dead weight this round, and the water-fill hands
/// it to nodes that can use it. Nodes without a prediction (naive
/// translation, or the fit not yet confident) keep the measured-draw
/// behaviour exactly.
pub fn claims_from_rollup(platform: &PlatformSpec, rollup: &ClusterRollup) -> Vec<NodeClaim> {
    let (min, plat_max) = node_cap_bounds(platform);
    rollup
        .nodes
        .iter()
        .map(|n| {
            let learned_max = match n.predicted_capacity {
                Some(c) => {
                    Watts((c.value() + REVOKE_SLACK_WATTS).clamp(min.value(), plat_max.value()))
                }
                None => plat_max,
            };
            let unused = n.power_cap.value() - n.package_power.value();
            let max = if unused > REVOKE_SLACK_WATTS {
                Watts(
                    (n.package_power.value() + REVOKE_SLACK_WATTS)
                        .clamp(min.value(), learned_max.value()),
                )
            } else {
                learned_max
            };
            NodeClaim {
                node: n.node,
                shares: n.total_shares,
                min,
                max,
                current: n.power_cap,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_simcpu::units::Seconds;
    use pap_telemetry::rollup::NodeTelemetry;

    fn claim(node: usize, shares: f64, min: f64, max: f64, current: f64) -> NodeClaim {
        NodeClaim {
            node,
            shares,
            min: Watts(min),
            max: Watts(max),
            current: Watts(current),
        }
    }

    #[test]
    fn share_proportional_between_bounds() {
        let a = BudgetAllocator::new(Watts(80.0));
        let caps = a.rebalance(&[
            claim(0, 300.0, 20.0, 85.0, 45.0),
            claim(1, 100.0, 20.0, 85.0, 45.0),
        ]);
        let total: f64 = caps.iter().map(|w| w.value()).sum();
        assert!((total - 80.0).abs() < 1e-3, "feasible cap fully placed");
        assert!(
            (caps[0].value() / caps[1].value() - 3.0).abs() < 1e-3,
            "3:1 shares → 3:1 caps, got {caps:?}"
        );
    }

    #[test]
    fn floors_hold_and_scale() {
        let a = BudgetAllocator::new(Watts(50.0));
        let caps = a.rebalance(&[
            claim(0, 1000.0, 20.0, 85.0, 45.0),
            claim(1, 1.0, 20.0, 85.0, 45.0),
        ]);
        assert!(caps[1].value() >= 20.0 - 1e-9, "floor funded before shares");

        // infeasible: 30 W cannot fund two 20 W floors — scale, never overdraw
        let tight = BudgetAllocator::new(Watts(30.0));
        let caps = tight.rebalance(&[
            claim(0, 10.0, 20.0, 85.0, 20.0),
            claim(1, 10.0, 20.0, 85.0, 20.0),
        ]);
        let total: f64 = caps.iter().map(|w| w.value()).sum();
        assert!(
            total <= 30.0 + 1e-9,
            "never allocate power that does not exist"
        );
        assert!((caps[0].value() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn idle_nodes_keep_their_floor_only() {
        let a = BudgetAllocator::new(Watts(100.0));
        let caps = a.rebalance(&[
            claim(0, 500.0, 20.0, 85.0, 45.0),
            claim(1, 0.0, 20.0, 85.0, 45.0), // idle
        ]);
        assert!((caps[1].value() - 20.0).abs() < 1e-6, "idle node at floor");
        assert!(
            (caps[0].value() - 80.0).abs() < 1e-3,
            "busy node takes the rest"
        );
    }

    #[test]
    fn revocation_caps_light_nodes_not_throttled_ones() {
        let platform = PlatformSpec::skylake();
        let mk = |node, draw: f64, cap: f64, shares: f64| NodeTelemetry {
            node,
            package_power: Watts(draw),
            power_cap: Watts(cap),
            busy_cores: 5,
            num_cores: 10,
            total_shares: shares,
            total_ips: 1e10,
            predicted_capacity: None,
        };
        let rollup = ClusterRollup::new(
            Seconds(1.0),
            vec![
                mk(0, 25.0, 45.0, 100.0), // light: 20 W unused
                mk(1, 44.5, 45.0, 100.0), // throttled: draws at cap
            ],
        );
        let claims = claims_from_rollup(&platform, &rollup);
        assert!(
            (claims[0].max.value() - 29.0).abs() < 1e-9,
            "light node's ceiling revoked to draw + slack, got {:?}",
            claims[0].max
        );
        assert_eq!(
            claims[1].max,
            Watts(85.0),
            "throttled node keeps platform ceiling"
        );

        // and the fill now moves budget from node 0 to node 1
        let caps = BudgetAllocator::new(Watts(90.0)).rebalance(&claims);
        assert!(
            caps[1] > caps[0],
            "surplus flows to the hungry node: {caps:?}"
        );
    }

    #[test]
    fn learned_capacity_clamps_the_ceiling() {
        let platform = PlatformSpec::skylake();
        let mk = |node, draw: f64, cap: f64, predicted: Option<f64>| NodeTelemetry {
            node,
            package_power: Watts(draw),
            power_cap: Watts(cap),
            busy_cores: 5,
            num_cores: 10,
            total_shares: 100.0,
            total_ips: 1e10,
            predicted_capacity: predicted.map(Watts),
        };
        let rollup = ClusterRollup::new(
            Seconds(1.0),
            vec![
                // throttled at its cap, but its learned model says the
                // chip tops out at 50 W — ceiling follows the model, not
                // the 85 W platform maximum
                mk(0, 44.5, 45.0, Some(50.0)),
                // throttled with no prediction: full platform ceiling
                mk(1, 44.5, 45.0, None),
            ],
        );
        let claims = claims_from_rollup(&platform, &rollup);
        assert_eq!(
            claims[0].max,
            Watts(54.0),
            "ceiling = learned capacity + slack"
        );
        assert_eq!(claims[1].max, Watts(85.0), "no prediction, no clamp");

        // measured-draw revocation still applies underneath the clamp
        let light = ClusterRollup::new(Seconds(1.0), vec![mk(0, 20.0, 45.0, Some(50.0))]);
        let claims = claims_from_rollup(&platform, &light);
        assert_eq!(
            claims[0].max,
            Watts(24.0),
            "draw-based revocation tighter than the learned clamp wins"
        );
    }

    #[test]
    fn empty_cluster() {
        assert!(BudgetAllocator::new(Watts(100.0)).rebalance(&[]).is_empty());
    }

    #[test]
    fn bounds_follow_platform() {
        let (lo, hi) = node_cap_bounds(&PlatformSpec::skylake());
        assert_eq!((lo, hi), (Watts(20.0), Watts(85.0)));
        let (lo, hi) = node_cap_bounds(&PlatformSpec::ryzen());
        assert!(lo.value() > 0.0);
        assert_eq!(hi, PlatformSpec::ryzen().tdp);
    }
}
