//! # clusterd — hierarchical multi-node power arbitration
//!
//! The paper delivers per-application power on **one socket**: a
//! `powerd` daemon splits a package budget across the apps pinned to
//! one chip. This crate is the layer above — the subsystem that turns
//! N independent daemons into one power-delivery fabric:
//!
//! * [`allocator`] — the hierarchical budget allocator: cluster cap →
//!   per-node caps via the same share-proportional water-fill and
//!   min-funding revocation (`powerd::policy::minfund`) the node
//!   daemons use one level down, rebalanced periodically from per-node
//!   telemetry ([`pap_telemetry::rollup::ClusterRollup`]); when nodes
//!   run the online learned translation, their published capacity
//!   predictions clamp claim ceilings so budget a chip cannot
//!   physically spend flows to nodes that can use it;
//! * [`admission`] — dynamic admission and placement: apps arrive with
//!   `(priority, shares, demand class)`, land on the least-saturated
//!   node, spill to the next node when a chip's cores are full, and are
//!   rejected with a typed [`ClusterError`] when the cluster is full;
//!   departures return their budget to the pool at the next rebalance;
//! * [`node`] — one simulated machine: a [`pap_simcpu::chip::Chip`],
//!   its `powerd` [`powerd::daemon::Daemon`], and the apps running on
//!   it, advanced one control interval at a time;
//! * [`cluster`] — the cluster itself: admission, departures, the
//!   serial reference engine, and rebalancing;
//! * [`engine`] — the parallel execution engine: nodes tick
//!   concurrently on `crossbeam` scoped threads with two barriers per
//!   control interval (telemetry in, caps out), bit-identical to the
//!   serial reference.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod allocator;
pub mod cluster;
pub mod engine;
pub mod node;

pub use admission::{AppRequest, DemandClass, Placement};
pub use allocator::{BudgetAllocator, NodeClaim};
pub use cluster::{Cluster, ClusterConfig, ClusterError, EngineSeam, RequeueOutcome};
pub use node::Node;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::admission::{AppRequest, DemandClass, Placement};
    pub use crate::allocator::{BudgetAllocator, NodeClaim};
    pub use crate::cluster::{
        AppReport, Cluster, ClusterConfig, ClusterError, EngineSeam, RequeueOutcome,
    };
    pub use crate::node::Node;
}
