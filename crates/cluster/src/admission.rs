//! Admission requests: what an application declares when it asks the
//! cluster for a core and a power share.

use pap_simcpu::freq::KiloHertz;
use pap_workloads::profile::WorkloadProfile;
use pap_workloads::spec;
use powerd::config::Priority;

/// Coarse power-demand class an arriving app declares, in lieu of a
/// full offline profile. Each class maps to a representative SPEC-like
/// workload model whose power draw at a given frequency matches the
/// class (cam4 is the AVX package-power outlier of the paper's Figure
/// 2; leela its lightest benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DemandClass {
    /// Power-hungry AVX compute (models cam4).
    Heavy,
    /// High-demand but scalar (models cactuBSSN).
    Moderate,
    /// Low-power, frequency-sensitive (models leela).
    Light,
}

impl DemandClass {
    /// The workload model simulated for this class.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            DemandClass::Heavy => spec::CAM4,
            DemandClass::Moderate => spec::CACTUS_BSSN,
            DemandClass::Light => spec::LEELA,
        }
    }

    /// Short label for reports.
    pub fn name(self) -> &'static str {
        match self {
            DemandClass::Heavy => "heavy",
            DemandClass::Moderate => "moderate",
            DemandClass::Light => "light",
        }
    }
}

/// An application asking to join the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRequest {
    /// Cluster-unique display name.
    pub name: String,
    /// Priority class, forwarded to the node daemon's policy.
    pub priority: Priority,
    /// Proportional shares, forwarded to the node daemon's policy and
    /// counted by the cluster allocator toward the node's budget claim.
    pub shares: u32,
    /// Declared power-demand class.
    pub demand: DemandClass,
}

impl AppRequest {
    /// A high-priority request with the given shares and demand class.
    pub fn new(name: impl Into<String>, shares: u32, demand: DemandClass) -> AppRequest {
        AppRequest {
            name: name.into(),
            priority: Priority::High,
            shares,
            demand,
        }
    }

    /// Set the priority class.
    pub fn with_priority(mut self, p: Priority) -> AppRequest {
        self.priority = p;
        self
    }

    /// The app's standalone instruction rate at `max_freq`, used as the
    /// performance baseline for normalized reporting.
    pub fn baseline_ips(&self, max_freq: KiloHertz) -> f64 {
        self.demand.profile().ips(max_freq)
    }
}

/// Where an admitted application landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The node the app was placed on.
    pub node: usize,
    /// The core it is pinned to on that node.
    pub core: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_classes_order_by_power() {
        // The class mapping only makes sense if heavy really draws more
        // than light at the same frequency.
        let f = KiloHertz::from_mhz(2200);
        let p = pap_simcpu::platform::PlatformSpec::skylake().power;
        let heavy = p.core_power(f, &DemandClass::Heavy.profile().load_at(f));
        let moderate = p.core_power(f, &DemandClass::Moderate.profile().load_at(f));
        let light = p.core_power(f, &DemandClass::Light.profile().load_at(f));
        assert!(heavy > moderate, "{heavy} vs {moderate}");
        assert!(moderate > light, "{moderate} vs {light}");
    }

    #[test]
    fn request_builder() {
        let r = AppRequest::new("svc", 70, DemandClass::Light).with_priority(Priority::Low);
        assert_eq!(r.priority, Priority::Low);
        assert_eq!(r.shares, 70);
        assert!(r.baseline_ips(KiloHertz::from_mhz(3000)) > 0.0);
        assert_eq!(r.demand.name(), "light");
    }
}
