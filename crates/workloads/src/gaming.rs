//! Game-ability of measurement-driven policies (§8).
//!
//! The paper closes by observing that an application can manipulate its
//! *measured* resource usage: padding NOP instructions inflates IPS, and
//! extra vector instructions inflate power. This module builds gamed
//! variants of a workload so the effect on each policy can be measured:
//!
//! * [`nop_padded`] — a fraction of retired instructions are filler.
//!   Measured IPS rises, but useful throughput is `measured × (1 − pad)`.
//! * [`sandbagged`] — artificial serializing stalls make the application
//!   look slower than it is (deflated IPS at any frequency), baiting a
//!   performance-share controller into granting extra frequency.
//! * [`power_padded`] — gratuitous vector work inflates power draw
//!   without retiring more useful instructions, gaming power-share
//!   accounting.
//!
//! The paper's soundness criterion: a policy is robust when gaming costs
//! the gamer more useful performance than the manipulation gains. The
//! `ext_gameability` benchmark binary quantifies this per policy.

use crate::profile::WorkloadProfile;

/// NOP padding: `pad` (0..1) of retired instructions are filler. NOPs
/// retire cheaply, so per-instruction cost drops while the instruction
/// count for the same useful work grows by `1/(1−pad)`.
pub fn nop_padded(base: WorkloadProfile, pad: f64) -> WorkloadProfile {
    assert!((0.0..1.0).contains(&pad), "pad fraction out of range");
    let keep = 1.0 - pad;
    WorkloadProfile {
        name: "nop-gamer",
        // filler retires at ~4 NOPs/cycle: blended CPI drops
        cpi: base.cpi * keep + 0.25 * pad,
        // memory behavior is per useful instruction; dilute by padding
        mem_stall_ns: base.mem_stall_ns * keep,
        capacitance: base.capacitance * keep + 0.5 * pad,
        avx: base.avx,
        total_instructions: (base.total_instructions as f64 / keep) as u64,
    }
}

/// Sandbagging: insert serializing stalls so measured IPS at any
/// frequency is `1/slowdown` of honest. The stall is frequency-
/// independent, so it also *reduces* apparent frequency sensitivity.
pub fn sandbagged(base: WorkloadProfile, slowdown: f64) -> WorkloadProfile {
    assert!(slowdown >= 1.0, "slowdown must be >= 1");
    // Add stall time so that at the base-calibration point (2.2 GHz) the
    // seconds-per-instruction grows by `slowdown`.
    let spi_ref = base.cpi / 2.2e9 + base.mem_stall_ns * 1e-9;
    let extra_ns = spi_ref * (slowdown - 1.0) * 1e9;
    WorkloadProfile {
        name: "sandbag-gamer",
        mem_stall_ns: base.mem_stall_ns + extra_ns,
        ..base
    }
}

/// Power padding: issue gratuitous wide-vector ops alongside the real
/// work. Capacitance (and the AVX frequency cap) rise; useful IPS is
/// unchanged.
pub fn power_padded(base: WorkloadProfile, extra_capacitance: f64) -> WorkloadProfile {
    assert!(extra_capacitance >= 0.0);
    WorkloadProfile {
        name: "power-gamer",
        capacitance: base.capacitance + extra_capacitance,
        avx: true,
        ..base
    }
}

/// Useful fraction of measured IPS for a NOP-padded workload.
pub fn useful_fraction(pad: f64) -> f64 {
    1.0 - pad
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;
    use pap_simcpu::freq::KiloHertz;

    #[test]
    fn nop_padding_inflates_ips() {
        let honest = spec::LEELA;
        let gamed = nop_padded(honest, 0.4);
        let f = KiloHertz::from_mhz(2200);
        assert!(
            gamed.ips(f) > honest.ips(f) * 1.2,
            "padded IPS must inflate"
        );
        // but useful throughput is lower than honest
        let useful = gamed.ips(f) * useful_fraction(0.4);
        assert!(useful < honest.ips(f));
        // same useful work takes more instructions
        assert!(gamed.total_instructions > honest.total_instructions);
    }

    #[test]
    fn sandbagging_deflates_ips_at_every_frequency() {
        let honest = spec::LEELA;
        let gamed = sandbagged(honest, 1.5);
        for mhz in [800u64, 1600, 2200, 3000] {
            let f = KiloHertz::from_mhz(mhz);
            assert!(gamed.ips(f) < honest.ips(f));
        }
        // at the calibration point the slowdown is exact
        let f = KiloHertz::from_ghz(2.2);
        let ratio = honest.ips(f) / gamed.ips(f);
        assert!((ratio - 1.5).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn power_padding_raises_demand_not_speed() {
        let honest = spec::LEELA;
        let gamed = power_padded(honest, 1.0);
        let f = KiloHertz::from_mhz(2200);
        assert_eq!(gamed.ips(f), honest.ips(f));
        assert!(gamed.capacitance > honest.capacitance);
        assert!(gamed.avx, "vector padding subjects the core to AVX caps");
    }

    #[test]
    #[should_panic(expected = "pad fraction")]
    fn rejects_full_padding() {
        let _ = nop_padded(spec::LEELA, 1.0);
    }
}
