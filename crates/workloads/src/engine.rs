//! The workload execution engine.
//!
//! A [`RunningApp`] advances a (possibly phased) workload profile through
//! simulated time at whatever frequency the chip resolved for its core,
//! retiring instructions and producing the [`LoadDescriptor`] the power
//! model consumes. It implements the per-tick protocol documented on
//! [`pap_simcpu::chip::Chip`].

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

use crate::phases::{PhaseParams, PhasedProfile};
use crate::profile::WorkloadProfile;

/// Result of advancing an app by one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Instructions retired during the tick.
    pub instructions: u64,
    /// The load the app presented to the core during the tick.
    pub load: LoadDescriptor,
    /// True if a complete run finished during this tick.
    pub finished_run: bool,
}

/// Memoized per-tick arithmetic: everything [`RunningApp::advance`]
/// derives purely from `(freq, dt, phase params)`, cached so the fleet
/// steady state (same frequency, same tick, same phase for millions of
/// consecutive ticks) pays the divisions once. A replayed hit is
/// bit-identical to recomputation because the expressions are pure.
#[derive(Debug, Clone, Copy)]
struct TickMemo {
    freq: KiloHertz,
    dt_bits: u64,
    params: PhaseParams,
    /// Instructions the tick retires (before run-boundary clamping).
    n: f64,
    /// `n.round()`, the reported integer retirement.
    instructions: u64,
    /// `n / dt`.
    ips: f64,
    load: LoadDescriptor,
}

/// An application executing on one core.
#[derive(Debug, Clone)]
pub struct RunningApp {
    profile: PhasedProfile,
    /// Instructions retired in the current run (may exceed one run when
    /// looping; see [`RunningApp::total_retired`] for the grand total).
    retired_in_run: f64,
    total_retired: f64,
    active_time: Seconds,
    completed_runs: u64,
    looping: bool,
    done: bool,
    last_ips: f64,
    memo: Option<TickMemo>,
    /// Phase parameters of a single-phase profile, fixed for the app's
    /// lifetime; `None` for phased profiles, which re-derive them per
    /// tick from run position.
    steady_params: Option<PhaseParams>,
}

impl RunningApp {
    /// Run the profile once to completion, then idle.
    pub fn once(profile: WorkloadProfile) -> RunningApp {
        Self::from_phased(PhasedProfile::uniform(profile), false)
    }

    /// Run the profile in a loop forever (steady-state experiments).
    pub fn looping(profile: WorkloadProfile) -> RunningApp {
        Self::from_phased(PhasedProfile::uniform(profile), true)
    }

    /// Full control over phasing and looping.
    pub fn from_phased(profile: PhasedProfile, looping: bool) -> RunningApp {
        let steady_params = profile.is_uniform().then(|| profile.params_at(0));
        RunningApp {
            profile,
            steady_params,
            retired_in_run: 0.0,
            total_retired: 0.0,
            active_time: Seconds(0.0),
            completed_runs: 0,
            looping,
            done: false,
            last_ips: 0.0,
            memo: None,
        }
    }

    /// The base profile.
    pub fn profile(&self) -> &WorkloadProfile {
        self.profile.base()
    }

    /// Advance by `dt` at core frequency `freq`.
    pub fn advance(&mut self, dt: Seconds, freq: KiloHertz) -> StepOutcome {
        if self.done {
            self.last_ips = 0.0;
            return StepOutcome {
                instructions: 0,
                load: LoadDescriptor::IDLE,
                finished_run: false,
            };
        }
        debug_assert!(freq.khz() > 0, "cannot execute at zero frequency");

        let params = match self.steady_params {
            Some(p) => p,
            None => self.profile.params_at(self.retired_in_run as u64),
        };
        let hit = self.memo.as_ref().is_some_and(|m| {
            m.freq == freq && m.dt_bits == dt.value().to_bits() && m.params == params
        });
        if !hit {
            let spi = params.cpi / freq.hz() + params.mem_stall_ns * 1e-9;
            let n = dt.value() / spi;
            // Load descriptor with phase-adjusted capacitance, derated
            // toward 45% while memory-stalled (matching
            // WorkloadProfile::load_at).
            let compute = params.cpi / freq.hz();
            let cf = compute / (compute + params.mem_stall_ns * 1e-9);
            self.memo = Some(TickMemo {
                freq,
                dt_bits: dt.value().to_bits(),
                params,
                n,
                instructions: n.round() as u64,
                ips: n / dt.value(),
                load: LoadDescriptor {
                    capacitance: params.capacitance * (0.45 + 0.55 * cf),
                    utilization: 1.0,
                    avx: self.profile.base().avx,
                },
            });
        }
        let m = self.memo.as_ref().expect("memo was just (re)filled");
        let load = m.load;
        let (mut n, mut instructions, mut ips) = (m.n, m.instructions, m.ips);

        let total = self.profile.base().total_instructions as f64;
        let mut finished = false;
        let remaining = total - self.retired_in_run;
        if n >= remaining {
            // The run completes inside this tick.
            n = remaining;
            instructions = n.round() as u64;
            ips = n / dt.value();
            finished = true;
            self.completed_runs += 1;
            self.retired_in_run = 0.0;
            if !self.looping {
                self.done = true;
            }
        } else {
            self.retired_in_run += n;
        }
        self.total_retired += n;
        self.active_time += dt;
        self.last_ips = ips;

        StepOutcome {
            instructions,
            load,
            finished_run: finished,
        }
    }

    /// Whether the next `advance(dt, freq)` call is a pure memo replay
    /// whose load descriptor provably equals the one the previous call
    /// returned: single-phase profile, still running, and the memo keyed
    /// on the same `(freq, dt)`. Run wrap-around does not break this —
    /// a single-phase looping app presents the same load across the
    /// boundary. Drivers use it to elide redundant `set_load` calls and
    /// batch steady intervals.
    pub fn steady_at(&self, dt: Seconds, freq: KiloHertz) -> bool {
        !self.done
            && self.steady_params.is_some()
            && self
                .memo
                .as_ref()
                .is_some_and(|m| m.freq == freq && m.dt_bits == dt.value().to_bits())
    }

    /// Fraction of the current run completed (0..1); 1.0 once done.
    pub fn progress(&self) -> f64 {
        if self.done {
            return 1.0;
        }
        self.retired_in_run / self.profile.base().total_instructions as f64
    }

    /// Whether the app has finished (never true for looping apps).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Total instructions retired across all runs.
    pub fn total_retired(&self) -> u64 {
        self.total_retired as u64
    }

    /// Completed run count.
    pub fn completed_runs(&self) -> u64 {
        self.completed_runs
    }

    /// Total time the app has been executing.
    pub fn active_time(&self) -> Seconds {
        self.active_time
    }

    /// IPS during the most recent tick.
    pub fn last_ips(&self) -> f64 {
        self.last_ips
    }

    /// Offline baseline: IPS of the base profile running alone at `freq`
    /// (what the performance-share policy normalizes against, §5.2).
    pub fn baseline_ips(&self, freq: KiloHertz) -> f64 {
        self.profile.base().ips(freq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    const DT: Seconds = Seconds(0.01);

    #[test]
    fn advances_and_retires() {
        let mut app = RunningApp::once(spec::GCC);
        let out = app.advance(DT, KiloHertz::from_mhz(2200));
        assert!(out.instructions > 0);
        assert!(!out.finished_run);
        assert!(app.progress() > 0.0 && app.progress() < 1.0);
        assert!(app.last_ips() > 0.0);
        assert_eq!(out.load.utilization, 1.0);
    }

    #[test]
    fn ips_matches_profile_model() {
        let mut app = RunningApp::once(spec::LEELA);
        let f = KiloHertz::from_mhz(2200);
        app.advance(DT, f);
        let expected = spec::LEELA.ips(f);
        assert!(
            (app.last_ips() / expected - 1.0).abs() < 1e-9,
            "engine IPS {} vs model {}",
            app.last_ips(),
            expected
        );
    }

    #[test]
    fn completes_in_expected_time() {
        let mut app = RunningApp::once(spec::OMNETPP);
        let f = KiloHertz::from_mhz(2200);
        let expected = spec::OMNETPP.runtime(f);
        let mut t = 0.0;
        let dt = Seconds(0.1);
        while !app.is_done() {
            app.advance(dt, f);
            t += dt.value();
            assert!(t < expected * 2.0, "runaway run");
        }
        assert!(
            (t - expected).abs() <= 0.2 + expected * 0.01,
            "finished in {t:.1}s, model says {expected:.1}s"
        );
        assert_eq!(app.completed_runs(), 1);
        assert_eq!(app.progress(), 1.0);
    }

    #[test]
    fn done_app_goes_idle() {
        let mut app = RunningApp::once(spec::GCC);
        let f = KiloHertz::from_mhz(3000);
        while !app.is_done() {
            app.advance(Seconds(1.0), f);
        }
        let out = app.advance(DT, f);
        assert_eq!(out.instructions, 0);
        assert_eq!(out.load, LoadDescriptor::IDLE);
        assert_eq!(app.last_ips(), 0.0);
    }

    #[test]
    fn looping_app_never_finishes() {
        let mut app = RunningApp::looping(spec::GCC);
        let f = KiloHertz::from_mhz(3000);
        let mut finishes = 0;
        // long enough for several complete runs at 10x time steps
        for _ in 0..5000 {
            if app.advance(Seconds(0.1), f).finished_run {
                finishes += 1;
            }
        }
        assert!(finishes >= 2, "only {finishes} completed runs");
        assert!(!app.is_done());
        assert_eq!(app.completed_runs(), finishes);
    }

    #[test]
    fn slower_frequency_retires_fewer_instructions() {
        let mut fast = RunningApp::once(spec::EXCHANGE2);
        let mut slow = RunningApp::once(spec::EXCHANGE2);
        let a = fast.advance(DT, KiloHertz::from_mhz(3000));
        let b = slow.advance(DT, KiloHertz::from_mhz(800));
        let ratio = a.instructions as f64 / b.instructions as f64;
        // exchange2 is compute-bound: ratio close to frequency ratio 3.75
        assert!(ratio > 3.4 && ratio < 3.8, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_load_derated() {
        let mut mem = RunningApp::once(spec::OMNETPP);
        let mut cpu = RunningApp::once(spec::EXCHANGE2);
        let f = KiloHertz::from_mhz(3000);
        let lm = mem.advance(DT, f).load;
        let lc = cpu.advance(DT, f).load;
        let mem_derate = lm.capacitance / spec::OMNETPP.capacitance;
        let cpu_derate = lc.capacitance / spec::EXCHANGE2.capacitance;
        assert!(mem_derate < cpu_derate);
        assert!(cpu_derate > 0.95);
    }

    #[test]
    fn baseline_ips_uses_base_profile() {
        let app = RunningApp::once(spec::CAM4);
        let f = KiloHertz::from_mhz(1700);
        assert_eq!(app.baseline_ips(f), spec::CAM4.ips(f));
    }

    #[test]
    fn active_time_accumulates() {
        let mut app = RunningApp::once(spec::GCC);
        for _ in 0..10 {
            app.advance(DT, KiloHertz::from_mhz(2000));
        }
        assert!((app.active_time().value() - 0.1).abs() < 1e-9);
    }
}
