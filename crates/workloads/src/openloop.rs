//! An open-loop latency-sensitive service: Poisson arrivals against a
//! bounded FCFS queue.
//!
//! The closed-loop model in [`crate::latency`] couples offered load to
//! completions — a saturated service slows its own users down, which is
//! right for a fixed user population but wrong for internet-facing
//! tenants whose arrival rate does not care how the backend is doing.
//! Here requests arrive as a Poisson process at `rate_scale × peak_rps`
//! regardless of queue state; when the bounded queue is full, arrivals
//! are *dropped* and counted, so overload shows up as shed traffic and a
//! blown tail instead of a silently throttled client population. This is
//! the load shape the multi-tenant scenarios (`pap-tenants`) drive
//! through the daemon.

use std::collections::VecDeque;

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::DemandShape;

/// Configuration of an open-loop service tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopConfig {
    /// Arrival rate at full intensity, in requests per second.
    pub peak_rps: f64,
    /// Mean service demand per request, in cycles.
    pub mean_service_cycles: f64,
    /// Distribution shape of per-request demand around that mean.
    pub demand: DemandShape,
    /// Effective capacitance presented while executing.
    pub capacitance: f64,
    /// Maximum queued (not yet in service) requests; beyond this,
    /// arrivals are dropped.
    pub queue_cap: usize,
    /// RNG seed; runs are fully deterministic given the seed.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// A small latency-sensitive tenant: 400 rps of lightly heavy-tailed
    /// requests against a couple of cores.
    pub fn frontend() -> OpenLoopConfig {
        OpenLoopConfig {
            peak_rps: 400.0,
            mean_service_cycles: 8.0e6,
            demand: DemandShape::LogNormal { sigma: 1.0 },
            capacitance: 0.6,
            queue_cap: 2_000,
            seed: 0x0F0E_D00D,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    remaining_cycles: f64,
    arrival: f64,
}

/// The open-loop service simulator.
///
/// ```
/// use pap_workloads::openloop::{OpenLoopConfig, OpenLoopService};
/// use pap_simcpu::freq::KiloHertz;
/// use pap_simcpu::units::Seconds;
///
/// let mut svc = OpenLoopService::new(OpenLoopConfig::frontend(), 2);
/// let freqs = vec![KiloHertz::from_mhz(3000); 2];
/// for _ in 0..5_000 {
///     svc.advance(Seconds(0.001), &freqs);
/// }
/// assert!(svc.completed() > 1_000);
/// assert_eq!(svc.dropped(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct OpenLoopService {
    config: OpenLoopConfig,
    rng: StdRng,
    now: f64,
    queue: VecDeque<Request>,
    in_service: Vec<Option<Request>>,
    latencies: Vec<f64>,
    completed: u64,
    offered: u64,
    dropped: u64,
    window_start: f64,
    /// Multiplier on `peak_rps`; the handle arrival traces use.
    rate_scale: f64,
}

impl OpenLoopService {
    /// Create a service with `num_cores` serving cores.
    pub fn new(config: OpenLoopConfig, num_cores: usize) -> OpenLoopService {
        assert!(num_cores >= 1, "need at least one serving core");
        assert!(
            config.peak_rps.is_finite() && config.peak_rps >= 0.0,
            "peak_rps must be finite and non-negative"
        );
        let rng = StdRng::seed_from_u64(config.seed);
        OpenLoopService {
            config,
            rng,
            now: 0.0,
            queue: VecDeque::new(),
            in_service: vec![None; num_cores],
            latencies: Vec::new(),
            completed: 0,
            offered: 0,
            dropped: 0,
            window_start: 0.0,
            rate_scale: 1.0,
        }
    }

    /// Scale the arrival rate: effective rate is `scale × peak_rps`.
    /// Non-finite or negative scales read as zero.
    pub fn set_rate_scale(&mut self, scale: f64) {
        self.rate_scale = if scale.is_finite() && scale > 0.0 {
            scale
        } else {
            0.0
        };
    }

    /// Number of serving cores.
    pub fn num_cores(&self) -> usize {
        self.in_service.len()
    }

    /// Advance the service by `dt` at the given per-core frequencies.
    ///
    /// Allocates a fresh descriptor vector per tick; hot loops should
    /// call [`OpenLoopService::advance_into`] with a reused buffer.
    pub fn advance(&mut self, dt: Seconds, freqs: &[KiloHertz]) -> Vec<LoadDescriptor> {
        let mut out = Vec::with_capacity(freqs.len());
        self.advance_into(dt, freqs, &mut out);
        out
    }

    /// Zero-allocation form of [`OpenLoopService::advance`]: clears `out`
    /// and writes one [`LoadDescriptor`] per serving core into it.
    pub fn advance_into(
        &mut self,
        dt: Seconds,
        freqs: &[KiloHertz],
        out: &mut Vec<LoadDescriptor>,
    ) {
        assert_eq!(freqs.len(), self.in_service.len(), "one frequency per core");
        let dt = dt.value();
        let end = self.now + dt;

        // Poisson arrival count for this tick (Knuth's product-of-
        // uniforms; λ = rate·dt is small at millisecond ticks, so the
        // loop runs a handful of iterations).
        let lambda = self.config.peak_rps * self.rate_scale * dt;
        let n = if lambda > 0.0 {
            let limit = (-lambda).exp();
            let mut k = 0u32;
            let mut p = 1.0;
            loop {
                p *= self.rng.gen_range(0.0..1.0_f64);
                if p <= limit || k > 10_000 {
                    break k;
                }
                k += 1;
            }
        } else {
            0
        };
        // Spread arrivals evenly across the tick: at millisecond ticks
        // the intra-tick offset is far below any latency we report, and
        // it keeps the RNG draw count independent of queue state.
        for i in 0..n {
            self.offered += 1;
            if self.queue.len() >= self.config.queue_cap {
                self.dropped += 1;
                continue;
            }
            let arrival = self.now + dt * (i as f64 + 0.5) / n as f64;
            let demand = self
                .config
                .demand
                .sample(&mut self.rng, self.config.mean_service_cycles);
            self.queue.push_back(Request {
                remaining_cycles: demand,
                arrival,
            });
        }

        // Serve FCFS, identically to the closed-loop model.
        out.clear();
        for (core, &f) in self.in_service.iter_mut().zip(freqs) {
            let hz = f.hz();
            let mut budget = dt;
            let mut busy = 0.0;
            while budget > 1e-12 {
                let req = match core.take().or_else(|| self.queue.pop_front()) {
                    Some(r) => r,
                    None => break,
                };
                let need = req.remaining_cycles / hz;
                if need <= budget {
                    let completion = end - (budget - need);
                    self.latencies.push(completion - req.arrival);
                    self.completed += 1;
                    busy += need;
                    budget -= need;
                } else {
                    *core = Some(Request {
                        remaining_cycles: req.remaining_cycles - hz * budget,
                        arrival: req.arrival,
                    });
                    busy += budget;
                    budget = 0.0;
                }
            }
            let utilization = (busy / dt).clamp(0.0, 1.0);
            out.push(if utilization > 0.0 {
                LoadDescriptor {
                    capacitance: self.config.capacitance,
                    utilization,
                    avx: false,
                }
            } else {
                LoadDescriptor::IDLE
            });
        }

        self.now = end;
    }

    /// Completed requests in the current measurement window.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests offered (arrived) in the current window, including drops.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Requests dropped at the full queue in the current window.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Current queue depth (excluding requests in service).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Latency percentile (`p` in 0..100) in milliseconds over the
    /// current window; 0 when nothing completed.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)] * 1e3
    }

    /// The headline tail metric.
    pub fn p90_ms(&self) -> f64 {
        self.percentile_ms(90.0)
    }

    /// Goodput in completed requests per second over the current window.
    pub fn throughput(&self) -> f64 {
        let elapsed = self.now - self.window_start;
        if elapsed <= 0.0 {
            0.0
        } else {
            self.completed as f64 / elapsed
        }
    }

    /// Discard recorded stats and restart the measurement window; queue
    /// state and the service clock are untouched.
    pub fn reset_stats(&mut self) {
        self.latencies.clear();
        self.completed = 0;
        self.offered = 0;
        self.dropped = 0;
        self.window_start = self.now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mhz: u64, cores: usize, scale: f64, seconds: f64) -> OpenLoopService {
        let mut svc = OpenLoopService::new(OpenLoopConfig::frontend(), cores);
        svc.set_rate_scale(scale);
        let freqs = vec![KiloHertz::from_mhz(mhz); cores];
        for _ in 0..(seconds / 0.001) as usize {
            svc.advance(Seconds(0.001), &freqs);
        }
        svc
    }

    #[test]
    fn keeps_up_when_provisioned() {
        let svc = run(3000, 2, 1.0, 20.0);
        // 400 rps offered; nearly all should complete with no drops.
        assert_eq!(svc.dropped(), 0);
        let x = svc.throughput();
        assert!(x > 330.0 && x < 470.0, "throughput {x}");
        assert!(svc.p90_ms() < 50.0, "p90 {}", svc.p90_ms());
    }

    #[test]
    fn overload_drops_instead_of_throttling_arrivals() {
        // 2× the rate against one slow core: the queue caps and drops.
        let svc = run(800, 1, 2.0, 30.0);
        assert!(svc.dropped() > 0, "overload must shed traffic");
        assert!(svc.offered() > svc.completed() + svc.dropped() / 2);
        // Offered rate stays open-loop: ~800 rps regardless of service.
        let offered_rps = svc.offered() as f64 / 30.0;
        assert!(
            offered_rps > 700.0 && offered_rps < 900.0,
            "offered {offered_rps}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(2200, 2, 0.8, 10.0);
        let b = run(2200, 2, 0.8, 10.0);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.offered(), b.offered());
        assert_eq!(a.p90_ms(), b.p90_ms());
    }

    #[test]
    fn advance_into_matches_advance() {
        let mut a = OpenLoopService::new(OpenLoopConfig::frontend(), 3);
        let mut b = a.clone();
        let freqs = vec![KiloHertz::from_mhz(2600); 3];
        let mut buf = Vec::new();
        for _ in 0..8000 {
            let fresh = a.advance(Seconds(0.001), &freqs);
            b.advance_into(Seconds(0.001), &freqs, &mut buf);
            assert_eq!(fresh, buf);
        }
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn tail_inflates_at_low_frequency() {
        let fast = run(3000, 2, 1.0, 20.0);
        let slow = run(1200, 2, 1.0, 20.0);
        assert!(
            slow.p90_ms() > fast.p90_ms() * 2.0,
            "p90 {} -> {} ms",
            fast.p90_ms(),
            slow.p90_ms()
        );
    }

    #[test]
    fn zero_scale_silences_arrivals() {
        let mut svc = OpenLoopService::new(OpenLoopConfig::frontend(), 2);
        svc.set_rate_scale(0.0);
        let freqs = vec![KiloHertz::from_mhz(3000); 2];
        for _ in 0..2000 {
            svc.advance(Seconds(0.001), &freqs);
        }
        assert_eq!(svc.offered(), 0);
        // Degenerate scales read as zero, not NaN-rate arrivals.
        svc.set_rate_scale(f64::NAN);
        for _ in 0..1000 {
            svc.advance(Seconds(0.001), &freqs);
        }
        assert_eq!(svc.offered(), 0);
    }
}
