//! Program phase behavior.
//!
//! Real programs move through phases with different instruction mixes;
//! the paper observes (§6.2) that performance shares over- and under-shoot
//! because IPS moves with phase while frequency does not. A
//! [`PhasedProfile`] divides a run into segments that perturb the base
//! profile's parameters; phase boundaries are a function of retired
//! instructions, so phase behavior is deterministic and reproducible.

use crate::profile::WorkloadProfile;

/// One phase segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Fraction of the run's instructions covered (all phases sum to 1).
    pub fraction: f64,
    /// Multiplier on the base CPI.
    pub cpi_mult: f64,
    /// Multiplier on the base memory stall.
    pub stall_mult: f64,
    /// Multiplier on the base capacitance.
    pub cap_mult: f64,
}

/// Instantaneous effective parameters within a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseParams {
    /// Effective cycles per instruction.
    pub cpi: f64,
    /// Effective memory stall (ns per instruction).
    pub mem_stall_ns: f64,
    /// Effective capacitance factor.
    pub capacitance: f64,
}

/// A workload profile with phase structure.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedProfile {
    base: WorkloadProfile,
    phases: Vec<Phase>,
}

impl PhasedProfile {
    /// A profile with a single uniform phase (steady behavior — the SPEC
    /// subset was chosen by the paper for exactly this property).
    pub fn uniform(base: WorkloadProfile) -> PhasedProfile {
        PhasedProfile {
            base,
            phases: vec![Phase {
                fraction: 1.0,
                cpi_mult: 1.0,
                stall_mult: 1.0,
                cap_mult: 1.0,
            }],
        }
    }

    /// A profile with explicit phases.
    ///
    /// # Panics
    /// Panics if phases are empty, fractions are non-positive, or do not
    /// sum to 1 (±1e-6).
    pub fn with_phases(base: WorkloadProfile, phases: Vec<Phase>) -> PhasedProfile {
        assert!(!phases.is_empty(), "need at least one phase");
        let total: f64 = phases.iter().map(|p| p.fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "phase fractions sum to {total}, expected 1"
        );
        for p in &phases {
            assert!(p.fraction > 0.0, "non-positive phase fraction");
            assert!(p.cpi_mult > 0.0 && p.stall_mult >= 0.0 && p.cap_mult > 0.0);
        }
        PhasedProfile { base, phases }
    }

    /// Generate mild pseudo-random phases (±`amplitude` multiplicative
    /// swing, e.g. 0.15) deterministically from `seed`. Gives steady
    /// benchmarks the small phase wobble that destabilizes IPS-based
    /// control in the paper's Figure 10 discussion.
    pub fn with_generated_phases(
        base: WorkloadProfile,
        seed: u64,
        amplitude: f64,
    ) -> PhasedProfile {
        assert!((0.0..1.0).contains(&amplitude));
        // xorshift64* — tiny deterministic generator, no external RNG
        // needed in this crate's core path.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let v = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (v >> 11) as f64 / (1u64 << 53) as f64 // [0,1)
        };
        let n = 4 + (next() * 4.0) as usize; // 4..=7 phases
        let mut fracs: Vec<f64> = (0..n).map(|_| 0.5 + next()).collect();
        let total: f64 = fracs.iter().sum();
        for f in &mut fracs {
            *f /= total;
        }
        let phases = fracs
            .into_iter()
            .map(|fraction| Phase {
                fraction,
                cpi_mult: 1.0 + amplitude * (2.0 * next() - 1.0),
                stall_mult: 1.0 + amplitude * (2.0 * next() - 1.0),
                cap_mult: 1.0 + amplitude * (2.0 * next() - 1.0),
            })
            .collect();
        PhasedProfile { base, phases }
    }

    /// The underlying base profile.
    pub fn base(&self) -> &WorkloadProfile {
        &self.base
    }

    /// The phase list.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Whether the profile has a single phase, i.e. [`Self::params_at`]
    /// returns the same parameters at every position.
    pub fn is_uniform(&self) -> bool {
        self.phases.len() == 1
    }

    /// Effective parameters after retiring `retired` of the run's
    /// instructions (wraps around for looping runs).
    pub fn params_at(&self, retired: u64) -> PhaseParams {
        let total = self.base.total_instructions.max(1);
        let pos = (retired % total) as f64 / total as f64;
        let mut acc = 0.0;
        let mut chosen = &self.phases[self.phases.len() - 1];
        for p in &self.phases {
            acc += p.fraction;
            if pos < acc {
                chosen = p;
                break;
            }
        }
        PhaseParams {
            cpi: self.base.cpi * chosen.cpi_mult,
            mem_stall_ns: self.base.mem_stall_ns * chosen.stall_mult,
            capacitance: self.base.capacitance * chosen.cap_mult,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn uniform_matches_base() {
        let p = PhasedProfile::uniform(spec::LEELA);
        let params = p.params_at(0);
        assert_eq!(params.cpi, spec::LEELA.cpi);
        assert_eq!(params.mem_stall_ns, spec::LEELA.mem_stall_ns);
        assert_eq!(params.capacitance, spec::LEELA.capacitance);
        // and anywhere in the run
        let late = p.params_at(spec::LEELA.total_instructions - 1);
        assert_eq!(late, params);
    }

    #[test]
    fn explicit_phases_selected_by_progress() {
        let base = spec::GCC;
        let p = PhasedProfile::with_phases(
            base,
            vec![
                Phase {
                    fraction: 0.5,
                    cpi_mult: 1.0,
                    stall_mult: 1.0,
                    cap_mult: 1.0,
                },
                Phase {
                    fraction: 0.5,
                    cpi_mult: 2.0,
                    stall_mult: 1.0,
                    cap_mult: 1.0,
                },
            ],
        );
        let early = p.params_at(0);
        let late = p.params_at(base.total_instructions * 3 / 4);
        assert_eq!(early.cpi, base.cpi);
        assert_eq!(late.cpi, base.cpi * 2.0);
    }

    #[test]
    fn params_wrap_for_looping_runs() {
        let base = spec::GCC;
        let p = PhasedProfile::with_phases(
            base,
            vec![
                Phase {
                    fraction: 0.5,
                    cpi_mult: 1.0,
                    stall_mult: 1.0,
                    cap_mult: 1.0,
                },
                Phase {
                    fraction: 0.5,
                    cpi_mult: 2.0,
                    stall_mult: 1.0,
                    cap_mult: 1.0,
                },
            ],
        );
        let wrapped = p.params_at(base.total_instructions + 1);
        assert_eq!(wrapped.cpi, base.cpi);
    }

    #[test]
    fn generated_phases_deterministic_and_bounded() {
        let a = PhasedProfile::with_generated_phases(spec::CAM4, 42, 0.15);
        let b = PhasedProfile::with_generated_phases(spec::CAM4, 42, 0.15);
        assert_eq!(a, b, "same seed must give same phases");
        let c = PhasedProfile::with_generated_phases(spec::CAM4, 43, 0.15);
        assert_ne!(a, c, "different seeds should differ");

        let total: f64 = a.phases().iter().map(|p| p.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for ph in a.phases() {
            assert!(ph.cpi_mult > 0.84 && ph.cpi_mult < 1.16);
            assert!(ph.cap_mult > 0.84 && ph.cap_mult < 1.16);
        }
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn rejects_bad_fractions() {
        let _ = PhasedProfile::with_phases(
            spec::GCC,
            vec![Phase {
                fraction: 0.7,
                cpi_mult: 1.0,
                stall_mult: 1.0,
                cap_mult: 1.0,
            }],
        );
    }
}
