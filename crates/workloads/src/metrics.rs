//! Performance metrics and normalization helpers.
//!
//! The paper reports *performance normalized to standalone execution* —
//! either at a reference frequency (Figures 2/3) or at the full 85 W
//! budget (Figures 1/7/8). These helpers centralize that arithmetic so
//! every experiment normalizes the same way.

use pap_simcpu::freq::KiloHertz;

use crate::profile::WorkloadProfile;

/// Performance (IPS) of `profile` at `freq`, normalized to its standalone
/// IPS at `reference`.
pub fn normalized_perf(profile: &WorkloadProfile, freq: KiloHertz, reference: KiloHertz) -> f64 {
    profile.ips(freq) / profile.ips(reference)
}

/// Normalized runtime (inverse of normalized performance): >1 means
/// slower than the reference.
pub fn normalized_runtime(profile: &WorkloadProfile, freq: KiloHertz, reference: KiloHertz) -> f64 {
    profile.runtime(freq) / profile.runtime(reference)
}

/// Normalize a measured IPS value against a baseline IPS.
pub fn normalize_ips(measured_ips: f64, baseline_ips: f64) -> f64 {
    if baseline_ips <= 0.0 {
        return 0.0;
    }
    measured_ips / baseline_ips
}

/// Relative share of each value in a slice (values / sum). Empty or
/// all-zero input yields zeros. Used for the "percent of total resource
/// used by each application" views of Figures 10 and 11.
pub fn relative_shares(values: &[f64]) -> Vec<f64> {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| v / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn normalized_perf_identity() {
        let f = KiloHertz::from_mhz(2200);
        assert!((normalized_perf(&spec::GCC, f, f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perf_and_runtime_are_inverse() {
        let f = KiloHertz::from_mhz(1200);
        let r = KiloHertz::from_mhz(2200);
        let p = normalized_perf(&spec::GCC, f, r);
        let t = normalized_runtime(&spec::GCC, f, r);
        assert!((p * t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_ips_guards_zero() {
        assert_eq!(normalize_ips(100.0, 0.0), 0.0);
        assert!((normalize_ips(50.0, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_shares_sum_to_one() {
        let s = relative_shares(&[1.0, 3.0]);
        assert!((s[0] - 0.25).abs() < 1e-12);
        assert!((s[1] - 0.75).abs() < 1e-12);
        assert_eq!(relative_shares(&[]), Vec::<f64>::new());
        assert_eq!(relative_shares(&[0.0, 0.0]), vec![0.0, 0.0]);
    }
}
