//! Workload mix generation (§6.3, Table 3).
//!
//! The paper complements its hand-picked HD/LD pairs with randomly drawn
//! SPEC subsets. Table 3 fixes the two Skylake sets it reports (A and B);
//! [`random_set`] draws fresh seeded sets for wider sweeps.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::profile::WorkloadProfile;
use crate::spec;

/// Table 3, Skylake set A: deepsjeng, perlbench, cactusBSSN, exchange, gcc.
pub fn skylake_set_a() -> Vec<WorkloadProfile> {
    ["deepsjeng", "perlbench", "cactusBSSN", "exchange2", "gcc"]
        .iter()
        .map(|n| spec::by_name(n).expect("Table 3 name"))
        .collect()
}

/// Table 3, Skylake set B: deepsjeng, omnetpp, perlbench, cam4, lbm.
pub fn skylake_set_b() -> Vec<WorkloadProfile> {
    ["deepsjeng", "omnetpp", "perlbench", "cam4", "lbm"]
        .iter()
        .map(|n| spec::by_name(n).expect("Table 3 name"))
        .collect()
}

/// Draw `k` distinct benchmarks from the SPEC subset, deterministically
/// from `seed` (the paper used numbergenerator.org; we use a seeded
/// shuffle).
pub fn random_set(seed: u64, k: usize) -> Vec<WorkloadProfile> {
    let mut all = spec::spec2017();
    assert!(
        k <= all.len(),
        "cannot draw {k} from {} benchmarks",
        all.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    all.shuffle(&mut rng);
    all.truncate(k);
    all
}

/// Duplicate each profile `copies` times (the Skylake random experiments
/// run two copies of each of 5 applications on the 10 cores).
pub fn replicate(set: &[WorkloadProfile], copies: usize) -> Vec<WorkloadProfile> {
    let mut out = Vec::with_capacity(set.len() * copies);
    for w in set {
        for _ in 0..copies {
            out.push(*w);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_sets() {
        let a = skylake_set_a();
        let b = skylake_set_b();
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 5);
        assert_eq!(a[2].name, "cactusBSSN");
        assert_eq!(b[3].name, "cam4");
        assert_eq!(b[4].name, "lbm");
        // B contains the AVX outliers the paper calls out; A has none.
        assert!(a.iter().all(|w| !w.avx));
        assert_eq!(b.iter().filter(|w| w.avx).count(), 2);
    }

    #[test]
    fn random_set_deterministic_and_distinct() {
        let s1 = random_set(7, 5);
        let s2 = random_set(7, 5);
        assert_eq!(
            s1.iter().map(|w| w.name).collect::<Vec<_>>(),
            s2.iter().map(|w| w.name).collect::<Vec<_>>()
        );
        let mut names: Vec<_> = s1.iter().map(|w| w.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5, "duplicates drawn");

        let s3 = random_set(8, 5);
        assert_ne!(
            s1.iter().map(|w| w.name).collect::<Vec<_>>(),
            s3.iter().map(|w| w.name).collect::<Vec<_>>(),
            "different seeds should give different sets"
        );
    }

    #[test]
    fn replicate_doubles() {
        let set = skylake_set_a();
        let r = replicate(&set, 2);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].name, r[1].name);
        assert_eq!(r[8].name, r[9].name);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn random_set_bounds() {
        let _ = random_set(1, 12);
    }
}
