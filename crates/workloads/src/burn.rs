//! The `cpuburn` power virus (§3.2 "Unfair throttling", §6.4).
//!
//! `cpuburn` exists to draw the maximum possible power on one core. It is
//! modeled as a fully compute-bound loop with the highest effective
//! capacitance in the workload set, calibrated so that one busy core plus
//! the idle rest of the Skylake package draws ≈ 32 W at 3 GHz, matching
//! the paper's measurement.

use crate::engine::RunningApp;
use crate::profile::WorkloadProfile;

/// The cpuburn profile.
pub const CPUBURN: WorkloadProfile = WorkloadProfile {
    name: "cpuburn",
    cpi: 1.0,
    mem_stall_ns: 0.0,
    capacitance: 1.8,
    avx: false,
    total_instructions: u64::MAX / 2,
};

/// A ready-to-run, never-terminating cpuburn instance.
pub fn cpuburn() -> RunningApp {
    RunningApp::looping(CPUBURN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pap_simcpu::freq::KiloHertz;
    use pap_simcpu::platform::PlatformSpec;
    use pap_simcpu::units::Seconds;

    #[test]
    fn burn_is_high_demand_and_compute_bound() {
        assert!(CPUBURN.is_high_demand());
        assert!(CPUBURN.compute_fraction(KiloHertz::from_ghz(3.0)) > 0.999);
    }

    /// Paper anchor: cpuburn on one Skylake core at 3 GHz draws ≈ 32 W of
    /// package power.
    #[test]
    fn package_power_anchor() {
        let spec = PlatformSpec::skylake();
        let mut app = cpuburn();
        let f = KiloHertz::from_ghz(3.0);
        let out = app.advance(Seconds(0.001), f);
        let core = spec.power.core_power(f, &out.load);
        let idle = spec
            .power
            .core_power(f, &pap_simcpu::power::LoadDescriptor::IDLE)
            * 9.0;
        let pkg = core + idle + spec.power.uncore_power(f);
        assert!(
            (pkg.value() - 32.0).abs() < 3.0,
            "cpuburn package power {pkg}, paper says ~32 W"
        );
    }

    #[test]
    fn burn_never_completes() {
        let mut app = cpuburn();
        for _ in 0..10_000 {
            let out = app.advance(Seconds(0.01), KiloHertz::from_ghz(3.8));
            assert!(!out.finished_run);
        }
        assert!(!app.is_done());
    }
}
