//! # pap-workloads — synthetic workloads for the power-delivery study
//!
//! The substrate that stands in for the paper's benchmark programs:
//!
//! * [`profile`] / [`spec`] — analytic SPEC CPU2017 workload models with
//!   calibrated frequency sensitivity, power demand and AVX usage;
//! * [`phases`] — deterministic program-phase perturbation;
//! * [`engine`] — the per-tick execution engine that drives a
//!   [`pap_simcpu::chip::Chip`];
//! * [`latency`] — a closed-loop queueing model of CloudSuite *websearch*;
//! * [`openloop`] — an open-loop (Poisson-arrival) serving model with a
//!   bounded queue, for production-shaped multi-tenant traffic;
//! * [`burn`] — the `cpuburn` power virus;
//! * [`generator`] — Table 3 sets and seeded random mixes;
//! * [`metrics`] — performance normalization helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod burn;
pub mod engine;
pub mod gaming;
pub mod generator;
pub mod latency;
pub mod metrics;
pub mod multithread;
pub mod openloop;
pub mod phases;
pub mod profile;
pub mod spec;
pub mod traces;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::burn::{cpuburn, CPUBURN};
    pub use crate::engine::{RunningApp, StepOutcome};
    pub use crate::latency::{ClosedLoopService, DemandShape, ServiceConfig};
    pub use crate::openloop::{OpenLoopConfig, OpenLoopService};
    pub use crate::phases::PhasedProfile;
    pub use crate::profile::{Demand, WorkloadProfile};
    pub use crate::spec::spec2017;
}
