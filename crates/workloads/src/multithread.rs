//! Multithreaded workloads with lock contention (§5.2).
//!
//! The paper uses IPS as its performance proxy "as our workloads are
//! single-threaded. For multithreaded workloads with lock contention,
//! where spinlocks may artificially inflate instruction counts, hardware
//! mechanisms such as Intel's HWP ... may be a better choice."
//!
//! [`MtWorkload`] makes that concrete: `k` threads share one spinlock
//! protecting a serial fraction of the work. Threads that fail to get the
//! lock *spin*, retiring pause-loop instructions at full rate while doing
//! nothing useful. Measured IPS therefore stays high (and can even rise
//! with contention) while useful throughput obeys Amdahl's law — exactly
//! the failure mode that misleads an IPS-driven policy.

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

use crate::profile::WorkloadProfile;

/// A `k`-thread workload with a spinlock-protected serial section.
#[derive(Debug, Clone)]
pub struct MtWorkload {
    /// Per-thread compute profile (parallel section behavior).
    pub profile: WorkloadProfile,
    /// Fraction of useful work that must hold the lock (serial fraction).
    pub serial_fraction: f64,
    /// Instructions a spinning thread retires per cycle (pause loops
    /// retire fast; ~1/cycle after the pipeline settles).
    pub spin_ipc: f64,
    /// Useful instructions retired so far (all threads).
    useful: f64,
    /// Total retired including spin filler (what the counters see).
    retired: f64,
}

/// Per-thread outcome of one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MtStep {
    /// Instructions the hardware counter sees (useful + spin).
    pub instructions: u64,
    /// The useful subset.
    pub useful_instructions: u64,
    /// Load presented to the power model.
    pub load: LoadDescriptor,
}

impl MtWorkload {
    /// Create a workload; `serial_fraction` in [0, 1).
    pub fn new(profile: WorkloadProfile, serial_fraction: f64, threads_hint: usize) -> MtWorkload {
        assert!((0.0..1.0).contains(&serial_fraction));
        let _ = threads_hint; // documented for symmetry; threads are per call
        MtWorkload {
            profile,
            serial_fraction,
            spin_ipc: 1.0,
            useful: 0.0,
            retired: 0.0,
        }
    }

    /// Advance all threads by `dt`, thread `i` running at `freqs[i]`.
    ///
    /// Lock utilization follows the serial bottleneck: the lock is held
    /// for `serial_fraction` of each unit of useful work, executed at the
    /// speed of whichever thread holds it (round-robin ≈ mean frequency).
    /// Threads spend the fraction of time the lock is contended spinning.
    pub fn advance(&mut self, dt: Seconds, freqs: &[KiloHertz]) -> Vec<MtStep> {
        let k = freqs.len().max(1) as f64;
        let mean_hz = freqs.iter().map(|f| f.hz()).sum::<f64>() / k;
        let spi = self
            .profile
            .seconds_per_instruction(KiloHertz((mean_hz / 1e3) as u64));

        // Amdahl: useful rate with k threads and serial fraction s at
        // per-thread rate r = 1/spi is k·r / (1 + s·(k-1)).
        let r = 1.0 / spi;
        let s = self.serial_fraction;
        let useful_rate = k * r / (1.0 + s * (k - 1.0));
        let useful_total = useful_rate * dt.value();

        // Fraction of each thread's time spent waiting on the lock.
        let busy_useful_frac = (useful_rate / (k * r)).min(1.0); // per-thread useful time share
        let spin_frac = 1.0 - busy_useful_frac;

        self.useful += useful_total;

        freqs
            .iter()
            .map(|f| {
                let useful_i = (useful_total / k).round() as u64;
                let spin_i = (spin_frac * f.hz() * dt.value() * self.spin_ipc) as u64;
                self.retired += (useful_i + spin_i) as f64;
                MtStep {
                    instructions: useful_i + spin_i,
                    useful_instructions: useful_i,
                    // spinning keeps the core fully active and fairly hot
                    load: LoadDescriptor {
                        capacitance: self.profile.capacitance * (0.45 + 0.55 * busy_useful_frac)
                            + 0.6 * spin_frac,
                        utilization: 1.0,
                        avx: self.profile.avx,
                    },
                }
            })
            .collect()
    }

    /// Useful instructions retired so far.
    pub fn useful_retired(&self) -> u64 {
        self.useful as u64
    }

    /// Counter-visible instructions retired so far (inflated by spinning).
    pub fn counter_retired(&self) -> u64 {
        self.retired as u64
    }

    /// IPS inflation factor so far: counter-visible over useful.
    pub fn inflation(&self) -> f64 {
        if self.useful <= 0.0 {
            1.0
        } else {
            self.retired / self.useful
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn freqs(k: usize, mhz: u64) -> Vec<KiloHertz> {
        vec![KiloHertz::from_mhz(mhz); k]
    }

    #[test]
    fn no_contention_single_thread() {
        let mut w = MtWorkload::new(spec::LEELA, 0.3, 1);
        let steps = w.advance(Seconds(1.0), &freqs(1, 2200));
        assert_eq!(steps.len(), 1);
        // one thread: no spinning, counter == useful
        assert_eq!(steps[0].instructions, steps[0].useful_instructions);
        assert!((w.inflation() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn amdahl_limits_useful_throughput() {
        let one = {
            let mut w = MtWorkload::new(spec::LEELA, 0.3, 1);
            w.advance(Seconds(1.0), &freqs(1, 2200));
            w.useful_retired()
        };
        let eight = {
            let mut w = MtWorkload::new(spec::LEELA, 0.3, 8);
            w.advance(Seconds(1.0), &freqs(8, 2200));
            w.useful_retired()
        };
        let speedup = eight as f64 / one as f64;
        // Amdahl with s=0.3, k=8: 8/(1+0.3*7) = 2.58
        assert!((speedup - 2.58).abs() < 0.1, "speedup {speedup}");
    }

    #[test]
    fn contention_inflates_counters() {
        let mut w = MtWorkload::new(spec::LEELA, 0.3, 8);
        for _ in 0..100 {
            w.advance(Seconds(0.01), &freqs(8, 2200));
        }
        assert!(
            w.inflation() > 2.0,
            "spin-inflated counters expected: {}",
            w.inflation()
        );
        // counter-visible IPS per thread stays near full speed even though
        // useful throughput is Amdahl-limited
        let ips_visible = w.counter_retired() as f64 / 8.0; // over 1 s
        let solo = spec::LEELA.ips(KiloHertz::from_mhz(2200));
        assert!(ips_visible > solo * 0.6, "{ips_visible:.3e} vs {solo:.3e}");
    }

    #[test]
    fn no_serial_section_scales_linearly() {
        let mut w = MtWorkload::new(spec::LEELA, 0.0, 8);
        w.advance(Seconds(1.0), &freqs(8, 2200));
        let useful = w.useful_retired() as f64;
        let solo = spec::LEELA.ips(KiloHertz::from_mhz(2200));
        assert!((useful / (8.0 * solo) - 1.0).abs() < 0.01);
        assert!((w.inflation() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spinning_threads_stay_hot() {
        let mut w = MtWorkload::new(spec::LEELA, 0.5, 8);
        let steps = w.advance(Seconds(0.01), &freqs(8, 2200));
        for s in &steps {
            assert_eq!(s.load.utilization, 1.0);
            assert!(s.load.capacitance > 0.5);
        }
    }
}
