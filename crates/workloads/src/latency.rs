//! A closed-loop latency-sensitive service: the *websearch* stand-in.
//!
//! The paper's latency experiments (§3.2 Figure 5, §6.4 Figures 12–13) run
//! CloudSuite *websearch* with 300 users against 9 cores and report 90th
//! percentile latencies. The effect they demonstrate is queueing-theoretic:
//! lowering core frequency stretches service times, drives utilization
//! toward 1, and blows up the latency tail. This module reproduces that
//! with a closed-loop queueing model:
//!
//! * `users` independent clients think for an exponentially distributed
//!   time, then submit a request;
//! * each request carries an exponentially distributed service demand in
//!   *cycles*, so its service time is `cycles / frequency` — the handle
//!   through which DVFS policies act on the service;
//! * requests queue FCFS at a single dispatch queue feeding the serving
//!   cores; per-request sojourn times are recorded.

use std::collections::VecDeque;

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of the per-request service-demand distribution.
///
/// The paper's websearch model uses exponential demand; production
/// services are heavier-tailed — a small fraction of requests carry most
/// of the work — which is exactly what makes their latency tails
/// sensitive to frequency. Every shape is parameterized so the *mean*
/// stays the configured `mean_service_cycles`; only the tail changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandShape {
    /// Memoryless demand (the original websearch model).
    Exponential,
    /// Log-normal demand with the given log-space standard deviation
    /// (`sigma` ≈ 1.0–2.0 for realistic service tails).
    LogNormal {
        /// Standard deviation of `ln(demand)`.
        sigma: f64,
    },
    /// Truncated Pareto demand with tail index `alpha` (> 1 so the mean
    /// exists; 1.1–2.5 covers typical heavy-tailed services). Samples are
    /// capped at 200× the mean so a single request cannot wedge a core
    /// for a whole simulated day.
    Pareto {
        /// Tail index.
        alpha: f64,
    },
}

impl DemandShape {
    /// Draw one demand sample with the given mean. Deterministic for a
    /// fixed RNG state; always finite and positive.
    pub fn sample(&self, rng: &mut StdRng, mean: f64) -> f64 {
        match *self {
            DemandShape::Exponential => exp_sample(rng, mean),
            DemandShape::LogNormal { sigma } => {
                let sigma = if sigma.is_finite() { sigma.abs() } else { 1.0 };
                // Box–Muller on two uniforms; mu chosen so E[X] = mean.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let mu = mean.ln() - sigma * sigma / 2.0;
                (mu + sigma * z).exp().min(mean * 200.0).max(1.0)
            }
            DemandShape::Pareto { alpha } => {
                let alpha = if alpha.is_finite() && alpha > 1.0 {
                    alpha
                } else {
                    1.5
                };
                // Scale x_m so the untruncated mean is `mean`.
                let xm = mean * (alpha - 1.0) / alpha;
                let u: f64 = rng.gen_range(1e-12..1.0);
                (xm * u.powf(-1.0 / alpha)).min(mean * 200.0)
            }
        }
    }

    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DemandShape::Exponential => "exp",
            DemandShape::LogNormal { .. } => "lognormal",
            DemandShape::Pareto { .. } => "pareto",
        }
    }
}

/// Configuration of the closed-loop service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Number of closed-loop users (the paper loads 300).
    pub users: usize,
    /// Mean exponential think time between a response and the next request.
    pub mean_think: Seconds,
    /// Mean service demand per request, in cycles.
    pub mean_service_cycles: f64,
    /// Distribution shape of per-request demand around that mean.
    pub demand: DemandShape,
    /// Effective capacitance the service presents while executing
    /// (websearch is low-demand: calibrated so 9 busy cores at 3 GHz draw
    /// ≈ 44 W of package power).
    pub capacitance: f64,
    /// RNG seed; runs are fully deterministic given the seed.
    pub seed: u64,
}

impl ServiceConfig {
    /// The paper's websearch setup: 300 users against 9 Skylake cores.
    pub fn websearch() -> ServiceConfig {
        ServiceConfig {
            users: 300,
            mean_think: Seconds(0.5),
            mean_service_cycles: 20.0e6,
            demand: DemandShape::Exponential,
            capacitance: 0.55,
            seed: 0x0005_EAC4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Request {
    remaining_cycles: f64,
    arrival: f64,
}

/// The closed-loop service simulator.
///
/// ```
/// use pap_workloads::latency::{ClosedLoopService, ServiceConfig};
/// use pap_simcpu::freq::KiloHertz;
/// use pap_simcpu::units::Seconds;
///
/// let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 9);
/// let freqs = vec![KiloHertz::from_mhz(3000); 9];
/// for _ in 0..5_000 {
///     svc.advance(Seconds(0.001), &freqs);
/// }
/// assert!(svc.completed() > 500);
/// assert!(svc.p90_ms() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopService {
    config: ServiceConfig,
    rng: StdRng,
    now: f64,
    /// Think-timer expiry times (seconds), unsorted; scanned each tick.
    thinkers: Vec<f64>,
    queue: VecDeque<Request>,
    in_service: Vec<Option<Request>>,
    /// Completed-request sojourn times in seconds.
    latencies: Vec<f64>,
    completed: u64,
    /// Start of the current measurement window (for throughput).
    window_start: f64,
    /// Probability that a user whose think timer expires actually submits
    /// (otherwise they think again) — the handle load traces use to
    /// modulate demand without disturbing queue state.
    demand_scale: f64,
}

impl ClosedLoopService {
    /// Create a service with `num_cores` serving cores. Users start with
    /// randomized initial think timers so load ramps in smoothly.
    pub fn new(config: ServiceConfig, num_cores: usize) -> ClosedLoopService {
        assert!(num_cores >= 1, "need at least one serving core");
        assert!(config.users >= 1, "need at least one user");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let thinkers = (0..config.users)
            .map(|_| exp_sample(&mut rng, config.mean_think.value()))
            .collect();
        ClosedLoopService {
            config,
            rng,
            now: 0.0,
            thinkers,
            queue: VecDeque::new(),
            in_service: vec![None; num_cores],
            latencies: Vec::new(),
            completed: 0,
            window_start: 0.0,
            demand_scale: 1.0,
        }
    }

    /// Scale offered demand: a user whose think timer expires submits
    /// with this probability and otherwise draws a fresh think time.
    /// 1.0 (default) is the full closed-loop population.
    pub fn set_demand_scale(&mut self, scale: f64) {
        assert!((0.0..=1.0).contains(&scale), "demand scale out of range");
        self.demand_scale = scale;
    }

    /// Number of serving cores.
    pub fn num_cores(&self) -> usize {
        self.in_service.len()
    }

    /// Advance the service by `dt`, with `freqs[i]` the effective
    /// frequency of serving core `i`. Returns the load each serving core
    /// presented over the tick (utilization = busy fraction).
    pub fn advance(&mut self, dt: Seconds, freqs: &[KiloHertz]) -> Vec<LoadDescriptor> {
        let mut loads = Vec::with_capacity(freqs.len());
        self.advance_into(dt, freqs, &mut loads);
        loads
    }

    /// Zero-allocation form of [`ClosedLoopService::advance`]: clears
    /// `out` and writes one [`LoadDescriptor`] per serving core into it,
    /// reusing its capacity across ticks (the `*_into` kernel discipline
    /// of DESIGN.md §11).
    pub fn advance_into(
        &mut self,
        dt: Seconds,
        freqs: &[KiloHertz],
        out: &mut Vec<LoadDescriptor>,
    ) {
        assert_eq!(freqs.len(), self.in_service.len(), "one frequency per core");
        let dt = dt.value();
        let end = self.now + dt;

        // Users whose think timers expire within this tick submit requests
        // (with probability `demand_scale`; otherwise they think again).
        let mut i = 0;
        while i < self.thinkers.len() {
            if self.thinkers[i] <= end {
                let expiry = self.thinkers[i];
                if self.demand_scale >= 1.0 || self.rng.gen_range(0.0..1.0) < self.demand_scale {
                    let arrival = expiry.max(self.now);
                    let demand = self
                        .config
                        .demand
                        .sample(&mut self.rng, self.config.mean_service_cycles);
                    self.queue.push_back(Request {
                        remaining_cycles: demand,
                        arrival,
                    });
                    self.thinkers.swap_remove(i);
                } else {
                    let think = exp_sample(&mut self.rng, self.config.mean_think.value());
                    self.thinkers[i] = expiry + think;
                    i += 1;
                }
            } else {
                i += 1;
            }
        }

        // Serve.
        out.clear();
        for (core, &f) in self.in_service.iter_mut().zip(freqs) {
            let hz = f.hz();
            let mut budget = dt;
            let mut busy = 0.0;
            while budget > 1e-12 {
                let req = match core.take().or_else(|| self.queue.pop_front()) {
                    Some(r) => r,
                    None => break,
                };
                let need = req.remaining_cycles / hz;
                if need <= budget {
                    // Completes within the tick.
                    let completion = end - (budget - need);
                    self.latencies.push(completion - req.arrival);
                    self.completed += 1;
                    busy += need;
                    budget -= need;
                    let think = exp_sample(&mut self.rng, self.config.mean_think.value());
                    self.thinkers.push(completion + think);
                } else {
                    *core = Some(Request {
                        remaining_cycles: req.remaining_cycles - hz * budget,
                        arrival: req.arrival,
                    });
                    busy += budget;
                    budget = 0.0;
                }
            }
            let utilization = (busy / dt).clamp(0.0, 1.0);
            out.push(if utilization > 0.0 {
                LoadDescriptor {
                    capacitance: self.config.capacitance,
                    utilization,
                    avx: false,
                }
            } else {
                LoadDescriptor::IDLE
            });
        }

        self.now = end;
    }

    /// Number of completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean latency in milliseconds over the recorded window.
    pub fn mean_latency_ms(&self) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        self.latencies.iter().sum::<f64>() / self.latencies.len() as f64 * 1e3
    }

    /// Latency percentile (`p` in 0..100) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        v[idx.min(v.len() - 1)] * 1e3
    }

    /// The paper's headline metric.
    pub fn p90_ms(&self) -> f64 {
        self.percentile_ms(90.0)
    }

    /// Throughput in requests per second over the current measurement
    /// window.
    pub fn throughput(&self) -> f64 {
        let elapsed = self.now - self.window_start;
        if elapsed <= 0.0 {
            0.0
        } else {
            self.completed as f64 / elapsed
        }
    }

    /// Discard recorded latencies and restart the measurement window
    /// (e.g. after a warm-up phase). Queue state — and crucially the
    /// service clock, which think timers reference — is untouched.
    pub fn reset_stats(&mut self) {
        self.latencies.clear();
        self.completed = 0;
        self.window_start = self.now;
    }

    /// Invariant check: every user is thinking, queued or in service.
    pub fn user_conservation(&self) -> bool {
        let in_service = self.in_service.iter().filter(|s| s.is_some()).count();
        self.thinkers.len() + self.queue.len() + in_service == self.config.users
    }
}

/// Exponential sample with the given mean, via inverse CDF.
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(freq_mhz: u64, seconds: f64) -> ClosedLoopService {
        let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 9);
        let freqs = vec![KiloHertz::from_mhz(freq_mhz); 9];
        let dt = Seconds(0.001);
        let ticks = (seconds / dt.value()) as usize;
        for _ in 0..ticks {
            svc.advance(dt, &freqs);
            debug_assert!(svc.user_conservation());
        }
        svc
    }

    #[test]
    fn serves_requests_at_full_speed() {
        let svc = run(3000, 30.0);
        assert!(
            svc.completed() > 5_000,
            "only {} completed",
            svc.completed()
        );
        // closed-loop throughput bound: users/(think+service) ≈ 560 rps
        let x = svc.throughput();
        assert!(x > 350.0 && x < 700.0, "throughput {x}");
        assert!(svc.p90_ms() < 40.0, "p90 {} ms", svc.p90_ms());
    }

    #[test]
    fn latency_explodes_at_low_frequency() {
        let fast = run(3000, 30.0);
        let slow = run(800, 30.0);
        assert!(
            slow.p90_ms() > 3.0 * fast.p90_ms(),
            "p90 {} -> {} ms: tail should blow up when saturated",
            fast.p90_ms(),
            slow.p90_ms()
        );
        assert!(slow.throughput() < fast.throughput());
    }

    #[test]
    fn utilization_rises_as_frequency_falls() {
        let mut fast_util = 0.0;
        let mut slow_util = 0.0;
        for (mhz, util) in [(3000u64, &mut fast_util), (1200u64, &mut slow_util)] {
            let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 9);
            let freqs = vec![KiloHertz::from_mhz(mhz); 9];
            let mut acc = 0.0;
            let mut n = 0.0;
            for _ in 0..20_000 {
                let loads = svc.advance(Seconds(0.001), &freqs);
                acc += loads.iter().map(|l| l.utilization).sum::<f64>() / 9.0;
                n += 1.0;
            }
            *util = acc / n;
        }
        assert!(slow_util > fast_util + 0.2, "{fast_util} vs {slow_util}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(2000, 10.0);
        let b = run(2000, 10.0);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.p90_ms(), b.p90_ms());
    }

    #[test]
    fn reset_stats_clears_window() {
        let mut svc = run(3000, 10.0);
        assert!(svc.completed() > 0);
        svc.reset_stats();
        assert_eq!(svc.completed(), 0);
        assert_eq!(svc.p90_ms(), 0.0);
        assert!(svc.user_conservation());
    }

    #[test]
    fn percentiles_ordered() {
        let svc = run(2200, 20.0);
        let p50 = svc.percentile_ms(50.0);
        let p90 = svc.percentile_ms(90.0);
        let p99 = svc.percentile_ms(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn mixed_core_frequencies_accepted() {
        let mut svc = ClosedLoopService::new(ServiceConfig::websearch(), 3);
        let freqs = vec![
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(1000),
            KiloHertz::from_mhz(2000),
        ];
        for _ in 0..5000 {
            let loads = svc.advance(Seconds(0.001), &freqs);
            assert_eq!(loads.len(), 3);
        }
        assert!(svc.completed() > 0);
    }

    #[test]
    fn advance_into_matches_advance() {
        let mut a = ClosedLoopService::new(ServiceConfig::websearch(), 4);
        let mut b = a.clone();
        let freqs = vec![KiloHertz::from_mhz(2200); 4];
        let mut out = Vec::new();
        for _ in 0..5000 {
            let owned = a.advance(Seconds(0.001), &freqs);
            b.advance_into(Seconds(0.001), &freqs, &mut out);
            assert_eq!(owned, out);
        }
        assert_eq!(a.completed(), b.completed());
        assert_eq!(a.p90_ms(), b.p90_ms());
    }

    #[test]
    fn demand_shapes_deterministic_and_mean_preserving() {
        for shape in [
            DemandShape::Exponential,
            DemandShape::LogNormal { sigma: 1.2 },
            DemandShape::Pareto { alpha: 1.8 },
        ] {
            let draw = |seed: u64| -> Vec<f64> {
                let mut rng = StdRng::seed_from_u64(seed);
                (0..40_000).map(|_| shape.sample(&mut rng, 1.0e6)).collect()
            };
            let a = draw(7);
            let b = draw(7);
            assert_eq!(a, b, "{} must be deterministic per seed", shape.name());
            assert!(a.iter().all(|&v| v.is_finite() && v > 0.0));
            let mean = a.iter().sum::<f64>() / a.len() as f64;
            // Heavy tails converge slowly; a loose band still catches a
            // mis-parameterized sampler (off by alpha/(alpha-1) or e^{σ²/2}).
            assert!(
                mean > 0.5e6 && mean < 2.0e6,
                "{}: sample mean {mean:.0} far from 1e6",
                shape.name()
            );
        }
    }

    #[test]
    fn heavy_tails_are_heavier_than_exponential() {
        let tail_ratio = |shape: DemandShape| -> f64 {
            let mut rng = StdRng::seed_from_u64(11);
            let mut v: Vec<f64> = (0..40_000).map(|_| shape.sample(&mut rng, 1.0e6)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // p99.9 over median: a scale-free tail-weight measure.
            v[(v.len() as f64 * 0.999) as usize] / v[v.len() / 2]
        };
        let exp = tail_ratio(DemandShape::Exponential);
        let logn = tail_ratio(DemandShape::LogNormal { sigma: 1.5 });
        let pareto = tail_ratio(DemandShape::Pareto { alpha: 1.3 });
        assert!(logn > 2.0 * exp, "lognormal tail {logn:.1} vs exp {exp:.1}");
        assert!(
            pareto > 2.0 * exp,
            "pareto tail {pareto:.1} vs exp {exp:.1}"
        );
    }

    #[test]
    fn degenerate_shape_parameters_are_defused() {
        let mut rng = StdRng::seed_from_u64(3);
        for shape in [
            DemandShape::LogNormal { sigma: f64::NAN },
            DemandShape::Pareto { alpha: 0.5 },
            DemandShape::Pareto {
                alpha: f64::INFINITY,
            },
        ] {
            for _ in 0..1000 {
                let v = shape.sample(&mut rng, 1.0e6);
                assert!(v.is_finite() && v > 0.0, "{shape:?} produced {v}");
            }
        }
    }
}
