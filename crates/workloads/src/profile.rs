//! Workload profiles: the analytic performance/power characterization of
//! an application.
//!
//! The paper's policies only ever observe applications through three
//! telemetry signals — power, retired instructions and frequency — so a
//! workload is fully described here by a two-term runtime model plus a
//! power-demand factor:
//!
//! * **compute term**: `cpi / f` seconds per instruction scales inversely
//!   with frequency;
//! * **memory term**: `mem_stall_ns` per instruction does *not* scale with
//!   core frequency (§2.1 "Limitations of P-States");
//! * **capacitance**: the effective switching capacitance relative to a
//!   nominal scalar workload — the paper's *power demand* axis;
//! * **avx**: whether the workload is subject to AVX frequency caps.
//!
//! Together these reproduce the per-application spread of Figures 2 and 3:
//! memory-bound applications saturate early, AVX applications are power
//! outliers with capped peak frequency, and frequency-sensitive integer
//! codes scale nearly linearly.

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;

/// Analytic description of one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (SPEC CPU2017 style).
    pub name: &'static str,
    /// Cycles per instruction for the compute (core-clocked) component.
    pub cpi: f64,
    /// Nanoseconds per instruction spent stalled on memory, independent of
    /// core frequency.
    pub mem_stall_ns: f64,
    /// Effective-capacitance factor relative to a nominal scalar workload.
    pub capacitance: f64,
    /// Whether the workload executes AVX instructions.
    pub avx: bool,
    /// Instructions in one complete run (scaled down from real SPEC for
    /// simulation; only relative runtimes matter).
    pub total_instructions: u64,
}

impl WorkloadProfile {
    /// Seconds to retire one instruction at core frequency `f`.
    pub fn seconds_per_instruction(&self, f: KiloHertz) -> f64 {
        debug_assert!(f.khz() > 0, "zero frequency");
        self.cpi / f.hz() + self.mem_stall_ns * 1e-9
    }

    /// Instructions per second at core frequency `f`.
    pub fn ips(&self, f: KiloHertz) -> f64 {
        1.0 / self.seconds_per_instruction(f)
    }

    /// Complete-run runtime at a fixed frequency.
    pub fn runtime(&self, f: KiloHertz) -> f64 {
        self.total_instructions as f64 * self.seconds_per_instruction(f)
    }

    /// Performance at `f` normalized to performance at `reference`
    /// (1.0 = same speed, >1 = faster than the reference point).
    pub fn normalized_performance(&self, f: KiloHertz, reference: KiloHertz) -> f64 {
        self.ips(f) / self.ips(reference)
    }

    /// Fraction of execution time spent in the compute (frequency-scaled)
    /// component at `f`. 1.0 = fully compute bound.
    pub fn compute_fraction(&self, f: KiloHertz) -> f64 {
        let compute = self.cpi / f.hz();
        compute / (compute + self.mem_stall_ns * 1e-9)
    }

    /// The load this workload presents to the power model at `f`.
    ///
    /// Memory-stalled cycles toggle less logic, so effective capacitance
    /// is derated toward 45 % of nominal as the compute fraction drops.
    pub fn load_at(&self, f: KiloHertz) -> LoadDescriptor {
        let cf = self.compute_fraction(f);
        LoadDescriptor {
            capacitance: self.capacitance * (0.45 + 0.55 * cf),
            utilization: 1.0,
            avx: self.avx,
        }
    }

    /// The paper classifies applications by *power demand* (§4.1): at a
    /// given P-state, does the application draw more or less power than
    /// its peers? We threshold the capacitance factor.
    pub fn is_high_demand(&self) -> bool {
        self.capacitance >= 1.4
    }
}

/// Demand class of an application (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Demand {
    /// Uses more power than peers at the same P-state.
    High,
    /// Uses less power than peers at the same P-state.
    Low,
}

impl WorkloadProfile {
    /// Demand classification as an enum.
    pub fn demand(&self) -> Demand {
        if self.is_high_demand() {
            Demand::High
        } else {
            Demand::Low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_bound() -> WorkloadProfile {
        WorkloadProfile {
            name: "compute",
            cpi: 0.8,
            mem_stall_ns: 0.01,
            capacitance: 1.0,
            avx: false,
            total_instructions: 1_000_000_000,
        }
    }

    fn memory_bound() -> WorkloadProfile {
        WorkloadProfile {
            name: "memory",
            cpi: 1.2,
            mem_stall_ns: 1.0,
            capacitance: 1.0,
            avx: false,
            total_instructions: 1_000_000_000,
        }
    }

    #[test]
    fn compute_bound_scales_with_frequency() {
        let w = compute_bound();
        let r1 = w.normalized_performance(KiloHertz::from_ghz(1.0), KiloHertz::from_ghz(2.0));
        // doubling frequency nearly halves runtime for compute-bound code
        assert!(r1 > 0.49 && r1 < 0.52, "got {r1}");
    }

    #[test]
    fn memory_bound_saturates() {
        let w = memory_bound();
        let r = w.normalized_performance(KiloHertz::from_ghz(3.0), KiloHertz::from_ghz(1.5));
        // 2x frequency buys much less than 2x performance
        assert!(r < 1.35, "memory-bound speedup too large: {r}");
        assert!(r > 1.0);
    }

    #[test]
    fn ips_is_inverse_of_spi() {
        let w = compute_bound();
        let f = KiloHertz::from_ghz(2.2);
        assert!((w.ips(f) * w.seconds_per_instruction(f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_proportional_to_instructions() {
        let mut w = compute_bound();
        let f = KiloHertz::from_ghz(2.0);
        let t1 = w.runtime(f);
        w.total_instructions *= 3;
        assert!((w.runtime(f) / t1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn compute_fraction_limits() {
        let c = compute_bound();
        let m = memory_bound();
        let f = KiloHertz::from_ghz(2.0);
        assert!(c.compute_fraction(f) > 0.95);
        assert!(m.compute_fraction(f) < 0.45);
        // higher frequency -> memory fraction grows
        assert!(m.compute_fraction(KiloHertz::from_ghz(3.0)) < m.compute_fraction(f));
    }

    #[test]
    fn load_derates_capacitance_when_stalled() {
        let c = compute_bound();
        let m = memory_bound();
        let f = KiloHertz::from_ghz(2.0);
        assert!(c.load_at(f).capacitance > m.load_at(f).capacitance);
        assert!(m.load_at(f).capacitance >= 0.45 * m.capacitance);
        assert_eq!(c.load_at(f).utilization, 1.0);
    }

    #[test]
    fn demand_classification() {
        let mut w = compute_bound();
        assert_eq!(w.demand(), Demand::Low);
        w.capacitance = 1.9;
        assert_eq!(w.demand(), Demand::High);
        assert!(w.is_high_demand());
    }
}
