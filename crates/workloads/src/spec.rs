//! The SPEC CPU2017 benchmark subset used throughout the paper.
//!
//! The paper evaluates with 11 benchmarks recommended by the SPEC CPU2017
//! characterization study it cites: *lbm, cactusBSSN, povray, imagick,
//! cam4, gcc (cpugcc), exchange2, deepsjeng, leela, perlbench, omnetpp*.
//! We cannot ship SPEC, so each benchmark is represented by a calibrated
//! [`WorkloadProfile`] reproducing its qualitative behavior:
//!
//! * `lbm`, `imagick`, `cam4` use AVX — they are the package-power
//!   outliers of Figure 2 and are frequency-capped (cam4 runs at most
//!   ~1.7 GHz with all cores busy, the Figure 1 effect);
//! * `cactusBSSN` is high-demand but scalar (set A of the random
//!   experiments shows it reaching full frequency at 85 W);
//! * `leela`, `gcc`, `exchange2`, `perlbench` are low-demand and
//!   frequency-sensitive;
//! * `omnetpp` and `lbm` are memory-bound and saturate early.

use crate::profile::WorkloadProfile;

/// `lbm`: memory-bound AVX floating point; the biggest power outlier.
pub const LBM: WorkloadProfile = WorkloadProfile {
    name: "lbm",
    cpi: 1.1,
    mem_stall_ns: 0.55,
    capacitance: 2.4,
    avx: true,
    total_instructions: 240_000_000_000,
};

/// `cactusBSSN`: high-demand scalar FP — the paper's canonical HD app.
pub const CACTUS_BSSN: WorkloadProfile = WorkloadProfile {
    name: "cactusBSSN",
    cpi: 1.0,
    mem_stall_ns: 0.30,
    capacitance: 1.5,
    avx: false,
    total_instructions: 260_000_000_000,
};

/// `povray`: compute-bound ray tracing.
pub const POVRAY: WorkloadProfile = WorkloadProfile {
    name: "povray",
    cpi: 0.85,
    mem_stall_ns: 0.02,
    capacitance: 1.15,
    avx: false,
    total_instructions: 300_000_000_000,
};

/// `imagick`: AVX-heavy image processing; power outlier.
pub const IMAGICK: WorkloadProfile = WorkloadProfile {
    name: "imagick",
    cpi: 0.9,
    mem_stall_ns: 0.03,
    capacitance: 2.0,
    avx: true,
    total_instructions: 320_000_000_000,
};

/// `cam4`: AVX atmosphere model — the paper's high-demand Figure-1 app.
pub const CAM4: WorkloadProfile = WorkloadProfile {
    name: "cam4",
    cpi: 1.0,
    mem_stall_ns: 0.20,
    capacitance: 1.9,
    avx: true,
    total_instructions: 240_000_000_000,
};

/// `gcc` (`cpugcc`): the low-demand Figure-1 app.
pub const GCC: WorkloadProfile = WorkloadProfile {
    name: "gcc",
    cpi: 1.1,
    mem_stall_ns: 0.12,
    capacitance: 1.0,
    avx: false,
    total_instructions: 220_000_000_000,
};

/// `exchange2`: branchy integer code, almost perfectly frequency-scaled.
pub const EXCHANGE2: WorkloadProfile = WorkloadProfile {
    name: "exchange2",
    cpi: 0.75,
    mem_stall_ns: 0.005,
    capacitance: 0.95,
    avx: false,
    total_instructions: 340_000_000_000,
};

/// `deepsjeng`: chess search, mildly memory-sensitive.
pub const DEEPSJENG: WorkloadProfile = WorkloadProfile {
    name: "deepsjeng",
    cpi: 0.9,
    mem_stall_ns: 0.10,
    capacitance: 1.05,
    avx: false,
    total_instructions: 260_000_000_000,
};

/// `leela`: Go engine — the paper's canonical LD app.
pub const LEELA: WorkloadProfile = WorkloadProfile {
    name: "leela",
    cpi: 0.85,
    mem_stall_ns: 0.06,
    capacitance: 0.9,
    avx: false,
    total_instructions: 280_000_000_000,
};

/// `perlbench`: interpreter, frequency-sensitive, low power.
pub const PERLBENCH: WorkloadProfile = WorkloadProfile {
    name: "perlbench",
    cpi: 0.95,
    mem_stall_ns: 0.04,
    capacitance: 1.0,
    avx: false,
    total_instructions: 290_000_000_000,
};

/// `omnetpp`: discrete-event simulation, strongly memory-bound.
pub const OMNETPP: WorkloadProfile = WorkloadProfile {
    name: "omnetpp",
    cpi: 1.25,
    mem_stall_ns: 0.70,
    capacitance: 0.95,
    avx: false,
    total_instructions: 180_000_000_000,
};

/// The paper's full 11-benchmark subset, in its listing order.
pub fn spec2017() -> Vec<WorkloadProfile> {
    vec![
        LBM,
        CACTUS_BSSN,
        POVRAY,
        IMAGICK,
        CAM4,
        GCC,
        EXCHANGE2,
        DEEPSJENG,
        LEELA,
        PERLBENCH,
        OMNETPP,
    ]
}

/// Look up a benchmark by name. `"cpugcc"` is accepted as an alias for
/// `"gcc"`, matching the paper's inconsistent naming.
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    let name = if name == "cpugcc" { "gcc" } else { name };
    spec2017().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Demand;
    use pap_simcpu::freq::KiloHertz;

    #[test]
    fn eleven_benchmarks() {
        assert_eq!(spec2017().len(), 11);
        let names: Vec<_> = spec2017().iter().map(|w| w.name).collect();
        assert!(names.contains(&"lbm") && names.contains(&"omnetpp"));
    }

    #[test]
    fn lookup_and_alias() {
        assert_eq!(by_name("leela").unwrap().name, "leela");
        assert_eq!(by_name("cpugcc").unwrap().name, "gcc");
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn paper_demand_classes() {
        // §6: cactusBSSN chosen as HD, leela as LD; Figure 1: cam4 HD, gcc LD.
        assert_eq!(CACTUS_BSSN.demand(), Demand::High);
        assert_eq!(LEELA.demand(), Demand::Low);
        assert_eq!(CAM4.demand(), Demand::High);
        assert_eq!(GCC.demand(), Demand::Low);
    }

    #[test]
    fn avx_benchmarks_are_the_power_outliers() {
        let avx: Vec<_> = spec2017().into_iter().filter(|w| w.avx).collect();
        let names: Vec<_> = avx.iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["lbm", "imagick", "cam4"]);
        // every AVX benchmark out-draws every scalar benchmark
        let max_scalar_cap = spec2017()
            .into_iter()
            .filter(|w| !w.avx)
            .map(|w| w.capacitance)
            .fold(0.0, f64::max);
        for w in &avx {
            assert!(w.capacitance > max_scalar_cap, "{} not an outlier", w.name);
        }
    }

    #[test]
    fn runtimes_in_simulatable_range() {
        // Complete runs at the Skylake base frequency should take minutes,
        // not hours (scaled down from real SPEC).
        let f = KiloHertz::from_mhz(2200);
        for w in spec2017() {
            let t = w.runtime(f);
            assert!(
                (60.0..600.0).contains(&t),
                "{} runtime {t:.0}s out of range",
                w.name
            );
        }
    }

    #[test]
    fn performance_dynamic_range_is_about_4x() {
        // §5.2: performance varies by ~4x across the frequency range.
        let lo = KiloHertz::from_mhz(800);
        let hi = KiloHertz::from_mhz(3000);
        let mut ratios: Vec<f64> = spec2017().iter().map(|w| w.ips(hi) / w.ips(lo)).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // frequency-sensitive apps approach the full 3.75x; memory-bound
        // ones fall well short
        assert!(*ratios.last().unwrap() > 3.3);
        assert!(ratios[0] < 2.5);
    }

    #[test]
    fn omnetpp_most_memory_bound() {
        let f = KiloHertz::from_mhz(2200);
        let omnetpp_cf = OMNETPP.compute_fraction(f);
        for w in spec2017() {
            if w.name != "omnetpp" {
                assert!(
                    w.compute_fraction(f) > omnetpp_cf,
                    "{} more memory-bound than omnetpp",
                    w.name
                );
            }
        }
    }
}
