//! Load-trace playback: time-varying intensity for services.
//!
//! Datacenter services see diurnal and bursty load, which is exactly why
//! operators under-provision power and need policies when the budget
//! binds (§1). A [`LoadTrace`] maps simulated time to a load multiplier;
//! [`TracedService`] replays it against the closed-loop service by
//! modulating the active user population.

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

use crate::latency::{ClosedLoopService, ServiceConfig};

/// A deterministic time→intensity curve (intensity in 0..=1, as a
/// fraction of peak load).
///
/// ```
/// use pap_workloads::traces::LoadTrace;
/// use pap_simcpu::units::Seconds;
///
/// let day = LoadTrace::Diurnal { mean: 0.6, swing: 0.4, period: Seconds(120.0) };
/// assert!(day.intensity(Seconds(30.0)) > 0.9);  // midday peak
/// assert!(day.intensity(Seconds(90.0)) < 0.3);  // overnight trough
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LoadTrace {
    /// Constant intensity.
    Flat(f64),
    /// Sinusoidal diurnal curve: `mean + swing·sin(2πt/period)`.
    Diurnal {
        /// Mean intensity.
        mean: f64,
        /// Peak-to-mean swing.
        swing: f64,
        /// Period of one "day" in simulated seconds (compressed for
        /// simulation).
        period: Seconds,
    },
    /// Square-wave bursts: `high` for `duty` of each period, else `low`.
    Bursty {
        /// Intensity inside a burst.
        high: f64,
        /// Intensity between bursts.
        low: f64,
        /// Burst period.
        period: Seconds,
        /// Fraction of the period spent at `high`.
        duty: f64,
    },
    /// Piecewise-linear between `(time, intensity)` points; clamps at the
    /// ends.
    Piecewise(Vec<(Seconds, f64)>),
}

impl LoadTrace {
    /// Intensity at time `t`, clamped into `[0, 1]`.
    pub fn intensity(&self, t: Seconds) -> f64 {
        let v = match self {
            LoadTrace::Flat(v) => *v,
            LoadTrace::Diurnal {
                mean,
                swing,
                period,
            } => mean + swing * (2.0 * std::f64::consts::PI * t.value() / period.value()).sin(),
            LoadTrace::Bursty {
                high,
                low,
                period,
                duty,
            } => {
                let phase = (t.value() / period.value()).fract();
                if phase < *duty {
                    *high
                } else {
                    *low
                }
            }
            LoadTrace::Piecewise(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    points[0].1
                } else if t >= points[points.len() - 1].0 {
                    points[points.len() - 1].1
                } else {
                    let seg = points
                        .windows(2)
                        .find(|w| t <= w[1].0)
                        .expect("t within range");
                    let (t0, v0) = seg[0];
                    let (t1, v1) = seg[1];
                    let a = (t.value() - t0.value()) / (t1.value() - t0.value());
                    v0 + a * (v1 - v0)
                }
            }
        };
        v.clamp(0.0, 1.0)
    }
}

/// A closed-loop service whose offered demand follows a [`LoadTrace`]:
/// users whose think timers expire submit with the trace's current
/// intensity as probability (and think again otherwise) — users are
/// "logged out" for the off-peak hours without disturbing queue state.
#[derive(Debug, Clone)]
pub struct TracedService {
    service: ClosedLoopService,
    trace: LoadTrace,
    now: f64,
}

impl TracedService {
    /// Create a traced service at peak population `config.users`.
    pub fn new(config: ServiceConfig, num_cores: usize, trace: LoadTrace) -> TracedService {
        TracedService {
            service: ClosedLoopService::new(config, num_cores),
            trace,
            now: 0.0,
        }
    }

    /// Advance by `dt` at the given per-core frequencies, with demand
    /// scaled to the trace's current intensity.
    pub fn advance(&mut self, dt: Seconds, freqs: &[KiloHertz]) -> Vec<LoadDescriptor> {
        let intensity = self.trace.intensity(Seconds(self.now));
        self.now += dt.value();
        self.service.set_demand_scale(intensity);
        self.service.advance(dt, freqs)
    }

    /// The wrapped service (latency stats etc.).
    pub fn service(&self) -> &ClosedLoopService {
        &self.service
    }

    /// Mutable access (e.g. `reset_stats`).
    pub fn service_mut(&mut self) -> &mut ClosedLoopService {
        &mut self.service
    }

    /// Current trace intensity.
    pub fn intensity(&self) -> f64 {
        self.trace.intensity(Seconds(self.now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_and_clamping() {
        assert_eq!(LoadTrace::Flat(0.4).intensity(Seconds(123.0)), 0.4);
        assert_eq!(LoadTrace::Flat(1.7).intensity(Seconds(0.0)), 1.0);
        assert_eq!(LoadTrace::Flat(-0.2).intensity(Seconds(0.0)), 0.0);
    }

    #[test]
    fn diurnal_cycles() {
        let t = LoadTrace::Diurnal {
            mean: 0.5,
            swing: 0.4,
            period: Seconds(100.0),
        };
        assert!((t.intensity(Seconds(0.0)) - 0.5).abs() < 1e-9);
        assert!((t.intensity(Seconds(25.0)) - 0.9).abs() < 1e-9);
        assert!((t.intensity(Seconds(75.0)) - 0.1).abs() < 1e-9);
        // periodicity
        assert!((t.intensity(Seconds(125.0)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn bursty_square_wave() {
        let t = LoadTrace::Bursty {
            high: 1.0,
            low: 0.2,
            period: Seconds(10.0),
            duty: 0.3,
        };
        assert_eq!(t.intensity(Seconds(1.0)), 1.0);
        assert_eq!(t.intensity(Seconds(2.9)), 1.0);
        assert_eq!(t.intensity(Seconds(3.1)), 0.2);
        assert_eq!(t.intensity(Seconds(11.0)), 1.0);
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let t = LoadTrace::Piecewise(vec![
            (Seconds(0.0), 0.2),
            (Seconds(10.0), 1.0),
            (Seconds(20.0), 0.4),
        ]);
        assert!((t.intensity(Seconds(5.0)) - 0.6).abs() < 1e-9);
        assert!((t.intensity(Seconds(15.0)) - 0.7).abs() < 1e-9);
        assert_eq!(t.intensity(Seconds(-5.0)), 0.2);
        assert_eq!(t.intensity(Seconds(99.0)), 0.4);
        assert_eq!(LoadTrace::Piecewise(vec![]).intensity(Seconds(0.0)), 0.0);
    }

    #[test]
    fn traced_service_throughput_follows_intensity() {
        let cfg = ServiceConfig::websearch();
        let freqs = vec![KiloHertz::from_mhz(3000); 9];
        let run = |trace: LoadTrace| -> f64 {
            let mut ts = TracedService::new(cfg.clone(), 9, trace);
            for _ in 0..30_000 {
                ts.advance(Seconds(0.001), &freqs);
            }
            ts.service().throughput()
        };
        let full = run(LoadTrace::Flat(1.0));
        let half = run(LoadTrace::Flat(0.5));
        assert!(
            half < full * 0.75,
            "half intensity must cut throughput: {full:.0} -> {half:.0} rps"
        );
        assert!(half > full * 0.25);
    }

    #[test]
    fn traced_service_conserves_users() {
        let cfg = ServiceConfig::websearch();
        let freqs = vec![KiloHertz::from_mhz(2000); 4];
        let mut ts = TracedService::new(
            cfg,
            4,
            LoadTrace::Bursty {
                high: 1.0,
                low: 0.1,
                period: Seconds(2.0),
                duty: 0.5,
            },
        );
        for _ in 0..20_000 {
            ts.advance(Seconds(0.001), &freqs);
            assert!(ts.service().user_conservation());
        }
    }
}
