//! Load-trace playback: time-varying intensity for services.
//!
//! Datacenter services see diurnal and bursty load, which is exactly why
//! operators under-provision power and need policies when the budget
//! binds (§1). A [`LoadTrace`] maps simulated time to a load multiplier;
//! [`TracedService`] replays it against the closed-loop service by
//! modulating the active user population.

use pap_simcpu::freq::KiloHertz;
use pap_simcpu::power::LoadDescriptor;
use pap_simcpu::units::Seconds;

use crate::latency::{ClosedLoopService, ServiceConfig};

/// A deterministic time→intensity curve (intensity in 0..=1, as a
/// fraction of peak load).
///
/// ```
/// use pap_workloads::traces::LoadTrace;
/// use pap_simcpu::units::Seconds;
///
/// let day = LoadTrace::Diurnal { mean: 0.6, swing: 0.4, period: Seconds(120.0) };
/// assert!(day.intensity(Seconds(30.0)) > 0.9);  // midday peak
/// assert!(day.intensity(Seconds(90.0)) < 0.3);  // overnight trough
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LoadTrace {
    /// Constant intensity.
    Flat(f64),
    /// Sinusoidal diurnal curve: `mean + swing·sin(2πt/period)`.
    Diurnal {
        /// Mean intensity.
        mean: f64,
        /// Peak-to-mean swing.
        swing: f64,
        /// Period of one "day" in simulated seconds (compressed for
        /// simulation).
        period: Seconds,
    },
    /// Square-wave bursts: `high` for `duty` of each period, else `low`.
    Bursty {
        /// Intensity inside a burst.
        high: f64,
        /// Intensity between bursts.
        low: f64,
        /// Burst period.
        period: Seconds,
        /// Fraction of the period spent at `high`.
        duty: f64,
    },
    /// Piecewise-linear between `(time, intensity)` points; clamps at the
    /// ends.
    Piecewise(Vec<(Seconds, f64)>),
}

impl LoadTrace {
    /// Intensity at time `t`, clamped into `[0, 1]`.
    ///
    /// Total on every input: a non-finite `t` reads as 0 intensity, a
    /// degenerate period (zero, negative or non-finite) collapses
    /// `Diurnal` to its mean and `Bursty` to its off-burst level, an
    /// empty `Piecewise` is 0, and `t` past either end of a `Piecewise`
    /// clamps to the nearest endpoint — the control loop samples traces
    /// long after their last knot (tenant churn, warm-up offsets), and a
    /// panic or NaN here would poison every budget downstream.
    pub fn intensity(&self, t: Seconds) -> f64 {
        if !t.value().is_finite() {
            return 0.0;
        }
        let v = match self {
            LoadTrace::Flat(v) => *v,
            LoadTrace::Diurnal {
                mean,
                swing,
                period,
            } => {
                if !(period.value().is_finite() && period.value() > 0.0) {
                    *mean
                } else {
                    mean + swing * (2.0 * std::f64::consts::PI * t.value() / period.value()).sin()
                }
            }
            LoadTrace::Bursty {
                high,
                low,
                period,
                duty,
            } => {
                if !(period.value().is_finite() && period.value() > 0.0) {
                    *low
                } else {
                    // `fract` of a negative phase is negative; shift into
                    // [0, 1) so pre-epoch times see the same square wave.
                    let mut phase = (t.value() / period.value()).fract();
                    if phase < 0.0 {
                        phase += 1.0;
                    }
                    if phase < duty.clamp(0.0, 1.0) {
                        *high
                    } else {
                        *low
                    }
                }
            }
            LoadTrace::Piecewise(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    points[0].1
                } else if t >= points[points.len() - 1].0 {
                    points[points.len() - 1].1
                } else {
                    match points.windows(2).find(|w| t <= w[1].0) {
                        // Unsorted knots can leave `t` between no pair even
                        // though it is inside the overall range; clamp to
                        // the last knot instead of panicking.
                        None => points[points.len() - 1].1,
                        Some(seg) => {
                            let (t0, v0) = seg[0];
                            let (t1, v1) = seg[1];
                            let a = (t.value() - t0.value()) / (t1.value() - t0.value());
                            // Coincident knots make `a` non-finite; hold the
                            // left value across the zero-length segment.
                            if a.is_finite() {
                                v0 + a * (v1 - v0)
                            } else {
                                v0
                            }
                        }
                    }
                }
            }
        };
        if v.is_finite() {
            v.clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// A closed-loop service whose offered demand follows a [`LoadTrace`]:
/// users whose think timers expire submit with the trace's current
/// intensity as probability (and think again otherwise) — users are
/// "logged out" for the off-peak hours without disturbing queue state.
#[derive(Debug, Clone)]
pub struct TracedService {
    service: ClosedLoopService,
    trace: LoadTrace,
    now: f64,
}

impl TracedService {
    /// Create a traced service at peak population `config.users`.
    pub fn new(config: ServiceConfig, num_cores: usize, trace: LoadTrace) -> TracedService {
        TracedService {
            service: ClosedLoopService::new(config, num_cores),
            trace,
            now: 0.0,
        }
    }

    /// Advance by `dt` at the given per-core frequencies, with demand
    /// scaled to the trace's current intensity.
    ///
    /// Allocates a fresh descriptor vector per tick; hot loops should
    /// call [`TracedService::advance_into`] with a reused buffer.
    pub fn advance(&mut self, dt: Seconds, freqs: &[KiloHertz]) -> Vec<LoadDescriptor> {
        let mut out = Vec::with_capacity(freqs.len());
        self.advance_into(dt, freqs, &mut out);
        out
    }

    /// Zero-allocation form of [`TracedService::advance`]: clears `out`
    /// and writes one [`LoadDescriptor`] per core into it.
    pub fn advance_into(
        &mut self,
        dt: Seconds,
        freqs: &[KiloHertz],
        out: &mut Vec<LoadDescriptor>,
    ) {
        let intensity = self.trace.intensity(Seconds(self.now));
        self.now += dt.value();
        self.service.set_demand_scale(intensity);
        self.service.advance_into(dt, freqs, out);
    }

    /// The wrapped service (latency stats etc.).
    pub fn service(&self) -> &ClosedLoopService {
        &self.service
    }

    /// Mutable access (e.g. `reset_stats`).
    pub fn service_mut(&mut self) -> &mut ClosedLoopService {
        &mut self.service
    }

    /// Current trace intensity.
    pub fn intensity(&self) -> f64 {
        self.trace.intensity(Seconds(self.now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_and_clamping() {
        assert_eq!(LoadTrace::Flat(0.4).intensity(Seconds(123.0)), 0.4);
        assert_eq!(LoadTrace::Flat(1.7).intensity(Seconds(0.0)), 1.0);
        assert_eq!(LoadTrace::Flat(-0.2).intensity(Seconds(0.0)), 0.0);
    }

    #[test]
    fn diurnal_cycles() {
        let t = LoadTrace::Diurnal {
            mean: 0.5,
            swing: 0.4,
            period: Seconds(100.0),
        };
        assert!((t.intensity(Seconds(0.0)) - 0.5).abs() < 1e-9);
        assert!((t.intensity(Seconds(25.0)) - 0.9).abs() < 1e-9);
        assert!((t.intensity(Seconds(75.0)) - 0.1).abs() < 1e-9);
        // periodicity
        assert!((t.intensity(Seconds(125.0)) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn bursty_square_wave() {
        let t = LoadTrace::Bursty {
            high: 1.0,
            low: 0.2,
            period: Seconds(10.0),
            duty: 0.3,
        };
        assert_eq!(t.intensity(Seconds(1.0)), 1.0);
        assert_eq!(t.intensity(Seconds(2.9)), 1.0);
        assert_eq!(t.intensity(Seconds(3.1)), 0.2);
        assert_eq!(t.intensity(Seconds(11.0)), 1.0);
    }

    #[test]
    fn piecewise_interpolates_and_clamps() {
        let t = LoadTrace::Piecewise(vec![
            (Seconds(0.0), 0.2),
            (Seconds(10.0), 1.0),
            (Seconds(20.0), 0.4),
        ]);
        assert!((t.intensity(Seconds(5.0)) - 0.6).abs() < 1e-9);
        assert!((t.intensity(Seconds(15.0)) - 0.7).abs() < 1e-9);
        assert_eq!(t.intensity(Seconds(-5.0)), 0.2);
        assert_eq!(t.intensity(Seconds(99.0)), 0.4);
        assert_eq!(LoadTrace::Piecewise(vec![]).intensity(Seconds(0.0)), 0.0);
    }

    #[test]
    fn intensity_is_total_on_degenerate_inputs() {
        // Non-finite query times read as zero intensity everywhere.
        let traces = [
            LoadTrace::Flat(0.7),
            LoadTrace::Diurnal {
                mean: 0.5,
                swing: 0.3,
                period: Seconds(10.0),
            },
            LoadTrace::Bursty {
                high: 1.0,
                low: 0.2,
                period: Seconds(5.0),
                duty: 0.5,
            },
            LoadTrace::Piecewise(vec![(Seconds(0.0), 0.3), (Seconds(1.0), 0.9)]),
        ];
        for tr in &traces {
            for t in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                assert_eq!(tr.intensity(Seconds(t)), 0.0, "{tr:?} at t={t}");
            }
        }

        // Degenerate periods collapse instead of going NaN.
        let d = LoadTrace::Diurnal {
            mean: 0.6,
            swing: 0.4,
            period: Seconds(0.0),
        };
        assert_eq!(d.intensity(Seconds(3.0)), 0.6);
        let b = LoadTrace::Bursty {
            high: 1.0,
            low: 0.25,
            period: Seconds(f64::NAN),
            duty: 0.5,
        };
        assert_eq!(b.intensity(Seconds(3.0)), 0.25);

        // Negative time on a square wave stays on the wave, in range.
        let b = LoadTrace::Bursty {
            high: 1.0,
            low: 0.2,
            period: Seconds(10.0),
            duty: 0.3,
        };
        assert_eq!(b.intensity(Seconds(-9.0)), 1.0);
        assert_eq!(b.intensity(Seconds(-5.0)), 0.2);

        // Coincident / unsorted piecewise knots never panic or NaN.
        let p = LoadTrace::Piecewise(vec![
            (Seconds(0.0), 0.2),
            (Seconds(5.0), 0.8),
            (Seconds(5.0), 0.4),
            (Seconds(10.0), 0.6),
        ]);
        for i in 0..200 {
            let v = p.intensity(Seconds(i as f64 * 0.1 - 5.0));
            assert!(v.is_finite() && (0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn traced_advance_into_matches_advance() {
        let cfg = ServiceConfig::websearch();
        let freqs = vec![KiloHertz::from_mhz(2600); 6];
        let trace = LoadTrace::Diurnal {
            mean: 0.6,
            swing: 0.4,
            period: Seconds(8.0),
        };
        let mut a = TracedService::new(cfg.clone(), 6, trace.clone());
        let mut b = TracedService::new(cfg, 6, trace);
        let mut buf = Vec::new();
        for _ in 0..10_000 {
            let fresh = a.advance(Seconds(0.001), &freqs);
            b.advance_into(Seconds(0.001), &freqs, &mut buf);
            assert_eq!(fresh, buf);
        }
        assert_eq!(a.service().completed(), b.service().completed());
    }

    #[test]
    fn traced_service_throughput_follows_intensity() {
        let cfg = ServiceConfig::websearch();
        let freqs = vec![KiloHertz::from_mhz(3000); 9];
        let run = |trace: LoadTrace| -> f64 {
            let mut ts = TracedService::new(cfg.clone(), 9, trace);
            for _ in 0..30_000 {
                ts.advance(Seconds(0.001), &freqs);
            }
            ts.service().throughput()
        };
        let full = run(LoadTrace::Flat(1.0));
        let half = run(LoadTrace::Flat(0.5));
        assert!(
            half < full * 0.75,
            "half intensity must cut throughput: {full:.0} -> {half:.0} rps"
        );
        assert!(half > full * 0.25);
    }

    #[test]
    fn traced_service_conserves_users() {
        let cfg = ServiceConfig::websearch();
        let freqs = vec![KiloHertz::from_mhz(2000); 4];
        let mut ts = TracedService::new(
            cfg,
            4,
            LoadTrace::Bursty {
                high: 1.0,
                low: 0.1,
                period: Seconds(2.0),
                duty: 0.5,
            },
        );
        for _ in 0..20_000 {
            ts.advance(Seconds(0.001), &freqs);
            assert!(ts.service().user_conservation());
        }
    }
}
