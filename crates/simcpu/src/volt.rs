//! Voltage/frequency curves.
//!
//! DVFS couples frequency to supply voltage: higher frequencies need higher
//! voltage, which is what makes dynamic power super-linear in frequency
//! (`P_dyn ∝ V²·f`, §2.1 of the paper). Real parts publish a small table of
//! voltage operating points; we model the curve as a piecewise-linear
//! interpolation over such a table.

use crate::freq::KiloHertz;
use crate::units::Volts;

/// A voltage/frequency curve: piecewise-linear interpolation over
/// operating points, or stepped voltage bands.
///
/// The *interpolated* form models per-operating-point voltage (Intel's
/// per-core FIVR). The *banded* form models the paper's Ryzen workaround
/// (§3.1): each redefinable P-state slot carries **one** BIOS-configured
/// voltage used for every frequency the band represents, so running at
/// the bottom of a band wastes the band's full voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageCurve {
    points: Vec<(KiloHertz, Volts)>,
    /// Stepped bands `(upper_bound_inclusive, voltage)`, ascending; when
    /// non-empty they take precedence over interpolation.
    bands: Vec<(KiloHertz, Volts)>,
}

impl VoltageCurve {
    /// Build a curve from `(frequency, voltage)` operating points.
    ///
    /// # Panics
    /// Panics if fewer than two points are given, frequencies are not
    /// strictly increasing, or voltages decrease.
    pub fn new(points: Vec<(KiloHertz, Volts)>) -> VoltageCurve {
        assert!(points.len() >= 2, "voltage curve needs at least two points");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "curve frequencies must strictly increase");
            assert!(w[0].1 <= w[1].1, "curve voltages must not decrease");
        }
        VoltageCurve {
            points,
            bands: Vec::new(),
        }
    }

    /// A stepped curve of voltage bands: each `(upper_bound, voltage)`
    /// covers frequencies up to and including the bound; queries above
    /// the last bound use the last voltage. This is the Ryzen shared
    /// P-state model of §3.1 ("each P-state uses the same voltage level
    /// for all frequencies it represents").
    ///
    /// # Panics
    /// Panics if empty or not ascending in both coordinates.
    pub fn banded(bands: Vec<(KiloHertz, Volts)>) -> VoltageCurve {
        assert!(!bands.is_empty(), "need at least one band");
        for w in bands.windows(2) {
            assert!(w[0].0 < w[1].0, "band bounds must strictly increase");
            assert!(w[0].1 <= w[1].1, "band voltages must not decrease");
        }
        VoltageCurve {
            points: Vec::new(),
            bands,
        }
    }

    /// A simple linear curve between two endpoints; convenient for tests
    /// and platform definitions without detailed V/f tables.
    pub fn linear(f_lo: KiloHertz, v_lo: Volts, f_hi: KiloHertz, v_hi: Volts) -> VoltageCurve {
        VoltageCurve::new(vec![(f_lo, v_lo), (f_hi, v_hi)])
    }

    /// Voltage required to run at frequency `f`.
    pub fn voltage(&self, f: KiloHertz) -> Volts {
        if !self.bands.is_empty() {
            return self
                .bands
                .iter()
                .find(|(bound, _)| f <= *bound)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| self.bands.last().expect("non-empty").1);
        }
        let pts = &self.points;
        if f <= pts[0].0 {
            return pts[0].1;
        }
        // Find the segment containing f; extrapolate past the end.
        let seg = pts
            .windows(2)
            .find(|w| f <= w[1].0)
            .unwrap_or_else(|| &pts[pts.len() - 2..]);
        let (f0, v0) = seg[0];
        let (f1, v1) = seg[1];
        let t = (f.khz() as f64 - f0.khz() as f64) / (f1.khz() as f64 - f0.khz() as f64);
        Volts(v0.value() + t * (v1.value() - v0.value()))
    }

    /// The operating points the curve was built from.
    pub fn points(&self) -> &[(KiloHertz, Volts)] {
        &self.points
    }

    /// Minimum (leftmost) voltage on the curve.
    pub fn min_voltage(&self) -> Volts {
        if !self.bands.is_empty() {
            self.bands[0].1
        } else {
            self.points[0].1
        }
    }

    /// Whether this curve is banded (stepped) rather than interpolated.
    pub fn is_banded(&self) -> bool {
        !self.bands.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> VoltageCurve {
        VoltageCurve::new(vec![
            (KiloHertz::from_mhz(800), Volts(0.65)),
            (KiloHertz::from_mhz(2200), Volts(0.95)),
            (KiloHertz::from_mhz(3000), Volts(1.15)),
        ])
    }

    #[test]
    fn interpolates_within_segments() {
        let c = curve();
        let v = c.voltage(KiloHertz::from_mhz(1500));
        // halfway between 800 (0.65V) and 2200 (0.95V)
        assert!((v.value() - 0.80).abs() < 1e-9);
        let v2 = c.voltage(KiloHertz::from_mhz(2600));
        assert!((v2.value() - 1.05).abs() < 1e-9);
    }

    #[test]
    fn endpoints_exact() {
        let c = curve();
        assert_eq!(c.voltage(KiloHertz::from_mhz(800)), Volts(0.65));
        assert_eq!(c.voltage(KiloHertz::from_mhz(2200)), Volts(0.95));
        assert_eq!(c.voltage(KiloHertz::from_mhz(3000)), Volts(1.15));
    }

    #[test]
    fn clamps_below_extrapolates_above() {
        let c = curve();
        assert_eq!(c.voltage(KiloHertz::from_mhz(100)), Volts(0.65));
        let v = c.voltage(KiloHertz::from_mhz(3400));
        // slope of last segment: 0.2V per 800MHz -> +0.1V at 3400
        assert!((v.value() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn monotone_non_decreasing() {
        let c = curve();
        let mut prev = Volts(0.0);
        for mhz in (400..3600).step_by(50) {
            let v = c.voltage(KiloHertz::from_mhz(mhz));
            assert!(v >= prev, "voltage decreased at {mhz} MHz");
            prev = v;
        }
    }

    #[test]
    fn linear_constructor() {
        let c = VoltageCurve::linear(
            KiloHertz::from_mhz(400),
            Volts(0.7),
            KiloHertz::from_mhz(3800),
            Volts(1.35),
        );
        let mid = c.voltage(KiloHertz::from_mhz(2100));
        assert!((mid.value() - 1.025).abs() < 1e-9);
        assert_eq!(c.min_voltage(), Volts(0.7));
    }

    #[test]
    fn banded_curve_steps() {
        // The paper's Ryzen P-state bands: P2 0.8-2.1 GHz, P1 2.2-3.3,
        // P0 3.4-3.8, each at one voltage.
        let c = VoltageCurve::banded(vec![
            (KiloHertz::from_mhz(2100), Volts(0.95)),
            (KiloHertz::from_mhz(3300), Volts(1.16)),
            (KiloHertz::from_mhz(3800), Volts(1.42)),
        ]);
        assert!(c.is_banded());
        assert_eq!(c.min_voltage(), Volts(0.95));
        // everything within a band shares its voltage
        assert_eq!(c.voltage(KiloHertz::from_mhz(800)), Volts(0.95));
        assert_eq!(c.voltage(KiloHertz::from_mhz(2100)), Volts(0.95));
        assert_eq!(c.voltage(KiloHertz::from_mhz(2200)), Volts(1.16));
        assert_eq!(c.voltage(KiloHertz::from_mhz(3300)), Volts(1.16));
        assert_eq!(c.voltage(KiloHertz::from_mhz(3400)), Volts(1.42));
        // above the top band: clamp to the top voltage
        assert_eq!(c.voltage(KiloHertz::from_mhz(4000)), Volts(1.42));
    }

    #[test]
    #[should_panic(expected = "band bounds")]
    fn banded_rejects_unordered() {
        let _ = VoltageCurve::banded(vec![
            (KiloHertz::from_mhz(3000), Volts(1.0)),
            (KiloHertz::from_mhz(2000), Volts(1.2)),
        ]);
    }

    #[test]
    fn interpolated_curve_is_not_banded() {
        assert!(!curve().is_banded());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_unordered_points() {
        let _ = VoltageCurve::new(vec![
            (KiloHertz::from_mhz(2000), Volts(0.9)),
            (KiloHertz::from_mhz(1000), Volts(1.0)),
        ]);
    }

    #[test]
    #[should_panic(expected = "must not decrease")]
    fn rejects_decreasing_voltage() {
        let _ = VoltageCurve::new(vec![
            (KiloHertz::from_mhz(1000), Volts(1.0)),
            (KiloHertz::from_mhz(2000), Volts(0.9)),
        ]);
    }
}
