//! Scalar unit newtypes used throughout the simulator.
//!
//! Power, energy and time quantities are kept in dedicated newtypes so that
//! a watt value can never be accidentally added to a joule value. Arithmetic
//! is implemented only where it is physically meaningful
//! (`Watts * Seconds = Joules`, `Joules / Seconds = Watts`, ...).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

/// Wall-clock (simulated) time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub f64);

/// Core supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(pub f64);

macro_rules! impl_unit {
    ($ty:ident, $sym:expr) => {
        impl $ty {
            /// Raw scalar value.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Zero of this unit.
            pub const ZERO: $ty = $ty(0.0);

            /// Clamp to the inclusive range `[lo, hi]`.
            #[inline]
            pub fn clamp(self, lo: $ty, hi: $ty) -> $ty {
                $ty(self.0.clamp(lo.0, hi.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: $ty) -> $ty {
                $ty(self.0.max(other.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: $ty) -> $ty {
                $ty(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> $ty {
                $ty(self.0.abs())
            }

            /// True when the value is finite and non-negative.
            #[inline]
            pub fn is_valid(self) -> bool {
                self.0.is_finite() && self.0 >= 0.0
            }
        }

        impl Add for $ty {
            type Output = $ty;
            #[inline]
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }

        impl Sub for $ty {
            type Output = $ty;
            #[inline]
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }

        impl AddAssign for $ty {
            #[inline]
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $ty {
            #[inline]
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $ty {
            type Output = $ty;
            #[inline]
            fn neg(self) -> $ty {
                $ty(-self.0)
            }
        }

        impl Mul<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }

        impl Div<f64> for $ty {
            type Output = $ty;
            #[inline]
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }

        impl Div for $ty {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                $ty(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $sym)
                } else {
                    write!(f, "{:.3} {}", self.0, $sym)
                }
            }
        }
    };
}

impl_unit!(Watts, "W");
impl_unit!(Joules, "J");
impl_unit!(Seconds, "s");
impl_unit!(Volts, "V");

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Seconds {
    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Seconds {
        Seconds(ms / 1e3)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> Seconds {
        Seconds(us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(10.0) * Seconds(2.5);
        assert_eq!(e, Joules(25.0));
        let e2 = Seconds(2.5) * Watts(10.0);
        assert_eq!(e2, e);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Joules(30.0) / Seconds(3.0);
        assert_eq!(p, Watts(10.0));
    }

    #[test]
    fn unit_arithmetic() {
        let a = Watts(3.0) + Watts(4.0) - Watts(2.0);
        assert_eq!(a, Watts(5.0));
        let mut b = Watts(1.0);
        b += Watts(2.0);
        b -= Watts(0.5);
        assert!((b.value() - 2.5).abs() < 1e-12);
        assert_eq!(Watts(8.0) / Watts(2.0), 4.0);
        assert_eq!(Watts(2.0) * 3.0, Watts(6.0));
        assert_eq!(Watts(6.0) / 3.0, Watts(2.0));
        assert_eq!(-Watts(1.5), Watts(-1.5));
    }

    #[test]
    fn clamp_min_max() {
        assert_eq!(Watts(5.0).clamp(Watts(0.0), Watts(4.0)), Watts(4.0));
        assert_eq!(Watts(-1.0).clamp(Watts(0.0), Watts(4.0)), Watts(0.0));
        assert_eq!(Watts(2.0).max(Watts(3.0)), Watts(3.0));
        assert_eq!(Watts(2.0).min(Watts(3.0)), Watts(2.0));
        assert_eq!(Watts(-2.0).abs(), Watts(2.0));
    }

    #[test]
    fn validity() {
        assert!(Watts(1.0).is_valid());
        assert!(!Watts(-1.0).is_valid());
        assert!(!Watts(f64::NAN).is_valid());
        assert!(!Watts(f64::INFINITY).is_valid());
    }

    #[test]
    fn sum_and_display() {
        let total: Watts = [Watts(1.0), Watts(2.0), Watts(3.0)].into_iter().sum();
        assert_eq!(total, Watts(6.0));
        assert_eq!(format!("{:.1}", Watts(1.25)), "1.2 W");
        assert_eq!(format!("{}", Seconds(2.0)), "2.000 s");
    }

    #[test]
    fn seconds_constructors() {
        assert!((Seconds::from_millis(1500.0).value() - 1.5).abs() < 1e-12);
        assert!((Seconds::from_micros(250.0).value() - 0.00025).abs() < 1e-12);
    }
}
