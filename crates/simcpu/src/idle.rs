//! Idle-state selection (a menu-governor analogue, §2.1 "Core Idling").
//!
//! Deeper C-states save more power but cost more wake latency (1–200 µs);
//! choosing one is a prediction problem. [`IdleGovernor`] follows the
//! kernel menu governor's core idea: predict the next idle interval from
//! an exponentially weighted history (with a correction factor for
//! systematic over-prediction) and pick the deepest state whose wake
//! latency is a small fraction of the predicted residency.

use crate::cstate::CState;
use crate::units::Seconds;

/// Per-core idle-state governor.
#[derive(Debug, Clone)]
pub struct IdleGovernor {
    /// EWMA of observed idle durations (seconds).
    predicted: f64,
    /// Multiplicative correction from past misprediction
    /// (observed / predicted), clamped.
    correction: f64,
    /// Wake latency must be below `latency_fraction` of the predicted
    /// idle residency for a state to be eligible (menu uses a comparable
    /// break-even rule).
    pub latency_fraction: f64,
    /// EWMA smoothing factor for new observations.
    pub alpha: f64,
}

impl Default for IdleGovernor {
    fn default() -> Self {
        IdleGovernor::new()
    }
}

impl IdleGovernor {
    /// A governor with kernel-like defaults, initially predicting long
    /// idles (first decision on an idle system goes deep).
    pub fn new() -> IdleGovernor {
        IdleGovernor {
            predicted: 1e-3,
            correction: 1.0,
            latency_fraction: 0.1,
            alpha: 0.3,
        }
    }

    /// The current idle-duration prediction.
    pub fn predicted(&self) -> Seconds {
        Seconds(self.predicted * self.correction)
    }

    /// Record an observed idle interval (call when the core wakes).
    pub fn observe(&mut self, idle: Seconds) {
        debug_assert!(idle.value() >= 0.0);
        let v = idle.value();
        // update correction from how the last prediction fared
        let predicted = (self.predicted * self.correction).max(1e-9);
        let ratio = (v / predicted).clamp(0.1, 10.0);
        self.correction =
            (self.correction * (1.0 - self.alpha) + ratio * self.alpha).clamp(0.2, 5.0);
        self.predicted = self.predicted * (1.0 - self.alpha) + v * self.alpha;
    }

    /// Pick the deepest C-state whose wake latency fits the prediction.
    pub fn select(&self) -> CState {
        let budget = self.predicted().value() * self.latency_fraction;
        // ALL is shallow→deep; take the deepest eligible.
        CState::ALL
            .iter()
            .rev()
            .find(|s| !s.is_active() && s.wake_latency().value() <= budget)
            .copied()
            .unwrap_or(CState::C1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_idles_go_deep() {
        let mut g = IdleGovernor::new();
        for _ in 0..20 {
            g.observe(Seconds::from_millis(50.0));
        }
        assert_eq!(g.select(), CState::C6);
    }

    #[test]
    fn short_idles_stay_shallow() {
        let mut g = IdleGovernor::new();
        for _ in 0..20 {
            g.observe(Seconds::from_micros(30.0));
        }
        // 30 µs idles: C6's 133 µs wake latency is unaffordable; C1's 2 µs
        // fits the 10% budget only marginally — expect C1.
        assert_eq!(g.select(), CState::C1);
    }

    #[test]
    fn medium_idles_pick_c3() {
        let mut g = IdleGovernor::new();
        for _ in 0..30 {
            g.observe(Seconds::from_micros(700.0));
        }
        // 700 µs × 0.1 = 70 µs budget: C3 (50 µs) fits, C6 (133 µs) not.
        assert_eq!(g.select(), CState::C3);
    }

    #[test]
    fn prediction_tracks_observations() {
        let mut g = IdleGovernor::new();
        for _ in 0..50 {
            g.observe(Seconds::from_millis(2.0));
        }
        let p = g.predicted().value();
        assert!((p - 0.002).abs() < 0.001, "predicted {p}");
    }

    #[test]
    fn adapts_when_pattern_changes() {
        let mut g = IdleGovernor::new();
        for _ in 0..30 {
            g.observe(Seconds::from_millis(20.0));
        }
        assert_eq!(g.select(), CState::C6);
        for _ in 0..30 {
            g.observe(Seconds::from_micros(25.0));
        }
        assert_eq!(g.select(), CState::C1, "must back off after bursts shorten");
    }

    #[test]
    fn never_selects_active_state() {
        let g = IdleGovernor::new();
        assert!(!g.select().is_active());
        let mut g = IdleGovernor::new();
        g.observe(Seconds(0.0));
        assert!(!g.select().is_active());
    }
}
