//! Package thermal model and thermald-style throttling (§2.2).
//!
//! Temperature follows a first-order RC model driven by package power:
//! `C·dT/dt = P − (T − T_ambient)/R`. A [`ThermalZone`] integrates it; a
//! [`ThermalGovernor`] reproduces the Linux `thermald` behavior the paper
//! describes: when a trip point is exceeded, it engages progressively
//! stronger mechanisms (frequency caps, then RAPL-style power limits) and
//! releases them with hysteresis.

use crate::freq::{FreqGrid, KiloHertz};
use crate::units::{Seconds, Watts};

/// A first-order thermal RC zone (package or core cluster).
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalZone {
    /// Ambient (heatsink inlet) temperature, °C.
    pub ambient: f64,
    /// Thermal resistance junction→ambient, °C/W.
    pub resistance: f64,
    /// Thermal capacitance, J/°C.
    pub capacitance: f64,
    temperature: f64,
}

impl ThermalZone {
    /// A zone starting at ambient temperature.
    pub fn new(ambient: f64, resistance: f64, capacitance: f64) -> ThermalZone {
        assert!(resistance > 0.0 && capacitance > 0.0);
        ThermalZone {
            ambient,
            resistance,
            capacitance,
            temperature: ambient,
        }
    }

    /// A server-class package: 25 °C ambient, 0.55 °C/W to ambient,
    /// 120 J/°C (tens-of-seconds time constant, as on real heatsinks).
    pub fn server_package() -> ThermalZone {
        ThermalZone::new(25.0, 0.55, 120.0)
    }

    /// Current junction temperature, °C.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Steady-state temperature at constant power.
    pub fn steady_state(&self, power: Watts) -> f64 {
        self.ambient + power.value() * self.resistance
    }

    /// Integrate one tick of dissipated power.
    pub fn advance(&mut self, power: Watts, dt: Seconds) {
        debug_assert!(dt.value() > 0.0);
        let dt_dt = (power.value() - (self.temperature - self.ambient) / self.resistance)
            / self.capacitance;
        self.temperature += dt_dt * dt.value();
    }
}

/// What the thermal governor currently imposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalAction {
    /// Frequency cap to program (grid max when unconstrained).
    pub freq_cap: KiloHertz,
    /// RAPL limit to program, if the deeper mechanism is engaged.
    pub power_limit: Option<Watts>,
}

/// thermald-style trip-point governor with hysteresis.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGovernor {
    /// Passive trip point: start frequency capping above this, °C.
    pub passive_trip: f64,
    /// Aggressive trip point: additionally engage a power limit, °C.
    pub power_trip: f64,
    /// Degrees below a trip before its mechanism releases.
    pub hysteresis: f64,
    /// Power limit engaged above `power_trip`.
    pub emergency_limit: Watts,
    /// Frequency cap step per evaluation while over the passive trip.
    step: KiloHertz,
    cap: KiloHertz,
    grid: FreqGrid,
    power_limited: bool,
}

impl ThermalGovernor {
    /// Create a governor over a platform grid with the given trip points.
    pub fn new(grid: FreqGrid, passive_trip: f64, power_trip: f64) -> ThermalGovernor {
        assert!(power_trip > passive_trip);
        ThermalGovernor {
            passive_trip,
            power_trip,
            hysteresis: 3.0,
            emergency_limit: Watts(35.0),
            step: KiloHertz(grid.step().khz() * 2),
            cap: grid.max(),
            grid,
            power_limited: false,
        }
    }

    /// Evaluate once per control interval against the zone temperature.
    pub fn evaluate(&mut self, temperature: f64) -> ThermalAction {
        // Passive capping with hysteresis.
        if temperature > self.passive_trip {
            self.cap = self
                .grid
                .round(self.cap.saturating_sub(self.step))
                .max(self.grid.min());
        } else if temperature < self.passive_trip - self.hysteresis && self.cap < self.grid.max() {
            self.cap = self.grid.step_up(self.cap);
        }
        // Deep mechanism with hysteresis.
        if temperature > self.power_trip {
            self.power_limited = true;
        } else if temperature < self.power_trip - self.hysteresis {
            self.power_limited = false;
        }
        ThermalAction {
            freq_cap: self.cap,
            power_limit: self.power_limited.then_some(self.emergency_limit),
        }
    }

    /// The current frequency cap.
    pub fn cap(&self) -> KiloHertz {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_approaches_steady_state() {
        let mut z = ThermalZone::server_package();
        let p = Watts(80.0);
        let target = z.steady_state(p);
        assert!((target - 69.0).abs() < 0.5, "steady state {target}");
        for _ in 0..600_000 {
            z.advance(p, Seconds(0.001));
        }
        assert!(
            (z.temperature() - target).abs() < 1.0,
            "after 10 min: {:.1} vs {target:.1}",
            z.temperature()
        );
    }

    #[test]
    fn zone_heats_and_cools_exponentially() {
        let mut z = ThermalZone::server_package();
        z.advance(Watts(80.0), Seconds(1.0));
        let early = z.temperature();
        assert!(early > 25.0 && early < 30.0, "one second in: {early}");
        // cool down with zero power
        for _ in 0..600 {
            z.advance(Watts::ZERO, Seconds(1.0));
        }
        assert!((z.temperature() - 25.0).abs() < 0.5, "cooled to ambient");
    }

    #[test]
    fn governor_caps_over_trip_and_releases() {
        let grid = FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        );
        let mut g = ThermalGovernor::new(grid, 75.0, 90.0);
        // hot: cap ratchets down
        let a1 = g.evaluate(80.0);
        let a2 = g.evaluate(80.0);
        assert!(a2.freq_cap < a1.freq_cap);
        assert!(a2.power_limit.is_none());
        // very hot: power limit engages
        let a3 = g.evaluate(92.0);
        assert_eq!(a3.power_limit, Some(Watts(35.0)));
        // cooling inside hysteresis: limit stays (and 88.5 °C is still
        // above the passive trip, so the cap keeps ratcheting down)
        let a4 = g.evaluate(88.5);
        assert!(a4.power_limit.is_some());
        assert!(a4.freq_cap < a3.freq_cap);
        // well below: releases and the cap steps back up
        let a5 = g.evaluate(60.0);
        assert!(a5.power_limit.is_none());
        let a6 = g.evaluate(60.0);
        assert!(a6.freq_cap > a4.freq_cap);
        assert!(a6.freq_cap > a5.freq_cap || a5.freq_cap == a6.freq_cap);
    }

    #[test]
    fn governor_cap_bounded_by_grid() {
        let grid = FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        );
        let mut g = ThermalGovernor::new(grid, 75.0, 90.0);
        for _ in 0..100 {
            g.evaluate(100.0);
        }
        assert_eq!(g.cap(), grid.min(), "cap floors at grid min");
        for _ in 0..100 {
            g.evaluate(20.0);
        }
        assert_eq!(g.cap(), grid.max(), "cap recovers to grid max");
    }

    #[test]
    fn closed_loop_with_zone_regulates_temperature() {
        // Feed the governor's cap into a toy power model: P = 20 + 20·(f/fmax)².
        let grid = FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        );
        let mut zone = ThermalZone::new(25.0, 1.0, 60.0); // hot-running box
        let mut gov = ThermalGovernor::new(grid, 55.0, 70.0);
        let mut cap = grid.max();
        for _ in 0..1200 {
            let x = cap.ghz() / grid.max().ghz();
            let power = Watts(20.0 + 40.0 * x * x);
            for _ in 0..1000 {
                zone.advance(power, Seconds(0.001));
            }
            cap = gov.evaluate(zone.temperature()).freq_cap;
        }
        assert!(
            zone.temperature() < 60.0,
            "thermal loop failed to regulate: {:.1} °C",
            zone.temperature()
        );
        assert!(cap < grid.max(), "some capping must be active");
    }
}
