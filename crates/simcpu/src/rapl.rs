//! Running Average Power Limit (RAPL): energy counters and the hardware
//! limit controller.
//!
//! RAPL (§2.2) gives software (a) energy accounting per power domain via
//! wrapping counters in fixed energy units, and (b) enforcement: the part
//! continuously adjusts frequencies to keep the running average power of a
//! domain under a programmed limit. The stock enforcement policy has no
//! notion of application priority — it maintains one global frequency cap,
//! which throttles the *fastest* (most power-hungry) cores first. That
//! policy-free behavior is what the paper's Figures 1, 4 and 5 demonstrate
//! and what the per-application policies replace.

use crate::freq::{FreqGrid, KiloHertz};
use crate::units::{Joules, Seconds, Watts};

/// Energy accounting unit used by the emulated counters: 2⁻¹⁴ J ≈ 61 µJ,
/// the default RAPL energy status unit on Intel parts.
pub const ENERGY_UNIT: Joules = Joules(1.0 / 16384.0);

/// A RAPL power domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDomain {
    /// Whole package: cores + uncore.
    Package,
    /// Core (PP0) domain: sum of core power only.
    Cores,
}

/// A wrapping 32-bit energy counter in [`ENERGY_UNIT`] units, as exposed by
/// the `MSR_*_ENERGY_STATUS` registers. Readers must handle wraparound
/// (≈ 262 kJ, under an hour at package TDP).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyCounter {
    /// Total accumulated energy (not wrapped); internal bookkeeping.
    total: Joules,
}

impl EnergyCounter {
    /// Accumulate `e` joules.
    pub fn add(&mut self, e: Joules) {
        debug_assert!(e.value() >= 0.0, "negative energy {e:?}");
        self.total += e;
    }

    /// The register value software reads: total energy in
    /// [`ENERGY_UNIT`]s, wrapped to 32 bits.
    pub fn read_raw(&self) -> u32 {
        let units = (self.total.value() / ENERGY_UNIT.value()) as u64;
        units as u32
    }

    /// Full (non-wrapping) total, for white-box tests and internal use.
    pub fn total(&self) -> Joules {
        self.total
    }

    /// Convert a raw-counter delta (new minus old, wrapping) to joules.
    pub fn delta_joules(prev_raw: u32, now_raw: u32) -> Joules {
        let d = now_raw.wrapping_sub(prev_raw);
        Joules(d as f64 * ENERGY_UNIT.value())
    }
}

/// Configuration for the RAPL limit controller.
#[derive(Debug, Clone, PartialEq)]
pub struct RaplConfig {
    /// Supported programmable limit window.
    pub limit_range: (Watts, Watts),
    /// Averaging time constant of the running power average.
    pub window: Seconds,
    /// How often the controller adjusts the frequency cap. Real RAPL
    /// reacts on sub-millisecond scales; 1 ms keeps the simulation cheap
    /// while still settling well within the daemon's 1 s samples.
    pub control_period: Seconds,
    /// Proportional gain: kHz of cap movement per watt of error.
    pub gain_khz_per_watt: f64,
    /// Error deadband; inside it the cap is left alone (W).
    pub deadband: Watts,
}

impl RaplConfig {
    /// A reasonable default for a server part with the given limit window.
    pub fn server_default(limit_range: (Watts, Watts)) -> RaplConfig {
        RaplConfig {
            limit_range,
            window: Seconds::from_millis(100.0),
            control_period: Seconds::from_millis(1.0),
            gain_khz_per_watt: 12_000.0,
            deadband: Watts(0.4),
        }
    }
}

/// The RAPL enforcement controller: a proportional controller on a global
/// frequency cap, driven by an exponentially-weighted running average of
/// package power.
#[derive(Debug, Clone)]
pub struct RaplController {
    config: RaplConfig,
    grid: FreqGrid,
    limit: Option<Watts>,
    avg_power: Watts,
    /// Unquantized internal cap; the applied cap is `grid.round` of this.
    cap_khz: f64,
    since_control: Seconds,
}

impl RaplController {
    /// Create a controller over the chip's programmable frequency grid
    /// extended to its opportunistic peak (`cap_max`).
    pub fn new(config: RaplConfig, grid: FreqGrid) -> RaplController {
        let cap = grid.max().khz() as f64;
        RaplController {
            config,
            grid,
            limit: None,
            avg_power: Watts::ZERO,
            cap_khz: cap,
            since_control: Seconds(0.0),
        }
    }

    /// Program a power limit, or `None` to disable enforcement.
    /// Out-of-window limits are clamped, mirroring hardware behavior.
    pub fn set_limit(&mut self, limit: Option<Watts>) {
        self.limit = limit.map(|l| l.clamp(self.config.limit_range.0, self.config.limit_range.1));
        if self.limit.is_none() {
            self.cap_khz = self.grid.max().khz() as f64;
        }
    }

    /// The currently programmed limit.
    pub fn limit(&self) -> Option<Watts> {
        self.limit
    }

    /// The running average power the controller is acting on.
    pub fn running_average(&self) -> Watts {
        self.avg_power
    }

    /// The global frequency cap RAPL currently imposes on every core.
    pub fn cap(&self) -> KiloHertz {
        self.grid.round(KiloHertz(self.cap_khz as u64))
    }

    /// Feed one tick of measured package power; adjusts the cap when a
    /// control period has elapsed.
    pub fn observe(&mut self, package_power: Watts, dt: Seconds) {
        // EWMA with time constant `window`.
        let alpha = (dt.value() / self.config.window.value()).min(1.0);
        self.avg_power = self.avg_power + (package_power - self.avg_power) * alpha;

        let Some(limit) = self.limit else {
            return;
        };

        self.since_control += dt;
        if self.since_control < self.config.control_period {
            return;
        }
        self.since_control = Seconds(0.0);

        let error = self.avg_power - limit;
        if error.abs() <= self.config.deadband {
            return;
        }
        self.cap_khz -= error.value() * self.config.gain_khz_per_watt;
        self.cap_khz = self
            .cap_khz
            .clamp(self.grid.min().khz() as f64, self.grid.max().khz() as f64);
    }

    /// Reset the controller state (average and cap), keeping the limit.
    pub fn reset(&mut self) {
        self.avg_power = Watts::ZERO;
        self.cap_khz = self.grid.max().khz() as f64;
        self.since_control = Seconds(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> FreqGrid {
        FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        )
    }

    fn controller() -> RaplController {
        RaplController::new(
            RaplConfig::server_default((Watts(20.0), Watts(85.0))),
            grid(),
        )
    }

    #[test]
    fn counter_accumulates_and_wraps() {
        let mut c = EnergyCounter::default();
        c.add(Joules(1.0));
        let raw1 = c.read_raw();
        assert_eq!(raw1, 16384);
        // Push near the 32-bit boundary: 2^32 units = 262144 J
        c.add(Joules(262_140.0));
        let before_wrap = c.read_raw();
        c.add(Joules(5.0));
        let after_wrap = c.read_raw();
        assert!(after_wrap < before_wrap, "counter should wrap");
        // Delta across the wrap is still correct.
        let d = EnergyCounter::delta_joules(before_wrap, after_wrap);
        assert!((d.value() - 5.0).abs() < 1e-3, "delta {d}");
    }

    #[test]
    fn delta_without_wrap() {
        let d = EnergyCounter::delta_joules(1000, 17384);
        assert!((d.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_limit_means_max_cap() {
        let mut r = controller();
        for _ in 0..1000 {
            r.observe(Watts(200.0), Seconds::from_millis(1.0));
        }
        assert_eq!(r.cap(), KiloHertz::from_mhz(3000));
    }

    #[test]
    fn cap_drops_under_limit_violation() {
        let mut r = controller();
        r.set_limit(Some(Watts(50.0)));
        for _ in 0..500 {
            r.observe(Watts(80.0), Seconds::from_millis(1.0));
        }
        assert!(r.cap() < KiloHertz::from_mhz(3000), "cap={}", r.cap());
        assert!(r.running_average().value() > 70.0);
    }

    #[test]
    fn cap_recovers_when_power_falls() {
        let mut r = controller();
        r.set_limit(Some(Watts(50.0)));
        for _ in 0..500 {
            r.observe(Watts(80.0), Seconds::from_millis(1.0));
        }
        let low = r.cap();
        for _ in 0..2000 {
            r.observe(Watts(30.0), Seconds::from_millis(1.0));
        }
        assert!(r.cap() > low, "cap should recover: {} -> {}", low, r.cap());
    }

    #[test]
    fn limit_clamped_to_window() {
        let mut r = controller();
        r.set_limit(Some(Watts(500.0)));
        assert_eq!(r.limit(), Some(Watts(85.0)));
        r.set_limit(Some(Watts(1.0)));
        assert_eq!(r.limit(), Some(Watts(20.0)));
        r.set_limit(None);
        assert_eq!(r.limit(), None);
        assert_eq!(r.cap(), KiloHertz::from_mhz(3000));
    }

    #[test]
    fn deadband_freezes_cap() {
        let mut r = controller();
        r.set_limit(Some(Watts(50.0)));
        // Converge the EWMA to exactly the limit; cap must stop moving.
        for _ in 0..2000 {
            r.observe(Watts(50.0), Seconds::from_millis(1.0));
        }
        let c1 = r.cap();
        for _ in 0..1000 {
            r.observe(Watts(50.2), Seconds::from_millis(1.0));
        }
        assert_eq!(r.cap(), c1, "inside deadband the cap must hold");
    }

    #[test]
    fn reset_restores_cap() {
        let mut r = controller();
        r.set_limit(Some(Watts(30.0)));
        for _ in 0..1000 {
            r.observe(Watts(90.0), Seconds::from_millis(1.0));
        }
        assert!(r.cap() < KiloHertz::from_mhz(3000));
        r.reset();
        assert_eq!(r.cap(), KiloHertz::from_mhz(3000));
        assert_eq!(r.limit(), Some(Watts(30.0)));
    }
}
