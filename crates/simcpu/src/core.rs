//! Per-core simulated state.
//!
//! Each core tracks its requested and effective frequency, the load placed
//! on it by the workload engine, idle state, and the hardware counters
//! (`APERF`/`MPERF`/`TSC`, retired instructions, per-core energy) that the
//! telemetry layer samples — the same variables the paper collects with a
//! modified `turbostat` (§3.1).

use crate::cstate::{CState, CStateResidency};
use crate::freq::KiloHertz;
use crate::power::LoadDescriptor;
use crate::rapl::EnergyCounter;
use crate::units::{Seconds, Watts};

/// Snapshot of a core's fixed counters, sampled by telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Cycles accumulated at the *effective* frequency while active
    /// (APERF analogue).
    pub aperf: u64,
    /// Cycles accumulated at the *base* frequency while active
    /// (MPERF analogue).
    pub mperf: u64,
    /// Cycles at base frequency regardless of activity (TSC analogue).
    pub tsc: u64,
    /// Retired instructions (fixed counter INST_RETIRED analogue).
    pub instructions: u64,
}

/// One simulated core.
#[derive(Debug, Clone)]
pub struct SimCore {
    requested: KiloHertz,
    effective: KiloHertz,
    load: LoadDescriptor,
    forced_idle: bool,
    idle_state: CState,
    counters: CoreCounters,
    energy: EnergyCounter,
    residency: CStateResidency,
    last_power: Watts,
}

impl SimCore {
    /// A core initially requesting `initial_freq`, idle, with zeroed
    /// counters.
    pub fn new(initial_freq: KiloHertz) -> SimCore {
        SimCore {
            requested: initial_freq,
            effective: initial_freq,
            load: LoadDescriptor::IDLE,
            forced_idle: false,
            idle_state: CState::C6,
            counters: CoreCounters::default(),
            energy: EnergyCounter::default(),
            residency: CStateResidency::default(),
            last_power: Watts::ZERO,
        }
    }

    /// The frequency software has requested for this core.
    pub fn requested(&self) -> KiloHertz {
        self.requested
    }

    /// Set the requested frequency (validated by the chip before calling).
    pub(crate) fn set_requested(&mut self, f: KiloHertz) {
        self.requested = f;
    }

    /// The frequency the core actually ran at during the last tick, after
    /// turbo, AVX and RAPL caps.
    pub fn effective(&self) -> KiloHertz {
        self.effective
    }

    pub(crate) fn set_effective(&mut self, f: KiloHertz) {
        self.effective = f;
    }

    /// The current load descriptor.
    pub fn load(&self) -> LoadDescriptor {
        self.load
    }

    /// Install the load for the upcoming tick.
    pub(crate) fn set_load(&mut self, load: LoadDescriptor) {
        debug_assert!(load.is_valid());
        self.load = load;
    }

    /// Force the core idle (policy-driven C-state parking) or release it.
    pub fn set_forced_idle(&mut self, idle: bool) {
        self.forced_idle = idle;
    }

    /// Whether the core is policy-parked.
    pub fn forced_idle(&self) -> bool {
        self.forced_idle
    }

    /// The idle state the core sits in when not executing.
    pub fn idle_state(&self) -> CState {
        self.idle_state
    }

    /// Select the idle state used when the core has no work.
    pub fn set_idle_state(&mut self, s: CState) {
        self.idle_state = s;
    }

    /// True when the core will execute this tick: it has active load and
    /// is not parked.
    pub fn is_active(&self) -> bool {
        !self.forced_idle && self.load.is_active()
    }

    /// Fixed-counter snapshot.
    pub fn counters(&self) -> CoreCounters {
        self.counters
    }

    /// Per-core energy counter (exposed via telemetry only on platforms
    /// with per-core power measurement).
    pub fn energy(&self) -> &EnergyCounter {
        &self.energy
    }

    /// C-state residency accounting.
    pub fn residency(&self) -> &CStateResidency {
        &self.residency
    }

    /// Power drawn during the last tick.
    pub fn last_power(&self) -> Watts {
        self.last_power
    }

    /// Credit retired instructions (from the workload engine).
    pub fn add_instructions(&mut self, n: u64) {
        self.counters.instructions = self.counters.instructions.wrapping_add(n);
    }

    /// Integrate one tick: update counters, residency and energy.
    ///
    /// `base_freq` is the platform nominal frequency (MPERF/TSC clock);
    /// `power` the instantaneous core power computed by the chip's model.
    pub(crate) fn integrate(&mut self, dt: Seconds, base_freq: KiloHertz, power: Watts) {
        let active_fraction = if self.is_active() {
            self.load.utilization
        } else {
            0.0
        };
        self.counters.tsc = self
            .counters
            .tsc
            .wrapping_add((base_freq.hz() * dt.value()) as u64);
        self.counters.mperf = self
            .counters
            .mperf
            .wrapping_add((base_freq.hz() * dt.value() * active_fraction) as u64);
        self.counters.aperf = self
            .counters
            .aperf
            .wrapping_add((self.effective.hz() * dt.value() * active_fraction) as u64);
        self.residency.record(dt, active_fraction, self.idle_state);
        self.energy.add(power * dt);
        self.last_power = power;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_core_is_idle() {
        let c = SimCore::new(KiloHertz::from_mhz(2200));
        assert!(!c.is_active());
        assert_eq!(c.requested(), KiloHertz::from_mhz(2200));
        assert_eq!(c.counters(), CoreCounters::default());
    }

    #[test]
    fn active_needs_load_and_not_parked() {
        let mut c = SimCore::new(KiloHertz::from_mhz(2200));
        c.set_load(LoadDescriptor::nominal());
        assert!(c.is_active());
        c.set_forced_idle(true);
        assert!(!c.is_active());
        c.set_forced_idle(false);
        c.set_load(LoadDescriptor::IDLE);
        assert!(!c.is_active());
    }

    #[test]
    fn integrate_updates_counters() {
        let mut c = SimCore::new(KiloHertz::from_mhz(2000));
        c.set_load(LoadDescriptor::nominal());
        c.set_effective(KiloHertz::from_mhz(1000));
        c.integrate(Seconds(1.0), KiloHertz::from_mhz(2000), Watts(5.0));
        let ctr = c.counters();
        assert_eq!(ctr.tsc, 2_000_000_000);
        assert_eq!(ctr.mperf, 2_000_000_000);
        assert_eq!(ctr.aperf, 1_000_000_000);
        assert!((c.energy().total().value() - 5.0).abs() < 1e-9);
        assert_eq!(c.last_power(), Watts(5.0));
    }

    #[test]
    fn integrate_idle_keeps_aperf_mperf() {
        let mut c = SimCore::new(KiloHertz::from_mhz(2000));
        c.integrate(Seconds(1.0), KiloHertz::from_mhz(2000), Watts(0.05));
        let ctr = c.counters();
        assert_eq!(ctr.mperf, 0);
        assert_eq!(ctr.aperf, 0);
        assert_eq!(ctr.tsc, 2_000_000_000);
        assert!((c.residency().c0_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn partial_utilization_scales_counters() {
        let mut c = SimCore::new(KiloHertz::from_mhz(2000));
        c.set_load(LoadDescriptor {
            capacitance: 1.0,
            utilization: 0.5,
            avx: false,
        });
        c.set_effective(KiloHertz::from_mhz(2000));
        c.integrate(Seconds(1.0), KiloHertz::from_mhz(2000), Watts(3.0));
        assert_eq!(c.counters().mperf, 1_000_000_000);
        assert!((c.residency().c0_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instruction_credit() {
        let mut c = SimCore::new(KiloHertz::from_mhz(2000));
        c.add_instructions(1_000);
        c.add_instructions(234);
        assert_eq!(c.counters().instructions, 1_234);
    }
}
