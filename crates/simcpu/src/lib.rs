//! # pap-simcpu — a multi-core processor power/performance simulator
//!
//! This crate is the hardware substrate for the *Per-Application Power
//! Delivery* (EuroSys '19) reproduction. It models the two testbed
//! processors of the paper — an Intel Xeon SP 4114 ("Skylake") and an AMD
//! Ryzen 1700X — at the level of abstraction the paper's policies interact
//! with:
//!
//! * per-core DVFS with platform-specific frequency grids and
//!   voltage/frequency curves ([`freq`], [`volt`], [`pstate`]);
//! * the CMOS power law `P = C_eff · V² · f` with per-workload effective
//!   capacitance, leakage, idle floors and uncore power ([`power`]);
//! * opportunistic scaling (TurboBoost / XFR) and AVX frequency caps
//!   ([`turbo`]);
//! * C-state idling ([`cstate`]);
//! * RAPL energy counters and the policy-free RAPL limit controller that
//!   throttles the fastest cores first ([`rapl`]);
//! * Ryzen's three shared, redefinable P-state slots ([`pstate`],
//!   enforced by [`chip::Chip`]);
//! * MSR- and sysfs-shaped access paths so control software written
//!   against this simulator ports to real hardware ([`msr`], [`sysfs`]);
//! * single-core proportional time sharing ([`timeshare`]).
//!
//! The entry point is [`chip::Chip`], created from a
//! [`platform::PlatformSpec`]:
//!
//! ```
//! use pap_simcpu::prelude::*;
//!
//! let mut chip = Chip::new(PlatformSpec::skylake());
//! chip.set_requested_freq(0, KiloHertz::from_mhz(2200)).unwrap();
//! chip.set_load(0, LoadDescriptor::nominal()).unwrap();
//! chip.set_rapl_limit(Some(Watts(50.0))).unwrap();
//! for _ in 0..1000 {
//!     chip.tick(Seconds::from_millis(1.0));
//! }
//! assert!(chip.package_power().value() < 55.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chip;
pub mod chiplike;
pub mod clock;
pub mod core;
pub mod cstate;
pub mod error;
pub mod freq;
pub mod idle;
pub mod msr;
pub mod platform;
pub mod power;
pub mod pstate;
pub mod rapl;
pub mod sysfs;
pub mod thermal;
pub mod timeshare;
pub mod turbo;
pub mod units;
pub mod volt;
pub mod widechip;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::chip::Chip;
    pub use crate::chiplike::ChipLike;
    pub use crate::error::{Result, SimError};
    pub use crate::freq::{FreqGrid, KiloHertz};
    pub use crate::platform::{PlatformSpec, Vendor};
    pub use crate::power::{LoadDescriptor, PowerModel};
    pub use crate::units::{Joules, Seconds, Volts, Watts};
    pub use crate::widechip::WideChip;
}
