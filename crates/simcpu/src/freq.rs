//! Frequency representation and quantization.
//!
//! All frequencies in the simulator are carried as [`KiloHertz`], an integer
//! newtype. Real platforms expose frequency in discrete steps (100 MHz on
//! Intel Skylake, 25 MHz on AMD Ryzen); [`FreqGrid`] models such a step grid
//! and provides quantization helpers used by the control daemon's
//! translation functions.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A CPU frequency in kilohertz (matching the unit used by Linux cpufreq).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KiloHertz(pub u64);

impl KiloHertz {
    /// Zero frequency (a halted core).
    pub const ZERO: KiloHertz = KiloHertz(0);

    /// Construct from megahertz.
    #[inline]
    pub const fn from_mhz(mhz: u64) -> KiloHertz {
        KiloHertz(mhz * 1_000)
    }

    /// Construct from gigahertz (fractional values are truncated to kHz).
    #[inline]
    pub fn from_ghz(ghz: f64) -> KiloHertz {
        KiloHertz((ghz * 1e6).round() as u64)
    }

    /// Value in kilohertz.
    #[inline]
    pub const fn khz(self) -> u64 {
        self.0
    }

    /// Value in megahertz (truncating).
    #[inline]
    pub const fn mhz(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in gigahertz.
    #[inline]
    pub fn ghz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.0 as f64 * 1e3
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: KiloHertz) -> KiloHertz {
        KiloHertz(self.0.saturating_sub(rhs.0))
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: KiloHertz) -> KiloHertz {
        KiloHertz(self.0.min(other.0))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: KiloHertz) -> KiloHertz {
        KiloHertz(self.0.max(other.0))
    }

    /// Clamp to the inclusive range `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: KiloHertz, hi: KiloHertz) -> KiloHertz {
        KiloHertz(self.0.clamp(lo.0, hi.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest kHz.
    ///
    /// Panics in debug builds if `factor` is negative or non-finite.
    #[inline]
    pub fn scale(self, factor: f64) -> KiloHertz {
        debug_assert!(factor.is_finite() && factor >= 0.0);
        KiloHertz((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for KiloHertz {
    type Output = KiloHertz;
    #[inline]
    fn add(self, rhs: KiloHertz) -> KiloHertz {
        KiloHertz(self.0 + rhs.0)
    }
}

impl Sub for KiloHertz {
    type Output = KiloHertz;
    #[inline]
    fn sub(self, rhs: KiloHertz) -> KiloHertz {
        KiloHertz(self.0 - rhs.0)
    }
}

impl AddAssign for KiloHertz {
    #[inline]
    fn add_assign(&mut self, rhs: KiloHertz) {
        self.0 += rhs.0;
    }
}

impl SubAssign for KiloHertz {
    #[inline]
    fn sub_assign(&mut self, rhs: KiloHertz) {
        self.0 -= rhs.0;
    }
}

impl Sum for KiloHertz {
    fn sum<I: Iterator<Item = KiloHertz>>(iter: I) -> KiloHertz {
        KiloHertz(iter.map(|f| f.0).sum())
    }
}

impl fmt::Display for KiloHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MHz", self.mhz())
    }
}

/// A discrete frequency grid `[min, min+step, ..., max]`.
///
/// Models the quantization a platform imposes on programmable frequencies,
/// e.g. 100 MHz bins on Intel or 25 MHz bins on AMD Ryzen.
///
/// ```
/// use pap_simcpu::freq::{FreqGrid, KiloHertz};
/// let grid = FreqGrid::new(
///     KiloHertz::from_mhz(800),
///     KiloHertz::from_mhz(3000),
///     KiloHertz::from_mhz(100),
/// );
/// assert_eq!(grid.round(KiloHertz::from_mhz(1234)), KiloHertz::from_mhz(1200));
/// assert_eq!(grid.len(), 23);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreqGrid {
    min: KiloHertz,
    max: KiloHertz,
    step: KiloHertz,
}

impl FreqGrid {
    /// Build a grid. `max` is adjusted down to the nearest point on the
    /// grid if `max - min` is not a multiple of `step`.
    ///
    /// # Panics
    /// Panics if `step` is zero or `max < min`.
    pub fn new(min: KiloHertz, max: KiloHertz, step: KiloHertz) -> FreqGrid {
        assert!(step.khz() > 0, "frequency step must be non-zero");
        assert!(max >= min, "max frequency below min");
        let span = (max.khz() - min.khz()) / step.khz() * step.khz();
        FreqGrid {
            min,
            max: KiloHertz(min.khz() + span),
            step,
        }
    }

    /// Lowest grid frequency.
    #[inline]
    pub fn min(&self) -> KiloHertz {
        self.min
    }

    /// Highest grid frequency.
    #[inline]
    pub fn max(&self) -> KiloHertz {
        self.max
    }

    /// Grid step size.
    #[inline]
    pub fn step(&self) -> KiloHertz {
        self.step
    }

    /// Number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        ((self.max.khz() - self.min.khz()) / self.step.khz()) as usize + 1
    }

    /// Grids always contain at least one point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if `f` lies exactly on the grid.
    pub fn contains(&self, f: KiloHertz) -> bool {
        f >= self.min && f <= self.max && (f.khz() - self.min.khz()).is_multiple_of(self.step.khz())
    }

    /// Quantize to the nearest grid point (ties round up).
    pub fn round(&self, f: KiloHertz) -> KiloHertz {
        let f = f.clamp(self.min, self.max);
        let off = f.khz() - self.min.khz();
        let lo = off / self.step.khz() * self.step.khz();
        let rem = off - lo;
        let snapped = if rem * 2 >= self.step.khz() {
            lo + self.step.khz()
        } else {
            lo
        };
        KiloHertz(self.min.khz() + snapped).min(self.max)
    }

    /// Quantize downward to the grid (floor). Values below `min` clamp up.
    pub fn floor(&self, f: KiloHertz) -> KiloHertz {
        if f <= self.min {
            return self.min;
        }
        let f = f.min(self.max);
        let off = (f.khz() - self.min.khz()) / self.step.khz() * self.step.khz();
        KiloHertz(self.min.khz() + off)
    }

    /// Quantize upward to the grid (ceiling). Values above `max` clamp down.
    pub fn ceil(&self, f: KiloHertz) -> KiloHertz {
        if f >= self.max {
            return self.max;
        }
        let f = f.max(self.min);
        let off = f.khz() - self.min.khz();
        let lo = off / self.step.khz() * self.step.khz();
        let up = if lo == off { lo } else { lo + self.step.khz() };
        KiloHertz(self.min.khz() + up)
    }

    /// One step below `f` on the grid, clamped at `min`.
    pub fn step_down(&self, f: KiloHertz) -> KiloHertz {
        let f = self.round(f);
        if f.khz() >= self.min.khz() + self.step.khz() {
            f - self.step
        } else {
            self.min
        }
    }

    /// One step above `f` on the grid, clamped at `max`.
    pub fn step_up(&self, f: KiloHertz) -> KiloHertz {
        let f = self.round(f);
        (f + self.step).min(self.max)
    }

    /// Iterate all grid points in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = KiloHertz> + '_ {
        (0..self.len() as u64).map(move |i| KiloHertz(self.min.khz() + i * self.step.khz()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skylake_grid() -> FreqGrid {
        FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(100),
        )
    }

    #[test]
    fn conversions() {
        let f = KiloHertz::from_ghz(2.2);
        assert_eq!(f.khz(), 2_200_000);
        assert_eq!(f.mhz(), 2_200);
        assert!((f.ghz() - 2.2).abs() < 1e-9);
        assert!((f.hz() - 2.2e9).abs() < 1.0);
        assert_eq!(KiloHertz::from_mhz(100).khz(), 100_000);
    }

    #[test]
    fn arithmetic() {
        let a = KiloHertz::from_mhz(1000) + KiloHertz::from_mhz(500);
        assert_eq!(a, KiloHertz::from_mhz(1500));
        assert_eq!(a - KiloHertz::from_mhz(300), KiloHertz::from_mhz(1200));
        assert_eq!(
            KiloHertz::from_mhz(100).saturating_sub(KiloHertz::from_mhz(200)),
            KiloHertz::ZERO
        );
        assert_eq!(
            KiloHertz::from_mhz(1000).scale(1.5),
            KiloHertz::from_mhz(1500)
        );
    }

    #[test]
    fn grid_round() {
        let g = skylake_grid();
        assert_eq!(g.round(KiloHertz(1_949_999)), KiloHertz::from_mhz(1900));
        assert_eq!(g.round(KiloHertz(1_950_000)), KiloHertz::from_mhz(2000));
        assert_eq!(g.round(KiloHertz::from_mhz(50)), KiloHertz::from_mhz(800));
        assert_eq!(
            g.round(KiloHertz::from_mhz(9000)),
            KiloHertz::from_mhz(3000)
        );
    }

    #[test]
    fn grid_floor_ceil() {
        let g = skylake_grid();
        assert_eq!(g.floor(KiloHertz(1_999_000)), KiloHertz::from_mhz(1900));
        assert_eq!(g.ceil(KiloHertz(1_901_000)), KiloHertz::from_mhz(2000));
        assert_eq!(g.floor(KiloHertz::from_mhz(100)), KiloHertz::from_mhz(800));
        assert_eq!(g.ceil(KiloHertz::from_mhz(100)), KiloHertz::from_mhz(800));
        assert_eq!(g.ceil(KiloHertz::from_mhz(5000)), KiloHertz::from_mhz(3000));
        // exact grid points are fixed points
        assert_eq!(
            g.floor(KiloHertz::from_mhz(2000)),
            KiloHertz::from_mhz(2000)
        );
        assert_eq!(g.ceil(KiloHertz::from_mhz(2000)), KiloHertz::from_mhz(2000));
    }

    #[test]
    fn grid_steps() {
        let g = skylake_grid();
        assert_eq!(
            g.step_down(KiloHertz::from_mhz(800)),
            KiloHertz::from_mhz(800)
        );
        assert_eq!(
            g.step_down(KiloHertz::from_mhz(1000)),
            KiloHertz::from_mhz(900)
        );
        assert_eq!(
            g.step_up(KiloHertz::from_mhz(3000)),
            KiloHertz::from_mhz(3000)
        );
        assert_eq!(
            g.step_up(KiloHertz::from_mhz(1000)),
            KiloHertz::from_mhz(1100)
        );
    }

    #[test]
    fn grid_len_iter_contains() {
        let g = skylake_grid();
        assert_eq!(g.len(), 23);
        let pts: Vec<_> = g.iter().collect();
        assert_eq!(pts.len(), 23);
        assert_eq!(pts[0], KiloHertz::from_mhz(800));
        assert_eq!(*pts.last().unwrap(), KiloHertz::from_mhz(3000));
        assert!(g.contains(KiloHertz::from_mhz(1200)));
        assert!(!g.contains(KiloHertz::from_mhz(1250)));
        assert!(!g.contains(KiloHertz::from_mhz(700)));
    }

    #[test]
    fn grid_non_multiple_max_truncates() {
        let g = FreqGrid::new(
            KiloHertz::from_mhz(400),
            KiloHertz::from_mhz(3800),
            KiloHertz::from_mhz(25),
        );
        // 3800 - 400 = 3400 is a multiple of 25, stays
        assert_eq!(g.max(), KiloHertz::from_mhz(3800));
        let g2 = FreqGrid::new(
            KiloHertz::from_mhz(400),
            KiloHertz(3_793_000),
            KiloHertz::from_mhz(25),
        );
        assert_eq!(g2.max(), KiloHertz(3_775_000));
    }

    #[test]
    #[should_panic(expected = "frequency step")]
    fn zero_step_panics() {
        let _ = FreqGrid::new(KiloHertz(1), KiloHertz(2), KiloHertz(0));
    }

    #[test]
    fn ryzen_grid_25mhz() {
        let g = FreqGrid::new(
            KiloHertz::from_mhz(400),
            KiloHertz::from_mhz(3800),
            KiloHertz::from_mhz(25),
        );
        assert_eq!(
            g.round(KiloHertz::from_mhz(1667)),
            KiloHertz::from_mhz(1675)
        );
        assert_eq!(
            g.floor(KiloHertz::from_mhz(1667)),
            KiloHertz::from_mhz(1650)
        );
        assert_eq!(g.len(), 137);
    }
}
