//! Batch-stepped wide-chip simulation (128–1024 cores).
//!
//! [`crate::chip::Chip`] keeps each core in its own struct and allocates
//! a scratch vector every tick — fine at the paper's 8–10 cores, but the
//! FastCap-style optimizing allocator only becomes interesting at two to
//! three orders of magnitude more cores, where that layout dominates the
//! simulation cost. [`WideChip`] is the same physical model in
//! struct-of-arrays form:
//!
//! * every per-core variable lives in its own flat vector, so the tick
//!   loop streams over contiguous memory instead of hopping across
//!   200-byte core structs;
//! * the turbo/RAPL caps are hoisted out of the per-core loop (they
//!   depend only on the active-core count, not on which core asks), and
//!   the active count itself is maintained incrementally by the setters
//!   instead of being recounted every tick;
//! * the whole per-core tick increment is memoized, not just the power
//!   model: the CMOS evaluation (a piecewise-linear voltage lookup plus
//!   the `C·V²·f` polynomial), the effective-frequency min-chain, and
//!   every float product a tick folds into the counters (`Δmperf`,
//!   `Δaperf`, residency seconds, joules) are pure in (frequency, load,
//!   idle state, `dt`), so they are computed once when one of those
//!   inputs moves and replayed as plain adds until the next change — in
//!   steady state the loop body is a handful of adds per core;
//! * [`WideChip::tick`] allocates nothing, extending the zero-alloc
//!   `StepScratch`/`*_into` discipline of the control hot path into the
//!   simulator itself.
//!
//! The arithmetic is the *same IEEE-754 operations in the same order* as
//! `Chip::tick`/`SimCore::integrate`, so a `WideChip` and a `Chip`
//! driven identically produce bit-identical counters, energy and power —
//! enforced by the equivalence tests at the bottom of this module and
//! gated in CI by `ext_hotpath` (which also gates the ≥4× speedup at
//! 1024 cores that justifies the second implementation).

use std::sync::Arc;

use crate::clock::SimClock;
use crate::core::CoreCounters;
use crate::cstate::CState;
use crate::error::{Result, SimError};
use crate::freq::KiloHertz;
use crate::platform::PlatformSpec;
use crate::power::LoadDescriptor;
use crate::rapl::{EnergyCounter, RaplController};
use crate::units::{Joules, Seconds, Watts};

/// Index of a [`CState`] in [`CState::ALL`], precomputed so the tick loop
/// never searches the array.
#[inline]
fn cstate_index(s: CState) -> usize {
    match s {
        CState::C0 => 0,
        CState::C1 => 1,
        CState::C3 => 2,
        CState::C6 => 3,
    }
}

/// A batch-stepped multi-core processor with struct-of-arrays core state.
///
/// Functionally equivalent to [`crate::chip::Chip`] on platforms without
/// shared P-state slots; built for core counts where the per-core-struct
/// layout is too slow.
#[derive(Debug, Clone)]
pub struct WideChip {
    spec: Arc<PlatformSpec>,
    clock: SimClock,
    rapl: Option<RaplController>,
    pkg_energy: EnergyCounter,
    cores_energy: EnergyCounter,
    last_package_power: Watts,
    last_cores_power: Watts,

    // --- struct-of-arrays per-core state ---
    requested: Vec<KiloHertz>,
    effective: Vec<KiloHertz>,
    load_cap: Vec<f64>,
    load_util: Vec<f64>,
    load_avx: Vec<bool>,
    forced_idle: Vec<bool>,
    idle_state: Vec<CState>,
    tsc: Vec<u64>,
    mperf: Vec<u64>,
    aperf: Vec<u64>,
    instructions: Vec<u64>,
    energy: Vec<EnergyCounter>,
    /// Seconds per C-state, [`CState::ALL`] order (C0 first).
    residency: Vec<[f64; 4]>,
    last_power: Vec<Watts>,
    /// True when a core's power inputs (load, park, idle state) changed
    /// since its memoized tick increments were computed; forces a model
    /// re-evaluation and cache rebuild for that core on the next tick.
    cache_dirty: Vec<bool>,
    /// Any `cache_dirty` bit set — lets a clean tick skip the scan.
    any_dirty: bool,
    /// A requested frequency moved: every core must re-run the
    /// effective-frequency min-chain (power is re-evaluated only for
    /// cores whose resolved frequency actually changed).
    freq_moved: bool,
    /// Idle-floor power per C-state, precomputed from the model.
    idle_power_by_state: [Watts; 4],

    // --- memoized per-core tick increments -------------------------
    // Everything a tick folds into a core's counters is pure in
    // (effective freq, load, idle state, dt). These caches hold the
    // exact values `Chip::tick`/`SimCore::integrate` would compute,
    // produced by the same expressions, and are rebuilt only when an
    // input moves — so replaying them is bit-identical to recomputing.
    /// `SimCore::is_active`, maintained incrementally by the setters.
    active_flag: Vec<bool>,
    /// Count of set bits in `active_flag` (Chip recounts per tick).
    active_count: usize,
    /// `(base_freq.hz() * dt * active_fraction) as u64`.
    mperf_inc: Vec<u64>,
    /// `(effective.hz() * dt * active_fraction) as u64`.
    aperf_inc: Vec<u64>,
    /// `dt * active_fraction` seconds of C0 residency.
    c0_inc: Vec<f64>,
    /// `dt * (1 - active_fraction)` seconds in the idle state.
    idle_inc: Vec<f64>,
    /// `cstate_index(idle_state)`, so the loop never matches on CState.
    idle_idx: Vec<u8>,
    /// `last_power * dt` joules per tick.
    energy_inc: Vec<Joules>,
    /// `effective.scale(utilization)` for active cores, zero otherwise.
    freq_weight: Vec<KiloHertz>,
    /// `dt` the caches were built for (NaN before the first tick).
    last_dt: f64,
    /// (scalar turbo cap, AVX turbo cap, RAPL cap) the caches were
    /// built under; any movement re-resolves every core's frequency.
    last_caps: (KiloHertz, KiloHertz, Option<KiloHertz>),
}

impl WideChip {
    /// Instantiate a wide chip from a platform spec.
    ///
    /// # Panics
    /// Panics if the spec fails validation or declares shared P-state
    /// slots (Ryzen-style slot clustering is a small-chip concern; use
    /// [`crate::chip::Chip`] there).
    pub fn new(spec: PlatformSpec) -> WideChip {
        WideChip::shared(Arc::new(spec))
    }

    /// Instantiate a wide chip from a shared platform spec (see
    /// [`crate::chip::Chip::shared`]).
    ///
    /// # Panics
    /// Panics under the same conditions as [`WideChip::new`].
    pub fn shared(spec: Arc<PlatformSpec>) -> WideChip {
        if let Err(e) = spec.validate() {
            panic!("invalid platform spec: {e}");
        }
        assert!(
            spec.shared_pstate_slots.is_none(),
            "WideChip does not model shared P-state slots"
        );
        let n = spec.num_cores;
        let rapl = spec
            .rapl
            .clone()
            .map(|cfg| RaplController::new(cfg, spec.grid));
        let mut idle_power_by_state = [Watts::ZERO; 4];
        for s in CState::ALL {
            idle_power_by_state[cstate_index(s)] = spec.power.idle_power(s);
        }
        WideChip {
            clock: SimClock::new(),
            rapl,
            pkg_energy: EnergyCounter::default(),
            cores_energy: EnergyCounter::default(),
            last_package_power: Watts::ZERO,
            last_cores_power: Watts::ZERO,
            requested: vec![spec.base_freq; n],
            effective: vec![spec.base_freq; n],
            load_cap: vec![0.0; n],
            load_util: vec![0.0; n],
            load_avx: vec![false; n],
            forced_idle: vec![false; n],
            idle_state: vec![CState::C6; n],
            tsc: vec![0; n],
            mperf: vec![0; n],
            aperf: vec![0; n],
            instructions: vec![0; n],
            energy: vec![EnergyCounter::default(); n],
            residency: vec![[0.0; 4]; n],
            last_power: vec![Watts::ZERO; n],
            cache_dirty: vec![true; n],
            any_dirty: true,
            freq_moved: true,
            idle_power_by_state,
            active_flag: vec![false; n],
            active_count: 0,
            mperf_inc: vec![0; n],
            aperf_inc: vec![0; n],
            c0_inc: vec![0.0; n],
            idle_inc: vec![0.0; n],
            idle_idx: vec![cstate_index(CState::C6) as u8; n],
            energy_inc: vec![Joules::ZERO; n],
            freq_weight: vec![KiloHertz::ZERO; n],
            last_dt: f64::NAN,
            last_caps: (KiloHertz::ZERO, KiloHertz::ZERO, None),
            spec,
        }
    }

    /// Re-derive one core's `is_active` bit and the running count after
    /// a setter touched its load or park state.
    #[inline]
    fn refresh_active(&mut self, core: usize) {
        let now =
            !self.forced_idle[core] && self.load_util[core] > 0.0 && self.load_cap[core] > 0.0;
        if now != self.active_flag[core] {
            self.active_flag[core] = now;
            if now {
                self.active_count += 1;
            } else {
                self.active_count -= 1;
            }
        }
    }

    /// The platform this chip models.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.spec.num_cores
    }

    /// Current simulated time.
    pub fn now(&self) -> Seconds {
        self.clock.now()
    }

    fn check_core(&self, core: usize) -> Result<()> {
        if core >= self.requested.len() {
            Err(SimError::NoSuchCore {
                core,
                num_cores: self.requested.len(),
            })
        } else {
            Ok(())
        }
    }

    fn check_freq(&self, f: KiloHertz) -> Result<()> {
        if f < self.spec.grid.min() || f > self.spec.grid.max() {
            Err(SimError::FrequencyOutOfRange {
                requested: f,
                min: self.spec.grid.min(),
                max: self.spec.grid.max(),
            })
        } else {
            Ok(())
        }
    }

    /// Request a frequency for one core, snapped to the platform grid.
    pub fn set_requested_freq(&mut self, core: usize, f: KiloHertz) -> Result<()> {
        self.check_core(core)?;
        self.check_freq(f)?;
        let f = self.spec.grid.round(f);
        if self.requested[core] != f {
            self.requested[core] = f;
            self.freq_moved = true;
        }
        Ok(())
    }

    /// Atomically set all cores' requested frequencies (the batch path
    /// the daemon and benches drive).
    pub fn set_all_requested(&mut self, freqs: &[KiloHertz]) -> Result<()> {
        if freqs.len() != self.requested.len() {
            return Err(SimError::NoSuchCore {
                core: freqs.len(),
                num_cores: self.requested.len(),
            });
        }
        for &f in freqs {
            self.check_freq(f)?;
        }
        for (slot, &f) in self.requested.iter_mut().zip(freqs) {
            let f = self.spec.grid.round(f);
            if *slot != f {
                *slot = f;
                self.freq_moved = true;
            }
        }
        Ok(())
    }

    /// The frequency software requested for `core`.
    pub fn requested_freq(&self, core: usize) -> KiloHertz {
        self.requested[core]
    }

    /// The frequency `core` actually ran at during the last tick.
    pub fn effective_freq(&self, core: usize) -> KiloHertz {
        self.effective[core]
    }

    /// Install the load descriptor for `core` for the upcoming tick.
    ///
    /// Re-installing a bitwise-identical descriptor is a no-op: the
    /// cached tick increments are pure functions of the inputs, so a
    /// rebuild would reproduce them bit-for-bit — and cluster nodes
    /// re-install every resident app's load each tick, which would
    /// otherwise force a rebuild on every tick of a steady interval.
    pub fn set_load(&mut self, core: usize, load: LoadDescriptor) -> Result<()> {
        self.check_core(core)?;
        debug_assert!(load.is_valid());
        if self.load_cap[core].to_bits() == load.capacitance.to_bits()
            && self.load_util[core].to_bits() == load.utilization.to_bits()
            && self.load_avx[core] == load.avx
        {
            return Ok(());
        }
        self.load_cap[core] = load.capacitance;
        self.load_util[core] = load.utilization;
        self.load_avx[core] = load.avx;
        self.cache_dirty[core] = true;
        self.any_dirty = true;
        self.refresh_active(core);
        Ok(())
    }

    /// Park (`true`) or release (`false`) a core. Redundant calls skip
    /// the cache invalidation (see [`WideChip::set_load`]).
    pub fn set_forced_idle(&mut self, core: usize, idle: bool) -> Result<()> {
        self.check_core(core)?;
        if self.forced_idle[core] == idle {
            return Ok(());
        }
        self.forced_idle[core] = idle;
        self.cache_dirty[core] = true;
        self.any_dirty = true;
        self.refresh_active(core);
        Ok(())
    }

    /// Select the C-state a core rests in while it has no work.
    /// Redundant calls skip the cache invalidation (see
    /// [`WideChip::set_load`]).
    pub fn set_idle_state(&mut self, core: usize, state: CState) -> Result<()> {
        self.check_core(core)?;
        if self.idle_state[core] == state {
            return Ok(());
        }
        self.idle_state[core] = state;
        self.cache_dirty[core] = true;
        self.any_dirty = true;
        Ok(())
    }

    /// Credit retired instructions to a core.
    pub fn add_instructions(&mut self, core: usize, n: u64) -> Result<()> {
        self.check_core(core)?;
        self.instructions[core] = self.instructions[core].wrapping_add(n);
        Ok(())
    }

    /// Program a RAPL package power limit; errors on platforms without
    /// RAPL enforcement.
    pub fn set_rapl_limit(&mut self, limit: Option<Watts>) -> Result<()> {
        match self.rapl.as_mut() {
            Some(r) => {
                r.set_limit(limit);
                Ok(())
            }
            None => Err(SimError::Unsupported("RAPL power limiting")),
        }
    }

    /// The global frequency cap RAPL currently imposes, if any.
    pub fn rapl_cap(&self) -> Option<KiloHertz> {
        self.rapl.as_ref().map(|r| r.cap())
    }

    /// The programmed RAPL limit, if any.
    pub fn rapl_limit(&self) -> Option<Watts> {
        self.rapl.as_ref().and_then(|r| r.limit())
    }

    /// Fixed-counter snapshot for a core.
    pub fn counters(&self, core: usize) -> CoreCounters {
        CoreCounters {
            aperf: self.aperf[core],
            mperf: self.mperf[core],
            tsc: self.tsc[core],
            instructions: self.instructions[core],
        }
    }

    /// Package power during the last tick.
    pub fn package_power(&self) -> Watts {
        self.last_package_power
    }

    /// Core-domain (PP0) power during the last tick.
    pub fn cores_power(&self) -> Watts {
        self.last_cores_power
    }

    /// Power of one core during the last tick (test/telemetry access,
    /// mirroring [`crate::chip::Chip::core_power`] gating).
    pub fn core_power(&self, core: usize) -> Result<Watts> {
        self.check_core(core)?;
        if !self.spec.per_core_power {
            return Err(SimError::Unsupported("per-core power telemetry"));
        }
        Ok(self.last_power[core])
    }

    /// Per-core accumulated energy (white-box access for the
    /// equivalence tests; architecturally gated like
    /// [`WideChip::core_power`] via the raw counter below).
    pub fn core_energy_total(&self, core: usize) -> Joules {
        self.energy[core].total()
    }

    /// Raw (wrapping) package energy counter.
    pub fn package_energy_raw(&self) -> u32 {
        self.pkg_energy.read_raw()
    }

    /// Raw (wrapping) core-domain energy counter.
    pub fn cores_energy_raw(&self) -> u32 {
        self.cores_energy.read_raw()
    }

    /// Raw per-core energy counter; errors on platforms without per-core
    /// power telemetry (same gating as [`crate::chip::Chip::core_energy_raw`]).
    pub fn core_energy_raw(&self, core: usize) -> Result<u32> {
        self.check_core(core)?;
        if !self.spec.per_core_power {
            return Err(SimError::Unsupported("per-core power telemetry"));
        }
        Ok(self.energy[core].read_raw())
    }

    /// Fraction of accounted time core `core` spent active (C0).
    pub fn c0_fraction(&self, core: usize) -> f64 {
        let r = &self.residency[core];
        let total: f64 = r.iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            r[0] / total
        }
    }

    /// Whether `core` will execute this tick (same predicate as
    /// `SimCore::is_active`).
    #[inline]
    fn is_active(&self, core: usize) -> bool {
        !self.forced_idle[core] && self.load_util[core] > 0.0 && self.load_cap[core] > 0.0
    }

    /// Number of cores that will execute this tick.
    pub fn active_cores(&self) -> usize {
        self.active_count
    }

    /// Rebuild the memoized tick increments for every core whose inputs
    /// moved. The expressions are verbatim the per-tick arithmetic of
    /// `Chip::tick`/`SimCore::integrate`, so replaying the cached values
    /// is bit-identical to recomputing them each tick.
    fn rebuild_caches(
        &mut self,
        dt: Seconds,
        all: bool,
        caps: (KiloHertz, KiloHertz, Option<KiloHertz>),
    ) {
        let (cap_scalar, cap_avx, rapl_cap) = caps;
        let grid_min = self.spec.grid.min();
        let mperf_base = self.spec.base_freq.hz() * dt.value();
        for c in 0..self.requested.len() {
            if !(all || self.cache_dirty[c]) {
                continue;
            }
            let is_active = self.active_flag[c];
            // Same min-chain as Chip::resolve_freq.
            let mut f = self.requested[c];
            f = f.min(if self.load_avx[c] {
                cap_avx
            } else {
                cap_scalar
            });
            if let Some(rc) = rapl_cap {
                f = f.min(rc);
            }
            let f = f.max(grid_min);

            // Memoized power: the CMOS model is pure in (freq, load,
            // active, idle state); recompute only when one of them moved.
            if self.cache_dirty[c] || f != self.effective[c] {
                self.last_power[c] = if is_active {
                    self.spec.power.core_power(
                        f,
                        &LoadDescriptor {
                            capacitance: self.load_cap[c],
                            utilization: self.load_util[c],
                            avx: self.load_avx[c],
                        },
                    )
                } else {
                    self.idle_power_by_state[cstate_index(self.idle_state[c])]
                };
            }
            self.effective[c] = f;

            // SimCore::integrate's per-tick products, computed once.
            let active_fraction = if is_active { self.load_util[c] } else { 0.0 };
            self.mperf_inc[c] = (mperf_base * active_fraction) as u64;
            self.aperf_inc[c] = (f.hz() * dt.value() * active_fraction) as u64;
            self.c0_inc[c] = dt.value() * active_fraction;
            self.idle_inc[c] = dt.value() * (1.0 - active_fraction);
            self.idle_idx[c] = cstate_index(self.idle_state[c]) as u8;
            self.energy_inc[c] = self.last_power[c] * dt;
            self.freq_weight[c] = if is_active {
                f.scale(self.load_util[c])
            } else {
                KiloHertz::ZERO
            };
            self.cache_dirty[c] = false;
        }
        self.any_dirty = false;
        self.freq_moved = false;
        self.last_dt = dt.value();
        self.last_caps = caps;
    }

    /// Advance the chip by `dt`: resolve frequencies, integrate power and
    /// counters, and let the RAPL controller react. Allocation-free.
    pub fn tick(&mut self, dt: Seconds) {
        let n = self.requested.len();
        debug_assert_eq!(
            self.active_count,
            (0..n).filter(|&c| self.is_active(c)).count()
        );

        // Caps depend only on the active count — hoist them out of the
        // per-core loop (Chip re-derives them per core).
        let cap_scalar = self.spec.turbo.cap_for(self.active_count, false);
        let cap_avx = self.spec.turbo.cap_for(self.active_count, true);
        let rapl_cap = self.rapl.as_ref().map(|r| r.cap());
        let caps = (cap_scalar, cap_avx, rapl_cap);

        // Re-resolve frequencies only when something that feeds the
        // min-chain moved; refresh per-core increments only for cores
        // whose power inputs moved. A steady-state tick skips both.
        // `last_dt` starts as NaN, which compares unequal and forces the
        // first tick down the rebuild path.
        let resolve_all = caps != self.last_caps || dt.value() != self.last_dt || self.freq_moved;
        if resolve_all || self.any_dirty {
            self.rebuild_caches(dt, resolve_all, caps);
        }

        // Per-tick counter increment shared by every core.
        let tsc_inc = (self.spec.base_freq.hz() * dt.value()) as u64;

        let mut cores_power = Watts::ZERO;
        let mut active_freq_sum = KiloHertz::ZERO;
        let mut max_active_freq = KiloHertz::ZERO;

        // Slices pinned to length n so the indexing below elides bounds
        // checks; the loop is pure replay — adds of cached increments in
        // the same order Chip folds the freshly computed ones.
        let last_power = &self.last_power[..n];
        let active_flag = &self.active_flag[..n];
        let freq_weight = &self.freq_weight[..n];
        let effective = &self.effective[..n];
        let mperf_inc = &self.mperf_inc[..n];
        let aperf_inc = &self.aperf_inc[..n];
        let c0_inc = &self.c0_inc[..n];
        let idle_inc = &self.idle_inc[..n];
        let idle_idx = &self.idle_idx[..n];
        let energy_inc = &self.energy_inc[..n];
        let tsc = &mut self.tsc[..n];
        let mperf = &mut self.mperf[..n];
        let aperf = &mut self.aperf[..n];
        let residency = &mut self.residency[..n];
        let energy = &mut self.energy[..n];

        for c in 0..n {
            cores_power += last_power[c];
            if active_flag[c] {
                active_freq_sum += freq_weight[c];
                max_active_freq = max_active_freq.max(effective[c]);
            }
            tsc[c] = tsc[c].wrapping_add(tsc_inc);
            mperf[c] = mperf[c].wrapping_add(mperf_inc[c]);
            aperf[c] = aperf[c].wrapping_add(aperf_inc[c]);
            // CStateResidency::record, replayed from the cached products.
            let r = &mut residency[c];
            r[0] += c0_inc[c];
            let idx = idle_idx[c] as usize & 3;
            if idx == 0 {
                r[0] += idle_inc[c];
            } else {
                r[idx] += idle_inc[c];
            }
            energy[c].add(energy_inc[c]);
        }

        let uncore = self
            .spec
            .power
            .uncore_power_at(active_freq_sum, max_active_freq);
        let package = cores_power + uncore;

        self.cores_energy.add(cores_power * dt);
        self.pkg_energy.add(package * dt);
        self.last_cores_power = cores_power;
        self.last_package_power = package;

        if let Some(r) = self.rapl.as_mut() {
            r.observe(package, dt);
        }
        self.clock.advance(dt);
    }

    /// Run `n` ticks of `dt` each.
    pub fn run_ticks(&mut self, n: usize, dt: Seconds) {
        for _ in 0..n {
            self.tick(dt);
        }
    }

    /// Whether the next tick of `dt` takes the pure replay path: no
    /// dirty cores, no requested-frequency movement, the same tick
    /// length, unchanged frequency caps, and no RAPL limit that could
    /// move the cap mid-stream. Replay ticks mutate only per-core
    /// accumulators, so steadiness is self-preserving: once true it
    /// stays true until an input moves, and callers may batch app-major
    /// loops against frozen effective frequencies (see
    /// `Node::advance_interval` in `clusterd`).
    pub fn steady_tick(&self, dt: Seconds) -> bool {
        if self.any_dirty || self.freq_moved || self.last_dt.to_bits() != dt.value().to_bits() {
            return false;
        }
        if self.rapl.as_ref().is_some_and(|r| r.limit().is_some()) {
            return false;
        }
        let caps = (
            self.spec.turbo.cap_for(self.active_count, false),
            self.spec.turbo.cap_for(self.active_count, true),
            self.rapl.as_ref().map(|r| r.cap()),
        );
        caps == self.last_caps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::Chip;

    const MS: Seconds = Seconds(0.001);

    /// Mixed workload over `n` cores: deterministic spread of frequencies,
    /// capacitances, utilizations and AVX flags, plus some parked and
    /// shallow-idle cores.
    fn drive_pair(n: usize, ticks: usize) -> (Chip, WideChip) {
        let spec = PlatformSpec::wide(n);
        let mut chip = Chip::new(spec.clone());
        let mut wide = WideChip::new(spec.clone());
        let span = (spec.grid.max().khz() - spec.grid.min().khz()) / spec.grid.step().khz();
        for c in 0..n {
            let f = KiloHertz(
                spec.grid.min().khz() + (c as u64 * 7 % (span + 1)) * spec.grid.step().khz(),
            );
            chip.set_requested_freq(c, f).unwrap();
            wide.set_requested_freq(c, f).unwrap();
            let load = match c % 5 {
                0 => LoadDescriptor::nominal(),
                1 => LoadDescriptor {
                    capacitance: 1.9,
                    utilization: 1.0,
                    avx: true,
                },
                2 => LoadDescriptor {
                    capacitance: 1.2,
                    utilization: 0.6,
                    avx: false,
                },
                3 => LoadDescriptor::IDLE,
                _ => LoadDescriptor {
                    capacitance: 0.8,
                    utilization: 0.9,
                    avx: false,
                },
            };
            chip.set_load(c, load).unwrap();
            wide.set_load(c, load).unwrap();
            if c % 7 == 3 {
                chip.set_forced_idle(c, true).unwrap();
                wide.set_forced_idle(c, true).unwrap();
            }
            if c % 4 == 1 {
                chip.set_idle_state(c, CState::C1).unwrap();
                wide.set_idle_state(c, CState::C1).unwrap();
            }
            chip.add_instructions(c, 1000 + c as u64).unwrap();
            wide.add_instructions(c, 1000 + c as u64).unwrap();
        }
        let limit = Watts(4.0 * n as f64);
        chip.set_rapl_limit(Some(limit)).unwrap();
        wide.set_rapl_limit(Some(limit)).unwrap();
        for t in 0..ticks {
            // retarget mid-run so the caches see real frequency movement
            if t == ticks / 2 {
                for c in (0..n).step_by(3) {
                    let f = spec.grid.round(KiloHertz(
                        spec.grid.min().khz()
                            + (c as u64 * 11 % (span + 1)) * spec.grid.step().khz(),
                    ));
                    chip.set_requested_freq(c, f).unwrap();
                    wide.set_requested_freq(c, f).unwrap();
                }
            }
            chip.tick(MS);
            wide.tick(MS);
        }
        (chip, wide)
    }

    #[test]
    fn bit_identical_to_chip_at_16_cores() {
        let n = 16;
        let (chip, wide) = drive_pair(n, 600);
        assert_eq!(
            chip.package_power().value().to_bits(),
            wide.package_power().value().to_bits()
        );
        assert_eq!(
            chip.cores_power().value().to_bits(),
            wide.cores_power().value().to_bits()
        );
        assert_eq!(chip.package_energy_raw(), wide.package_energy_raw());
        assert_eq!(chip.cores_energy_raw(), wide.cores_energy_raw());
        assert_eq!(chip.rapl_cap(), wide.rapl_cap());
        for c in 0..n {
            assert_eq!(chip.effective_freq(c), wide.effective_freq(c), "core {c}");
            assert_eq!(chip.counters(c), wide.counters(c), "core {c}");
            assert_eq!(
                chip.core(c).energy().total().value().to_bits(),
                wide.core_energy_total(c).value().to_bits(),
                "core {c} energy"
            );
            assert_eq!(
                chip.core(c).residency().c0_fraction().to_bits(),
                wide.c0_fraction(c).to_bits(),
                "core {c} residency"
            );
        }
    }

    #[test]
    fn bit_identical_on_the_skylake_testbed() {
        // The equivalence is not special to the wide descriptors: the
        // paper's Skylake part (ramped turbo, RAPL) agrees too.
        let spec = PlatformSpec::skylake();
        let mut chip = Chip::new(spec.clone());
        let mut wide = WideChip::new(spec);
        for c in 0..10 {
            let f = KiloHertz::from_mhz(1000 + 200 * c as u64);
            chip.set_requested_freq(c, f).unwrap();
            wide.set_requested_freq(c, f).unwrap();
            let load = LoadDescriptor {
                capacitance: if c % 2 == 0 { 1.0 } else { 1.9 },
                utilization: 1.0,
                avx: c % 2 == 1,
            };
            chip.set_load(c, load).unwrap();
            wide.set_load(c, load).unwrap();
        }
        chip.set_rapl_limit(Some(Watts(50.0))).unwrap();
        wide.set_rapl_limit(Some(Watts(50.0))).unwrap();
        for _ in 0..2000 {
            chip.tick(MS);
            wide.tick(MS);
        }
        assert_eq!(
            chip.package_power().value().to_bits(),
            wide.package_power().value().to_bits()
        );
        for c in 0..10 {
            assert_eq!(chip.effective_freq(c), wide.effective_freq(c));
            assert_eq!(chip.counters(c), wide.counters(c));
        }
    }

    #[test]
    fn batch_setters_validate() {
        let mut wide = WideChip::new(PlatformSpec::wide(16));
        assert!(matches!(
            wide.set_requested_freq(99, KiloHertz::from_mhz(1000)),
            Err(SimError::NoSuchCore { .. })
        ));
        assert!(matches!(
            wide.set_requested_freq(0, KiloHertz::from_mhz(5000)),
            Err(SimError::FrequencyOutOfRange { .. })
        ));
        assert!(wide
            .set_all_requested(&[KiloHertz::from_mhz(1200); 16])
            .is_ok());
        assert_eq!(wide.requested_freq(7), KiloHertz::from_mhz(1200));
        assert!(wide
            .set_all_requested(&[KiloHertz::from_mhz(1200); 3])
            .is_err());
        // snapping matches the grid
        wide.set_requested_freq(0, KiloHertz(1_234_000)).unwrap();
        assert_eq!(wide.requested_freq(0), KiloHertz::from_mhz(1200));
    }

    #[test]
    fn rapl_holds_the_cap_at_width() {
        let n = 128;
        let spec = PlatformSpec::wide(n);
        let mut wide = WideChip::new(spec.clone());
        for c in 0..n {
            wide.set_requested_freq(c, spec.grid.max()).unwrap();
            wide.set_load(c, LoadDescriptor::nominal()).unwrap();
        }
        let limit = Watts(4.0 * n as f64);
        wide.set_rapl_limit(Some(limit)).unwrap();
        wide.run_ticks(5000, MS);
        assert!(
            wide.package_power().value() < limit.value() * 1.1,
            "RAPL failed to hold {limit} at {n} cores: {}",
            wide.package_power()
        );
        assert_eq!(wide.active_cores(), n);
    }

    #[test]
    #[should_panic(expected = "shared P-state slots")]
    fn rejects_shared_slot_platforms() {
        let _ = WideChip::new(PlatformSpec::ryzen());
    }
}
