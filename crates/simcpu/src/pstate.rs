//! Performance states (P-states).
//!
//! P-states are the software-visible handle for DVFS (§2.1). ACPI numbers
//! them P0 (fastest) upward; each maps to an operating frequency. Modern
//! parts additionally accept direct frequency requests through MSRs, which
//! is what the paper's daemon uses — but the P-state table remains the
//! interface for the ACPI-style view and for Ryzen's *redefinable* three
//! concurrent hardware P-states.

use crate::freq::{FreqGrid, KiloHertz};

/// An ordered table of P-states, P0 first (highest frequency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PStateTable {
    freqs: Vec<KiloHertz>,
}

/// Index of a P-state within a [`PStateTable`]. P0 is the fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PState(pub u8);

impl PStateTable {
    /// Build a table from explicit frequencies.
    ///
    /// # Panics
    /// Panics if empty or not strictly descending.
    pub fn new(freqs: Vec<KiloHertz>) -> PStateTable {
        assert!(!freqs.is_empty(), "P-state table cannot be empty");
        for w in freqs.windows(2) {
            assert!(w[0] > w[1], "P-state table must be strictly descending");
        }
        PStateTable { freqs }
    }

    /// Build an ACPI-style table of `n` states spread evenly over a grid,
    /// P0 at `grid.max()` and the last state at `grid.min()`.
    pub fn evenly_spaced(grid: &FreqGrid, n: usize) -> PStateTable {
        assert!(n >= 2, "need at least two P-states");
        let span = grid.max().khz() - grid.min().khz();
        let mut freqs: Vec<KiloHertz> = (0..n)
            .map(|i| {
                let f = grid.max().khz() - span * i as u64 / (n as u64 - 1);
                grid.round(KiloHertz(f))
            })
            .collect();
        freqs.dedup();
        PStateTable { freqs }
    }

    /// Frequency of P-state `p`, if it exists.
    pub fn freq(&self, p: PState) -> Option<KiloHertz> {
        self.freqs.get(p.0 as usize).copied()
    }

    /// The fastest state.
    pub fn p0(&self) -> KiloHertz {
        self.freqs[0]
    }

    /// The slowest state.
    pub fn slowest(&self) -> KiloHertz {
        *self.freqs.last().expect("non-empty by construction")
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// Tables are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The deepest P-state whose frequency is `>= f`; falls back to the
    /// slowest state if `f` is below the table (the classic "highest
    /// P-number not faster than needed" lookup).
    pub fn state_for(&self, f: KiloHertz) -> PState {
        // freqs descending: find last index with freq >= f
        let mut chosen = self.freqs.len() - 1;
        for (i, &pf) in self.freqs.iter().enumerate() {
            if pf >= f {
                chosen = i;
            } else {
                break;
            }
        }
        PState(chosen as u8)
    }

    /// All frequencies, P0 first.
    pub fn freqs(&self) -> &[KiloHertz] {
        &self.freqs
    }
}

/// Ryzen-style *shared* P-state slots: the chip supports only `slots`
/// distinct voltage/frequency combinations concurrently, but each slot's
/// frequency is software-redefinable (§2.1, §5 "Ryzen details").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedSlots {
    slots: Vec<KiloHertz>,
}

impl SharedSlots {
    /// Create `n` slots, all initialized to `initial`.
    pub fn new(n: usize, initial: KiloHertz) -> SharedSlots {
        assert!(n >= 1);
        SharedSlots {
            slots: vec![initial; n],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Slots are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Redefine slot `i`'s frequency. Returns false if `i` is out of range.
    pub fn redefine(&mut self, i: usize, f: KiloHertz) -> bool {
        match self.slots.get_mut(i) {
            Some(s) => {
                *s = f;
                true
            }
            None => false,
        }
    }

    /// Current slot frequencies.
    pub fn freqs(&self) -> &[KiloHertz] {
        &self.slots
    }

    /// Whether a set of per-core frequency requests is representable: it
    /// may use at most `len()` distinct values.
    pub fn representable(&self, requests: &[KiloHertz]) -> bool {
        let mut distinct: Vec<KiloHertz> = Vec::with_capacity(self.slots.len() + 1);
        for &r in requests {
            if !distinct.contains(&r) {
                distinct.push(r);
                if distinct.len() > self.slots.len() {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PStateTable {
        PStateTable::new(vec![
            KiloHertz::from_mhz(3000),
            KiloHertz::from_mhz(2200),
            KiloHertz::from_mhz(1500),
            KiloHertz::from_mhz(800),
        ])
    }

    #[test]
    fn lookup() {
        let t = table();
        assert_eq!(t.freq(PState(0)), Some(KiloHertz::from_mhz(3000)));
        assert_eq!(t.freq(PState(3)), Some(KiloHertz::from_mhz(800)));
        assert_eq!(t.freq(PState(4)), None);
        assert_eq!(t.p0(), KiloHertz::from_mhz(3000));
        assert_eq!(t.slowest(), KiloHertz::from_mhz(800));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn state_for_frequency() {
        let t = table();
        assert_eq!(t.state_for(KiloHertz::from_mhz(3000)), PState(0));
        assert_eq!(t.state_for(KiloHertz::from_mhz(2200)), PState(1));
        // 1600 needs at least 1600 -> deepest state with freq >= 1600 is P1 (2200)
        assert_eq!(t.state_for(KiloHertz::from_mhz(1600)), PState(1));
        assert_eq!(t.state_for(KiloHertz::from_mhz(1500)), PState(2));
        assert_eq!(t.state_for(KiloHertz::from_mhz(100)), PState(3));
        assert_eq!(t.state_for(KiloHertz::from_mhz(9000)), PState(3));
    }

    #[test]
    fn evenly_spaced_from_grid() {
        let g = FreqGrid::new(
            KiloHertz::from_mhz(800),
            KiloHertz::from_mhz(2200),
            KiloHertz::from_mhz(100),
        );
        let t = PStateTable::evenly_spaced(&g, 8);
        assert_eq!(t.p0(), KiloHertz::from_mhz(2200));
        assert_eq!(t.slowest(), KiloHertz::from_mhz(800));
        assert_eq!(t.len(), 8);
        for w in t.freqs().windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn rejects_unordered() {
        let _ = PStateTable::new(vec![KiloHertz::from_mhz(800), KiloHertz::from_mhz(2200)]);
    }

    #[test]
    fn shared_slots_redefine_and_representable() {
        let mut s = SharedSlots::new(3, KiloHertz::from_mhz(3400));
        assert_eq!(s.len(), 3);
        assert!(s.redefine(1, KiloHertz::from_mhz(2500)));
        assert!(s.redefine(2, KiloHertz::from_mhz(1200)));
        assert!(!s.redefine(3, KiloHertz::from_mhz(1000)));
        assert_eq!(
            s.freqs(),
            &[
                KiloHertz::from_mhz(3400),
                KiloHertz::from_mhz(2500),
                KiloHertz::from_mhz(1200)
            ]
        );

        let ok = vec![
            KiloHertz::from_mhz(3400),
            KiloHertz::from_mhz(2500),
            KiloHertz::from_mhz(2500),
            KiloHertz::from_mhz(1200),
        ];
        assert!(s.representable(&ok));
        let bad = vec![
            KiloHertz::from_mhz(3400),
            KiloHertz::from_mhz(2500),
            KiloHertz::from_mhz(1200),
            KiloHertz::from_mhz(800),
        ];
        assert!(!s.representable(&bad));
        assert!(s.representable(&[]));
    }
}
