//! Simulation clock.

use crate::units::Seconds;

/// Monotone simulated-time clock.
///
/// The chip and everything layered on it (telemetry, the control daemon,
/// workload engines) share one clock; [`SimClock::advance`] is driven only
/// by [`crate::chip::Chip::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimClock {
    now: Seconds,
    ticks: u64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Seconds {
        self.now
    }

    /// Number of ticks taken so far.
    #[inline]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advance by `dt`.
    ///
    /// # Panics
    /// Panics in debug builds if `dt` is non-positive or non-finite.
    pub fn advance(&mut self, dt: Seconds) {
        debug_assert!(
            dt.value().is_finite() && dt.value() > 0.0,
            "bad tick {dt:?}"
        );
        self.now += dt;
        self.ticks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), Seconds(0.0));
        c.advance(Seconds::from_millis(10.0));
        c.advance(Seconds::from_millis(10.0));
        assert!((c.now().value() - 0.02).abs() < 1e-12);
        assert_eq!(c.ticks(), 2);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn rejects_zero_dt() {
        let mut c = SimClock::new();
        c.advance(Seconds(0.0));
    }
}
