//! Core idle states (C-states).
//!
//! C-states let a core stop executing entirely (§2.1 "Core Idling"): C0 is
//! active, deeper states progressively power-gate more of the core at the
//! cost of longer wake latency (1–200 µs on current x86). The priority
//! policy uses forced idling to starve low-priority cores and hand their
//! power (and turbo headroom) to high-priority ones.

use crate::units::Seconds;

/// A core idle state. `C0` is active; higher numbers are deeper sleeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CState {
    /// Active: executing instructions.
    C0,
    /// Halt: clock gated, caches coherent.
    C1,
    /// Deeper sleep: clocks off, caches flushed progressively.
    C3,
    /// Deep power-down: core voltage removed.
    C6,
}

impl CState {
    /// All modeled states, shallow to deep.
    pub const ALL: [CState; 4] = [CState::C0, CState::C1, CState::C3, CState::C6];

    /// Wake latency back to C0, per published x86 measurements.
    pub fn wake_latency(self) -> Seconds {
        match self {
            CState::C0 => Seconds(0.0),
            CState::C1 => Seconds::from_micros(2.0),
            CState::C3 => Seconds::from_micros(50.0),
            CState::C6 => Seconds::from_micros(133.0),
        }
    }

    /// Fraction of the model's idle-floor power drawn in this state,
    /// relative to C1 (deeper states approach zero).
    pub fn power_scale(self) -> f64 {
        match self {
            CState::C0 => 1.0,
            CState::C1 => 0.30,
            CState::C3 => 0.08,
            CState::C6 => 0.01,
        }
    }

    /// True when the core is executing.
    pub fn is_active(self) -> bool {
        matches!(self, CState::C0)
    }
}

/// Per-core C-state residency accounting, mirroring what `turbostat`
/// reports per sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CStateResidency {
    /// Seconds accumulated in each of [`CState::ALL`] order.
    residency: [f64; 4],
}

impl CStateResidency {
    /// Record `dt` spent with the core split between C0 (for
    /// `c0_fraction` of the time) and `idle_state` for the remainder.
    pub fn record(&mut self, dt: Seconds, c0_fraction: f64, idle_state: CState) {
        debug_assert!((0.0..=1.0).contains(&c0_fraction));
        self.residency[0] += dt.value() * c0_fraction;
        let idle = dt.value() * (1.0 - c0_fraction);
        let idx = CState::ALL
            .iter()
            .position(|&s| s == idle_state)
            .expect("state is in ALL");
        if idx == 0 {
            // Idling "in C0" is just active time.
            self.residency[0] += idle;
        } else {
            self.residency[idx] += idle;
        }
    }

    /// Total accounted time.
    pub fn total(&self) -> Seconds {
        Seconds(self.residency.iter().sum())
    }

    /// Time spent in `state`.
    pub fn in_state(&self, state: CState) -> Seconds {
        let idx = CState::ALL.iter().position(|&s| s == state).unwrap();
        Seconds(self.residency[idx])
    }

    /// Fraction of accounted time spent active (C0); 0 if nothing recorded.
    pub fn c0_fraction(&self) -> f64 {
        let t = self.total().value();
        if t <= 0.0 {
            0.0
        } else {
            self.residency[0] / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_monotone_with_depth() {
        let mut prev = Seconds(-1.0);
        for s in CState::ALL {
            assert!(s.wake_latency() >= prev);
            prev = s.wake_latency();
        }
    }

    #[test]
    fn power_scale_monotone_decreasing() {
        let mut prev = f64::MAX;
        for s in CState::ALL {
            assert!(s.power_scale() <= prev);
            prev = s.power_scale();
        }
        assert!(CState::C6.power_scale() < 0.05);
    }

    #[test]
    fn only_c0_is_active() {
        assert!(CState::C0.is_active());
        assert!(!CState::C1.is_active());
        assert!(!CState::C6.is_active());
    }

    #[test]
    fn residency_accounting() {
        let mut r = CStateResidency::default();
        r.record(Seconds(1.0), 0.75, CState::C6);
        r.record(Seconds(1.0), 0.25, CState::C6);
        assert!((r.total().value() - 2.0).abs() < 1e-12);
        assert!((r.in_state(CState::C0).value() - 1.0).abs() < 1e-12);
        assert!((r.in_state(CState::C6).value() - 1.0).abs() < 1e-12);
        assert!((r.c0_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn residency_idle_in_c0_counts_active() {
        let mut r = CStateResidency::default();
        r.record(Seconds(2.0), 0.5, CState::C0);
        assert!((r.in_state(CState::C0).value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_residency_fraction_zero() {
        let r = CStateResidency::default();
        assert_eq!(r.c0_fraction(), 0.0);
    }
}
