//! The chip seam: one trait over both simulator backends.
//!
//! [`ChipLike`] abstracts the per-tick protocol every chip consumer
//! drives — frequency programming, load and idle control, counter and
//! energy reads, the RAPL limit, and time — so the telemetry sampler,
//! cluster nodes, tenant scenarios, and the chaos harness can run on
//! either the per-core [`Chip`] or the batch-stepped [`WideChip`]
//! without knowing which. Both implementations forward to their
//! inherent methods, and `WideChip` is bit-identical to `Chip` on
//! platforms without shared P-state slots (`widechip` module tests), so
//! swapping the backend under a generic consumer cannot change a single
//! observable number.
//!
//! The platform model is shared through [`Arc`]: a fleet of a thousand
//! nodes holds a thousand pointers to one spec instead of a thousand
//! deep clones of the grid, turbo table, and power model.

use std::sync::Arc;

use crate::chip::Chip;
use crate::core::CoreCounters;
use crate::cstate::CState;
use crate::error::Result;
use crate::freq::KiloHertz;
use crate::platform::PlatformSpec;
use crate::power::LoadDescriptor;
use crate::units::{Seconds, Watts};
use crate::widechip::WideChip;

/// A simulated processor that can be driven by the standard per-tick
/// protocol. See the module docs for the equivalence contract.
pub trait ChipLike {
    /// Instantiate from a shared platform spec.
    ///
    /// # Panics
    /// Panics if the spec fails validation, or (for [`WideChip`]) if it
    /// declares shared P-state slots.
    fn shared(spec: Arc<PlatformSpec>) -> Self
    where
        Self: Sized;

    /// The platform this chip models.
    fn spec(&self) -> &PlatformSpec;

    /// Number of cores.
    fn num_cores(&self) -> usize;

    /// Current simulated time.
    fn now(&self) -> Seconds;

    /// Request a frequency for one core (snapped to the platform grid).
    fn set_requested_freq(&mut self, core: usize, f: KiloHertz) -> Result<()>;

    /// Program every core's requested frequency atomically.
    fn set_all_requested(&mut self, freqs: &[KiloHertz]) -> Result<()>;

    /// The frequency currently requested for a core.
    fn requested_freq(&self, core: usize) -> KiloHertz;

    /// The frequency a core would run at this tick.
    fn effective_freq(&self, core: usize) -> KiloHertz;

    /// Describe the work running on a core.
    fn set_load(&mut self, core: usize, load: LoadDescriptor) -> Result<()>;

    /// Park or unpark a core.
    fn set_forced_idle(&mut self, core: usize, idle: bool) -> Result<()>;

    /// Select the C-state an idle core sleeps in.
    fn set_idle_state(&mut self, core: usize, state: CState) -> Result<()>;

    /// Credit retired instructions to a core.
    fn add_instructions(&mut self, core: usize, n: u64) -> Result<()>;

    /// Program (or clear) the package RAPL limit.
    fn set_rapl_limit(&mut self, limit: Option<Watts>) -> Result<()>;

    /// The RAPL controller's current frequency cap, if one is active.
    fn rapl_cap(&self) -> Option<KiloHertz>;

    /// The programmed RAPL limit, if any.
    fn rapl_limit(&self) -> Option<Watts>;

    /// Fixed-counter snapshot for a core.
    fn counters(&self, core: usize) -> CoreCounters;

    /// Package power during the last tick.
    fn package_power(&self) -> Watts;

    /// Core-domain (PP0) power during the last tick.
    fn cores_power(&self) -> Watts;

    /// Power of one core during the last tick; errors on platforms
    /// without per-core power telemetry.
    fn core_power(&self, core: usize) -> Result<Watts>;

    /// Raw (wrapping) package energy counter.
    fn package_energy_raw(&self) -> u32;

    /// Raw (wrapping) core-domain energy counter.
    fn cores_energy_raw(&self) -> u32;

    /// Raw per-core energy counter; errors on platforms without
    /// per-core power telemetry.
    fn core_energy_raw(&self, core: usize) -> Result<u32>;

    /// Number of cores that will execute this tick.
    fn active_cores(&self) -> usize;

    /// Advance simulated time by `dt`.
    fn tick(&mut self, dt: Seconds);

    /// Advance `n` ticks of `dt` each.
    fn run_ticks(&mut self, n: usize, dt: Seconds);

    /// Whether the next tick of `dt` (and every one after it, until an
    /// input moves) is a pure replay of cached per-tick increments.
    /// Backends without an increment cache return false.
    fn steady_tick(&self, dt: Seconds) -> bool;
}

macro_rules! forward_chiplike {
    ($ty:ty) => {
        impl ChipLike for $ty {
            fn shared(spec: Arc<PlatformSpec>) -> Self {
                <$ty>::shared(spec)
            }
            fn spec(&self) -> &PlatformSpec {
                <$ty>::spec(self)
            }
            fn num_cores(&self) -> usize {
                <$ty>::num_cores(self)
            }
            fn now(&self) -> Seconds {
                <$ty>::now(self)
            }
            fn set_requested_freq(&mut self, core: usize, f: KiloHertz) -> Result<()> {
                <$ty>::set_requested_freq(self, core, f)
            }
            fn set_all_requested(&mut self, freqs: &[KiloHertz]) -> Result<()> {
                <$ty>::set_all_requested(self, freqs)
            }
            fn requested_freq(&self, core: usize) -> KiloHertz {
                <$ty>::requested_freq(self, core)
            }
            fn effective_freq(&self, core: usize) -> KiloHertz {
                <$ty>::effective_freq(self, core)
            }
            fn set_load(&mut self, core: usize, load: LoadDescriptor) -> Result<()> {
                <$ty>::set_load(self, core, load)
            }
            fn set_forced_idle(&mut self, core: usize, idle: bool) -> Result<()> {
                <$ty>::set_forced_idle(self, core, idle)
            }
            fn set_idle_state(&mut self, core: usize, state: CState) -> Result<()> {
                <$ty>::set_idle_state(self, core, state)
            }
            fn add_instructions(&mut self, core: usize, n: u64) -> Result<()> {
                <$ty>::add_instructions(self, core, n)
            }
            fn set_rapl_limit(&mut self, limit: Option<Watts>) -> Result<()> {
                <$ty>::set_rapl_limit(self, limit)
            }
            fn rapl_cap(&self) -> Option<KiloHertz> {
                <$ty>::rapl_cap(self)
            }
            fn rapl_limit(&self) -> Option<Watts> {
                <$ty>::rapl_limit(self)
            }
            fn counters(&self, core: usize) -> CoreCounters {
                <$ty>::counters(self, core)
            }
            fn package_power(&self) -> Watts {
                <$ty>::package_power(self)
            }
            fn cores_power(&self) -> Watts {
                <$ty>::cores_power(self)
            }
            fn core_power(&self, core: usize) -> Result<Watts> {
                <$ty>::core_power(self, core)
            }
            fn package_energy_raw(&self) -> u32 {
                <$ty>::package_energy_raw(self)
            }
            fn cores_energy_raw(&self) -> u32 {
                <$ty>::cores_energy_raw(self)
            }
            fn core_energy_raw(&self, core: usize) -> Result<u32> {
                <$ty>::core_energy_raw(self, core)
            }
            fn active_cores(&self) -> usize {
                <$ty>::active_cores(self)
            }
            fn tick(&mut self, dt: Seconds) {
                <$ty>::tick(self, dt)
            }
            fn run_ticks(&mut self, n: usize, dt: Seconds) {
                <$ty>::run_ticks(self, n, dt)
            }
            fn steady_tick(&self, dt: Seconds) -> bool {
                <$ty>::steady_tick(self, dt)
            }
        }
    };
}

forward_chiplike!(Chip);
forward_chiplike!(WideChip);

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive either backend through the trait only.
    fn drive<C: ChipLike>(spec: Arc<PlatformSpec>) -> (u64, u64, u32) {
        let mut chip = C::shared(spec);
        let f = chip.spec().grid.max();
        chip.set_requested_freq(0, f).unwrap();
        chip.set_load(0, LoadDescriptor::nominal()).unwrap();
        for _ in 0..50 {
            let eff = chip.effective_freq(0);
            chip.add_instructions(0, (eff.hz() * 1e-3) as u64).unwrap();
            chip.tick(Seconds(0.001));
        }
        let c = chip.counters(0);
        (c.aperf, c.instructions, chip.package_energy_raw())
    }

    #[test]
    fn both_backends_agree_through_the_seam() {
        let spec = Arc::new(PlatformSpec::skylake());
        let a = drive::<Chip>(spec.clone());
        let b = drive::<WideChip>(spec);
        assert_eq!(a, b, "Chip and WideChip diverged through ChipLike");
    }

    #[test]
    fn shared_spec_is_not_cloned() {
        let spec = Arc::new(PlatformSpec::skylake());
        let chip = <Chip as ChipLike>::shared(spec.clone());
        let wide = <WideChip as ChipLike>::shared(spec.clone());
        assert_eq!(Arc::strong_count(&spec), 3);
        assert_eq!(chip.spec().name, wide.spec().name);
    }
}
