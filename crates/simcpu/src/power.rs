//! The per-core and package power model.
//!
//! Dynamic power follows the classic CMOS law the paper leans on
//! (§2.1): `P_dyn = C_eff · V² · f`, where the effective switching
//! capacitance `C_eff` depends on what the software running on the core is
//! doing — vector-heavy code toggles far more transistors per cycle than
//! pointer-chasing code. That per-workload difference is exactly what the
//! paper calls *power demand* (high-demand vs low-demand applications), and
//! it is carried here by [`LoadDescriptor::capacitance`].
//!
//! Static (leakage) power is modeled as proportional to voltage, and the
//! uncore (caches, memory controller, fabric) as a base plus a term that
//! scales with aggregate active core frequency, which reproduces the
//! package-level power slopes measured in Figures 2 and 3 of the paper.

use crate::freq::KiloHertz;
use crate::units::{Volts, Watts};
use crate::volt::VoltageCurve;

/// What the software currently running on a core looks like to the power
/// model. Produced each tick by the workload engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDescriptor {
    /// Effective-capacitance factor relative to a nominal scalar integer
    /// workload (1.0). AVX-heavy code is typically 1.5–2.5×; a power virus
    /// can exceed 3×.
    pub capacitance: f64,
    /// Fraction of wall time the core spends in C0 actively executing
    /// (0.0 ..= 1.0). Memory-stalled cycles still count as active, matching
    /// how APERF/MPERF account them.
    pub utilization: f64,
    /// Whether the workload executes wide-vector (AVX) instructions, which
    /// subjects the core to the platform's AVX frequency offset.
    pub avx: bool,
}

impl LoadDescriptor {
    /// A fully idle core (no workload assigned).
    pub const IDLE: LoadDescriptor = LoadDescriptor {
        capacitance: 0.0,
        utilization: 0.0,
        avx: false,
    };

    /// A nominal scalar workload at full utilization.
    pub fn nominal() -> LoadDescriptor {
        LoadDescriptor {
            capacitance: 1.0,
            utilization: 1.0,
            avx: false,
        }
    }

    /// True when the descriptor demands any execution at all.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.utilization > 0.0 && self.capacitance > 0.0
    }

    /// Validate invariants; returns `false` on NaN or out-of-range fields.
    pub fn is_valid(&self) -> bool {
        self.capacitance.is_finite()
            && self.capacitance >= 0.0
            && self.utilization.is_finite()
            && (0.0..=1.0).contains(&self.utilization)
    }
}

/// Coefficients of the analytic power model.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Dynamic-power coefficient for a capacitance-1.0 workload,
    /// in W / (V² · GHz).
    pub ceff_nominal: f64,
    /// Leakage power per volt of supply, per core (W/V) while the core is
    /// powered (C0 or shallow idle).
    pub leak_per_volt: f64,
    /// Deep-idle (package C-state) power per core. Real parts sit in the
    /// milliwatt range here (§2.1 "Core Idling").
    pub idle_core: Watts,
    /// Constant uncore power (caches, memory controller, IO).
    pub uncore_base: Watts,
    /// Uncore power per GHz of *summed* active-core frequency, modeling
    /// fabric/L3 activity scaling with core throughput.
    pub uncore_per_ghz: f64,
    /// Frequency at which opportunistic (turbo/XFR) operation begins, if
    /// the platform has one. Entering the turbo regime clocks up the
    /// uncore and PLLs, producing the discrete package-power jump the
    /// paper measures (~5 W above 2.2 GHz on Skylake, above 3.4 GHz on
    /// Ryzen).
    pub turbo_threshold: Option<KiloHertz>,
    /// Additional uncore power while any active core runs at or above
    /// [`PowerModel::turbo_threshold`].
    pub turbo_uncore_boost: Watts,
    /// The voltage/frequency curve for the core domain.
    pub vf_curve: VoltageCurve,
}

impl PowerModel {
    /// Instantaneous power of one core given its effective frequency and
    /// load. An idle core (`load.utilization == 0`) draws only
    /// [`PowerModel::idle_core`].
    pub fn core_power(&self, freq: KiloHertz, load: &LoadDescriptor) -> Watts {
        debug_assert!(load.is_valid(), "invalid load {load:?}");
        if !load.is_active() || freq == KiloHertz::ZERO {
            return self.idle_core;
        }
        let v = self.vf_curve.voltage(freq);
        let dynamic = self.ceff_nominal
            * load.capacitance
            * v.value()
            * v.value()
            * freq.ghz()
            * load.utilization;
        let leak = self.leak_per_volt * v.value();
        Watts(dynamic) + Watts(leak)
    }

    /// Idle power of a core resting in C-state `state`.
    /// [`PowerModel::idle_core`] is calibrated as the *deep* (C6) floor;
    /// shallower states draw proportionally more per
    /// [`CState::power_scale`](crate::cstate::CState::power_scale).
    pub fn idle_power(&self, state: crate::cstate::CState) -> Watts {
        let deep_scale = crate::cstate::CState::C6.power_scale();
        self.idle_core * (state.power_scale() / deep_scale)
    }

    /// Instantaneous uncore power given the sum of active-core frequencies
    /// and the fastest active core (for the turbo-entry surcharge).
    pub fn uncore_power_at(
        &self,
        total_active_freq: KiloHertz,
        max_active_freq: KiloHertz,
    ) -> Watts {
        let mut p = self.uncore_base + Watts(self.uncore_per_ghz * total_active_freq.ghz());
        if let Some(thr) = self.turbo_threshold {
            if max_active_freq >= thr && max_active_freq > KiloHertz::ZERO {
                p += self.turbo_uncore_boost;
            }
        }
        p
    }

    /// Uncore power without the turbo surcharge (no core in the turbo
    /// regime).
    pub fn uncore_power(&self, total_active_freq: KiloHertz) -> Watts {
        self.uncore_power_at(total_active_freq, KiloHertz::ZERO)
    }

    /// Voltage the core domain runs at for frequency `f`.
    pub fn voltage(&self, f: KiloHertz) -> Volts {
        self.vf_curve.voltage(f)
    }

    /// Inverse of the dynamic model: the highest frequency (unquantized) at
    /// which a capacitance-`cap` fully-utilized workload stays at or under
    /// `budget` watts on one core. Returns `None` if even the minimum
    /// voltage point exceeds the budget.
    ///
    /// Used by power-share policies to seed their initial distribution;
    /// solved by bisection because `V(f)` is piecewise linear.
    pub fn max_freq_within(
        &self,
        budget: Watts,
        cap: f64,
        lo: KiloHertz,
        hi: KiloHertz,
    ) -> Option<KiloHertz> {
        let load = LoadDescriptor {
            capacitance: cap,
            utilization: 1.0,
            avx: false,
        };
        if self.core_power(lo, &load) > budget {
            return None;
        }
        if self.core_power(hi, &load) <= budget {
            return Some(hi);
        }
        let (mut lo_k, mut hi_k) = (lo.khz(), hi.khz());
        while hi_k - lo_k > 1_000 {
            let mid = KiloHertz((lo_k + hi_k) / 2);
            if self.core_power(mid, &load) <= budget {
                lo_k = mid.khz();
            } else {
                hi_k = mid.khz();
            }
        }
        Some(KiloHertz(lo_k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::KiloHertz;

    fn model() -> PowerModel {
        PowerModel {
            ceff_nominal: 2.5,
            leak_per_volt: 0.6,
            idle_core: Watts(0.05),
            uncore_base: Watts(10.0),
            uncore_per_ghz: 0.3,
            turbo_threshold: None,
            turbo_uncore_boost: Watts(0.0),
            vf_curve: VoltageCurve::linear(
                KiloHertz::from_mhz(800),
                Volts(0.65),
                KiloHertz::from_mhz(3000),
                Volts(1.15),
            ),
        }
    }

    #[test]
    fn idle_core_draws_idle_power() {
        let m = model();
        assert_eq!(
            m.core_power(KiloHertz::from_mhz(2000), &LoadDescriptor::IDLE),
            Watts(0.05)
        );
        assert_eq!(
            m.core_power(KiloHertz::ZERO, &LoadDescriptor::nominal()),
            Watts(0.05)
        );
    }

    #[test]
    fn power_superlinear_in_frequency() {
        let m = model();
        let load = LoadDescriptor::nominal();
        let p1 = m.core_power(KiloHertz::from_mhz(1000), &load);
        let p2 = m.core_power(KiloHertz::from_mhz(2000), &load);
        // with rising V the ratio must exceed the frequency ratio of 2
        assert!(p2.value() / p1.value() > 2.0, "p1={p1} p2={p2}");
    }

    #[test]
    fn power_scales_with_capacitance_and_utilization() {
        let m = model();
        let f = KiloHertz::from_mhz(2000);
        let base = m.core_power(f, &LoadDescriptor::nominal());
        let heavy = m.core_power(
            f,
            &LoadDescriptor {
                capacitance: 2.0,
                utilization: 1.0,
                avx: true,
            },
        );
        let half = m.core_power(
            f,
            &LoadDescriptor {
                capacitance: 1.0,
                utilization: 0.5,
                avx: false,
            },
        );
        // dynamic part doubles; leakage does not
        let v = m.voltage(f).value();
        let leak = 0.6 * v;
        assert!((heavy.value() - leak) / (base.value() - leak) - 2.0 < 1e-9);
        assert!(((half.value() - leak) / (base.value() - leak) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn uncore_power_scales() {
        let m = model();
        let p0 = m.uncore_power(KiloHertz::ZERO);
        let p10 = m.uncore_power(KiloHertz::from_ghz(10.0));
        assert_eq!(p0, Watts(10.0));
        assert!((p10.value() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn max_freq_within_budget_bisects() {
        let m = model();
        let lo = KiloHertz::from_mhz(800);
        let hi = KiloHertz::from_mhz(3000);
        let f = m
            .max_freq_within(Watts(4.0), 1.0, lo, hi)
            .expect("4 W fits at some frequency");
        let load = LoadDescriptor::nominal();
        assert!(m.core_power(f, &load) <= Watts(4.0));
        // and one big step up exceeds the budget
        let above = KiloHertz(f.khz() + 50_000).min(hi);
        if above > f {
            assert!(m.core_power(above, &load) > Watts(4.0));
        }
    }

    #[test]
    fn max_freq_within_budget_edges() {
        let m = model();
        let lo = KiloHertz::from_mhz(800);
        let hi = KiloHertz::from_mhz(3000);
        // impossible budget
        assert_eq!(m.max_freq_within(Watts(0.01), 1.0, lo, hi), None);
        // generous budget returns hi
        assert_eq!(m.max_freq_within(Watts(100.0), 1.0, lo, hi), Some(hi));
    }

    #[test]
    fn load_descriptor_validity() {
        assert!(LoadDescriptor::nominal().is_valid());
        assert!(LoadDescriptor::IDLE.is_valid());
        assert!(!LoadDescriptor {
            capacitance: -1.0,
            utilization: 0.5,
            avx: false
        }
        .is_valid());
        assert!(!LoadDescriptor {
            capacitance: 1.0,
            utilization: 1.5,
            avx: false
        }
        .is_valid());
        assert!(!LoadDescriptor {
            capacitance: f64::NAN,
            utilization: 0.5,
            avx: false
        }
        .is_valid());
    }
}
